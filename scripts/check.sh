#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md): warnings-as-errors release build, the
# simlint determinism/robustness pass, the root test suite, and a 2-job
# smoke run of the reproduction at fast scale with the metrics sidecars
# enabled. A second 1-job smoke run re-derives the sidecars and byte-
# compares them against the 2-job run — the observability layer must be
# deterministic at any worker count — a third run at --shards 2
# byte-compares again: the sharded engine must be results-invariant in
# the shard count too — a fourth run at --event-queue calendar
# byte-compares once more: the calendar-queue backend must be
# results-invariant in the queue structure — and a fifth run at
# --workers 2 byte-compares the distributed coordinator/worker path
# against the in-process runner. The smoke run's timing profile
# (per-experiment wall clock, per-sweep-point breakdown, and the measured
# metrics-snapshot overhead) is snapshotted into BENCH_runner.json at the
# repo root; the lint report is snapshotted into target/check/simlint.json.
#
# The perf gate compares against the *committed* BENCH_*.json (HEAD), not
# the working tree, so a slow run can never become its own baseline; pass
# --no-refresh to leave the working-tree snapshots untouched (gate only).
set -euo pipefail
cd "$(dirname "$0")/.."

REFRESH=1
for arg in "$@"; do
    case "$arg" in
        --no-refresh) REFRESH=0 ;;
        *) echo "unknown option $arg (usage: check.sh [--no-refresh])"; exit 2 ;;
    esac
done

echo "== cargo build --release (warnings deny) =="
RUSTFLAGS="-D warnings" cargo build --release

echo "== simlint (r1-r9, full workspace) =="
mkdir -p target/check
cargo run --release -q -p simlint -- --json target/check/simlint.json

echo "== simlint self-lint (--crates simlint) =="
# The linter is held to its own r3/r4 scoping: a filtered pass over just
# crates/simlint must come back clean too. The filter only restricts which
# files are linted — the r7 symbol table still spans the whole workspace.
cargo run --release -q -p simlint -- --crates simlint

echo "== cargo test -q =="
cargo test -q

echo "== repro smoke (scale 1/64, 2 jobs, metrics on) =="
cargo run --release -p readopt-core --bin repro -- \
    fig1 fig2 table4 shard_scaling users_1e6 --scale 64 --intervals 4 --jobs 2 --json target/check

echo "== sidecar determinism (re-run at 1 job, byte-compare) =="
# This run also writes the binary results store so the export leg below
# can regenerate its sidecars from the .rrs bytes alone.
mkdir -p target/check-j1
rm -f target/check/run.rrs
cargo run --release -q -p readopt-core --bin repro -- \
    fig1 fig2 table4 --scale 64 --intervals 4 --jobs 1 --json target/check-j1 \
    --store target/check/run.rrs > /dev/null
for exp in fig1 fig2 table4; do
    cmp "target/check/$exp.metrics.json" "target/check-j1/$exp.metrics.json" \
        || { echo "ERROR: $exp metrics sidecar differs between --jobs 2 and --jobs 1"; exit 1; }
    cmp "target/check/$exp.json" "target/check-j1/$exp.json" \
        || { echo "ERROR: $exp results differ between --jobs 2 and --jobs 1"; exit 1; }
    cmp "target/check/$exp.hist.json" "target/check-j1/$exp.hist.json" \
        || { echo "ERROR: $exp latency histograms differ between --jobs 2 and --jobs 1"; exit 1; }
done
echo "   sidecars byte-identical across job counts"

echo "== shard determinism (re-run at --shards 2, byte-compare) =="
# shard_scaling itself is excluded from the comparison: its payload is
# wall-clock (timing differs run to run by design); its bit-identity
# assertion runs inside the driver on every invocation above.
mkdir -p target/check-s2
cargo run --release -q -p readopt-core --bin repro -- \
    fig1 fig2 table4 --scale 64 --intervals 4 --jobs 1 --shards 2 \
    --json target/check-s2 > /dev/null
for exp in fig1 fig2 table4; do
    cmp "target/check-j1/$exp.metrics.json" "target/check-s2/$exp.metrics.json" \
        || { echo "ERROR: $exp metrics sidecar differs between --shards 1 and --shards 2"; exit 1; }
    cmp "target/check-j1/$exp.json" "target/check-s2/$exp.json" \
        || { echo "ERROR: $exp results differ between --shards 1 and --shards 2"; exit 1; }
    cmp "target/check-j1/$exp.hist.json" "target/check-s2/$exp.hist.json" \
        || { echo "ERROR: $exp latency histograms differ between --shards 1 and --shards 2"; exit 1; }
done
echo "   results byte-identical across shard counts"

echo "== event-queue determinism (re-run on calendar backend, byte-compare) =="
# users_1e6 asserts heap/calendar equality inside its driver on every run
# above; this leg pins the production experiments to the same contract end
# to end: the calendar-backed engine must reproduce the heap-backed results
# and sidecars byte for byte.
mkdir -p target/check-cal
cargo run --release -q -p readopt-core --bin repro -- \
    fig1 fig2 table4 --scale 64 --intervals 4 --jobs 1 --event-queue calendar \
    --json target/check-cal > /dev/null
for exp in fig1 fig2 table4; do
    cmp "target/check-j1/$exp.metrics.json" "target/check-cal/$exp.metrics.json" \
        || { echo "ERROR: $exp metrics sidecar differs between heap and calendar event queues"; exit 1; }
    cmp "target/check-j1/$exp.json" "target/check-cal/$exp.json" \
        || { echo "ERROR: $exp results differ between heap and calendar event queues"; exit 1; }
    cmp "target/check-j1/$exp.hist.json" "target/check-cal/$exp.hist.json" \
        || { echo "ERROR: $exp latency histograms differ between heap and calendar event queues"; exit 1; }
done
echo "   results byte-identical across event-queue backends"

echo "== distributed determinism (re-run at --workers 2, byte-compare) =="
# The coordinator hands the same sweep points to forked worker processes
# over the frame protocol and reassembles results in sweep order, so
# results, metrics sidecars, and latency histograms must all byte-match
# the in-process --jobs 1 run.
mkdir -p target/check-w2
cargo run --release -q -p readopt-core --bin repro -- \
    fig1 fig2 table4 --scale 64 --intervals 4 --workers 2 \
    --json target/check-w2 > /dev/null
for exp in fig1 fig2 table4; do
    cmp "target/check-j1/$exp.metrics.json" "target/check-w2/$exp.metrics.json" \
        || { echo "ERROR: $exp metrics sidecar differs between --workers 2 and --jobs 1"; exit 1; }
    cmp "target/check-j1/$exp.json" "target/check-w2/$exp.json" \
        || { echo "ERROR: $exp results differ between --workers 2 and --jobs 1"; exit 1; }
    cmp "target/check-j1/$exp.hist.json" "target/check-w2/$exp.hist.json" \
        || { echo "ERROR: $exp latency histograms differ between --workers 2 and --jobs 1"; exit 1; }
done
echo "   results byte-identical between worker processes and in-process run"

echo "== results store (repro export, byte-compare against the sidecars) =="
# `repro export` regenerates every JSON sidecar from the sealed .rrs
# written during the 1-job leg. Artifact records hold the exact bytes
# write_json produced, so even profile.json (wall-clock) must round-trip
# byte-identically — any drift means the store and the sidecars diverged.
rm -rf target/check-export
cargo run --release -q -p readopt-core --bin repro -- \
    export --store target/check/run.rrs --json target/check-export > /dev/null
for f in target/check-j1/*.json; do
    cmp "$f" "target/check-export/$(basename "$f")" \
        || { echo "ERROR: $(basename "$f") regenerated from the store differs"; exit 1; }
done
[ "$(ls target/check-j1/*.json | wc -l)" = "$(ls target/check-export/*.json | wc -l)" ] \
    || { echo "ERROR: store export wrote a different artifact set"; exit 1; }
echo "   store export byte-identical to the original sidecars"

echo "== allocator microbench (bitmap vs btree backends) =="
cargo run --release -q -p readopt-bench --bin alloc_bench -- \
    --json target/check/alloc_bench.json

echo "== perf regression gate (warn-only, +25% vs committed baselines) =="
# Fold the --workers 2 leg's dist/* rows into the smoke profile first so
# the distributed timings are gated (per point, warn-only) and land in
# BENCH_runner.json alongside the in-process history.
cargo run --release -q -p readopt-bench --bin perf_gate -- \
    --merge-runner target/check/profile.json \
    target/check/profile.json target/check-w2/profile.json
# Baselines come from the committed snapshots (HEAD), never the working
# tree: comparing against a file this script is about to overwrite would
# let one slow run silently become the next run's baseline. A snapshot
# that was never committed falls back to the working-tree copy (first run
# in a fresh history); perf_gate skips missing/empty baselines gracefully.
for snap in BENCH_runner.json BENCH_alloc.json; do
    if ! git show "HEAD:$snap" > "target/check/base_$snap" 2>/dev/null; then
        if [ -f "$snap" ]; then cp "$snap" "target/check/base_$snap"; else : > "target/check/base_$snap"; fi
    fi
done
cargo run --release -q -p readopt-bench --bin perf_gate -- \
    --threshold-pct 25 \
    --runner target/check/base_BENCH_runner.json target/check/profile.json \
    --alloc target/check/base_BENCH_alloc.json target/check/alloc_bench.json

if [ "$REFRESH" = 1 ]; then
    cp target/check/profile.json BENCH_runner.json
    cp target/check/alloc_bench.json BENCH_alloc.json
    echo "== wrote BENCH_runner.json + BENCH_alloc.json =="
else
    echo "== --no-refresh: BENCH_runner.json + BENCH_alloc.json left untouched =="
fi
