#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md): warnings-as-errors release build, the
# simlint determinism/robustness pass, the root test suite, and a 2-job
# smoke run of the reproduction at fast scale. The smoke run's timing
# profile (per-experiment wall clock plus per-sweep-point breakdown) is
# snapshotted into BENCH_runner.json at the repo root; the lint report is
# snapshotted into target/check/simlint.json.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release (warnings deny) =="
RUSTFLAGS="-D warnings" cargo build --release

echo "== simlint =="
mkdir -p target/check
cargo run --release -q -p simlint -- --json target/check/simlint.json

echo "== cargo test -q =="
cargo test -q

echo "== repro smoke (scale 1/64, 2 jobs) =="
cargo run --release -p readopt-core --bin repro -- \
    fig1 fig2 table4 --scale 64 --intervals 4 --jobs 2 --json target/check

cp target/check/profile.json BENCH_runner.json
echo "== wrote BENCH_runner.json =="
