//! Differential testing of the simulated file system against a trivial
//! in-memory reference model: after any operation sequence, file existence,
//! sizes, cursors, and directory listings must agree, and the allocator's
//! invariants must hold.

use proptest::prelude::*;
use readopt::alloc::PolicyConfig;
use readopt::disk::ArrayConfig;
use readopt::fs::{CacheConfig, Fd, FileSystem, FsConfig, FsError};
use std::collections::BTreeMap;

/// The reference model: just names and sizes.
#[derive(Debug, Default)]
struct Model {
    files: BTreeMap<String, u64>,
    dirs: Vec<String>,
    handles: BTreeMap<u32, (String, u64)>, // slot -> (path, cursor)
}

#[derive(Debug, Clone)]
enum Op {
    Mkdir(u8),
    Create(u8, u32),
    Open(u8, u32),
    Close(u32),
    Write(u32, u64),
    Read(u32, u64),
    Seek(u32, u64),
    Truncate(u8, u64),
    Unlink(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        1 => any::<u8>().prop_map(Op::Mkdir),
        3 => (any::<u8>(), 0u32..8).prop_map(|(p, s)| Op::Create(p, s)),
        2 => (any::<u8>(), 0u32..8).prop_map(|(p, s)| Op::Open(p, s)),
        1 => (0u32..8).prop_map(Op::Close),
        5 => (0u32..8, 1u64..100_000).prop_map(|(s, n)| Op::Write(s, n)),
        4 => (0u32..8, 1u64..100_000).prop_map(|(s, n)| Op::Read(s, n)),
        2 => (0u32..8, 0u64..200_000).prop_map(|(s, p)| Op::Seek(s, p)),
        1 => (any::<u8>(), 0u64..100_000).prop_map(|(p, n)| Op::Truncate(p, n)),
        1 => any::<u8>().prop_map(Op::Unlink),
    ]
}

/// Maps a byte to one of a handful of paths so operations collide often.
fn path_for(p: u8) -> String {
    match p % 6 {
        0 => "/a".to_string(),
        1 => "/b".to_string(),
        2 => "/dir/c".to_string(),
        3 => "/dir/d".to_string(),
        4 => "/dir/sub/e".to_string(),
        _ => "/f".to_string(),
    }
}

fn run_model(ops: &[Op], cache: Option<CacheConfig>) {
    let mut fs = FileSystem::format(FsConfig {
        array: ArrayConfig::scaled(64),
        policy: PolicyConfig::paper_restricted(),
        cache,
        seed: 5,
    });
    let mut model = Model::default();
    // Pre-create the directory skeleton in both.
    for d in ["/dir", "/dir/sub"] {
        fs.mkdir(d).unwrap();
        model.dirs.push(d.to_string());
    }
    let mut slot_to_fd: BTreeMap<u32, Fd> = BTreeMap::new();

    for op in ops {
        match op {
            Op::Mkdir(p) => {
                let path = format!("{}.d", path_for(*p));
                let real = fs.mkdir(&path);
                if model.dirs.contains(&path) || model.files.contains_key(&path) {
                    assert!(matches!(real, Err(FsError::AlreadyExists(_))));
                } else {
                    real.unwrap();
                    model.dirs.push(path);
                }
            }
            Op::Create(p, slot) => {
                let path = path_for(*p);
                let real = fs.create(&path);
                if model.files.contains_key(&path) || model.dirs.contains(&path) {
                    assert!(matches!(real, Err(FsError::AlreadyExists(_))), "{path}");
                } else {
                    let fd = real.unwrap_or_else(|e| panic!("create {path}: {e}"));
                    model.files.insert(path.clone(), 0);
                    if let Some(old) = slot_to_fd.insert(*slot, fd) {
                        let _ = fs.close(old);
                    }
                    model.handles.insert(*slot, (path, 0));
                }
            }
            Op::Open(p, slot) => {
                let path = path_for(*p);
                let real = fs.open(&path);
                if model.files.contains_key(&path) {
                    let fd = real.unwrap();
                    if let Some(old) = slot_to_fd.insert(*slot, fd) {
                        let _ = fs.close(old);
                    }
                    model.handles.insert(*slot, (path, 0));
                } else {
                    assert!(real.is_err(), "open of absent {path} must fail");
                }
            }
            Op::Close(slot) => {
                let real = slot_to_fd.remove(slot).map(|fd| fs.close(fd));
                match (real, model.handles.remove(slot)) {
                    (Some(Ok(())), Some(_)) => {}
                    (None, None) => {}
                    // The fs invalidates descriptors on unlink; the model
                    // drops them too (see Unlink) — any mix left is a bug.
                    (a, b) => panic!("close divergence: {a:?} vs {b:?}"),
                }
            }
            Op::Write(slot, n) => {
                if let (Some(&fd), Some((path, cursor))) =
                    (slot_to_fd.get(slot), model.handles.get(slot).cloned())
                {
                    match fs.write(fd, *n) {
                        Ok(r) => {
                            assert_eq!(r.bytes, *n);
                            let size = model.files.get_mut(&path).expect("model file");
                            *size = (*size).max(cursor + n);
                            model.handles.insert(*slot, (path, cursor + n));
                        }
                        Err(FsError::NoSpace) => { /* model unchanged: atomic failure */ }
                        Err(e) => panic!("write: {e}"),
                    }
                }
            }
            Op::Read(slot, n) => {
                if let (Some(&fd), Some((path, cursor))) =
                    (slot_to_fd.get(slot), model.handles.get(slot).cloned())
                {
                    let size = model.files[&path];
                    let expect = (*n).min(size.saturating_sub(cursor));
                    let r = fs.read(fd, *n).unwrap();
                    assert_eq!(r.bytes, expect, "read at {cursor} of {size}-byte {path}");
                    model.handles.insert(*slot, (path, cursor + expect));
                }
            }
            Op::Seek(slot, pos) => {
                if let Some(&fd) = slot_to_fd.get(slot) {
                    fs.seek(fd, *pos).unwrap();
                    let (path, _) = model.handles[slot].clone();
                    model.handles.insert(*slot, (path, *pos));
                }
            }
            Op::Truncate(p, n) => {
                let path = path_for(*p);
                let real = fs.truncate(&path, *n);
                match model.files.get_mut(&path) {
                    Some(size) => {
                        real.unwrap();
                        *size = (*size).min(*n);
                    }
                    None => assert!(real.is_err()),
                }
            }
            Op::Unlink(p) => {
                let path = path_for(*p);
                let real = fs.unlink(&path);
                if model.files.remove(&path).is_some() {
                    real.unwrap();
                    // Drop model handles on that path, mirroring descriptor
                    // invalidation.
                    let stale: Vec<u32> = model
                        .handles
                        .iter()
                        .filter(|(_, (hp, _))| *hp == path)
                        .map(|(&s, _)| s)
                        .collect();
                    for s in stale {
                        model.handles.remove(&s);
                        slot_to_fd.remove(&s);
                    }
                } else {
                    assert!(real.is_err());
                }
            }
        }
        // Continuous agreement on sizes and existence.
        for (path, &size) in &model.files {
            let meta = fs.stat(path).unwrap_or_else(|e| panic!("stat {path}: {e}"));
            assert_eq!(meta.size_bytes, size, "{path} size");
            assert!(meta.allocated_bytes >= size.min(meta.allocated_bytes), "sane allocation");
        }
    }
    fs.policy().check_invariants();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn filesystem_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        run_model(&ops, None);
    }

    #[test]
    fn filesystem_matches_reference_model_with_cache(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        // The buffer cache must be semantically invisible.
        run_model(&ops, Some(CacheConfig { capacity_bytes: 256 * 1024, page_bytes: 8 * 1024 }));
    }
}
