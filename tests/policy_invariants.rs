//! Property-based tests: every allocation policy maintains its structural
//! invariants under arbitrary operation sequences.
//!
//! The invariants (checked by `Policy::check_invariants`):
//! * live extents are in-bounds, non-overlapping, non-empty;
//! * `free + data + metadata == capacity` after every operation;
//! * policy-specific structure (buddy alignment/coalescing, region
//!   accounting, extent-map coalescing) holds.

use proptest::prelude::*;
use readopt::alloc::{
    BuddyPolicy, ExtentPolicy, FfsPolicy, FileHints, FileId, FitStrategy, FixedPolicy, Policy,
    RestrictedPolicy,
};

/// A randomly generated operation against a policy.
#[derive(Debug, Clone)]
enum Op {
    Create,
    Extend { file_sel: usize, units: u64 },
    Truncate { file_sel: usize, units: u64 },
    Delete { file_sel: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        1 => Just(Op::Create),
        5 => (any::<usize>(), 1u64..600).prop_map(|(file_sel, units)| Op::Extend { file_sel, units }),
        2 => (any::<usize>(), 1u64..600).prop_map(|(file_sel, units)| Op::Truncate { file_sel, units }),
        1 => any::<usize>().prop_map(|file_sel| Op::Delete { file_sel }),
    ]
}

/// Applies a sequence of operations, checking invariants after each.
fn exercise(policy: &mut dyn Policy, ops: &[Op]) {
    let mut live: Vec<FileId> = Vec::new();
    let hints = FileHints { mean_extent_bytes: 8 * 1024 };
    // Start with a couple of files so early ops have targets.
    for _ in 0..2 {
        if let Ok(id) = policy.create(&hints) {
            live.push(id);
        }
    }
    for op in ops {
        match op {
            Op::Create => {
                if let Ok(id) = policy.create(&hints) {
                    live.push(id);
                }
            }
            Op::Extend { file_sel, units } => {
                if !live.is_empty() {
                    let id = live[file_sel % live.len()];
                    let _ = policy.extend(id, *units); // disk-full is fine
                }
            }
            Op::Truncate { file_sel, units } => {
                if !live.is_empty() {
                    let id = live[file_sel % live.len()];
                    let _ = policy.truncate(id, *units);
                }
            }
            Op::Delete { file_sel } => {
                if !live.is_empty() {
                    let idx = file_sel % live.len();
                    let id = live.swap_remove(idx);
                    policy.delete(id).expect("deleting a live file");
                }
            }
        }
        policy.check_invariants();
    }
    // Tear-down: deleting everything restores all data space.
    for id in live.drain(..) {
        policy.delete(id).expect("deleting a live file");
    }
    policy.check_invariants();
    assert_eq!(
        policy.free_units() + policy.metadata_units(),
        policy.capacity_units(),
        "all data space returned after deleting every file"
    );
}

const CAPACITY: u64 = 16 * 1024; // 16 K units = 16 MB at 1 KB units

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn buddy_invariants(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut p: BuddyPolicy = BuddyPolicy::new(CAPACITY, 1 << 12);
        exercise(&mut p, &ops);
    }

    #[test]
    fn restricted_clustered_invariants(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut p: RestrictedPolicy = RestrictedPolicy::new(CAPACITY, &[1, 8, 64, 1024], 1, Some(4096));
        exercise(&mut p, &ops);
    }

    #[test]
    fn restricted_unclustered_grow2_invariants(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut p: RestrictedPolicy = RestrictedPolicy::new(CAPACITY, &[1, 8, 64], 2, None);
        exercise(&mut p, &ops);
    }

    #[test]
    fn extent_first_fit_invariants(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut p: ExtentPolicy = ExtentPolicy::new(CAPACITY, &[4, 32], FitStrategy::FirstFit, 0.1, 1024, 11);
        exercise(&mut p, &ops);
    }

    #[test]
    fn extent_best_fit_invariants(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut p: ExtentPolicy = ExtentPolicy::new(CAPACITY, &[4, 32], FitStrategy::BestFit, 0.1, 1024, 12);
        exercise(&mut p, &ops);
    }

    #[test]
    fn fixed_block_invariants(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut p = FixedPolicy::new(CAPACITY, 4, true, 13);
        exercise(&mut p, &ops);
    }

    #[test]
    fn ffs_invariants(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut p: FfsPolicy = FfsPolicy::new(CAPACITY, 8, 1024);
        exercise(&mut p, &ops);
    }

    #[test]
    fn allocation_never_loses_or_invents_space(
        ops in proptest::collection::vec(op_strategy(), 1..80),
        seed in 0u64..1000,
    ) {
        // Cross-policy conservation: run the same op list on every policy.
        let policies: Vec<Box<dyn Policy>> = vec![
            Box::new(<BuddyPolicy>::new(CAPACITY, 1 << 12)),
            Box::new(<RestrictedPolicy>::new(CAPACITY, &[1, 8, 64], 1, None)),
            Box::new(<ExtentPolicy>::new(CAPACITY, &[8], FitStrategy::FirstFit, 0.1, 1024, seed)),
            Box::new(FixedPolicy::new(CAPACITY, 8, false, seed)),
        ];
        for mut p in policies {
            exercise(p.as_mut(), &ops);
        }
    }
}
