//! Pins an exact end-to-end digest of the simulation engine.
//!
//! One application-performance run and one allocation run per policy
//! family, with every headline number formatted to 12 decimal places and
//! compared as a string. Any change to RNG draw order, event scheduling,
//! allocator decisions, or percentile arithmetic shows up here as a diff —
//! the guard that hot-path refactors (swap-remove file retirement,
//! single-sort percentiles, bitmap free-space backends, the calendar event
//! queue) stay bit-identical.

use readopt::alloc::{ExtentConfig, FitStrategy, PolicyConfig};
use readopt::disk::ArrayConfig;
use readopt::sim::{EventQueueKind, FileTypeConfig, SimConfig, Simulation};

/// The one true extent digest: every (backend, shards, workers) cell of
/// the matrix below must produce exactly this string.
const EXTENT_DIGEST: &str = "extent: ops=2460 bytes=140884992 thr=30.918025107602 \
    p50=67.095000000000 p99=276.038000000000 frag_ops=60000 ext=80.599537037037 \
    int=1.133516286839";

const FFS_DIGEST: &str = "ffs: ops=2711 bytes=156456960 thr=35.426058145046 \
    p50=58.780000000000 p99=215.447000000000 frag_ops=60000 ext=79.497685185185 \
    int=0.158067065598";

const BUDDY_DIGEST: &str = "buddy: ops=2770 bytes=160079872 thr=36.674232332844 \
    p50=52.421000000000 p99=213.894000000000 frag_ops=60000 ext=70.370370370370 \
    int=33.179687500000";

fn extent_policy() -> PolicyConfig {
    PolicyConfig::Extent(ExtentConfig {
        range_means_bytes: vec![8 * 1024, 64 * 1024],
        fit: FitStrategy::FirstFit,
        sigma_frac: 0.1,
    })
}

/// Runs the delete-heavy mixed workload for one policy and formats the
/// digest line.
fn digest(name: &str, policy: PolicyConfig) -> String {
    digest_matrix(name, policy, 1, 0, EventQueueKind::Heap)
}

/// Same digest under an explicit shard/worker configuration.
fn digest_sharded(name: &str, policy: PolicyConfig, shards: usize, shard_workers: usize) -> String {
    digest_matrix(name, policy, shards, shard_workers, EventQueueKind::Heap)
}

/// Same digest under an explicit (shards, workers, queue backend) cell —
/// the engine's absolute invariant is that this string never depends on
/// any of the three.
fn digest_matrix(
    name: &str,
    policy: PolicyConfig,
    shards: usize,
    shard_workers: usize,
    event_queue: EventQueueKind,
) -> String {
    let array = ArrayConfig::scaled(64);
    let t = FileTypeConfig {
        num_files: 32,
        num_users: 8,
        initial_size_bytes: 256 * 1024,
        initial_deviation_bytes: 64 * 1024,
        // Delete-heavy so do_delete (and the retirement bookkeeping behind
        // it) is exercised hard.
        read_pct: 30.0,
        write_pct: 20.0,
        extend_pct: 25.0,
        deallocate_pct: 25.0,
        delete_fraction: 0.8,
        ..FileTypeConfig::default()
    };
    let mut c = SimConfig::new(array, policy, vec![t]);
    c.max_intervals = 4;
    c.max_allocation_ops = 60_000;
    c.shards = shards;
    c.shard_workers = shard_workers;
    c.event_queue = event_queue;
    let mut sim = Simulation::new(&c, 99);
    let app = sim.run_application_test();
    let frag = sim.run_allocation_test();
    format!(
        "{name}: ops={} bytes={} thr={:.12} p50={:.12} p99={:.12} frag_ops={} ext={:.12} int={:.12}",
        app.operations,
        app.bytes_moved,
        app.throughput_pct,
        app.op_latency_p50_ms,
        app.op_latency_p99_ms,
        frag.operations,
        frag.external_pct,
        frag.internal_pct,
    )
}

/// Collapses the continuation-indented digest consts to single-line form.
fn oneline(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[test]
fn extent_digest_is_pinned() {
    assert_eq!(digest("extent", extent_policy()), oneline(EXTENT_DIGEST));
}

#[test]
fn ffs_digest_is_pinned() {
    assert_eq!(digest("ffs", PolicyConfig::ffs_classic()), oneline(FFS_DIGEST));
}

#[test]
fn buddy_digest_is_pinned() {
    assert_eq!(digest("buddy", PolicyConfig::paper_buddy()), oneline(BUDDY_DIGEST));
}

/// The sharded engine's absolute invariant: the exact pinned digest at any
/// shard count, with effects executed on real worker threads. The sweep
/// covers a prime shard count, shards > disks, and shards > users (8 users
/// here), plus several worker counts below and at the shard count.
#[test]
fn ffs_digest_is_shard_invariant() {
    for (shards, workers) in [(2, 2), (4, 2), (4, 4), (7, 3), (16, 4)] {
        assert_eq!(
            digest_sharded("ffs", PolicyConfig::ffs_classic(), shards, workers),
            oneline(FFS_DIGEST),
            "digest diverged at shards={shards} workers={workers}"
        );
    }
}

/// Same invariant for the extent policy (different allocator hot paths),
/// and for the degenerate worker settings that must fall back to the
/// in-line loop (workers 0/1, or more workers than shards — capped).
#[test]
fn extent_digest_is_shard_invariant() {
    for (shards, workers) in [(4, 0), (4, 1), (2, 8), (4, 4), (7, 7)] {
        assert_eq!(
            digest_sharded("extent", extent_policy(), shards, workers),
            oneline(EXTENT_DIGEST),
            "digest diverged at shards={shards} workers={workers}"
        );
    }
}

/// Buddy at 4 shards × 4 workers — the third policy family through the
/// pipelined path.
#[test]
fn buddy_digest_is_shard_invariant() {
    assert_eq!(
        digest_sharded("buddy", PolicyConfig::paper_buddy(), 4, 4),
        oneline(BUDDY_DIGEST)
    );
}

/// The calendar-queue backend's absolute invariant, crossed with the
/// sharded engine's: the exact pinned digest at every (backend, shards)
/// cell — serial, even, prime, shards > disks, and shards > users — with
/// workers capped at 4 so the threaded path runs where it can.
#[test]
fn ffs_digest_is_event_queue_invariant_across_shard_matrix() {
    for kind in [EventQueueKind::Heap, EventQueueKind::Calendar] {
        for shards in [1usize, 2, 4, 7, 16] {
            assert_eq!(
                digest_matrix("ffs", PolicyConfig::ffs_classic(), shards, shards.min(4), kind),
                oneline(FFS_DIGEST),
                "digest diverged at {kind:?} × shards={shards}"
            );
        }
    }
}

/// Calendar legs for the other two policy families: serial and a threaded
/// shard configuration each.
#[test]
fn extent_and_buddy_digests_are_calendar_invariant() {
    let cal = EventQueueKind::Calendar;
    assert_eq!(digest_matrix("extent", extent_policy(), 1, 0, cal), oneline(EXTENT_DIGEST));
    assert_eq!(digest_matrix("extent", extent_policy(), 7, 3, cal), oneline(EXTENT_DIGEST));
    assert_eq!(digest_matrix("buddy", PolicyConfig::paper_buddy(), 1, 0, cal), oneline(BUDDY_DIGEST));
    assert_eq!(digest_matrix("buddy", PolicyConfig::paper_buddy(), 4, 4, cal), oneline(BUDDY_DIGEST));
}
