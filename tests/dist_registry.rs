//! The distributed-sweep registry's contract, in-process: every registered
//! experiment enumerates a deterministic point list, `run_point` payloads
//! are byte-stable (a retried point reproduces the identical frame), and
//! the distributed entry point falls back to in-process threads — with
//! identical results — when no worker can be spawned.

use readopt::experiments::metrics::{PointHist, PointMetrics};
use readopt::experiments::{distreg, table4, ExperimentContext};

fn ctx() -> ExperimentContext {
    let mut ctx = ExperimentContext::fast(64).with_jobs(1);
    ctx.max_intervals = 4;
    ctx
}

#[test]
fn run_point_payloads_match_the_in_process_sweep() {
    let ctx = ctx();
    assert_eq!(distreg::point_count(&ctx, "table4"), Some(15));
    let (t4, _, metrics, hists) = table4::run_profiled(&ctx);

    // table4 enumerates (range count, workload) row-major: index 0 is
    // SC at 1 range, index 4 is TP at 2 ranges, index 14 is TS at 5.
    for (index, expected, label) in [
        (0u64, t4.rows[0].sc, "table4/SC/r1"),
        (4, t4.rows[1].tp, "table4/TP/r2"),
        (14, t4.rows[4].ts, "table4/TS/r5"),
    ] {
        let payload = distreg::run_point(&ctx, "table4", index).expect("point runs");
        let (value, pm, ph): (f64, PointMetrics, PointHist) =
            serde_json::from_str(&payload).expect("payload parses as the job tuple");
        assert_eq!(value, expected, "point {index} must equal the in-process cell");
        assert_eq!(pm.label, label);
        assert_eq!(ph.label, label);
        let i = usize::try_from(index).unwrap();
        assert_eq!(
            serde_json::to_string(&pm).unwrap(),
            serde_json::to_string(&metrics.points[i]).unwrap(),
            "point {index} metrics must be byte-identical to the in-process sidecar"
        );
        assert_eq!(
            serde_json::to_string(&ph).unwrap(),
            serde_json::to_string(&hists.points[i]).unwrap(),
            "point {index} histogram must be byte-identical to the in-process sidecar"
        );
    }
}

#[test]
fn run_point_is_byte_stable_across_attempts() {
    // The retry guarantee: recomputing a point (as the coordinator does
    // after a worker death) yields the identical payload bytes.
    let ctx = ctx();
    let first = distreg::run_point(&ctx, "fig6", 3).unwrap();
    let second = distreg::run_point(&ctx, "fig6", 3).unwrap();
    assert_eq!(first, second);
}

#[test]
fn unknown_experiments_and_indices_fail_cleanly() {
    let ctx = ctx();
    assert!(distreg::run_point(&ctx, "users_1e6", 0).is_err(), "unregistered");
    assert!(distreg::run_point(&ctx, "table4", 15).is_err(), "past the end");
    assert_eq!(distreg::point_count(&ctx, "users_1e6"), None);
}

#[test]
fn unspawnable_workers_fall_back_to_identical_in_process_results() {
    // Point the worker binary at `/bin/false`: every spawn handshake dies
    // at EOF, the coordinator exhausts its respawn budget, and
    // run_jobs_ctx must fall back to the thread runner with the same
    // bytes an undistributed context produces.
    let reference = table4::run_profiled(&ctx());
    std::env::set_var(distreg::WORKER_BIN_ENV, "/bin/false");
    let distributed = table4::run_profiled(&ctx().with_workers(2));
    std::env::remove_var(distreg::WORKER_BIN_ENV);
    assert_eq!(
        serde_json::to_string(&reference.0).unwrap(),
        serde_json::to_string(&distributed.0).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&reference.2).unwrap(),
        serde_json::to_string(&distributed.2).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&reference.3).unwrap(),
        serde_json::to_string(&distributed.3).unwrap()
    );
}
