//! Golden-value regression suite: `--scale 64` snapshots of fig1, fig2 and
//! table4 pinned as JSON under `tests/golden/`. The simulator is
//! deterministic, so any byte of drift in these results is a behavior
//! change — intended changes are re-snapshotted with
//! `REPRO_UPDATE_GOLDEN=1 cargo test --test golden_results`.
//!
//! Failures print every differing JSON path with the golden and current
//! values, so a perturbation shows up as (say) `points[3].app_pct` rather
//! than an opaque string mismatch.

use readopt::experiments::{fig1, fig2, table4, ExperimentContext};
use serde::Serialize;
use serde_json::Value;
use std::path::PathBuf;

fn ctx() -> ExperimentContext {
    let mut ctx = ExperimentContext::fast(64).with_jobs(2);
    ctx.max_intervals = 4;
    ctx
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

fn render(v: &Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "<unrenderable>".into())
}

/// Recursively collects the JSON paths where `golden` and `current`
/// disagree (value mismatches, missing keys, length changes).
fn diff_paths(path: &str, golden: &Value, current: &Value, out: &mut Vec<String>) {
    match (golden, current) {
        (Value::Object(g), Value::Object(c)) => {
            for (k, gv) in g {
                match c.iter().find(|(ck, _)| ck == k) {
                    Some((_, cv)) => diff_paths(&format!("{path}.{k}"), gv, cv, out),
                    None => out.push(format!("{path}.{k}: missing (golden {})", render(gv))),
                }
            }
            for (k, _) in c {
                if !g.iter().any(|(gk, _)| gk == k) {
                    out.push(format!("{path}.{k}: unexpected new field"));
                }
            }
        }
        (Value::Array(g), Value::Array(c)) => {
            if g.len() != c.len() {
                out.push(format!("{path}: length {} -> {}", g.len(), c.len()));
            }
            for (i, (gv, cv)) in g.iter().zip(c).enumerate() {
                diff_paths(&format!("{path}[{i}]"), gv, cv, out);
            }
        }
        _ if golden != current => out.push(format!(
            "{path}: golden {} != current {}",
            render(golden),
            render(current)
        )),
        _ => {}
    }
}

fn check_golden<T: Serialize>(name: &str, result: &T) {
    let current: Value = serde_json::from_str(&serde_json::to_string(result).unwrap()).unwrap();
    let path = golden_path(name);
    if std::env::var_os("REPRO_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let pretty = serde_json::to_string_pretty(&current).unwrap();
        std::fs::write(&path, pretty + "\n").unwrap();
        return;
    }
    let bytes = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\n(regenerate with REPRO_UPDATE_GOLDEN=1 \
             cargo test --test golden_results)",
            path.display()
        )
    });
    let golden: Value = serde_json::from_str(&bytes).unwrap();
    let mut diffs = Vec::new();
    diff_paths(name, &golden, &current, &mut diffs);
    assert!(
        diffs.is_empty(),
        "{name} drifted from tests/golden/{name}.json in {} field(s):\n  {}\n\
         If the change is intended, regenerate with REPRO_UPDATE_GOLDEN=1 \
         cargo test --test golden_results",
        diffs.len(),
        diffs.join("\n  ")
    );
}

#[test]
fn fig1_matches_golden_snapshot() {
    let (result, _, _, _) = fig1::run_profiled(&ctx());
    check_golden("fig1", &result);
}

#[test]
fn fig2_matches_golden_snapshot() {
    let (result, _, _, _) = fig2::run_profiled(&ctx());
    check_golden("fig2", &result);
}

#[test]
fn table4_matches_golden_snapshot() {
    let (result, _, _, _) = table4::run_profiled(&ctx());
    check_golden("table4", &result);
}

#[test]
fn diff_reporting_names_the_exact_field() {
    let golden: Value = serde_json::from_str(r#"{"points": [{"a": 1.5, "b": 2.5}], "n": 3}"#).unwrap();
    let current: Value = serde_json::from_str(r#"{"points": [{"a": 1.5, "b": 9.5}], "n": 3}"#).unwrap();
    let mut diffs = Vec::new();
    diff_paths("fig", &golden, &current, &mut diffs);
    assert_eq!(diffs, vec!["fig.points[0].b: golden 2.5 != current 9.5".to_string()]);
}
