//! Tier-1 gate: the workspace must be simlint-clean.
//!
//! Runs the same pass as `cargo run -p simlint` in-process — workspace
//! discovery, `simlint.toml` scoping, rule engine — and fails the test
//! suite on any finding, so a determinism or robustness regression cannot
//! merge even if `scripts/check.sh` is skipped.

use std::path::Path;

#[test]
fn gate_covers_all_nine_rules() {
    // The clean gate is only as strong as the rule set behind it: pin the
    // shipped rule ids (r7 = dead config, r8 = stale suppressions, r9 =
    // exact float equality) and that every one of them is enabled by
    // default, with r8 demanding justification strings.
    assert_eq!(
        simlint::rules::RULE_IDS,
        ["r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9"]
    );
    let cfg = simlint::LintConfig::default_config();
    for (id, rule) in &cfg.rules {
        assert!(rule.enabled, "rule {id} must be enabled by default");
        if id == "r8" {
            assert!(rule.require_reason, "suppressions must stay justified");
        }
    }
    assert_eq!(cfg.rules.len(), simlint::rules::RULE_IDS.len());
}

#[test]
fn workspace_has_zero_simlint_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = simlint::run_workspace(root).expect("simlint walk must succeed");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}): discovery is broken",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "simlint found {} violation(s):\n{}",
        report.findings.len(),
        simlint::render_human(&report)
    );
}
