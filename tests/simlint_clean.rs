//! Tier-1 gate: the workspace must be simlint-clean.
//!
//! Runs the same pass as `cargo run -p simlint` in-process — workspace
//! discovery, `simlint.toml` scoping, rule engine — and fails the test
//! suite on any finding, so a determinism or robustness regression cannot
//! merge even if `scripts/check.sh` is skipped.

use std::path::Path;

#[test]
fn workspace_has_zero_simlint_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = simlint::run_workspace(root).expect("simlint walk must succeed");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}): discovery is broken",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "simlint found {} violation(s):\n{}",
        report.findings.len(),
        simlint::render_human(&report)
    );
}
