//! Metamorphic tests: physical parameter changes must move simulation
//! outputs in the physically required direction. These catch sign errors
//! and unit mix-ups that absolute assertions can't.

use readopt::alloc::PolicyConfig;
use readopt::disk::{calibrate_max_bandwidth, ArrayConfig, DiskGeometry};
use readopt::experiments::ExperimentContext;
use readopt::sim::Simulation;
use readopt_workloads::WorkloadKind;

/// Faster rotation ⇒ more calibrated bandwidth.
#[test]
fn faster_spindles_calibrate_faster() {
    let base = ArrayConfig::scaled(32);
    let fast = ArrayConfig {
        geometry: DiskGeometry { rotation_ms: 8.33, ..base.geometry },
        ..base
    };
    let bw_base = calibrate_max_bandwidth(&base);
    let bw_fast = calibrate_max_bandwidth(&fast);
    assert!(
        bw_fast > 1.7 * bw_base,
        "halving rotation time should nearly double sustained rate: {bw_base} vs {bw_fast}"
    );
}

/// More spindles ⇒ proportionally more calibrated bandwidth.
#[test]
fn more_disks_calibrate_faster() {
    let four = ArrayConfig { ndisks: 4, ..ArrayConfig::scaled(32) };
    let eight = ArrayConfig { ndisks: 8, ..ArrayConfig::scaled(32) };
    let bw4 = calibrate_max_bandwidth(&four);
    let bw8 = calibrate_max_bandwidth(&eight);
    let ratio = bw8 / bw4;
    assert!((1.8..2.2).contains(&ratio), "8 disks ≈ 2× 4 disks, got {ratio}");
}

/// Costlier seeks ⇒ lower random-access (application) throughput, while the
/// *sequential* test barely notices.
#[test]
fn seek_cost_hurts_random_io_most() {
    let ctx = ExperimentContext::fast(64);
    let mut slow = ctx;
    slow.array.geometry.single_track_seek_ms = 22.0; // 4× the Wren IV
    let wl = WorkloadKind::TransactionProcessing;

    let (app_base, seq_base) = ctx.run_performance(wl, PolicyConfig::paper_restricted());
    let (app_slow, seq_slow) = slow.run_performance(wl, PolicyConfig::paper_restricted());

    let app_drop = app_slow.throughput_mb_s / app_base.throughput_mb_s;
    let seq_drop = seq_slow.throughput_mb_s / seq_base.throughput_mb_s;
    assert!(app_drop < 0.75, "4× seeks must hurt TP random I/O: ratio {app_drop}");
    assert!(
        seq_drop > app_drop,
        "sequential throughput is less seek-bound: seq {seq_drop} vs app {app_drop}"
    );
}

/// Longer think times ⇒ lower application throughput (the disks idle).
#[test]
fn think_time_throttles_throughput() {
    let ctx = ExperimentContext::fast(64);
    let wl = WorkloadKind::Timesharing;
    let policy = PolicyConfig::paper_restricted();

    let base_cfg = ctx.sim_config(wl, policy.clone());
    let mut slow_cfg = ctx.sim_config(wl, policy);
    for t in &mut slow_cfg.file_types {
        t.process_time_ms *= 8.0;
    }
    let app_base = Simulation::new(&base_cfg, 3).run_application_test();
    let app_slow = Simulation::new(&slow_cfg, 3).run_application_test();
    assert!(
        app_slow.throughput_pct < 0.5 * app_base.throughput_pct,
        "8× think time: {} vs {}",
        app_slow.throughput_pct,
        app_base.throughput_pct
    );
}

/// A bigger disk (same mechanics) fits proportionally more data before the
/// allocation test fails, at comparable utilization.
#[test]
fn capacity_scales_allocation_results() {
    let small = ExperimentContext::fast(128);
    let large = ExperimentContext::fast(32);
    let wl = WorkloadKind::Supercomputer;
    let f_small = small.run_allocation(wl, PolicyConfig::paper_buddy());
    let f_large = large.run_allocation(wl, PolicyConfig::paper_buddy());
    assert!((f_small.utilization - f_large.utilization).abs() < 0.15,
        "utilization at failure is scale-free: {} vs {}",
        f_small.utilization, f_large.utilization);
}

/// Removing the workload's writes cannot make the sequential test slower
/// (reads never pay read-modify-write anywhere).
#[test]
fn read_only_workload_is_at_least_as_fast() {
    let ctx = ExperimentContext::fast(64);
    let wl = WorkloadKind::Supercomputer;
    let base_cfg = ctx.sim_config(wl, PolicyConfig::paper_buddy());
    let mut ro_cfg = base_cfg.clone();
    for t in &mut ro_cfg.file_types {
        t.read_pct += t.write_pct;
        t.write_pct = 0.0;
    }
    let mut sim = Simulation::new(&base_cfg, 5);
    let _ = sim.run_application_test();
    let seq_base = sim.run_sequential_test();
    let mut sim = Simulation::new(&ro_cfg, 5);
    let _ = sim.run_application_test();
    let seq_ro = sim.run_sequential_test();
    assert!(
        seq_ro.throughput_pct > 0.9 * seq_base.throughput_pct,
        "read-only: {} vs mixed: {}",
        seq_ro.throughput_pct,
        seq_base.throughput_pct
    );
}
