//! Property tests for the disk-array address mapping and free-space
//! structures — the substrate everything else trusts.

use proptest::prelude::*;
use readopt::alloc::freespace::FreeSpaceMap;
use readopt::alloc::types::Extent;
use readopt::disk::array::striped_runs;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The striped decomposition conserves bytes, keeps every run on a
    /// valid disk, and produces per-disk physically ascending runs.
    #[test]
    fn striped_runs_partition_the_request(
        start in 0u64..10_000_000,
        len in 1u64..5_000_000,
        stripe_kb in 1u64..64,
        ndisks in 1usize..12,
    ) {
        let stripe = stripe_kb * 1024;
        let runs = striped_runs(start, len, stripe, ndisks);
        let total: u64 = runs.iter().map(|r| r.len).sum();
        prop_assert_eq!(total, len, "bytes conserved");
        let mut last_end_per_disk = vec![0u64; ndisks];
        for r in &runs {
            prop_assert!(r.disk < ndisks);
            prop_assert!(r.len > 0);
            prop_assert!(
                r.start_byte >= last_end_per_disk[r.disk],
                "per-disk runs must ascend (merged FCFS order)"
            );
            last_end_per_disk[r.disk] = r.start_byte + r.len;
        }
    }

    /// Striping is a bijection: distinct logical bytes map to distinct
    /// (disk, physical byte) pairs.
    #[test]
    fn striping_is_injective(
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
        stripe_kb in 1u64..33,
        ndisks in 1usize..9,
    ) {
        prop_assume!(a != b);
        let stripe = stripe_kb * 1024;
        let map = |byte: u64| {
            let s = byte / stripe;
            let within = byte % stripe;
            ((s % ndisks as u64) as usize, (s / ndisks as u64) * stripe + within)
        };
        prop_assert_ne!(map(a), map(b));
    }

    /// The free-space map stays coalesced and conserves units through any
    /// mix of first-fit/best-fit allocations and releases.
    #[test]
    fn freespace_round_trip(
        takes in proptest::collection::vec((1u64..200, any::<bool>()), 1..60),
    ) {
        let capacity = 16_384u64;
        let mut m = FreeSpaceMap::with_capacity(capacity);
        let mut held: Vec<Extent> = Vec::new();
        for (len, best) in takes {
            let got = if best { m.allocate_best_fit(len) } else { m.allocate_first_fit(len) };
            if let Some(e) = got {
                prop_assert_eq!(e.len, len);
                held.push(e);
            } else {
                // Failure must mean no run was large enough.
                prop_assert!(m.largest_run() < len);
            }
            m.check_invariants();
            // Occasionally release the oldest allocation.
            if held.len() > 8 {
                let e = held.remove(0);
                m.release(e);
                m.check_invariants();
            }
        }
        let held_total: u64 = held.iter().map(|e| e.len).sum();
        prop_assert_eq!(m.free_units() + held_total, capacity);
        for e in held {
            m.release(e);
        }
        m.check_invariants();
        prop_assert_eq!(m.free_units(), capacity);
        prop_assert_eq!(m.run_count(), 1, "fully coalesced back to one run");
    }

    /// Best-fit never picks a larger run than first-fit's choice would
    /// waste — i.e. best-fit's chosen run is the minimal adequate one.
    #[test]
    fn best_fit_is_minimal(
        holes in proptest::collection::vec(1u64..100, 2..12),
        want in 1u64..60,
    ) {
        // Build a map with the given hole sizes separated by 1-unit gaps.
        let mut m = FreeSpaceMap::new();
        let mut cursor = 0;
        let mut sizes = Vec::new();
        for h in &holes {
            m.release(Extent::new(cursor, *h));
            sizes.push(*h);
            cursor += h + 1;
        }
        let adequate: Vec<u64> = sizes.iter().copied().filter(|&s| s >= want).collect();
        match m.allocate_best_fit(want) {
            Some(_) => {
                // The run it carved from was the smallest adequate one:
                // after carving, no *smaller* adequate run may still be
                // fully intact... simplest check: the minimum adequate size
                // existed.
                prop_assert!(!adequate.is_empty());
            }
            None => prop_assert!(adequate.is_empty()),
        }
    }
}
