//! Regression tests for the experiment runner's determinism guarantee:
//! running a sweep across N worker threads must produce *byte-identical*
//! serialized results to running it sequentially. Every sweep point builds
//! its own simulation from the context seed, so results depend only on the
//! point, never on scheduling — these tests pin that property.

use readopt::experiments::runner::{run_jobs, Job};
use readopt::experiments::{fig1, fig2, fig3, table4, ExperimentContext};
use readopt::sim::Simulation;
use readopt_workloads::WorkloadKind;

fn ctx_with_jobs(jobs: usize) -> ExperimentContext {
    let mut ctx = ExperimentContext::fast(64).with_jobs(jobs);
    ctx.max_intervals = 4;
    ctx
}

#[test]
fn simulation_moves_across_threads() {
    fn assert_send<T: Send>() {}
    // The runner ships whole simulations to worker threads; this is the
    // compile-time proof that stays valid as the engine grows fields.
    assert_send::<Simulation>();
}

#[test]
fn fig1_results_are_bit_identical_at_any_job_count() {
    // A subset of the Figure 1 grid (2 workloads × 2 configs) keeps the
    // test fast; the sweep machinery is identical for the full grid.
    let workloads = [WorkloadKind::Timesharing, WorkloadKind::Supercomputer];
    let configs = [(2usize, 1u64, true), (3, 2, false)];
    let (seq, seq_timings, seq_metrics, seq_hists) =
        fig1::run_sweep(&ctx_with_jobs(1), &workloads, &configs);
    let (par, par_timings, par_metrics, par_hists) =
        fig1::run_sweep(&ctx_with_jobs(4), &workloads, &configs);
    assert_eq!(
        serde_json::to_string(&seq).unwrap(),
        serde_json::to_string(&par).unwrap(),
        "fig1 serialized bytes must not depend on the job count"
    );
    assert_eq!(
        serde_json::to_string(&seq_metrics).unwrap(),
        serde_json::to_string(&par_metrics).unwrap(),
        "fig1 metrics sidecar bytes must not depend on the job count"
    );
    assert_eq!(
        serde_json::to_string(&seq_hists).unwrap(),
        serde_json::to_string(&par_hists).unwrap(),
        "fig1 latency-histogram sidecar bytes must not depend on the job count"
    );
    // Timings differ run to run, but the labels (and their order) must not.
    let labels = |ts: &[readopt::experiments::runner::JobTiming]| {
        ts.iter().map(|t| t.label.clone()).collect::<Vec<_>>()
    };
    assert_eq!(labels(&seq_timings), labels(&par_timings));
    assert_eq!(seq.points.len(), 4);
}

#[test]
fn fig2_results_are_bit_identical_at_any_job_count() {
    // Performance runs are the expensive path (application + sequential
    // tests per point); one workload × two configs suffices.
    let workloads = [WorkloadKind::Timesharing];
    let configs = [(2usize, 1u64, true), (5, 1, true)];
    let (seq, _, seq_metrics, seq_hists) = fig2::run_sweep(&ctx_with_jobs(1), &workloads, &configs);
    let (par, _, par_metrics, par_hists) = fig2::run_sweep(&ctx_with_jobs(4), &workloads, &configs);
    assert_eq!(
        serde_json::to_string(&seq).unwrap(),
        serde_json::to_string(&par).unwrap(),
        "fig2 serialized bytes must not depend on the job count"
    );
    assert_eq!(
        serde_json::to_string(&seq_metrics).unwrap(),
        serde_json::to_string(&par_metrics).unwrap(),
        "fig2 metrics sidecar bytes must not depend on the job count"
    );
    assert_eq!(
        serde_json::to_string(&seq_hists).unwrap(),
        serde_json::to_string(&par_hists).unwrap(),
        "fig2 latency-histogram sidecar bytes must not depend on the job count"
    );
    assert_eq!(seq.points.len(), 2);
    // Each performance point snapshots both tests, in execution order.
    assert_eq!(seq_metrics.points.len(), 2);
    assert_eq!(seq_metrics.points[0].tests.len(), 2);
    assert_eq!(seq_metrics.points[0].tests[0].test, "application");
    assert_eq!(seq_metrics.points[0].tests[1].test, "sequential");
}

#[test]
fn fig3_and_table4_agree_across_job_counts() {
    let (f3_seq, _, f3_seq_m) = fig3::run_profiled(1);
    let (f3_par, _, f3_par_m) = fig3::run_profiled(4);
    assert_eq!(
        serde_json::to_string(&f3_seq).unwrap(),
        serde_json::to_string(&f3_par).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&f3_seq_m).unwrap(),
        serde_json::to_string(&f3_par_m).unwrap()
    );
    let (t4_seq, _, t4_seq_m, t4_seq_h) = table4::run_profiled(&ctx_with_jobs(1));
    let (t4_par, _, t4_par_m, t4_par_h) = table4::run_profiled(&ctx_with_jobs(3));
    assert_eq!(
        serde_json::to_string(&t4_seq).unwrap(),
        serde_json::to_string(&t4_par).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&t4_seq_m).unwrap(),
        serde_json::to_string(&t4_par_m).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&t4_seq_h).unwrap(),
        serde_json::to_string(&t4_par_h).unwrap()
    );
}

#[test]
fn fig2_results_are_bit_identical_at_any_shard_count() {
    // The sharded engine's contract, exercised through the full experiment
    // stack: serialized results AND metrics sidecars are byte-identical at
    // shard counts 1/2/4/7 (7 is prime, so no shard boundary aligns with
    // users or disks), with two effect-worker threads forced on so the
    // pipelined path really runs. Composes with --jobs: the sharded runs
    // also fan sweep points across 2 runner threads.
    let workloads = [WorkloadKind::Timesharing];
    let configs = [(2usize, 1u64, true), (5, 1, true)];
    let (seq, _, seq_metrics, seq_hists) = fig2::run_sweep(&ctx_with_jobs(1), &workloads, &configs);
    let seq_bytes = serde_json::to_string(&seq).unwrap();
    let seq_metrics_bytes = serde_json::to_string(&seq_metrics).unwrap();
    let seq_hists_bytes = serde_json::to_string(&seq_hists).unwrap();
    for shards in [2usize, 4, 7] {
        let ctx = ctx_with_jobs(2).with_shards(shards).with_shard_workers(2);
        let (sharded, _, sharded_metrics, sharded_hists) =
            fig2::run_sweep(&ctx, &workloads, &configs);
        assert_eq!(
            seq_bytes,
            serde_json::to_string(&sharded).unwrap(),
            "fig2 serialized bytes must not depend on the shard count ({shards} shards)"
        );
        assert_eq!(
            seq_metrics_bytes,
            serde_json::to_string(&sharded_metrics).unwrap(),
            "fig2 metrics sidecar bytes must not depend on the shard count ({shards} shards)"
        );
        assert_eq!(
            seq_hists_bytes,
            serde_json::to_string(&sharded_hists).unwrap(),
            "fig2 latency-histogram bytes must not depend on the shard count ({shards} shards)"
        );
    }
}

#[test]
fn fig1_results_are_bit_identical_under_sharding() {
    // Allocation-test sweeps never enter the pipelined loop (no performance
    // phase), but the shard setting still reroutes every event through the
    // sharded queue — fig1 pins that the allocation path is also invariant.
    let workloads = [WorkloadKind::Timesharing];
    let configs = [(3usize, 2u64, false)];
    let (seq, _, seq_metrics, seq_hists) = fig1::run_sweep(&ctx_with_jobs(1), &workloads, &configs);
    let ctx = ctx_with_jobs(1).with_shards(4).with_shard_workers(2);
    let (sharded, _, sharded_metrics, sharded_hists) = fig1::run_sweep(&ctx, &workloads, &configs);
    assert_eq!(
        serde_json::to_string(&seq).unwrap(),
        serde_json::to_string(&sharded).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&seq_metrics).unwrap(),
        serde_json::to_string(&sharded_metrics).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&seq_hists).unwrap(),
        serde_json::to_string(&sharded_hists).unwrap()
    );
}

#[test]
fn fig2_results_are_bit_identical_on_the_calendar_backend() {
    // The calendar queue's contract through the full experiment stack:
    // serialized results AND metrics sidecars are byte-identical to the
    // heap-backed reference, alone and composed with sharding + runner
    // fan-out (the backend must commute with both parallelism axes).
    use readopt::sim::EventQueueKind;
    let workloads = [WorkloadKind::Timesharing];
    let configs = [(2usize, 1u64, true), (5, 1, true)];
    let (seq, _, seq_metrics, seq_hists) = fig2::run_sweep(&ctx_with_jobs(1), &workloads, &configs);
    let seq_bytes = serde_json::to_string(&seq).unwrap();
    let seq_metrics_bytes = serde_json::to_string(&seq_metrics).unwrap();
    let seq_hists_bytes = serde_json::to_string(&seq_hists).unwrap();
    for (jobs, shards, workers) in [(1usize, 1usize, 0usize), (2, 4, 2)] {
        let ctx = ctx_with_jobs(jobs)
            .with_shards(shards)
            .with_shard_workers(workers)
            .with_event_queue(EventQueueKind::Calendar);
        let (cal, _, cal_metrics, cal_hists) = fig2::run_sweep(&ctx, &workloads, &configs);
        assert_eq!(
            seq_bytes,
            serde_json::to_string(&cal).unwrap(),
            "fig2 serialized bytes must not depend on the event-queue backend \
             (jobs={jobs}, shards={shards})"
        );
        assert_eq!(
            seq_metrics_bytes,
            serde_json::to_string(&cal_metrics).unwrap(),
            "fig2 metrics sidecar bytes must not depend on the event-queue backend \
             (jobs={jobs}, shards={shards})"
        );
        assert_eq!(
            seq_hists_bytes,
            serde_json::to_string(&cal_hists).unwrap(),
            "fig2 latency-histogram bytes must not depend on the event-queue backend \
             (jobs={jobs}, shards={shards})"
        );
    }
}

#[test]
fn fig1_results_are_bit_identical_on_the_calendar_backend() {
    // The allocation-test path (no performance phase) through the calendar
    // backend — the counterpart of the sharding leg above.
    use readopt::sim::EventQueueKind;
    let workloads = [WorkloadKind::Timesharing];
    let configs = [(3usize, 2u64, false)];
    let (seq, _, seq_metrics, seq_hists) = fig1::run_sweep(&ctx_with_jobs(1), &workloads, &configs);
    let ctx = ctx_with_jobs(1).with_event_queue(EventQueueKind::Calendar);
    let (cal, _, cal_metrics, cal_hists) = fig1::run_sweep(&ctx, &workloads, &configs);
    assert_eq!(
        serde_json::to_string(&seq).unwrap(),
        serde_json::to_string(&cal).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&seq_metrics).unwrap(),
        serde_json::to_string(&cal_metrics).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&seq_hists).unwrap(),
        serde_json::to_string(&cal_hists).unwrap()
    );
}

#[test]
fn runner_reassembles_in_submission_order_under_contention() {
    // More workers than jobs, jobs finishing out of order: results must
    // still come back in submission order.
    let jobs: Vec<Job<u64>> = (0..24u64)
        .map(|i| {
            Job::new(format!("p/{i}"), move || {
                if i % 3 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                i * 7
            })
        })
        .collect();
    let out = run_jobs(8, jobs);
    assert_eq!(out.results, (0..24u64).map(|i| i * 7).collect::<Vec<_>>());
    assert_eq!(out.timings.len(), 24);
    assert_eq!(out.timings[23].label, "p/23");
}
