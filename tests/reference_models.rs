//! Differential tests of the low-level data structures against naive
//! reference implementations.

use proptest::prelude::*;
use readopt::alloc::filemap::FileMap;
use readopt::alloc::freespace::FreeSpaceMap;
use readopt::alloc::types::Extent;

/// Naive free-space model: one bool per unit.
#[derive(Debug)]
struct NaiveSpace {
    free: Vec<bool>,
}

impl NaiveSpace {
    fn new(capacity: usize) -> Self {
        NaiveSpace { free: vec![true; capacity] }
    }

    fn free_units(&self) -> u64 {
        self.free.iter().filter(|&&b| b).count() as u64
    }

    /// First-fit over the bitmap.
    fn first_fit(&mut self, len: usize) -> Option<u64> {
        let mut run = 0;
        for i in 0..self.free.len() {
            if self.free[i] {
                run += 1;
                if run == len {
                    let start = i + 1 - len;
                    for b in &mut self.free[start..=i] {
                        *b = false;
                    }
                    return Some(start as u64);
                }
            } else {
                run = 0;
            }
        }
        None
    }

    fn release(&mut self, start: u64, len: u64) {
        for i in start..start + len {
            assert!(!self.free[i as usize], "naive double free");
            self.free[i as usize] = true;
        }
    }

    fn largest_run(&self) -> u64 {
        let mut best = 0;
        let mut run = 0;
        for &b in &self.free {
            if b {
                run += 1;
                best = best.max(run);
            } else {
                run = 0;
            }
        }
        best
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// First-fit allocation over the coalescing map returns exactly what a
    /// unit-granular bitmap scan would, through arbitrary alloc/free mixes.
    #[test]
    fn freespace_first_fit_matches_bitmap_scan(
        steps in proptest::collection::vec((1u64..64, any::<bool>()), 1..100),
    ) {
        const CAP: u64 = 2048;
        let mut fast = FreeSpaceMap::with_capacity(CAP);
        let mut naive = NaiveSpace::new(CAP as usize);
        let mut held: Vec<Extent> = Vec::new();
        for (len, do_free) in steps {
            if do_free && !held.is_empty() {
                let e = held.remove(held.len() / 2);
                fast.release(e);
                naive.release(e.start, e.len);
            } else {
                let a = fast.allocate_first_fit(len);
                let b = naive.first_fit(len as usize);
                prop_assert_eq!(a.map(|e| e.start), b, "first-fit position diverged");
                if let Some(e) = a {
                    held.push(e);
                }
            }
            prop_assert_eq!(fast.free_units(), naive.free_units());
            prop_assert_eq!(fast.largest_run(), naive.largest_run());
            fast.check_invariants();
        }
    }

    /// `FileMap::map_range` agrees with a unit-by-unit translation table.
    #[test]
    fn filemap_map_range_matches_unit_table(
        extents in proptest::collection::vec((0u64..10_000, 1u64..50), 1..20),
        offset in 0u64..600,
        len in 1u64..600,
    ) {
        // Make the extents disjoint by spacing them out deterministically.
        let mut m = FileMap::new();
        let mut table: Vec<u64> = Vec::new(); // logical unit -> physical unit
        let mut base = 0;
        for (gap, elen) in extents {
            let start = base + gap + 1; // ≥1 gap so pushes may or may not merge
            m.push(Extent::new(start, elen));
            for k in 0..elen {
                table.push(start + k);
            }
            base = start + elen;
        }
        let runs = m.map_range(offset, len);
        // Reassemble the runs into a flat physical-unit list.
        let mut got: Vec<u64> = Vec::new();
        for r in &runs {
            for k in 0..r.len {
                got.push(r.start + k);
            }
        }
        let end = ((offset + len) as usize).min(table.len());
        let want: Vec<u64> = if (offset as usize) < table.len() {
            table[offset as usize..end].to_vec()
        } else {
            Vec::new()
        };
        prop_assert_eq!(got, want);
        // Runs must be maximal (no two adjacent runs physically contiguous).
        for w in runs.windows(2) {
            prop_assert!(w[0].end() != w[1].start, "non-maximal run split");
        }
    }

    /// pop_back is the exact inverse of the tail of the map.
    #[test]
    fn filemap_pop_back_inverts_push(
        lens in proptest::collection::vec(1u64..40, 1..15),
        take in 1u64..300,
    ) {
        let mut m = FileMap::new();
        let mut base = 0;
        for len in &lens {
            m.push(Extent::new(base, *len));
            base += len + 7; // never adjacent
        }
        let total = m.total_units();
        let freed = m.pop_back(take);
        let freed_units: u64 = freed.iter().map(|e| e.len).sum();
        prop_assert_eq!(freed_units, take.min(total));
        prop_assert_eq!(m.total_units(), total - freed_units);
        // What remains plus what was freed is exactly the original layout.
        let mut all: Vec<Extent> = m.extents().to_vec();
        all.extend(freed.iter().rev().cloned());
        let mut reassembled = FileMap::new();
        for e in all {
            reassembled.push(e);
        }
        prop_assert_eq!(reassembled.total_units(), total);
    }
}
