//! Cross-driver invariants of the observability layer.
//!
//! The metrics sidecar is derived from the same counters the simulator has
//! always kept, so three things must hold everywhere, for every driver:
//!
//! 1. The service-time decomposition is exact: per disk,
//!    `seek_ms + rotational_ms + transfer_ms == busy_ms` (head-switch time
//!    is a subset of transfer, not a fourth phase).
//! 2. Derived gauges are sane: utilization in [0, 1] per disk and combined,
//!    histogram counts equal queued request counts.
//! 3. The layer is an observer, not a participant: metered entry points
//!    return byte-identical results to their unmetered counterparts, and
//!    sidecars are byte-identical at any worker count.

use readopt::experiments::{diag, fig4, fig5, table3, ExperimentContext, ExperimentMetrics};
use readopt_sim::DiskPhaseMetrics;

fn ctx_with_jobs(jobs: usize) -> ExperimentContext {
    let mut ctx = ExperimentContext::fast(64).with_jobs(jobs);
    ctx.max_intervals = 4;
    ctx
}

fn assert_disk_invariants(where_: &str, d: &DiskPhaseMetrics) {
    let phases = d.seek_ms + d.rotational_ms + d.transfer_ms;
    assert!(
        (phases - d.busy_ms).abs() <= 1e-6 * d.busy_ms.max(1.0),
        "{where_}: seek {} + rot {} + xfer {} = {phases} != busy {}",
        d.seek_ms,
        d.rotational_ms,
        d.transfer_ms,
        d.busy_ms
    );
    assert!(
        d.head_switch_ms <= d.transfer_ms + 1e-9,
        "{where_}: head-switch {} exceeds transfer {}",
        d.head_switch_ms,
        d.transfer_ms
    );
    assert!(
        (0.0..=1.0).contains(&d.utilization),
        "{where_}: utilization {}",
        d.utilization
    );
    let hist_total: u64 = {
        let mut t = 0u64;
        for &b in &d.queue_depth_hist {
            t += b;
        }
        t
    };
    assert_eq!(
        hist_total, d.requests,
        "{where_}: queue-depth histogram must observe every request arrival"
    );
    assert!(
        d.queued_requests <= d.requests,
        "{where_}: {} waited but only {} arrived",
        d.queued_requests,
        d.requests
    );
    if d.requests == 0 {
        assert_eq!(d.busy_ms, 0.0, "{where_}: busy time with zero requests");
    }
}

fn assert_metrics_invariants(m: &ExperimentMetrics) {
    let mut snapshots = 0usize;
    for p in &m.points {
        for t in &p.tests {
            snapshots += 1;
            for (i, d) in t.storage.per_disk.iter().enumerate() {
                assert_disk_invariants(&format!("{}/{}/{}/disk{i}", m.experiment, p.label, t.test), d);
            }
            let c = &t.storage.combined;
            assert!(
                (0.0..=1.0).contains(&c.utilization),
                "{}/{}: combined utilization {}",
                m.experiment,
                p.label,
                c.utilization
            );
            // Combined phase times are the sums over the array's disks.
            let per_disk_busy: f64 = {
                let mut s = 0.0;
                for d in &t.storage.per_disk {
                    s += d.busy_ms;
                }
                s
            };
            assert!(
                (per_disk_busy - c.busy_ms).abs() <= 1e-6 * c.busy_ms.max(1.0),
                "{}/{}: combined busy {} vs per-disk sum {per_disk_busy}",
                m.experiment,
                p.label,
                c.busy_ms
            );
        }
    }
    assert!(snapshots > 0, "{}: sidecar carries no snapshots", m.experiment);
}

#[test]
fn decomposition_holds_across_drivers() {
    let ctx = ctx_with_jobs(2);
    let (_, _, m4, _) = fig4::run_profiled(&ctx);
    assert_metrics_invariants(&m4);
    let (_, _, m5, _) = fig5::run_profiled(&ctx);
    assert_metrics_invariants(&m5);
    let (_, _, m3, _) = table3::run_profiled(&ctx);
    assert_metrics_invariants(&m3);
    let (_, _, md, _) = diag::run_profiled(&ctx);
    assert_metrics_invariants(&md);
}

#[test]
fn sidecars_are_byte_identical_across_worker_counts() {
    let (_, _, seq, seq_h) = table3::run_profiled(&ctx_with_jobs(1));
    let (_, _, par, par_h) = table3::run_profiled(&ctx_with_jobs(4));
    assert_eq!(
        serde_json::to_string(&seq).unwrap(),
        serde_json::to_string(&par).unwrap(),
        "table3 sidecar must not depend on the worker count"
    );
    assert_eq!(
        serde_json::to_string(&seq_h).unwrap(),
        serde_json::to_string(&par_h).unwrap(),
        "table3 histogram sidecar must not depend on the worker count"
    );
    let (_, _, seq, seq_h) = diag::run_profiled(&ctx_with_jobs(1));
    let (_, _, par, par_h) = diag::run_profiled(&ctx_with_jobs(4));
    assert_eq!(
        serde_json::to_string(&seq).unwrap(),
        serde_json::to_string(&par).unwrap(),
        "diag sidecar must not depend on the worker count"
    );
    assert_eq!(
        serde_json::to_string(&seq_h).unwrap(),
        serde_json::to_string(&par_h).unwrap(),
        "diag histogram sidecar must not depend on the worker count"
    );
}

#[test]
fn metered_runs_return_unmetered_results() {
    use readopt_alloc::PolicyConfig;
    use readopt_workloads::WorkloadKind;
    let ctx = ctx_with_jobs(1);
    let wl = WorkloadKind::Timesharing;

    let plain = ctx.run_allocation(wl, PolicyConfig::paper_restricted());
    let (metered, tm) = ctx.run_allocation_metered(wl, PolicyConfig::paper_restricted());
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&metered).unwrap(),
        "metering must not perturb the allocation result"
    );
    assert_eq!(tm.test, "allocation");

    let plain = ctx.run_performance(wl, PolicyConfig::paper_restricted());
    let (metered, tms) = ctx.run_performance_metered(wl, PolicyConfig::paper_restricted());
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&metered).unwrap(),
        "metering must not perturb the performance results"
    );
    assert_eq!(tms.len(), 2);
}
