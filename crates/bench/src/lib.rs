//! Shared plumbing for the criterion bench targets.
//!
//! Each bench target corresponds to one table or figure of the paper: it
//! first *prints* the experiment's table (regenerating the paper's rows at
//! the configured scale), then times the experiment with criterion so
//! simulator performance regressions are visible.
//!
//! Scale is 1/128 of the paper's array by default — small enough that the
//! full `cargo bench` suite finishes in minutes — and can be overridden
//! with the `READOPT_BENCH_SCALE` environment variable (`1` = full paper
//! scale).

#![forbid(unsafe_code)]

use criterion::Criterion;
use readopt_core::ExperimentContext;

/// The experiment context benches run under.
pub fn bench_context() -> ExperimentContext {
    let scale = std::env::var("READOPT_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(128);
    let mut ctx = if scale <= 1 {
        ExperimentContext::full()
    } else {
        ExperimentContext::fast(scale)
    };
    // Benches need tight bounds on measured intervals.
    ctx.max_intervals = 6;
    ctx
}

/// A criterion instance tuned for heavyweight end-to-end benches.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_millis(500))
        .configure_from_args()
}
