//! Warn-only perf-regression gate for `scripts/check.sh`.
//!
//! Compares a fresh run against the committed baselines — the runner
//! timing profile (`BENCH_runner.json`) and the allocator microbench
//! snapshot (`BENCH_alloc.json`) — and prints a `WARN:` line for every
//! number that got more than the threshold slower. Wall-clock noise on
//! shared machines makes a hard gate flaky, so this always exits 0; the
//! warnings are for the human reading the check log.
//!
//! Usage:
//!   perf_gate [--threshold-pct 25] \
//!             [--runner BASELINE FRESH] [--alloc BASELINE FRESH]
//!   perf_gate --merge-runner OUT BASE EXTRA
//!
//! The second form merges two runner profiles: EXTRA's experiment entries
//! are appended to BASE's (replacing same-name entries) and the result is
//! written to OUT. check.sh uses it to fold the `--workers 2` leg's
//! `dist/*` timings into the profile the gate and BENCH_runner.json see.

use serde::Value;

/// Numeric view of a JSON value (ints widen to f64 for ratio math).
fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::F64(x) => Some(*x),
        Value::U64(x) => Some(*x as f64),
        Value::I64(x) => Some(*x as f64),
        _ => None,
    }
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

fn as_array(v: &Value) -> Option<&[Value]> {
    match v {
        Value::Array(a) => Some(a),
        _ => None,
    }
}

/// True (and prints a WARN) when `fresh` exceeds `base` by more than
/// `threshold` percent.
fn warn_if_slower(label: &str, base: f64, fresh: f64, threshold: f64, unit: &str) -> bool {
    if base <= 0.0 || !base.is_finite() || !fresh.is_finite() {
        return false;
    }
    let pct = (fresh / base - 1.0) * 100.0;
    if pct > threshold {
        println!("WARN: {label}: {fresh:.3}{unit} vs baseline {base:.3}{unit} (+{pct:.0}%)");
        true
    } else {
        false
    }
}

fn load(path: &str) -> Option<Value> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            println!("note: skipping perf gate for {path}: {e}");
            return None;
        }
    };
    match serde_json::from_str(&text) {
        Ok(v) => Some(v),
        Err(e) => {
            println!("note: skipping perf gate for {path}: parse error: {e}");
            None
        }
    }
}

fn num(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(as_f64)
}

fn text<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    v.get(key).and_then(as_str)
}

/// Runner profile: total wall time plus per-experiment wall times.
fn gate_runner(base: &Value, fresh: &Value, threshold: f64) -> usize {
    let mut warns = 0;
    if let (Some(b), Some(f)) = (num(base, "total_wall_s"), num(fresh, "total_wall_s")) {
        warns += usize::from(warn_if_slower("runner total", b, f, threshold, "s"));
    }
    let base_exps = base.get("experiments").and_then(as_array).unwrap_or(&[]);
    let fresh_exps = fresh.get("experiments").and_then(as_array).unwrap_or(&[]);
    for be in base_exps {
        let Some(name) = text(be, "experiment") else { continue };
        let fe = fresh_exps.iter().find(|f| text(f, "experiment") == Some(name));
        if let Some(fe) = fe {
            if let (Some(b), Some(f)) = (num(be, "wall_s"), num(fe, "wall_s")) {
                warns +=
                    usize::from(warn_if_slower(&format!("runner {name}"), b, f, threshold, "s"));
            }
            // Two families gate per point, matched by label: users_1e6
            // (heap vs calendar walls at each user-count rung are the
            // payload) and dist/* (per-point walls include the frame
            // round-trip, so protocol overhead regressions surface here).
            // Baselines predating a family contribute nothing.
            if name == "users_1e6" || name.starts_with("dist/") {
                warns += gate_points(be, fe, threshold);
            }
        }
    }
    warns
}

/// Per-sweep-point wall times of one experiment, matched by point label.
fn gate_points(base_exp: &Value, fresh_exp: &Value, threshold: f64) -> usize {
    let mut warns = 0;
    let base_points = base_exp.get("points").and_then(as_array).unwrap_or(&[]);
    let fresh_points = fresh_exp.get("points").and_then(as_array).unwrap_or(&[]);
    for bp in base_points {
        let Some(label) = text(bp, "label") else { continue };
        let fp = fresh_points.iter().find(|p| text(p, "label") == Some(label));
        if let Some(fp) = fp {
            if let (Some(b), Some(f)) = (num(bp, "wall_ms"), num(fp, "wall_ms")) {
                warns +=
                    usize::from(warn_if_slower(&format!("runner {label}"), b, f, threshold, "ms"));
            }
        }
    }
    warns
}

/// Allocator microbench: per-(policy, utilization) bitmap ns/op — the
/// shipped backend is what must not quietly regress — plus the
/// high-fragmentation phase's indexed ns/op. Baselines predating a row
/// family simply contribute nothing (the key lookups come up empty).
fn gate_alloc(base: &Value, fresh: &Value, threshold: f64) -> usize {
    let mut warns = 0;
    for (family, key, label) in [
        ("rows", "bitmap_ns_per_op", "alloc"),
        ("frag_rows", "indexed_ns_per_op", "alloc frag"),
    ] {
        let base_rows = base.get(family).and_then(as_array).unwrap_or(&[]);
        let fresh_rows = fresh.get(family).and_then(as_array).unwrap_or(&[]);
        for br in base_rows {
            let (Some(policy), Some(util)) = (text(br, "policy"), num(br, "util_pct")) else {
                continue;
            };
            let fr = fresh_rows
                .iter()
                .find(|f| text(f, "policy") == Some(policy) && num(f, "util_pct") == Some(util));
            if let Some(fr) = fr {
                if let (Some(b), Some(f)) = (num(br, key), num(fr, key)) {
                    warns += usize::from(warn_if_slower(
                        &format!("{label} {policy}@{util}%"),
                        b,
                        f,
                        threshold,
                        "ns/op",
                    ));
                }
            }
        }
    }
    warns
}

/// `--merge-runner OUT BASE EXTRA`: BASE's profile with EXTRA's experiment
/// entries appended (same-name entries replaced), written to OUT. Totals
/// and every other top-level field stay BASE's: the merged file is BASE's
/// smoke run plus the extra leg's per-experiment rows.
fn merge_runner(out: &str, base: &str, extra: &str) {
    let (Some(mut merged), Some(extra_v)) = (load(base), load(extra)) else {
        eprintln!("merge-runner: missing input profile");
        std::process::exit(2);
    };
    let extra_exps = extra_v.get("experiments").and_then(as_array).unwrap_or(&[]).to_vec();
    let Value::Object(pairs) = &mut merged else {
        eprintln!("merge-runner: {base} is not a JSON object");
        std::process::exit(2);
    };
    let Some((_, Value::Array(exps))) = pairs.iter_mut().find(|(k, _)| k == "experiments") else {
        eprintln!("merge-runner: {base} has no experiments array");
        std::process::exit(2);
    };
    let mut added = 0usize;
    for ee in extra_exps {
        if let Some(name) = text(&ee, "experiment").map(str::to_string) {
            exps.retain(|be| text(be, "experiment") != Some(name.as_str()));
        }
        exps.push(ee);
        added += 1;
    }
    let rendered = match serde_json::to_string_pretty(&merged) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("merge-runner: render failed: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = std::fs::write(out, rendered + "\n") {
        eprintln!("merge-runner: write {out}: {e}");
        std::process::exit(2);
    }
    println!("   merged {added} experiment entries from {extra} into {out}");
}

fn main() {
    let mut threshold = 25.0;
    let mut runner: Option<(String, String)> = None;
    let mut alloc: Option<(String, String)> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut pair = || {
            let b = args.next();
            let f = args.next();
            b.zip(f)
        };
        match a.as_str() {
            "--threshold-pct" => {
                threshold = args.next().and_then(|s| s.parse().ok()).unwrap_or(threshold);
            }
            "--runner" => runner = pair(),
            "--alloc" => alloc = pair(),
            "--merge-runner" => {
                let (Some(out), Some(base), Some(extra)) = (args.next(), args.next(), args.next())
                else {
                    eprintln!("usage: perf_gate --merge-runner OUT BASE EXTRA");
                    std::process::exit(2);
                };
                merge_runner(&out, &base, &extra);
                return;
            }
            other => {
                eprintln!(
                    "unknown option {other} \
                     (usage: perf_gate [--threshold-pct N] [--runner BASE FRESH] \
                     [--alloc BASE FRESH] [--merge-runner OUT BASE EXTRA])"
                );
                std::process::exit(2);
            }
        }
    }

    let mut warns = 0;
    if let Some((base, fresh)) = runner {
        if let (Some(b), Some(f)) = (load(&base), load(&fresh)) {
            warns += gate_runner(&b, &f, threshold);
        }
    }
    if let Some((base, fresh)) = alloc {
        if let (Some(b), Some(f)) = (load(&base), load(&fresh)) {
            warns += gate_alloc(&b, &f, threshold);
        }
    }
    if warns == 0 {
        println!("   perf gate: no regressions beyond {threshold}% (warn-only)");
    } else {
        println!("   perf gate: {warns} warning(s) — informational, not fatal");
    }
}
