//! Allocator microbenchmarks: bitmap-backed free-space structures vs their
//! `BTreeSet`/`BTreeMap` reference backends.
//!
//! For each policy family and each steady-state utilization level the
//! harness fills a disk to the target, then times an identical churn
//! stream (extend / truncate / delete+create, identical RNG seeds, so both
//! backends make byte-identical decisions — see
//! `crates/alloc/tests/bitmap_equiv.rs`) against each backend. Median
//! ns/op over several repetitions goes to stdout as a table and, with
//! `--json PATH`, into a `BENCH_alloc.json`-shaped snapshot that
//! `scripts/check.sh` uses as its perf-regression baseline.
//!
//! Wall-clock here is measurement, not simulation: the bench crate is the
//! one place the workspace reads real time (simlint r2 exemption).

use readopt_alloc::blockset::{BTreeBlockSet, BitmapBlockSet};
use readopt_alloc::freespace::{BTreeFreeSpaceMap, FreeSpaceMap};
use readopt_alloc::{
    BuddyPolicy, ExtentPolicy, FfsPolicy, FileHints, FileId, FitStrategy, Policy,
    RestrictedPolicy,
};
use readopt_sim::SimRng;
use serde::Serialize;
use std::time::Instant;

/// Unit capacity of the benchmark disk. Large enough that the reference
/// backends' ordered sets hold tens of thousands of entries at low
/// utilization.
const CAPACITY: u64 = 1 << 18;
/// Churn operations timed per repetition.
const CHURN_OPS: u64 = 40_000;
/// Repetitions per (policy, utilization, backend); the median is reported.
const REPS: usize = 5;
/// Ops timed per repetition in the high-fragmentation phase. The op mix is
/// all tail-sized, so every operation hits the ffs fragment paths; fewer
/// ops than the main churn keep `scripts/check.sh` fast.
const FRAG_OPS: u64 = 6_000;
/// Utilization of the high-fragmentation phase: near-full, where the
/// fragmented-block population (and thus the linear scan's work) peaks.
const FRAG_UTIL: f64 = 0.95;

/// One (policy, utilization) comparison.
#[derive(Debug, Serialize)]
struct BenchRow {
    policy: String,
    util_pct: u32,
    bitmap_ns_per_op: u64,
    btree_ns_per_op: u64,
    /// btree / bitmap — above 1.0 means the bitmap backend is faster.
    speedup: f64,
}

/// One high-fragmentation comparison: the ffs fragment path with the
/// run-length `FragIndex` vs the pre-index linear `frag_blocks` scan
/// (identical seeds, identical decisions — see
/// `crates/alloc/tests/frag_equiv.rs`).
#[derive(Debug, Serialize)]
struct FragRow {
    policy: String,
    util_pct: u32,
    indexed_ns_per_op: u64,
    linear_ns_per_op: u64,
    /// linear / indexed — above 1.0 means the index is faster.
    speedup: f64,
}

/// The `BENCH_alloc.json` snapshot.
#[derive(Debug, Serialize)]
struct BenchReport {
    capacity_units: u64,
    churn_ops: u64,
    reps: usize,
    rows: Vec<BenchRow>,
    frag_ops: u64,
    frag_rows: Vec<FragRow>,
}

/// Backend selector for the policy factories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    Bitmap,
    BTree,
}

/// Builds a fresh policy of the named family over the chosen backend.
fn build(policy: &str, backend: Backend) -> Box<dyn Policy> {
    match (policy, backend) {
        ("ffs", Backend::Bitmap) => {
            let p: FfsPolicy<BitmapBlockSet> = FfsPolicy::new(CAPACITY, 8, 1 << 15);
            Box::new(p)
        }
        ("ffs", Backend::BTree) => {
            let p: FfsPolicy<BTreeBlockSet> = FfsPolicy::new(CAPACITY, 8, 1 << 15);
            Box::new(p)
        }
        ("restricted", Backend::Bitmap) => {
            let p: RestrictedPolicy<BitmapBlockSet> =
                RestrictedPolicy::new(CAPACITY, &[1, 4, 16, 64], 2, None);
            Box::new(p)
        }
        ("restricted", Backend::BTree) => {
            let p: RestrictedPolicy<BTreeBlockSet> =
                RestrictedPolicy::new(CAPACITY, &[1, 4, 16, 64], 2, None);
            Box::new(p)
        }
        ("buddy", Backend::Bitmap) => {
            let p: BuddyPolicy<BitmapBlockSet> = BuddyPolicy::new(CAPACITY, 256);
            Box::new(p)
        }
        ("buddy", Backend::BTree) => {
            let p: BuddyPolicy<BTreeBlockSet> = BuddyPolicy::new(CAPACITY, 256);
            Box::new(p)
        }
        ("extent", Backend::Bitmap) => {
            let p: ExtentPolicy<FreeSpaceMap> =
                ExtentPolicy::new(CAPACITY, &[8, 64], FitStrategy::FirstFit, 0.1, 1024, 11);
            Box::new(p)
        }
        ("extent", Backend::BTree) => {
            let p: ExtentPolicy<BTreeFreeSpaceMap> =
                ExtentPolicy::new(CAPACITY, &[8, 64], FitStrategy::FirstFit, 0.1, 1024, 11);
            Box::new(p)
        }
        _ => unreachable!("unknown policy family {policy}"),
    }
}

fn utilization(p: &dyn Policy) -> f64 {
    1.0 - p.free_units() as f64 / p.capacity_units() as f64
}

/// Fills the disk to `target` utilization: 512 files grown round-robin in
/// small chunks, mimicking the simulator's initialization phase.
fn fill(p: &mut dyn Policy, rng: &mut SimRng, target: f64) -> Vec<FileId> {
    let mut files = Vec::new();
    for _ in 0..512 {
        let hints = FileHints { mean_extent_bytes: 32 * 1024 };
        if let Ok(id) = p.create(&hints) {
            files.push(id);
        }
    }
    let mut stalled = 0;
    while utilization(p) < target && stalled < files.len() {
        let f = files[rng.index(files.len())];
        let units = rng.uniform_u64(4, 32);
        if p.extend(f, units).is_ok() {
            stalled = 0;
        } else {
            stalled += 1;
        }
    }
    files
}

/// Runs `CHURN_OPS` mixed operations, nudging utilization back toward
/// `target` whenever drift exceeds three points. Returns ns/op.
fn churn(p: &mut dyn Policy, files: &mut Vec<FileId>, rng: &mut SimRng, target: f64) -> u64 {
    let start = Instant::now();
    for _ in 0..CHURN_OPS {
        let util = utilization(p);
        let roll = rng.uniform_u64(0, 99);
        // Drift control keeps the structures at the utilization under test.
        let op = if util > target + 0.03 {
            60 + roll % 40
        } else if util < target - 0.03 {
            roll % 40
        } else {
            roll
        };
        match op {
            // 40 %: extend a random file.
            0..=39 => {
                if let Some(&f) = files.get(rng.index(files.len().max(1)) % files.len().max(1)) {
                    let units = rng.uniform_u64(1, 64);
                    let _ = p.extend(f, units);
                }
            }
            // 30 %: truncate a random file.
            40..=69 => {
                if !files.is_empty() {
                    let f = files[rng.index(files.len())];
                    let units = rng.uniform_u64(1, 96);
                    let _ = p.truncate(f, units);
                }
            }
            // 30 %: delete and immediately re-create (stationary
            // population, like the simulator's §3 create op).
            _ => {
                if !files.is_empty() {
                    let i = rng.index(files.len());
                    let _ = p.delete(files[i]);
                    let hints = FileHints { mean_extent_bytes: 32 * 1024 };
                    match p.create(&hints) {
                        Ok(id) => files[i] = id,
                        Err(_) => {
                            files.swap_remove(i);
                        }
                    }
                }
            }
        }
    }
    let elapsed = start.elapsed().as_nanos();
    u64::try_from(elapsed / u128::from(CHURN_OPS)).unwrap_or(u64::MAX)
}

/// Median of a small sample (ties toward the lower middle).
fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Times one (policy, utilization, backend) cell: median ns/op over
/// `REPS` fresh fill+churn repetitions, all seeded identically.
fn measure(policy: &str, backend: Backend, target: f64) -> u64 {
    let mut samples = Vec::with_capacity(REPS);
    for rep in 0..REPS {
        let mut p = build(policy, backend);
        let mut rng = SimRng::new(1000 + rep as u64);
        let mut files = fill(p.as_mut(), &mut rng, target);
        samples.push(churn(p.as_mut(), &mut files, &mut rng, target));
    }
    median(samples)
}

/// Times the ffs fragment path under heavy fragmentation: the disk is
/// packed to `FRAG_UTIL` with tail-only (1..7-fragment) files, then a
/// tail-sized op mix churns the fragment maps. Both strategies replay the
/// same seeds and make identical decisions; only the lookup differs.
fn measure_frag(linear: bool) -> u64 {
    let mut samples = Vec::with_capacity(REPS);
    for rep in 0..REPS {
        let mut p: FfsPolicy<BitmapBlockSet> = FfsPolicy::new(CAPACITY, 8, 1 << 15);
        p.set_linear_scan(linear);
        let mut rng = SimRng::new(2000 + rep as u64);
        // Fragment-heavy fill: tiny files only, so reaching the target
        // utilization leaves thousands of fragmented blocks per group.
        let mut files: Vec<FileId> = Vec::new();
        let mut stalled = 0;
        while utilization(&p) < FRAG_UTIL && stalled < 64 {
            let Ok(id) = p.create(&FileHints::default()) else { break };
            if p.extend(id, rng.uniform_u64(1, 7)).is_ok() {
                stalled = 0;
                files.push(id);
            } else {
                let _ = p.delete(id);
                stalled += 1;
            }
        }
        let target = FRAG_UTIL;
        let start = Instant::now();
        for _ in 0..FRAG_OPS {
            let util = utilization(&p);
            let roll = rng.uniform_u64(0, 99);
            // The same drift control as the main churn, with every
            // operation tail-sized so it lands on alloc_frags/free_frags.
            let op = if util > target + 0.02 {
                45 + roll % 55
            } else if util < target - 0.02 {
                roll % 45
            } else {
                roll
            };
            match op {
                // 45 %: grow a file's fragment tail.
                0..=44 => {
                    if !files.is_empty() {
                        let f = files[rng.index(files.len())];
                        let _ = p.extend(f, rng.uniform_u64(1, 7));
                    }
                }
                // 30 %: shrink a tail.
                45..=74 => {
                    if !files.is_empty() {
                        let f = files[rng.index(files.len())];
                        let _ = p.truncate(f, rng.uniform_u64(1, 7));
                    }
                }
                // 25 %: delete and re-create a tiny file.
                _ => {
                    if !files.is_empty() {
                        let i = rng.index(files.len());
                        let _ = p.delete(files[i]);
                        match p.create(&FileHints::default()) {
                            Ok(id) => {
                                files[i] = id;
                                let _ = p.extend(id, rng.uniform_u64(1, 7));
                            }
                            Err(_) => {
                                files.swap_remove(i);
                            }
                        }
                    }
                }
            }
        }
        let elapsed = start.elapsed().as_nanos();
        samples.push(u64::try_from(elapsed / u128::from(FRAG_OPS)).unwrap_or(u64::MAX));
    }
    median(samples)
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = args.next(),
            other => {
                eprintln!("unknown option {other} (usage: alloc_bench [--json PATH])");
                std::process::exit(2);
            }
        }
    }

    let mut rows = Vec::new();
    println!(
        "{:<12} {:>5} {:>14} {:>14} {:>9}",
        "policy", "util", "bitmap ns/op", "btree ns/op", "speedup"
    );
    for policy in ["ffs", "restricted", "buddy", "extent"] {
        for util_pct in [50u32, 80, 95] {
            let target = f64::from(util_pct) / 100.0;
            let bitmap = measure(policy, Backend::Bitmap, target);
            let btree = measure(policy, Backend::BTree, target);
            let speedup = btree as f64 / bitmap.max(1) as f64;
            println!(
                "{policy:<12} {util_pct:>4}% {bitmap:>14} {btree:>14} {speedup:>8.2}x"
            );
            rows.push(BenchRow {
                policy: policy.to_string(),
                util_pct,
                bitmap_ns_per_op: bitmap,
                btree_ns_per_op: btree,
                speedup,
            });
        }
    }

    // High-fragmentation phase: FragIndex vs the pre-index linear scan on
    // the ffs fragment path, identical seeds and identical decisions.
    let indexed = measure_frag(false);
    let linear = measure_frag(true);
    let frag_speedup = linear as f64 / indexed.max(1) as f64;
    println!(
        "{:<12} {:>4}% {:>14} {:>14} {:>8.2}x   (indexed vs linear frag scan)",
        "ffs-frag", 95, indexed, linear, frag_speedup
    );
    let frag_rows = vec![FragRow {
        policy: "ffs-frag".to_string(),
        util_pct: 95,
        indexed_ns_per_op: indexed,
        linear_ns_per_op: linear,
        speedup: frag_speedup,
    }];

    let report = BenchReport {
        capacity_units: CAPACITY,
        churn_ops: CHURN_OPS,
        reps: REPS,
        rows,
        frag_ops: FRAG_OPS,
        frag_rows,
    };
    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
        std::fs::write(&path, json + "\n").expect("write bench report");
        eprintln!("wrote {path}");
    }
}
