//! Figure 2: restricted-buddy application/sequential performance sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use readopt_alloc::{PolicyConfig, RestrictedConfig};
use readopt_bench::bench_context;
use readopt_core::fig2;
use readopt_workloads::WorkloadKind;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = bench_context();
    println!("{}", fig2::run(&ctx));
    let mut group = c.benchmark_group("fig2_restricted_perf");
    for wl in WorkloadKind::all() {
        let policy = PolicyConfig::Restricted(RestrictedConfig::sweep_point(5, 1, true));
        group.bench_function(wl.short_name(), |b| {
            b.iter(|| black_box(ctx.run_performance(wl, policy.clone())))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = readopt_bench::criterion();
    targets = bench
}
criterion_main!(benches);
