//! Figure 5: extent-based application/sequential performance sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use readopt_alloc::FitStrategy;
use readopt_bench::bench_context;
use readopt_core::fig5;
use readopt_workloads::WorkloadKind;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = bench_context();
    println!("{}", fig5::run(&ctx));
    let mut group = c.benchmark_group("fig5_extent_perf");
    for wl in WorkloadKind::all() {
        let policy = ctx.extent_policy(wl, 3, FitStrategy::FirstFit);
        group.bench_function(wl.short_name(), |b| {
            b.iter(|| black_box(ctx.run_performance(wl, policy.clone())))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = readopt_bench::criterion();
    targets = bench
}
criterion_main!(benches);
