//! Table 1 infrastructure: maximum-bandwidth calibration across the four
//! §2.1 disk configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use readopt_bench::bench_context;
use readopt_core::table1;
use readopt_disk::{calibrate_max_bandwidth, ArrayConfig, ArrayLayout};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = bench_context();
    println!("{}", table1::run(&ctx));
    let mut group = c.benchmark_group("calibrate");
    for layout in [
        ArrayLayout::Striped,
        ArrayLayout::Mirrored,
        ArrayLayout::Raid5,
        ArrayLayout::ParityStriped,
    ] {
        let cfg = ArrayConfig { layout, ..ctx.array };
        group.bench_function(format!("{layout:?}"), |b| {
            b.iter(|| black_box(calibrate_max_bandwidth(black_box(&cfg))))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = readopt_bench::criterion();
    targets = bench
}
criterion_main!(benches);
