//! Micro-benchmarks of the `readopt-fs` facade: per-operation simulator
//! overhead (not simulated time — real wall time per call).

use criterion::{criterion_group, criterion_main, Criterion};
use readopt_alloc::PolicyConfig;
use readopt_disk::ArrayConfig;
use readopt_fs::{CacheConfig, FileSystem, FsConfig};
use std::hint::black_box;

fn fresh(cache: bool) -> FileSystem {
    FileSystem::format(FsConfig {
        array: ArrayConfig::scaled(64),
        policy: PolicyConfig::paper_restricted(),
        cache: cache.then(CacheConfig::default),
        seed: 17,
    })
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fs_ops");

    group.bench_function("create_write_unlink_8k", |b| {
        let mut fs = fresh(false);
        let mut i = 0u64;
        b.iter(|| {
            let path = format!("/f{i}");
            i += 1;
            let fd = fs.create(&path).unwrap();
            fs.write(fd, 8 * 1024).unwrap();
            fs.close(fd).unwrap();
            fs.unlink(&path).unwrap();
        });
    });

    group.bench_function("sequential_write_64k", |b| {
        let mut fs = fresh(false);
        let fd = fs.create("/stream").unwrap();
        b.iter(|| {
            black_box(fs.write(fd, 64 * 1024).unwrap());
            // Keep the file from consuming the disk.
            if fs.stat("/stream").unwrap().size_bytes > 16 * 1024 * 1024 {
                fs.truncate("/stream", 0).unwrap();
                fs.seek(fd, 0).unwrap();
            }
        });
    });

    group.bench_function("random_pread_8k", |b| {
        let mut fs = fresh(false);
        let fd = fs.create("/table").unwrap();
        fs.write(fd, 8 * 1024 * 1024).unwrap();
        let mut pos = 0u64;
        b.iter(|| {
            pos = (pos.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407))
                % (8 * 1024 * 1024 - 8192);
            black_box(fs.pread(fd, pos / 8192 * 8192, 8192).unwrap());
        });
    });

    group.bench_function("cached_pread_8k", |b| {
        let mut fs = fresh(true);
        let fd = fs.create("/hot").unwrap();
        fs.write(fd, 1024 * 1024).unwrap();
        let mut pos = 0u64;
        b.iter(|| {
            pos = (pos + 8192) % (1024 * 1024 - 8192);
            black_box(fs.pread(fd, pos, 8192).unwrap());
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = readopt_bench::criterion();
    targets = bench
}
criterion_main!(benches);
