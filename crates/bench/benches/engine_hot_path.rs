//! Engine hot-path microbenchmarks: the per-operation extent-map transfer
//! path (whose scratch-buffer reuse removed a Vec allocation per simulated
//! operation) and the first-fit allocator's early-exit on oversized
//! requests.

use criterion::{criterion_group, criterion_main, Criterion};
use readopt_alloc::freespace::FreeSpaceMap;
use readopt_alloc::{Extent, FileMap, PolicyConfig};
use readopt_bench::bench_context;
use readopt_workloads::WorkloadKind;
use std::hint::black_box;

fn bench_map_range(c: &mut Criterion) {
    // A deliberately fragmented 256-extent map, queried across extent
    // boundaries the way `Simulation::transfer` does per operation.
    let mut map = FileMap::new();
    for i in 0..256u64 {
        map.push(Extent::new(i * 37, 16));
    }
    let total = map.total_units();
    let mut group = c.benchmark_group("engine_hot_path");
    group.bench_function("map_range/alloc_per_call", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            let mut off = 0;
            while off < total {
                sum += map.map_range(off, 40).iter().map(|e| e.len).sum::<u64>();
                off += 40;
            }
            black_box(sum)
        })
    });
    group.bench_function("map_range/reused_scratch", |b| {
        let mut scratch = Vec::new();
        b.iter(|| {
            let mut sum = 0u64;
            let mut off = 0;
            while off < total {
                map.map_range_into(off, 40, &mut scratch);
                sum += scratch.iter().map(|e| e.len).sum::<u64>();
                off += 40;
            }
            black_box(sum)
        })
    });
    group.finish();
}

fn bench_first_fit_early_exit(c: &mut Criterion) {
    // A heavily fragmented free map: many small runs, nothing large. The
    // early-exit answers oversized requests from the by_len index instead
    // of scanning every run.
    let mut fragmented = FreeSpaceMap::new();
    for i in 0..4096u64 {
        fragmented.release(Extent::new(i * 8, 4));
    }
    let mut group = c.benchmark_group("first_fit");
    group.bench_function("oversized_request_misses", |b| {
        b.iter(|| {
            let mut m = fragmented.clone();
            for _ in 0..64 {
                black_box(m.allocate_first_fit(64));
            }
        })
    });
    group.bench_function("satisfiable_requests", |b| {
        b.iter(|| {
            let mut m = fragmented.clone();
            for _ in 0..64 {
                black_box(m.allocate_first_fit(4));
            }
        })
    });
    group.finish();
}

fn bench_application_slice(c: &mut Criterion) {
    // End-to-end guard: a short TS application run exercises transfer()'s
    // scratch path thousands of times.
    let ctx = bench_context();
    let mut group = c.benchmark_group("engine_hot_path");
    group.bench_function("ts_application_run", |b| {
        b.iter(|| {
            black_box(
                ctx.run_performance(WorkloadKind::Timesharing, PolicyConfig::paper_restricted()),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = readopt_bench::criterion();
    targets = bench_map_range, bench_first_fit_early_exit, bench_application_slice
}
criterion_main!(benches);
