//! Table 4: average number of extents per file across the extent-range
//! sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use readopt_bench::bench_context;
use readopt_core::table4;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = bench_context();
    println!("{}", table4::run(&ctx));
    c.bench_function("table4_extents_per_file", |b| {
        b.iter(|| black_box(table4::run(black_box(&ctx))))
    });
}

criterion_group! {
    name = benches;
    config = readopt_bench::criterion();
    targets = bench
}
criterion_main!(benches);
