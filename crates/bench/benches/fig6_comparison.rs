//! Figure 6: the four-policy comparative performance grid.

use criterion::{criterion_group, criterion_main, Criterion};
use readopt_bench::bench_context;
use readopt_core::fig6;
use readopt_workloads::WorkloadKind;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = bench_context();
    println!("{}", fig6::run(&ctx));
    let mut group = c.benchmark_group("fig6_comparison");
    for wl in WorkloadKind::all() {
        for (name, policy) in fig6::policies_for(&ctx, wl) {
            group.bench_function(format!("{}/{name}", wl.short_name()), |b| {
                b.iter(|| black_box(ctx.run_performance(wl, policy.clone())))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = readopt_bench::criterion();
    targets = bench
}
criterion_main!(benches);
