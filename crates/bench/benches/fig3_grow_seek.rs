//! Figure 3: the grow-factor / contiguity interaction trace.

use criterion::{criterion_group, criterion_main, Criterion};
use readopt_core::fig3;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", fig3::run());
    c.bench_function("fig3_grow_seek", |b| b.iter(|| black_box(fig3::run())));
}

criterion_group! {
    name = benches;
    config = readopt_bench::criterion();
    targets = bench
}
criterion_main!(benches);
