//! Table 3: the full §3 suite for buddy allocation on each workload.

use criterion::{criterion_group, criterion_main, Criterion};
use readopt_alloc::PolicyConfig;
use readopt_bench::bench_context;
use readopt_core::table3;
use readopt_workloads::WorkloadKind;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = bench_context();
    println!("{}", table3::run(&ctx));
    let mut group = c.benchmark_group("table3_buddy");
    for wl in WorkloadKind::all() {
        group.bench_function(format!("allocation/{}", wl.short_name()), |b| {
            b.iter(|| black_box(ctx.run_allocation(wl, PolicyConfig::paper_buddy())))
        });
        group.bench_function(format!("performance/{}", wl.short_name()), |b| {
            b.iter(|| black_box(ctx.run_performance(wl, PolicyConfig::paper_buddy())))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = readopt_bench::criterion();
    targets = bench
}
criterion_main!(benches);
