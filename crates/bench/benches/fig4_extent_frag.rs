//! Figure 4: extent-based fragmentation sweep (allocation tests).

use criterion::{criterion_group, criterion_main, Criterion};
use readopt_alloc::FitStrategy;
use readopt_bench::bench_context;
use readopt_core::fig4;
use readopt_workloads::WorkloadKind;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = bench_context();
    println!("{}", fig4::run(&ctx));
    let mut group = c.benchmark_group("fig4_extent_frag");
    for wl in WorkloadKind::all() {
        for fit in [FitStrategy::FirstFit, FitStrategy::BestFit] {
            let policy = ctx.extent_policy(wl, 3, fit);
            group.bench_function(format!("{}/{fit:?}", wl.short_name()), |b| {
                b.iter(|| black_box(ctx.run_allocation(wl, policy.clone())))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = readopt_bench::criterion();
    targets = bench
}
criterion_main!(benches);
