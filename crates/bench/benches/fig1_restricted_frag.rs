//! Figure 1: restricted-buddy fragmentation sweep (allocation tests).

use criterion::{criterion_group, criterion_main, Criterion};
use readopt_alloc::{PolicyConfig, RestrictedConfig};
use readopt_bench::bench_context;
use readopt_core::fig1;
use readopt_workloads::WorkloadKind;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = bench_context();
    println!("{}", fig1::run(&ctx));
    let mut group = c.benchmark_group("fig1_restricted_frag");
    for wl in WorkloadKind::all() {
        for (nsizes, grow) in [(2usize, 1u64), (5, 1), (5, 2)] {
            let policy = PolicyConfig::Restricted(RestrictedConfig::sweep_point(nsizes, grow, true));
            group.bench_function(format!("{}/{}sizes-g{}", wl.short_name(), nsizes, grow), |b| {
                b.iter(|| black_box(ctx.run_allocation(wl, policy.clone())))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = readopt_bench::criterion();
    targets = bench
}
criterion_main!(benches);
