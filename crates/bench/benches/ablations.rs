//! §6 future-work ablations: redundancy layouts, stripe-unit sensitivity,
//! and file-mix sensitivity.

use criterion::{criterion_group, criterion_main, Criterion};
use readopt_bench::bench_context;
use readopt_core::ablations;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = bench_context();
    println!("{}", ablations::run_raid(&ctx));
    println!("{}", ablations::run_stripe_unit(&ctx));
    println!("{}", ablations::run_file_mix(&ctx));
    println!("{}", ablations::run_reallocation(&ctx));
    println!("{}", ablations::run_ffs_comparison(&ctx));
    let mut group = c.benchmark_group("ablations");
    group.bench_function("raid_layouts", |b| b.iter(|| black_box(ablations::run_raid(&ctx))));
    group.bench_function("stripe_unit", |b| b.iter(|| black_box(ablations::run_stripe_unit(&ctx))));
    group.bench_function("file_mix", |b| b.iter(|| black_box(ablations::run_file_mix(&ctx))));
    group.bench_function("reallocation", |b| b.iter(|| black_box(ablations::run_reallocation(&ctx))));
    group.bench_function("ffs_comparison", |b| b.iter(|| black_box(ablations::run_ffs_comparison(&ctx))));
    group.finish();
}

criterion_group! {
    name = benches;
    config = readopt_bench::criterion();
    targets = bench
}
criterion_main!(benches);
