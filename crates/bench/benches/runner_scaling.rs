//! Runner scaling: the same sweep executed at 1, 2, 4, and 8 worker
//! threads. On a multi-core machine the wall-clock per sweep should drop
//! roughly linearly until the core count; on a single core the overhead of
//! the scoped-thread dispatch (vs the inline jobs=1 path) is what's being
//! measured.

use criterion::{criterion_group, criterion_main, Criterion};
use readopt_bench::bench_context;
use readopt_core::{fig1, table4};
use readopt_workloads::WorkloadKind;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ctx = bench_context();
    let workloads = [WorkloadKind::Timesharing, WorkloadKind::Supercomputer];
    let configs = [(2usize, 1u64, true), (3, 1, true), (5, 1, true), (5, 2, false)];
    let mut group = c.benchmark_group("runner_scaling");
    for jobs in [1usize, 2, 4, 8] {
        let jctx = ctx.with_jobs(jobs);
        group.bench_function(format!("fig1_subset/jobs{jobs}"), |b| {
            b.iter(|| black_box(fig1::run_sweep(&jctx, &workloads, &configs)))
        });
        group.bench_function(format!("table4/jobs{jobs}"), |b| {
            b.iter(|| black_box(table4::run_profiled(&jctx)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = readopt_bench::criterion();
    targets = bench
}
criterion_main!(benches);
