//! Offline stand-in for rand.
//!
//! Provides the deterministic PRNG surface the workspace uses:
//! `rngs::SmallRng` (xoshiro256++ seeded via SplitMix64), the
//! `SeedableRng::seed_from_u64` constructor, the [`RngExt`] extension trait
//! with `random::<T>()` / `random_range(..)`, and `seq::SliceRandom::shuffle`
//! (Fisher–Yates). The streams are self-consistent and fully deterministic
//! per seed — which is all the simulation needs — but are *not* the same
//! streams the real rand crate would produce.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Constructing a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256++ — small, fast, and plenty good for simulation draws.
#[derive(Debug, Clone, PartialEq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// The raw 256-bit generator state, for checkpoint serialization.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a [`Self::state`] snapshot. The all-zero
    /// state is the one point xoshiro256++ can never reach (and never
    /// leaves); callers restoring untrusted snapshots must reject it.
    pub fn from_state(s: [u64; 4]) -> Self {
        Xoshiro256PlusPlus { s }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, per the xoshiro authors' recommendation.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256PlusPlus { s: [next(), next(), next(), next()] }
    }
}

pub mod rngs {
    /// The workspace's default small generator.
    pub type SmallRng = super::Xoshiro256PlusPlus;
}

/// Marker for types `RngExt::random` can produce uniformly.
pub trait Standard: Sized {
    fn from_u64(bits: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_u64(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_u64(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn from_u64(bits: u64) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges `RngExt::random_range` can sample from.
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let unit = f64::from_u64(rng.next_u64());
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

/// Uniform draw in `[0, span)` by widening multiply — avoids modulo bias
/// skew beyond 2^-64, which is far below simulation noise.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span == u64::MAX as u128 + 1 {
        return rng.next_u64() as u128;
    }
    (rng.next_u64() as u128 * span) >> 64
}

/// Convenience draws layered over [`RngCore`] — mirrors the method names of
/// the real crate's `Rng` trait (0.9+ naming).
pub trait RngExt: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling, matching the real crate's trait name.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, high-to-low, matching-span uniform draws.
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, (i + 1) as u128) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(
            SmallRng::seed_from_u64(7).random::<u64>(),
            c.random::<u64>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&x));
            let n: u64 = rng.random_range(3..=9);
            assert!((3..=9).contains(&n));
            let i: usize = rng.random_range(0..5);
            assert!(i < 5);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut SmallRng::seed_from_u64(1));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 1 should scramble the order");
    }
}
