//! Offline stand-in for serde_json.
//!
//! Renders the vendored `serde::Value` tree to JSON text and parses JSON
//! text back. Output is deterministic: objects keep field insertion order
//! and floats print via Rust's shortest round-trip `Display`, so identical
//! values always produce identical bytes — the property the parallel
//! experiment runner's determinism guarantee rests on.

pub use serde::{Error, Value};
use serde::{Deserialize, Serialize};

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{x}");
    out.push_str(&s);
    // Keep the float/integer distinction in the output so round-trips
    // preserve the F64 variant shape where it matters for readability.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a \"b\"\n").unwrap(), "\"a \\\"b\\\"\\n\"");
        let x: f64 = from_str("2.0").unwrap();
        assert_eq!(x, 2.0);
        let v: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn parses_nested_objects() {
        let v: Value = from_str(r#"{"a": {"b": [1, -2, 3.5]}, "c": null}"#).unwrap();
        let a = v.get("a").unwrap();
        assert_eq!(
            a.get("b").unwrap(),
            &Value::Array(vec![Value::U64(1), Value::I64(-2), Value::F64(3.5)])
        );
        assert_eq!(v.get("c").unwrap(), &Value::Null);
    }

    #[test]
    fn pretty_prints_with_indent() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::U64(1)]))]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn float_display_round_trips() {
        for x in [0.1, 1e-9, 123456.789, f64::MAX, 5e-324] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }
}
