//! Offline stand-in for serde's derive macros.
//!
//! The build environment has no registry access, so this crate hand-parses
//! the derive input token stream (no `syn`/`quote`) and emits impls of the
//! simplified `serde::Serialize` / `serde::Deserialize` traits defined by
//! the vendored `serde` stub. Supported shapes cover everything this
//! workspace derives: plain structs with named fields, single-field tuple
//! (newtype) structs, unit structs, and enums whose variants are unit,
//! newtype, or struct-like. Generics and `#[serde(...)]` attributes are not
//! supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item.shape {
        Shape::NamedStruct(fields) => ser_named_struct(&item.name, fields),
        Shape::NewtypeStruct => ser_newtype_struct(&item.name),
        Shape::UnitStruct => ser_unit_struct(&item.name),
        Shape::Enum(variants) => ser_enum(&item.name, variants),
    };
    code.parse().expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item.shape {
        Shape::NamedStruct(fields) => de_named_struct(&item.name, fields),
        Shape::NewtypeStruct => de_newtype_struct(&item.name),
        Shape::UnitStruct => de_unit_struct(&item.name),
        Shape::Enum(variants) => de_enum(&item.name, variants),
    };
    code.parse().expect("serde_derive: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    /// `struct S { a: T, b: U }` — field names in declaration order.
    NamedStruct(Vec<String>),
    /// `struct S(T);`
    NewtypeStruct,
    /// `struct S;`
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    /// Struct-like variant with named fields.
    Struct(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported by the vendored stub");
        }
    }
    let shape = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_items(g.stream());
                if arity != 1 {
                    panic!(
                        "serde_derive: tuple struct `{name}` has {arity} fields; \
                         only newtype (1-field) tuple structs are supported"
                    );
                }
                Shape::NewtypeStruct
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive: unexpected token after `struct {name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body for `{name}`, got {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for item kind `{other}`"),
    };
    Item { name, shape }
}

/// Advances past outer attributes (`#[...]`) and a visibility qualifier
/// (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` plus the `[...]` group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `pub(crate)` / `pub(super)` qualifier
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `a: T, b: U, ...` returning the field names. Types are skipped by
/// scanning to the next top-level comma; angle brackets are tracked because
/// `<` / `>` arrive as plain punctuation (parens/brackets/braces are atomic
/// groups and need no tracking).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Counts top-level comma-separated entries in a token stream (for tuple
/// struct arity). A trailing comma does not add an entry.
fn count_top_level_items(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_items(g.stream());
                if arity != 1 {
                    panic!(
                        "serde_derive: tuple variant `{name}` has {arity} fields; \
                         only newtype (1-field) tuple variants are supported"
                    );
                }
                i += 1;
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation — Serialize
// ---------------------------------------------------------------------------

fn ser_named_struct(name: &str, fields: &[String]) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_value(&self.{f}))"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{entries}])\n\
             }}\n\
         }}",
        entries = entries.join(", ")
    )
}

fn ser_newtype_struct(name: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Serialize::to_value(&self.0)\n\
             }}\n\
         }}"
    )
}

fn ser_unit_struct(name: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
         }}"
    )
}

fn ser_enum(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => format!(
                    "{name}::{vname} => \
                     ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                ),
                VariantKind::Newtype => format!(
                    "{name}::{vname}(__x) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from(\"{vname}\"), \
                         ::serde::Serialize::to_value(__x))]),"
                ),
                VariantKind::Struct(fields) => {
                    let binds = fields.join(", ");
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f}))"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Object(::std::vec![{entries}]))]),",
                        entries = entries.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}\n}}\n\
             }}\n\
         }}",
        arms = arms.join("\n")
    )
}

// ---------------------------------------------------------------------------
// Code generation — Deserialize
// ---------------------------------------------------------------------------

fn de_named_struct(name: &str, fields: &[String]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::de_field(__v, \"{f}\")?,"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n\
             }}\n\
         }}",
        inits = inits.join(" ")
    )
}

fn de_newtype_struct(name: &str) -> String {
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))\n\
             }}\n\
         }}"
    )
}

fn de_unit_struct(name: &str) -> String {
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(_: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({name})\n\
             }}\n\
         }}"
    )
}

fn de_enum(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => {
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                }
                VariantKind::Newtype => format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(\
                             ::serde::de_payload(__payload, \"{vname}\")?)?)),"
                ),
                VariantKind::Struct(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::de_field(__pv, \"{f}\")?,"))
                        .collect();
                    format!(
                        "\"{vname}\" => {{\n\
                             let __pv = ::serde::de_payload(__payload, \"{vname}\")?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                         }}",
                        inits = inits.join(" ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let (__tag, __payload) = ::serde::de_variant(__v)?;\n\
                 match __tag {{\n\
                     {arms}\n\
                     __other => ::std::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                 }}\n\
             }}\n\
         }}",
        arms = arms.join("\n")
    )
}
