//! Offline stand-in for proptest.
//!
//! Implements the subset of the proptest API this workspace uses as a
//! plain sampling engine: each `proptest!` test draws `cases` random
//! inputs from its strategies (seeded deterministically from the test's
//! module path and name) and runs the body on each. There is no shrinking
//! — a failing case panics with the regular assert message — but the
//! deterministic seeding means failures reproduce exactly on re-run.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

/// Outcome signal used by `prop_assume!` to discard a sampled case.
pub enum TestCaseError {
    Reject,
}

/// Per-block configuration; only `cases` is honored by the stub.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test RNG: FNV-1a over the test's full path.
pub fn rng_for_test(path: &str) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(h)
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Type-erased strategy, used by `prop_oneof!` arms.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Maps a strategy's output through a function.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted choice between boxed strategies (`prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|&(w, _)| w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        let mut pick = rng.random_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight accounting")
    }
}

/// Helper used by `prop_oneof!` to erase arm types uniformly.
pub fn boxed_arm<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Uniform values of a type (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.random::<$t>()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::RngExt;
    use std::ops::Range;

    /// Vectors of `elem`-generated values with length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "empty length range");
        VecStrategy { elem, len }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
     $(#[$meta:meta])+
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __run = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                match __run() {
                    ::std::result::Result::Ok(()) => {}
                    // Rejected by prop_assume! — draw the next case.
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                }
            }
        }
        $crate::__proptest_tests! { @cfg ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::boxed_arm($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::boxed_arm($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;

    #[test]
    fn oneof_respects_weights_roughly() {
        let strat = prop_oneof![
            1 => Just(0u32),
            9 => Just(1u32),
        ];
        let mut rng = crate::rng_for_test("weights");
        let ones: u32 = (0..1000).map(|_| strat.sample(&mut rng)).sum();
        assert!((700..=990).contains(&ones), "ones = {ones}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn sampled_values_respect_strategies(
            v in proptest::collection::vec((1u64..10, any::<bool>()), 1..20),
            x in 0u32..5,
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (n, _) in &v {
                prop_assert!((1..10).contains(n));
            }
            prop_assert!(x < 5);
        }

        #[test]
        fn assume_discards_cases(n in 0u64..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }
}
