//! Offline stand-in for criterion.
//!
//! Provides the benchmark-harness surface the workspace's benches use:
//! `Criterion` with the builder knobs `sample_size` / `measurement_time` /
//! `warm_up_time` / `configure_from_args`, `benchmark_group` +
//! `bench_function` + `finish`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is a plain
//! wall-clock loop: warm up, then run batches until the measurement budget
//! is spent, and print mean time per iteration. No statistics, plots, or
//! baseline storage — enough to compare hot paths before and after a
//! change in this offline environment.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// The real crate parses CLI filters/flags here; the stub accepts and
    /// ignores them so `criterion_group!`-generated mains keep working.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = name.into();
        run_bench(self, &label, &mut f);
        self
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name.into());
        run_bench(self.criterion, &label, &mut f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    config: Criterion,
    /// Mean wall-clock per iteration from the measured batches.
    mean: Option<Duration>,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up: run for the configured time, at least once.
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.config.warm_up_time {
                break;
            }
        }
        // Measure: batches of iterations until the time budget or the
        // sample count is exhausted.
        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        let budget = self.config.measurement_time;
        let min_samples = self.config.sample_size as u64;
        while elapsed < budget || iters < min_samples {
            let t = Instant::now();
            black_box(f());
            elapsed += t.elapsed();
            iters += 1;
            if iters >= min_samples && elapsed >= budget {
                break;
            }
            // Hard cap so trivially fast bodies terminate promptly.
            if iters >= 1_000_000 {
                break;
            }
        }
        self.mean = Some(elapsed / iters.max(1) as u32);
    }
}

fn run_bench(config: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { config: config.clone(), mean: None };
    f(&mut b);
    match b.mean {
        Some(mean) => println!("bench {label:<48} {}", format_duration(mean)),
        None => println!("bench {label:<48} (no measurement)"),
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:>10.3} s/iter", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:>10.3} ms/iter", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:>10.3} µs/iter", nanos as f64 / 1e3)
    } else {
        format!("{:>10} ns/iter", nanos)
    }
}

/// Declares a benchmark group: a configured `Criterion` plus target
/// functions, wrapped into a single runner fn named `$name`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
