//! Offline stand-in for serde.
//!
//! The build environment resolves crates without network access, so this
//! vendored crate provides the small serialization surface the workspace
//! actually uses: a JSON-shaped [`Value`] tree, [`Serialize`] /
//! [`Deserialize`] traits that convert to and from it, and impls for the
//! primitive / container types that appear in derived types. The companion
//! `serde_derive` stub generates impls of these traits, and `serde_json`
//! renders [`Value`] to text.
//!
//! Design notes:
//! - `Value::Object` keeps insertion order (a `Vec` of pairs, not a map) so
//!   serialized output is deterministic and field-ordered — required for the
//!   byte-identical determinism guarantees the experiment runner makes.
//! - Enums use serde's externally-tagged representation: unit variants
//!   serialize as a bare string, newtype and struct variants as a
//!   single-entry object.

pub use serde_derive::{Deserialize as Deserialize, Serialize as Serialize};

use std::fmt;

/// A JSON-shaped data tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers.
    U64(u64),
    /// Negative integers.
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can convert themselves into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Helpers used by derive-generated code
// ---------------------------------------------------------------------------

/// Extracts and deserializes a named field from an object value.
pub fn de_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(fv) => T::from_value(fv),
        None => Err(Error::msg(format!("missing field `{name}`"))),
    }
}

/// Splits an externally-tagged enum value into `(tag, payload)`.
pub fn de_variant(v: &Value) -> Result<(&str, Option<&Value>), Error> {
    match v {
        Value::Str(tag) => Ok((tag.as_str(), None)),
        Value::Object(pairs) if pairs.len() == 1 => {
            Ok((pairs[0].0.as_str(), Some(&pairs[0].1)))
        }
        other => Err(Error::msg(format!("expected enum representation, got {other:?}"))),
    }
}

/// Unwraps the payload of a non-unit enum variant.
pub fn de_payload<'a>(payload: Option<&'a Value>, tag: &str) -> Result<&'a Value, Error> {
    payload.ok_or_else(|| Error::msg(format!("variant `{tag}` is missing its payload")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    other => Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::msg("integer out of i64 range"))?,
                    Value::I64(n) => *n,
                    other => {
                        return Err(Error::msg(format!(
                            concat!("expected ", stringify!($t), ", got {:?}"), other)))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::F64(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::msg(format!("expected f64, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::msg(format!("expected single-char string, got {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == [$($n),+].len() => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(Error::msg(format!("expected tuple array, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
