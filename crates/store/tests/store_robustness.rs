//! Robustness suite for the `.rrs` store: every class of damage the
//! format claims to survive or reject is exercised against real files —
//! truncation at arbitrary byte boundaries, bit-flipped record CRCs,
//! corrupted and oversized index blocks, stale version headers, and the
//! writer's resume-after-kill path.

use readopt_store::{RecoveredStore, StoreError, StoreReader, StoreWriter, FOOTER_LEN, MAGIC};
use std::path::{Path, PathBuf};

fn tmp(name: &str) -> PathBuf {
    Path::new(env!("CARGO_TARGET_TMPDIR")).join(name)
}

/// Builds a finished store with `n` points per experiment and returns its
/// path.
fn build(name: &str, experiments: &[&str], n: u64) -> PathBuf {
    let path = tmp(name);
    let mut w = StoreWriter::create(&path, r#"{"run":"test"}"#).expect("create");
    for exp in experiments {
        for i in 0..n {
            let payload = format!(r#"[{i},"{exp}",{}]"#, i * 10);
            w.append_point(exp, i, &payload).expect("append");
        }
    }
    w.finish().expect("finish");
    path
}

fn expect_corrupt(res: Result<StoreReader, StoreError>, what: &str) {
    match res {
        Err(StoreError::Corrupt(_)) => {}
        other => panic!("{what}: expected Corrupt, got {other:?}"),
    }
}

#[test]
fn roundtrip_reads_every_point_in_o1() {
    let path = build("roundtrip.rrs", &["fig1", "table4"], 5);
    let mut r = StoreReader::open(&path).expect("open");
    assert_eq!(r.len(), 10);
    assert_eq!(r.meta_json().expect("meta"), r#"{"run":"test"}"#);
    // Random-access order, not append order.
    assert_eq!(r.point("table4", 3).expect("t4/3"), r#"[3,"table4",30]"#);
    assert_eq!(r.point("fig1", 0).expect("f1/0"), r#"[0,"fig1",0]"#);
    assert_eq!(r.point("fig1", 4).expect("f1/4"), r#"[4,"fig1",40]"#);
    assert!(matches!(r.point("fig9", 0), Err(StoreError::NotFound(_))));
    assert!(matches!(r.point("fig1", 5), Err(StoreError::NotFound(_))));
    let ids = r.point_ids().to_vec();
    assert_eq!(ids[0], (String::from("fig1"), 0));
    assert_eq!(ids[9], (String::from("table4"), 4));
}

#[test]
fn truncated_file_rejected_strictly_but_prefix_recovers() {
    let path = build("truncate.rrs", &["fig1"], 8);
    let full = std::fs::read(&path).unwrap();

    // Chop the footer plus a few bytes of the index: strict open must
    // refuse; recover must still return all 8 points.
    let cut = tmp("truncate-cut.rrs");
    std::fs::write(&cut, &full[..full.len() - usize::try_from(FOOTER_LEN).unwrap() - 3]).unwrap();
    expect_corrupt(StoreReader::open(&cut), "footer gone");
    let rec = StoreReader::recover(&cut).expect("recover");
    assert_eq!(rec.points.len(), 8);
    assert!(!rec.complete, "index was damaged, so the file reads as unfinished");

    // Truncate mid-record (simulating a kill during an append): the torn
    // record is dropped, every earlier record survives.
    let third_point_end = rec.points[2].offset + rec.points[2].total_len;
    let torn = tmp("truncate-torn.rrs");
    std::fs::write(&torn, &full[..usize::try_from(third_point_end).unwrap() + 5]).unwrap();
    expect_corrupt(StoreReader::open(&torn), "torn record");
    let rec = StoreReader::recover(&torn).expect("recover torn");
    assert_eq!(rec.points.len(), 3, "valid prefix = the three intact records");
    assert_eq!(rec.valid_len, third_point_end);
    assert_eq!(rec.points[2].payload, r#"[2,"fig1",20]"#);

    // Truncate inside the header: nothing is recoverable.
    let stub = tmp("truncate-stub.rrs");
    std::fs::write(&stub, &full[..10]).unwrap();
    assert!(matches!(StoreReader::recover(&stub), Err(StoreError::Corrupt(_))));
}

#[test]
fn bit_flipped_record_crc_rejected() {
    let path = build("bitflip.rrs", &["fig2"], 4);
    let mut bytes = std::fs::read(&path).unwrap();
    let rec = StoreReader::recover(&path).expect("recover clean");

    // Flip one payload bit in the second point record.
    let mid = usize::try_from(rec.points[1].offset).unwrap() + 9;
    bytes[mid] ^= 0x01;
    let flipped = tmp("bitflip-mut.rrs");
    std::fs::write(&flipped, &bytes).unwrap();

    // The index still opens (it is intact), but reading the damaged point
    // fails its frame CRC; recovery stops at the flip.
    let mut r = StoreReader::open(&flipped).expect("index intact");
    assert_eq!(r.point("fig2", 0).expect("point 0 untouched"), r#"[0,"fig2",0]"#);
    assert!(matches!(r.point("fig2", 1), Err(StoreError::Corrupt(_))), "flipped point");
    let rec = StoreReader::recover(&flipped).expect("recover");
    assert_eq!(rec.points.len(), 1, "prefix ends before the flipped record");
}

#[test]
fn corrupted_and_oversized_index_blocks_rejected() {
    let path = build("badindex.rrs", &["fig1"], 3);
    let clean = std::fs::read(&path).unwrap();
    let rec = StoreReader::recover(&path).expect("recover");
    let index_start = usize::try_from(rec.valid_len).unwrap();

    // Flip a byte inside the index body: CRC mismatch on open.
    let mut bytes = clean.clone();
    bytes[index_start + 10] ^= 0xFF;
    let p = tmp("badindex-crc.rrs");
    std::fs::write(&p, &bytes).unwrap();
    expect_corrupt(StoreReader::open(&p), "index CRC");

    // Oversized length prefix on the index record (beyond MAX_BODY_LEN):
    // rejected as corruption, never attempted as an allocation.
    let mut bytes = clean.clone();
    bytes[index_start..index_start + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let p = tmp("badindex-oversized.rrs");
    std::fs::write(&p, &bytes).unwrap();
    expect_corrupt(StoreReader::open(&p), "oversized index length");

    // Footer pointing into the middle of a record: frame check fails.
    let mut bytes = clean.clone();
    let footer_start = bytes.len() - usize::try_from(FOOTER_LEN).unwrap();
    let bogus = u64::try_from(index_start - 7).unwrap();
    bytes[footer_start..footer_start + 8].copy_from_slice(&bogus.to_le_bytes());
    bytes[footer_start + 8..footer_start + 12]
        .copy_from_slice(&readopt_store::crc32(&bogus.to_le_bytes()).to_le_bytes());
    let p = tmp("badindex-offset.rrs");
    std::fs::write(&p, &bytes).unwrap();
    expect_corrupt(StoreReader::open(&p), "misaimed index offset");

    // An index entry whose offset/length escape the record region: build
    // a store whose (single-entry) index is rewritten with a huge length.
    let mut bytes = clean;
    // entry layout after count(8): exp_len(2) exp(4) index(8) offset(8) len(8)
    let entry_len_at = index_start + 4 + 1 + 8 + 2 + 4 + 8 + 8;
    bytes[entry_len_at..entry_len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    // reseal the index body CRC so only the entry bounds check can object
    let body_len =
        u32::from_le_bytes(bytes[index_start..index_start + 4].try_into().unwrap()) as usize;
    let crc = readopt_store::crc32(&bytes[index_start + 4..index_start + 4 + body_len]);
    bytes[index_start + 4 + body_len..index_start + 4 + body_len + 4]
        .copy_from_slice(&crc.to_le_bytes());
    let p = tmp("badindex-bounds.rrs");
    std::fs::write(&p, &bytes).unwrap();
    expect_corrupt(StoreReader::open(&p), "out-of-bounds index entry");
}

#[test]
fn stale_version_header_rejected() {
    let path = build("version.rrs", &["fig1"], 2);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8..12].copy_from_slice(&7u32.to_le_bytes());
    let p = tmp("version-stale.rrs");
    std::fs::write(&p, &bytes).unwrap();
    assert!(matches!(StoreReader::open(&p), Err(StoreError::Version { found: 7 })));
    assert!(matches!(StoreReader::recover(&p), Err(StoreError::Version { found: 7 })));

    // Not an .rrs file at all.
    bytes[..8].copy_from_slice(b"NOTMAGIC");
    let p = tmp("version-magic.rrs");
    std::fs::write(&p, &bytes).unwrap();
    expect_corrupt(StoreReader::open(&p), "bad magic");
    assert_ne!(&MAGIC, b"NOTMAGIC");
}

#[test]
fn resume_truncates_torn_tail_and_rebuilds_identical_bytes() {
    // Reference: an uninterrupted run.
    let reference = build("resume-ref.rrs", &["fig1"], 6);

    // Interrupted run: same first four points, then a torn fifth record
    // and no index/footer (the writer was killed mid-append).
    let killed = tmp("resume-killed.rrs");
    {
        let mut w = StoreWriter::create(&killed, r#"{"run":"test"}"#).expect("create");
        for i in 0..4u64 {
            let payload = format!(r#"[{i},"fig1",{}]"#, i * 10);
            w.append_point("fig1", i, &payload).expect("append");
        }
        // no finish(): simulates the kill
    }
    let mut bytes = std::fs::read(&killed).unwrap();
    bytes.extend_from_slice(&[0x21, 0x00, 0x00, 0x00, 0x02, 0x05]); // torn frame
    std::fs::write(&killed, &bytes).unwrap();

    // Resume: the torn tail is truncated, the four intact points are
    // recovered, and appending the remaining two + finish() must produce
    // a byte-identical file to the uninterrupted reference.
    let (mut w, rec): (StoreWriter, RecoveredStore) = StoreWriter::resume(&killed).expect("resume");
    assert_eq!(rec.points.len(), 4);
    assert!(!rec.complete);
    assert_eq!(rec.meta_json.as_deref(), Some(r#"{"run":"test"}"#));
    assert_eq!(w.points_written(), 4);
    for i in 4..6u64 {
        let payload = format!(r#"[{i},"fig1",{}]"#, i * 10);
        w.append_point("fig1", i, &payload).expect("append tail");
    }
    w.finish().expect("finish");
    assert_eq!(
        std::fs::read(&killed).unwrap(),
        std::fs::read(&reference).unwrap(),
        "resumed store must be byte-identical to the uninterrupted one"
    );

    // Resuming a *finished* store drops only index + footer and keeps all
    // points; finishing again restores the identical bytes.
    let (w2, rec2) = StoreWriter::resume(&reference).expect("resume finished");
    assert!(rec2.complete);
    assert_eq!(rec2.points.len(), 6);
    w2.finish().expect("refinish");
    let again = std::fs::read(&reference).unwrap();
    assert_eq!(again, std::fs::read(&killed).unwrap());
}
