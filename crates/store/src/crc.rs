//! CRC-32/IEEE (the zlib/gzip polynomial), table-driven, built at
//! compile time — no dependency and no runtime initialization.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i: u32 = 0;
    while i < 256 {
        let mut crc = i;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i as usize] = crc;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = build_table();

/// CRC-32/IEEE of `bytes` (init `!0`, reflected, final xor `!0`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC_TABLE[idx];
    }
    !crc
}
