//! Versioned binary results store — the `.rrs` format.
//!
//! Per-point JSON sidecars (three files per experiment) do not survive
//! million-point sweeps; this crate gives the reproduction a single
//! compact, append-only results file in the spirit of MF4-style
//! measurement logs: a fixed header, length-prefixed CRC-checked record
//! blocks (one per completed sweep point, carrying the same serialized
//! payload the in-process runner and the distributed workers already
//! produce), and a trailing index block for O(1) random access.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header   := magic "RRSTORE\0" (8) | u32 version (=1) | u32 flags (=0)
//! record   := u32 body_len | body | u32 crc32(body)        (CRC32/IEEE)
//! body     := kind u8 | kind-specific bytes
//!   kind 1 := meta     — UTF-8 JSON run context (always the first record)
//!   kind 2 := point    — u16 exp_len | exp | u64 index | UTF-8 payload
//!   kind 3 := index    — u64 count | count × entry (always the last record)
//!   entry  := u16 exp_len | exp | u64 index | u64 offset | u64 total_len
//! footer   := u64 index_offset | u32 crc32(of those 8 bytes) | "RRSEND\0\0"
//! ```
//!
//! `offset` is the file offset of the record's length prefix and
//! `total_len` the full framed length (prefix + body + CRC), so a reader
//! can seek straight to any point without scanning.
//!
//! Durability model: the writer appends records incrementally (each
//! `append_point` is flushed) and writes index + footer only at
//! [`StoreWriter::finish`]. **Any valid prefix is recoverable** — a run
//! killed mid-sweep loses at most the in-flight record, and
//! [`StoreReader::recover`] / [`StoreWriter::resume`] walk the prefix,
//! stop at the first torn or corrupt frame, and (for resume) truncate
//! there so appending continues from the last intact point.
//!
//! The crate is deliberately payload-agnostic: points travel as opaque
//! JSON strings, exactly the bytes `crates/core`'s runner or the
//! `crates/dist` workers serialized, which is what keeps a store round
//! trip byte-identical to the direct JSON sidecars.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

mod crc;
mod reader;
mod writer;

pub use crc::crc32;
pub use reader::{PointRecord, RecoveredStore, StoreReader};
pub use writer::StoreWriter;

/// File magic: first 8 bytes of every `.rrs` file.
pub const MAGIC: [u8; 8] = *b"RRSTORE\0";
/// Trailing magic: last 8 bytes of a *finished* `.rrs` file.
pub const END_MAGIC: [u8; 8] = *b"RRSEND\0\0";
/// Current format version (header field).
pub const FORMAT_VERSION: u32 = 1;
/// Header length: magic + version + flags.
pub const HEADER_LEN: u64 = 16;
/// Footer length: index offset + crc + end magic.
pub const FOOTER_LEN: u64 = 20;
/// Upper bound on a single record body; a length prefix beyond this is
/// treated as corruption rather than attempted as an allocation.
pub const MAX_BODY_LEN: u32 = 1 << 30;

/// Record kind tags (first body byte).
pub mod kind {
    /// Run-context JSON (the first record of every store).
    pub const META: u8 = 1;
    /// One completed sweep point.
    pub const POINT: u8 = 2;
    /// The trailing index block.
    pub const INDEX: u8 = 3;
}

/// Everything that can go wrong reading or writing a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An OS-level file error (open, read, write, seek, truncate).
    Io(String),
    /// Structural damage: bad magic, torn frame, CRC mismatch, an index
    /// entry pointing outside the file, an oversized length prefix, …
    Corrupt(String),
    /// The file's header declares a format revision this reader does not
    /// speak.
    Version {
        /// The version found in the header.
        found: u32,
    },
    /// The caller asked for something the store does not contain
    /// (unknown experiment/point index).
    NotFound(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "store i/o error: {m}"),
            StoreError::Corrupt(m) => write!(f, "corrupt store: {m}"),
            StoreError::Version { found } => {
                write!(f, "unsupported store version {found} (this build reads v{FORMAT_VERSION})")
            }
            StoreError::NotFound(m) => write!(f, "not in store: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

pub(crate) fn u16_le(b: &[u8]) -> Option<u16> {
    let arr: [u8; 2] = b.get(..2)?.try_into().ok()?;
    Some(u16::from_le_bytes(arr))
}

pub(crate) fn u32_le(b: &[u8]) -> Option<u32> {
    let arr: [u8; 4] = b.get(..4)?.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}

pub(crate) fn u64_le(b: &[u8]) -> Option<u64> {
    let arr: [u8; 8] = b.get(..8)?.try_into().ok()?;
    Some(u64::from_le_bytes(arr))
}

/// Frames a record body: `u32 len | body | u32 crc32(body)`.
pub(crate) fn frame(body: &[u8]) -> Result<Vec<u8>, StoreError> {
    let len = u32::try_from(body.len())
        .ok()
        .filter(|l| *l <= MAX_BODY_LEN)
        .ok_or_else(|| StoreError::Corrupt(format!("record body too large: {} bytes", body.len())))?;
    let mut out = Vec::with_capacity(body.len() + 8);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&crc32(body).to_le_bytes());
    Ok(out)
}

/// Serializes a point body: `kind | u16 exp_len | exp | u64 index | payload`.
pub(crate) fn point_body(experiment: &str, index: u64, payload: &str) -> Result<Vec<u8>, StoreError> {
    let exp = experiment.as_bytes();
    let exp_len = u16::try_from(exp.len()).map_err(|_| {
        StoreError::Corrupt(format!("experiment name too long: {} bytes", exp.len()))
    })?;
    let mut body = Vec::with_capacity(1 + 2 + exp.len() + 8 + payload.len());
    body.push(kind::POINT);
    body.extend_from_slice(&exp_len.to_le_bytes());
    body.extend_from_slice(exp);
    body.extend_from_slice(&index.to_le_bytes());
    body.extend_from_slice(payload.as_bytes());
    Ok(body)
}

/// Parses a point body (without the kind byte already consumed check —
/// `body[0]` must be [`kind::POINT`]).
pub(crate) fn parse_point_body(body: &[u8]) -> Result<(String, u64, String), StoreError> {
    let corrupt = |what: &str| StoreError::Corrupt(format!("point record: {what}"));
    if body.first() != Some(&kind::POINT) {
        return Err(corrupt("wrong kind tag"));
    }
    let rest = &body[1..];
    let exp_len = usize::from(u16_le(rest).ok_or_else(|| corrupt("truncated experiment length"))?);
    let rest = &rest[2..];
    let exp = rest.get(..exp_len).ok_or_else(|| corrupt("truncated experiment name"))?;
    let exp = std::str::from_utf8(exp)
        .map_err(|_| corrupt("experiment name is not UTF-8"))?
        .to_string();
    let rest = &rest[exp_len..];
    let index = u64_le(rest).ok_or_else(|| corrupt("truncated point index"))?;
    let payload = std::str::from_utf8(&rest[8..])
        .map_err(|_| corrupt("payload is not UTF-8"))?
        .to_string();
    Ok((exp, index, payload))
}
