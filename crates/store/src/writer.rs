//! Incremental append-only `.rrs` writer.
//!
//! Every `append_point` writes one fully framed, CRC-sealed record and
//! flushes, so the on-disk file is a valid recoverable prefix at all
//! times; [`StoreWriter::finish`] seals the file with the index block and
//! footer. [`StoreWriter::resume`] reopens a store whose run was killed
//! (or even one that finished), truncates any torn trailing frame — and
//! the index/footer, which will be rewritten — and appends from the last
//! intact record.

use crate::reader::{RecoveredStore, StoreReader};
use crate::{frame, kind, point_body, StoreError, FORMAT_VERSION, MAGIC};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

#[derive(Debug, Clone)]
struct IndexEntry {
    experiment: String,
    index: u64,
    offset: u64,
    total_len: u64,
}

/// Append-only writer for one `.rrs` file.
#[derive(Debug)]
pub struct StoreWriter {
    file: File,
    pos: u64,
    entries: Vec<IndexEntry>,
    finished: bool,
}

impl StoreWriter {
    /// Creates a fresh store: header + the meta record (run-context JSON).
    pub fn create(path: &Path, meta_json: &str) -> Result<StoreWriter, StoreError> {
        let file = File::create(path)
            .map_err(|e| StoreError::Io(format!("create {}: {e}", path.display())))?;
        let mut w = StoreWriter { file, pos: 0, entries: Vec::new(), finished: false };
        let mut header = Vec::with_capacity(16);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes()); // flags
        w.write_bytes(&header)?;
        let mut body = Vec::with_capacity(1 + meta_json.len());
        body.push(kind::META);
        body.extend_from_slice(meta_json.as_bytes());
        let framed = frame(&body)?;
        w.write_bytes(&framed)?;
        w.file.flush()?;
        Ok(w)
    }

    /// Reopens an existing store for appending: recovers the valid record
    /// prefix, truncates everything after it (a torn in-flight frame, or
    /// the index + footer of a finished file), and returns the writer
    /// positioned to append, together with the recovered records.
    pub fn resume(path: &Path) -> Result<(StoreWriter, RecoveredStore), StoreError> {
        let recovered = StoreReader::recover(path)?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| StoreError::Io(format!("open {}: {e}", path.display())))?;
        file.set_len(recovered.valid_len)?;
        let mut w = StoreWriter {
            file,
            pos: recovered.valid_len,
            entries: recovered
                .points
                .iter()
                .map(|p| IndexEntry {
                    experiment: p.experiment.clone(),
                    index: p.index,
                    offset: p.offset,
                    total_len: p.total_len,
                })
                .collect(),
            finished: false,
        };
        w.file.seek(SeekFrom::Start(w.pos))?;
        Ok((w, recovered))
    }

    /// Appends one completed sweep point and flushes it to disk.
    pub fn append_point(
        &mut self,
        experiment: &str,
        index: u64,
        payload: &str,
    ) -> Result<(), StoreError> {
        if self.finished {
            return Err(StoreError::Io(String::from("append after finish")));
        }
        let body = point_body(experiment, index, payload)?;
        let framed = frame(&body)?;
        let offset = self.pos;
        let total_len = u64::try_from(framed.len())
            .map_err(|_| StoreError::Corrupt(String::from("record length overflow")))?;
        self.write_bytes(&framed)?;
        self.file.flush()?;
        self.entries.push(IndexEntry {
            experiment: experiment.to_string(),
            index,
            offset,
            total_len,
        });
        Ok(())
    }

    /// Number of point records written (including any recovered on resume).
    pub fn points_written(&self) -> usize {
        self.entries.len()
    }

    /// Seals the store: writes the index block and the footer.
    pub fn finish(mut self) -> Result<(), StoreError> {
        let mut body = Vec::new();
        body.push(kind::INDEX);
        let count = u64::try_from(self.entries.len())
            .map_err(|_| StoreError::Corrupt(String::from("index entry count overflow")))?;
        body.extend_from_slice(&count.to_le_bytes());
        for e in &self.entries {
            let exp = e.experiment.as_bytes();
            let exp_len = u16::try_from(exp.len()).map_err(|_| {
                StoreError::Corrupt(format!("experiment name too long: {} bytes", exp.len()))
            })?;
            body.extend_from_slice(&exp_len.to_le_bytes());
            body.extend_from_slice(exp);
            body.extend_from_slice(&e.index.to_le_bytes());
            body.extend_from_slice(&e.offset.to_le_bytes());
            body.extend_from_slice(&e.total_len.to_le_bytes());
        }
        let index_offset = self.pos;
        let framed = frame(&body)?;
        self.write_bytes(&framed)?;
        let mut footer = Vec::with_capacity(20);
        footer.extend_from_slice(&index_offset.to_le_bytes());
        footer.extend_from_slice(&crate::crc32(&index_offset.to_le_bytes()).to_le_bytes());
        footer.extend_from_slice(&crate::END_MAGIC);
        self.write_bytes(&footer)?;
        self.file.flush()?;
        self.finished = true;
        Ok(())
    }

    fn write_bytes(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.file.write_all(bytes)?;
        let len = u64::try_from(bytes.len())
            .map_err(|_| StoreError::Corrupt(String::from("write length overflow")))?;
        self.pos += len;
        Ok(())
    }
}
