//! `.rrs` readers: a strict seek-based reader for finished stores
//! (footer → index → O(1) point lookup) and a sequential prefix scanner
//! for truncated ones.

use crate::{
    kind, parse_point_body, u16_le, u32_le, u64_le, StoreError, END_MAGIC, FOOTER_LEN, FORMAT_VERSION,
    HEADER_LEN, MAGIC, MAX_BODY_LEN,
};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

/// One intact point record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointRecord {
    /// Experiment the point belongs to.
    pub experiment: String,
    /// Submission index within the experiment's sweep.
    pub index: u64,
    /// The serialized result payload, exactly as appended.
    pub payload: String,
    /// File offset of the record's length prefix.
    pub offset: u64,
    /// Full framed length (prefix + body + CRC).
    pub total_len: u64,
}

/// The valid prefix of a (possibly truncated) store.
#[derive(Debug, Clone)]
pub struct RecoveredStore {
    /// The run-context JSON from the meta record, if the file got that far.
    pub meta_json: Option<String>,
    /// Every intact point record, in append order.
    pub points: Vec<PointRecord>,
    /// Whether the index block was reached — i.e. the run finished cleanly.
    pub complete: bool,
    /// Offset just past the last intact non-index record: where a resumed
    /// writer truncates to and appends from.
    pub valid_len: u64,
}

/// Seek-based reader over a finished store: opens via the footer and the
/// trailing index block, then serves any point in O(1) seeks.
#[derive(Debug)]
pub struct StoreReader {
    file: File,
    index: BTreeMap<(String, u64), (u64, u64)>,
    order: Vec<(String, u64)>,
    index_offset: u64,
}

impl StoreReader {
    /// Strictly opens a *finished* store: header, footer, and index block
    /// must all validate. Truncated or damaged files are rejected — use
    /// [`StoreReader::recover`] for those.
    pub fn open(path: &Path) -> Result<StoreReader, StoreError> {
        let mut file =
            File::open(path).map_err(|e| StoreError::Io(format!("open {}: {e}", path.display())))?;
        let file_len = file.metadata()?.len();
        if file_len < HEADER_LEN + FOOTER_LEN {
            return Err(StoreError::Corrupt(format!("file too short ({file_len} bytes)")));
        }
        check_header(&read_at(&mut file, 0, HEADER_LEN)?)?;

        let footer = read_at(&mut file, file_len - FOOTER_LEN, FOOTER_LEN)?;
        if footer.get(12..20) != Some(&END_MAGIC[..]) {
            return Err(StoreError::Corrupt(String::from(
                "missing end magic (file truncated or not finished)",
            )));
        }
        let index_offset =
            u64_le(&footer).ok_or_else(|| StoreError::Corrupt(String::from("short footer")))?;
        let footer_crc = u32_le(&footer[8..])
            .ok_or_else(|| StoreError::Corrupt(String::from("short footer")))?;
        if crate::crc32(&footer[..8]) != footer_crc {
            return Err(StoreError::Corrupt(String::from("footer CRC mismatch")));
        }
        if index_offset < HEADER_LEN || index_offset > file_len - FOOTER_LEN {
            return Err(StoreError::Corrupt(format!(
                "index offset {index_offset} outside file body"
            )));
        }

        let index_region_len = file_len - FOOTER_LEN - index_offset;
        let framed = read_at(&mut file, index_offset, index_region_len)?;
        let body = check_frame(&framed, "index block")?;
        // The index must be the last record before the footer — a length
        // prefix that undershoots the region means trailing garbage.
        let framed_len = u64::try_from(body.len() + 8)
            .map_err(|_| StoreError::Corrupt(String::from("index length overflow")))?;
        if framed_len != index_region_len {
            return Err(StoreError::Corrupt(String::from(
                "index block does not span to the footer",
            )));
        }
        if body.first() != Some(&kind::INDEX) {
            return Err(StoreError::Corrupt(String::from("index block has wrong kind tag")));
        }
        let (index, order) = parse_index_body(&body[1..], index_offset)?;
        Ok(StoreReader { file, index, order, index_offset })
    }

    /// Scans the valid record prefix of a possibly truncated store:
    /// header must validate, then records are read sequentially until the
    /// first torn or CRC-failing frame (or the index block, for a file
    /// that finished cleanly).
    pub fn recover(path: &Path) -> Result<RecoveredStore, StoreError> {
        let bytes =
            std::fs::read(path).map_err(|e| StoreError::Io(format!("read {}: {e}", path.display())))?;
        if bytes.len() < usize::try_from(HEADER_LEN).unwrap_or(16) {
            return Err(StoreError::Corrupt(format!("file too short ({} bytes)", bytes.len())));
        }
        check_header(&bytes)?;

        let mut meta_json = None;
        let mut points = Vec::new();
        let mut complete = false;
        let mut pos = usize::try_from(HEADER_LEN).unwrap_or(16);
        let mut valid_len = u64::try_from(pos).unwrap_or(HEADER_LEN);
        while pos + 8 <= bytes.len() {
            let Some(body_len) = u32_le(&bytes[pos..]) else { break };
            if body_len > MAX_BODY_LEN {
                break; // corrupt length prefix: stop at the valid prefix
            }
            let body_len = usize::try_from(body_len)
                .map_err(|_| StoreError::Corrupt(String::from("body length overflow")))?;
            let Some(frame_bytes) = bytes.get(pos..pos + 4 + body_len + 4) else {
                break; // torn in-flight record
            };
            let Ok(body) = check_frame(frame_bytes, "record") else {
                break; // bit flip: the CRC catches it; prefix ends here
            };
            let record_end = pos + 4 + body_len + 4;
            match body.first().copied() {
                Some(k) if k == kind::META => {
                    if meta_json.is_some() || !points.is_empty() {
                        break; // meta is only legal as the first record
                    }
                    let Ok(json) = std::str::from_utf8(&body[1..]) else { break };
                    meta_json = Some(json.to_string());
                }
                Some(k) if k == kind::POINT => {
                    let Ok((experiment, index, payload)) = parse_point_body(body) else { break };
                    points.push(PointRecord {
                        experiment,
                        index,
                        payload,
                        offset: u64::try_from(pos)
                            .map_err(|_| StoreError::Corrupt(String::from("offset overflow")))?,
                        total_len: u64::try_from(4 + body_len + 4)
                            .map_err(|_| StoreError::Corrupt(String::from("length overflow")))?,
                    });
                }
                Some(k) if k == kind::INDEX => {
                    // A finished file: the prefix of interest ends just
                    // before the index (a resumed writer rewrites it).
                    complete = true;
                    break;
                }
                _ => break, // unknown kind: treat as corruption
            }
            pos = record_end;
            valid_len = u64::try_from(pos)
                .map_err(|_| StoreError::Corrupt(String::from("offset overflow")))?;
        }
        Ok(RecoveredStore { meta_json, points, complete, valid_len })
    }

    /// The run-context JSON from the meta record.
    pub fn meta_json(&mut self) -> Result<String, StoreError> {
        let first_len = self.index_offset.min(
            self.order
                .first()
                .and_then(|key| self.index.get(key))
                .map(|&(off, _)| off)
                .unwrap_or(self.index_offset),
        );
        if first_len <= HEADER_LEN {
            return Err(StoreError::Corrupt(String::from("no room for a meta record")));
        }
        let framed = read_at(&mut self.file, HEADER_LEN, first_len - HEADER_LEN)?;
        // The meta record is first; its length prefix bounds the read.
        let Some(body_len) = u32_le(&framed) else {
            return Err(StoreError::Corrupt(String::from("short meta record")));
        };
        if body_len > MAX_BODY_LEN {
            return Err(StoreError::Corrupt(String::from("oversized meta record")));
        }
        let body_len = usize::try_from(body_len)
            .map_err(|_| StoreError::Corrupt(String::from("meta length overflow")))?;
        let frame_bytes = framed
            .get(..4 + body_len + 4)
            .ok_or_else(|| StoreError::Corrupt(String::from("truncated meta record")))?;
        let body = check_frame(frame_bytes, "meta record")?;
        if body.first() != Some(&kind::META) {
            return Err(StoreError::Corrupt(String::from("first record is not meta")));
        }
        std::str::from_utf8(&body[1..])
            .map(str::to_string)
            .map_err(|_| StoreError::Corrupt(String::from("meta record is not UTF-8")))
    }

    /// Every `(experiment, index)` pair in the store, in append order.
    pub fn point_ids(&self) -> &[(String, u64)] {
        &self.order
    }

    /// Number of point records.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the store holds no points.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Reads one point's payload by `(experiment, index)` — a single seek
    /// plus one read, via the trailing index.
    pub fn point(&mut self, experiment: &str, index: u64) -> Result<String, StoreError> {
        let &(offset, total_len) = self
            .index
            .get(&(experiment.to_string(), index))
            .ok_or_else(|| StoreError::NotFound(format!("{experiment}[{index}]")))?;
        let framed = read_at(&mut self.file, offset, total_len)?;
        let body = check_frame(&framed, "point record")?;
        let (exp, idx, payload) = parse_point_body(body)?;
        if exp != experiment || idx != index {
            return Err(StoreError::Corrupt(format!(
                "index entry for {experiment}[{index}] points at {exp}[{idx}]"
            )));
        }
        Ok(payload)
    }
}

fn check_header(bytes: &[u8]) -> Result<(), StoreError> {
    if bytes.get(..8) != Some(&MAGIC[..]) {
        return Err(StoreError::Corrupt(String::from("bad magic (not an .rrs file)")));
    }
    let version = u32_le(&bytes[8..])
        .ok_or_else(|| StoreError::Corrupt(String::from("short header")))?;
    if version != FORMAT_VERSION {
        return Err(StoreError::Version { found: version });
    }
    let flags = u32_le(&bytes[12..])
        .ok_or_else(|| StoreError::Corrupt(String::from("short header")))?;
    if flags != 0 {
        return Err(StoreError::Corrupt(format!("unknown header flags {flags:#x}")));
    }
    Ok(())
}

/// Validates one framed record (`u32 len | body | u32 crc`) and returns
/// the body slice.
fn check_frame<'a>(framed: &'a [u8], what: &str) -> Result<&'a [u8], StoreError> {
    let body_len = u32_le(framed)
        .ok_or_else(|| StoreError::Corrupt(format!("{what}: short length prefix")))?;
    if body_len > MAX_BODY_LEN {
        return Err(StoreError::Corrupt(format!("{what}: oversized length prefix ({body_len})")));
    }
    let body_len = usize::try_from(body_len)
        .map_err(|_| StoreError::Corrupt(format!("{what}: length overflow")))?;
    let body = framed
        .get(4..4 + body_len)
        .ok_or_else(|| StoreError::Corrupt(format!("{what}: truncated body")))?;
    let stored_crc = u32_le(&framed[4 + body_len..])
        .ok_or_else(|| StoreError::Corrupt(format!("{what}: missing CRC")))?;
    if crate::crc32(body) != stored_crc {
        return Err(StoreError::Corrupt(format!("{what}: CRC mismatch")));
    }
    Ok(body)
}

#[allow(clippy::type_complexity)]
fn parse_index_body(
    mut rest: &[u8],
    index_offset: u64,
) -> Result<(BTreeMap<(String, u64), (u64, u64)>, Vec<(String, u64)>), StoreError> {
    let corrupt = |what: &str| StoreError::Corrupt(format!("index block: {what}"));
    let count = u64_le(rest).ok_or_else(|| corrupt("truncated entry count"))?;
    rest = &rest[8..];
    let count = usize::try_from(count).map_err(|_| corrupt("entry count overflow"))?;
    // Each entry is at least 2 + 0 + 8 + 8 + 8 bytes; a count that cannot
    // fit in the remaining bytes is corruption, not an allocation request.
    if count > rest.len() / 26 {
        return Err(corrupt("entry count exceeds block size"));
    }
    let mut map = BTreeMap::new();
    let mut order = Vec::with_capacity(count);
    for _ in 0..count {
        let exp_len = usize::from(u16_le(rest).ok_or_else(|| corrupt("truncated entry"))?);
        rest = &rest[2..];
        let exp = rest.get(..exp_len).ok_or_else(|| corrupt("truncated experiment name"))?;
        let exp = std::str::from_utf8(exp)
            .map_err(|_| corrupt("experiment name is not UTF-8"))?
            .to_string();
        rest = &rest[exp_len..];
        let fields = rest.get(..24).ok_or_else(|| corrupt("truncated entry fields"))?;
        let index = u64_le(fields).ok_or_else(|| corrupt("truncated index"))?;
        let offset = u64_le(&fields[8..]).ok_or_else(|| corrupt("truncated offset"))?;
        let total_len = u64_le(&fields[16..]).ok_or_else(|| corrupt("truncated length"))?;
        rest = &rest[24..];
        if offset < HEADER_LEN
            || total_len < 9
            || offset.checked_add(total_len).map_or(true, |end| end > index_offset)
        {
            return Err(corrupt(&format!(
                "entry {exp}[{index}] points outside the record region"
            )));
        }
        if map.insert((exp.clone(), index), (offset, total_len)).is_some() {
            return Err(corrupt(&format!("duplicate entry {exp}[{index}]")));
        }
        order.push((exp, index));
    }
    if !rest.is_empty() {
        return Err(corrupt("trailing bytes after the last entry"));
    }
    Ok((map, order))
}

fn read_at(file: &mut File, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
    let len = usize::try_from(len)
        .map_err(|_| StoreError::Corrupt(String::from("read length overflow")))?;
    file.seek(SeekFrom::Start(offset))?;
    let mut buf = vec![0u8; len];
    file.read_exact(&mut buf)
        .map_err(|e| StoreError::Io(format!("read {len} bytes at {offset}: {e}")))?;
    Ok(buf)
}
