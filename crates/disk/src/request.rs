//! Logical I/O requests and the [`Storage`] trait all array layouts expose.

use crate::stats::StorageStats;
use crate::time::SimTime;
use serde::{Deserialize, Serialize, Value};

/// Direction of a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoKind {
    /// Disk → memory.
    Read,
    /// Memory → disk.
    Write,
}

/// A logical request against the array's linear address space, measured in
/// disk units (§2.1: "The disks are addressed by disk units").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoRequest {
    /// First disk unit.
    pub unit: u64,
    /// Number of disk units.
    pub units: u64,
    /// Transfer direction.
    pub kind: IoKind,
}

impl IoRequest {
    /// Convenience constructor for a read.
    pub fn read(unit: u64, units: u64) -> Self {
        IoRequest { unit, units, kind: IoKind::Read }
    }

    /// Convenience constructor for a write.
    pub fn write(unit: u64, units: u64) -> Self {
        IoRequest { unit, units, kind: IoKind::Write }
    }

    /// One-past-the-end unit.
    pub fn end(&self) -> u64 {
        self.unit + self.units
    }
}

/// The service window of a submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoSpan {
    /// When the first involved disk starts moving this request's bytes
    /// (i.e. after any queueing delay). Never earlier than `ready`.
    pub begin: SimTime,
    /// When the last involved disk finishes.
    pub end: SimTime,
}

impl IoSpan {
    /// Service-window length.
    pub fn duration_ms(&self) -> f64 {
        self.end.since(self.begin).as_ms()
    }
}

/// A disk system presenting a linear space of disk units.
///
/// Implementations model per-disk FCFS queues: `submit` computes when the
/// request would complete given each involved disk's current backlog and
/// head position, updates that state, and returns the service window (queue
/// wait excluded from `begin`, so throughput attribution over the span
/// reflects when bytes actually move). Submissions must be made in
/// non-decreasing `ready` order per disk for the queueing model to be
/// meaningful; the simulator's event loop guarantees this globally.
///
/// `Send` is required so boxed storage (and the simulations owning it) can
/// move to experiment-runner worker threads.
pub trait Storage: Send {
    /// Size of one disk unit in bytes.
    fn disk_unit_bytes(&self) -> u64;

    /// Usable capacity in disk units (excludes parity/mirror overhead).
    fn capacity_units(&self) -> u64;

    /// Number of physical disks (including parity/mirror disks).
    fn ndisks(&self) -> usize;

    /// Submits a logical request that becomes ready at `ready`; returns its
    /// service window.
    fn submit(&mut self, ready: SimTime, req: &IoRequest) -> IoSpan;

    /// Earliest time at which every disk has drained its queued work (the
    /// array is fully idle). Used to separate consecutive tests cleanly.
    fn next_idle(&self) -> SimTime;

    /// Snapshot of the accumulated activity counters.
    fn stats(&self) -> StorageStats;

    /// Clears activity counters (head positions and queue state persist).
    fn reset_stats(&mut self);

    /// Usable capacity in bytes.
    fn capacity_bytes(&self) -> u64 {
        self.capacity_units() * self.disk_unit_bytes()
    }

    /// Checkpoint snapshot of the layout's dynamic state (per-disk head and
    /// queue state, accumulated stats), when the layout supports mid-run
    /// checkpointing. Configuration (geometry, striping) is *not* included:
    /// a resuming caller reconstructs the layout and applies the snapshot.
    /// The default reports `None` (unsupported).
    fn checkpoint_state(&self) -> Option<Value> {
        None
    }

    /// Applies a [`Storage::checkpoint_state`] snapshot to a freshly
    /// constructed layout, validating it first; on error the layout is left
    /// unchanged.
    fn restore_state(&mut self, _snapshot: &Value) -> Result<(), String> {
        Err("this storage layout does not support checkpointing".into())
    }

    /// The sharded-execution view of this layout, when it has one.
    ///
    /// Layouts whose requests decompose into *independent per-disk pieces*
    /// (no cross-disk coupling such as parity or mirror fan-out) return
    /// `Some`; the simulator's sharded engine then plans pieces centrally
    /// and services them on worker threads that own disjoint disk subsets.
    /// The default `None` keeps a layout on the serial submit path.
    fn as_shardable(&mut self) -> Option<&mut dyn ShardableStorage> {
        None
    }
}

/// One per-disk piece of a planned request: the unit of work shipped to a
/// sharded-execution worker. Servicing it is exactly
/// `disk.service_bytes(ready, start_byte, len_bytes, kind)` — the same
/// primitive `submit` uses, so piecewise execution is bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PiecePlan {
    /// Index of the disk that services this piece.
    pub disk: usize,
    /// First physical byte on that disk.
    pub start_byte: u64,
    /// Length in bytes.
    pub len_bytes: u64,
    /// Transfer direction.
    pub kind: IoKind,
}

/// Piecewise planning and disk ownership transfer for layouts without
/// cross-disk coupling (see [`Storage::as_shardable`]).
///
/// The contract mirrors `submit` split in two: [`plan_pieces`] performs the
/// logical-side bookkeeping (validation, logical stats) and emits the same
/// per-disk runs `submit` would service, in the same order; the caller then
/// services each piece against the owned [`Disk`]s — which it obtains via
/// [`take_disks`] and must return with [`restore_disks`] before any other
/// trait method needs them. Pieces must be serviced per disk in plan order
/// with non-decreasing `ready`, matching `submit`'s queueing contract.
///
/// [`plan_pieces`]: ShardableStorage::plan_pieces
/// [`take_disks`]: ShardableStorage::take_disks
/// [`restore_disks`]: ShardableStorage::restore_disks
pub trait ShardableStorage {
    /// Plans `req` into per-disk pieces, appending them to `out` in the
    /// order `submit` would service them, and accounts the request in the
    /// logical stats exactly as `submit` would.
    fn plan_pieces(&mut self, req: &IoRequest, out: &mut Vec<PiecePlan>);

    /// Moves the member disks out to the caller (the layout keeps its
    /// logical geometry; disk-touching methods are off-limits until
    /// [`restore_disks`](ShardableStorage::restore_disks)).
    fn take_disks(&mut self) -> Vec<crate::disk::Disk>;

    /// Returns disks previously obtained from
    /// [`take_disks`](ShardableStorage::take_disks), in the same order.
    fn restore_disks(&mut self, disks: Vec<crate::disk::Disk>);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_constructors() {
        let r = IoRequest::read(10, 5);
        assert_eq!(r.kind, IoKind::Read);
        assert_eq!(r.end(), 15);
        let w = IoRequest::write(0, 1);
        assert_eq!(w.kind, IoKind::Write);
        assert_eq!(w.end(), 1);
    }
}
