//! Mirrored configuration: "all data is stored on two identical disks"
//! (§2.1). Data is striped across disk *pairs*; every write goes to both
//! replicas, every read is served by whichever replica can finish it first
//! (shortest completion time given queue backlog and head position).

use crate::array::striped_runs;
use crate::disk::Disk;
use crate::geometry::DiskGeometry;
use crate::request::{IoKind, IoRequest, IoSpan, Storage};
use crate::stats::StorageStats;
use crate::time::SimTime;

/// A striped array of mirrored disk pairs.
///
/// Pair `i` consists of physical disks `2i` (primary) and `2i + 1` (mirror).
/// Usable capacity is half the raw capacity.
#[derive(Debug, Clone)]
pub struct MirroredArray {
    disks: Vec<Disk>,
    stripe_unit_bytes: u64,
    disk_unit_bytes: u64,
    stats: StorageStats,
}

impl MirroredArray {
    /// Builds a mirrored array; `ndisks` must be even and ≥ 2.
    pub fn new(geom: DiskGeometry, ndisks: usize, stripe_unit_bytes: u64, disk_unit_bytes: u64) -> Self {
        assert!(ndisks >= 2 && ndisks.is_multiple_of(2), "mirroring requires an even disk count");
        assert!(disk_unit_bytes > 0 && disk_unit_bytes.is_multiple_of(geom.sector_bytes),
            "disk unit must be a positive multiple of the sector size");
        assert!(stripe_unit_bytes > 0 && stripe_unit_bytes.is_multiple_of(disk_unit_bytes),
            "stripe unit must be a positive multiple of the disk unit");
        assert!(geom.capacity_bytes().is_multiple_of(stripe_unit_bytes),
            "disk capacity must be a whole number of stripe units");
        MirroredArray {
            disks: (0..ndisks).map(|_| Disk::new(geom)).collect(),
            stripe_unit_bytes,
            disk_unit_bytes,
            stats: StorageStats::new(ndisks),
        }
    }

    /// Number of mirrored pairs (the striping width).
    pub fn pairs(&self) -> usize {
        self.disks.len() / 2
    }

}

impl Storage for MirroredArray {
    fn disk_unit_bytes(&self) -> u64 {
        self.disk_unit_bytes
    }

    fn capacity_units(&self) -> u64 {
        self.pairs() as u64 * self.disks[0].geometry().capacity_bytes() / self.disk_unit_bytes
    }

    fn ndisks(&self) -> usize {
        self.disks.len()
    }

    fn submit(&mut self, ready: SimTime, req: &IoRequest) -> IoSpan {
        debug_assert!(req.units > 0 && req.end() <= self.capacity_units());
        let bytes = req.units * self.disk_unit_bytes;
        match req.kind {
            IoKind::Read => {
                self.stats.logical_reads += 1;
                self.stats.logical_bytes_read += bytes;
            }
            IoKind::Write => {
                self.stats.logical_writes += 1;
                self.stats.logical_bytes_written += bytes;
            }
        }
        let start = req.unit * self.disk_unit_bytes;
        let len = req.units * self.disk_unit_bytes;
        let mut begin = SimTime::MAX;
        let mut end = ready;
        for run in striped_runs(start, len, self.stripe_unit_bytes, self.pairs()) {
            let (a, b) = (2 * run.disk, 2 * run.disk + 1);
            let sector = run.start_byte / self.disks[a].geometry().sector_bytes;
            let nsectors = run.len / self.disks[a].geometry().sector_bytes;
            match req.kind {
                IoKind::Write => {
                    // Both replicas must be updated; the write completes when
                    // the slower copy lands.
                    begin = begin
                        .min(self.disks[a].free_at().max(ready))
                        .min(self.disks[b].free_at().max(ready));
                    let ea = self.disks[a].service(ready, sector, nsectors, IoKind::Write);
                    let eb = self.disks[b].service(ready, sector, nsectors, IoKind::Write);
                    end = end.max(ea.max(eb));
                }
                IoKind::Read => {
                    // Serve from the replica that finishes first.
                    let (est_a, _) = self.disks[a].estimate(ready, sector, nsectors);
                    let (est_b, _) = self.disks[b].estimate(ready, sector, nsectors);
                    let pick = if est_a <= est_b { a } else { b };
                    begin = begin.min(self.disks[pick].free_at().max(ready));
                    let completion = self.disks[pick].service(ready, sector, nsectors, IoKind::Read);
                    end = end.max(completion);
                }
            }
        }
        IoSpan { begin: begin.min(end), end }
    }

    fn next_idle(&self) -> SimTime {
        self.disks.iter().map(Disk::free_at).max().unwrap_or(SimTime::ZERO)
    }

    fn stats(&self) -> StorageStats {
        let mut snap = self.stats.clone();
        for (i, d) in self.disks.iter().enumerate() {
            snap.per_disk[i] = d.stats().clone();
        }
        snap
    }

    fn reset_stats(&mut self) {
        for d in &mut self.disks {
            d.reset_stats();
        }
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::KB;

    fn mirror() -> MirroredArray {
        MirroredArray::new(DiskGeometry::wren_iv(), 8, 24 * KB, KB)
    }

    #[test]
    fn capacity_is_half_of_raw() {
        let m = mirror();
        assert_eq!(m.capacity_bytes(), 4 * DiskGeometry::wren_iv().capacity_bytes());
    }

    #[test]
    fn writes_hit_both_replicas() {
        let mut m = mirror();
        m.submit(SimTime::ZERO, &IoRequest::write(0, 8));
        assert_eq!(m.stats().per_disk[0].bytes_written, 8 * KB);
        assert_eq!(m.stats().per_disk[1].bytes_written, 8 * KB);
        assert!((m.stats().write_amplification() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reads_hit_one_replica() {
        let mut m = mirror();
        m.submit(SimTime::ZERO, &IoRequest::read(0, 8));
        let touched = m.stats().per_disk[..2].iter().filter(|d| d.bytes_read > 0).count();
        assert_eq!(touched, 1);
    }

    #[test]
    fn read_prefers_idle_replica() {
        let mut m = mirror();
        // Load replica 0 of pair 0 with a long write queue by writing, then
        // immediately read: the read should land on whichever replica is
        // free sooner — after a mirrored write both are equally busy, so
        // issue an extra read (goes to one) and then another read, which
        // must go to the *other* one.
        m.submit(SimTime::ZERO, &IoRequest::read(0, 24)); // occupies one replica
        m.submit(SimTime::ZERO, &IoRequest::read(0, 24)); // should pick the other
        let reads0 = m.stats().per_disk[0].bytes_read;
        let reads1 = m.stats().per_disk[1].bytes_read;
        assert!(reads0 > 0 && reads1 > 0, "load spreads across replicas: {reads0} vs {reads1}");
    }

    #[test]
    #[should_panic(expected = "even disk count")]
    fn rejects_odd_disk_count() {
        MirroredArray::new(DiskGeometry::wren_iv(), 7, 24 * KB, KB);
    }
}
