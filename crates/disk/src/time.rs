//! Simulation clock types.
//!
//! All event ordering in the simulator uses [`SimTime`], an integral count of
//! **microseconds** since simulation start. Mechanical quantities (seek,
//! rotation, transfer) are computed in `f64` milliseconds and rounded to the
//! microsecond when they become event timestamps, which keeps the event heap
//! totally ordered and the whole simulation deterministic for a given seed.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Microseconds per millisecond.
const US_PER_MS: f64 = 1_000.0;

/// An instant on the simulation clock, in microseconds since time zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// A time later than any the simulator will ever schedule.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds a time from a raw microsecond count.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds a time from (non-negative) milliseconds, rounding to the
    /// nearest microsecond.
    pub fn from_ms(ms: f64) -> Self {
        debug_assert!(ms >= 0.0, "negative timestamp: {ms}");
        SimTime((ms * US_PER_MS).round() as u64)
    }

    /// Raw microsecond count.
    pub const fn as_us(self) -> u64 {
        self.0
    }

    /// This instant expressed in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / US_PER_MS
    }

    /// This instant expressed in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / (US_PER_MS * 1_000.0)
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from a raw microsecond count.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from (non-negative) milliseconds, rounding to the
    /// nearest microsecond.
    pub fn from_ms(ms: f64) -> Self {
        debug_assert!(ms >= 0.0, "negative duration: {ms}");
        SimDuration((ms * US_PER_MS).round() as u64)
    }

    /// Builds a duration from seconds.
    pub fn from_secs(secs: f64) -> Self {
        Self::from_ms(secs * 1_000.0)
    }

    /// Raw microsecond count.
    pub const fn as_us(self) -> u64 {
        self.0
    }

    /// This duration expressed in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / US_PER_MS
    }

    /// This duration expressed in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / (US_PER_MS * 1_000.0)
    }

    /// True when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_round_trips_at_microsecond_resolution() {
        let t = SimTime::from_ms(16.67);
        assert_eq!(t.as_us(), 16_670);
        assert!((t.as_ms() - 16.67).abs() < 1e-9);
    }

    #[test]
    fn ordering_follows_microseconds() {
        assert!(SimTime::from_ms(1.0) < SimTime::from_ms(1.001));
        assert_eq!(SimTime::from_ms(0.0005), SimTime::from_us(1), "rounds to nearest");
    }

    #[test]
    fn arithmetic_saturates() {
        let d = SimTime::ZERO.since(SimTime::from_ms(5.0));
        assert_eq!(d, SimDuration::ZERO);
        assert_eq!(SimTime::MAX + SimDuration::from_ms(1.0), SimTime::MAX);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            t += SimDuration::from_ms(0.5);
        }
        assert_eq!(t, SimTime::from_ms(5.0));
    }

    #[test]
    fn seconds_conversions() {
        assert!((SimDuration::from_secs(10.0).as_secs() - 10.0).abs() < 1e-9);
        assert_eq!(SimDuration::from_secs(10.0).as_us(), 10_000_000);
        assert!((SimTime::from_us(2_500_000).as_secs() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn since_measures_elapsed() {
        let a = SimTime::from_ms(3.0);
        let b = SimTime::from_ms(10.5);
        assert_eq!(b.since(a).as_ms(), 7.5);
        assert_eq!(b - a, SimDuration::from_ms(7.5));
    }
}
