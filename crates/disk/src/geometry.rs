//! Physical disk geometry and the paper's two-parameter seek model.
//!
//! Table 1 of the paper describes each disk by its physical layout (track
//! size, number of cylinders, number of platters) and performance
//! characteristics (rotational speed and seek parameters). The seek model is
//!
//! > If `ST` is the single track seek time and `SI` is the incremental seek
//! > time, then an N track seek takes `ST + N·SI` ms.
//!
//! The default geometry is the CDC 5¼" Wren IV (94171-344) with the
//! simulated values from Table 1 (1600 cylinders instead of the drive's
//! actual 1549).

use serde::{Deserialize, Serialize};

/// Number of bytes in one kibibyte; sizes in the paper are binary units.
pub const KB: u64 = 1024;
/// Number of bytes in one mebibyte.
pub const MB: u64 = 1024 * KB;
/// Number of bytes in one gibibyte.
pub const GB: u64 = 1024 * MB;

/// Physical layout and performance characteristics of one disk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskGeometry {
    /// Number of data surfaces ("platters" in Table 1; the Wren IV records
    /// data on 9 surfaces).
    pub surfaces: u32,
    /// Number of cylinders.
    pub cylinders: u32,
    /// Bytes per track.
    pub track_bytes: u64,
    /// Bytes per sector (the smallest addressable unit on the platter).
    pub sector_bytes: u64,
    /// Time for one full rotation, in milliseconds.
    pub rotation_ms: f64,
    /// `ST`: fixed cost of any seek, in milliseconds.
    pub single_track_seek_ms: f64,
    /// `SI`: additional cost per track of seek distance, in milliseconds.
    pub incremental_seek_ms: f64,
    /// Cost of switching heads between tracks of the same cylinder during a
    /// sequential transfer. Real drives hide most of this with track skew;
    /// the default is a small non-zero value (see DESIGN.md).
    pub head_switch_ms: f64,
}

/// A sector-granular physical position on a disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChsAddress {
    /// Cylinder index.
    pub cylinder: u32,
    /// Surface (head) index within the cylinder.
    pub surface: u32,
    /// Sector index within the track.
    pub sector: u32,
}

impl DiskGeometry {
    /// The CDC Wren IV model with the simulated parameter values of Table 1.
    pub fn wren_iv() -> Self {
        DiskGeometry {
            surfaces: 9,
            cylinders: 1600,
            track_bytes: 24 * KB,
            sector_bytes: 512,
            rotation_ms: 16.67,
            single_track_seek_ms: 5.5,
            incremental_seek_ms: 0.032,
            head_switch_ms: 0.5,
        }
    }

    /// The same drive with `factor`× fewer cylinders, for fast tests and
    /// benches. Mechanics are unchanged, so throughput *percentages* are
    /// comparable with the full-size drive.
    pub fn wren_iv_scaled(factor: u32) -> Self {
        let mut g = Self::wren_iv();
        g.cylinders = (g.cylinders / factor.max(1)).max(4);
        g
    }

    /// A circa-2001 7200 RPM drive (Deskstar-class): ten years of areal
    /// density and spindle speed after the Wren IV. Transfer rates grew
    /// ~20×, seeks only ~4× — the ratio shift that makes contiguity *more*
    /// valuable, not less. Used by the disk-generation ablation.
    pub fn desktop_2001() -> Self {
        DiskGeometry {
            surfaces: 4,
            cylinders: 2048,
            track_bytes: 256 * KB,
            sector_bytes: 512,
            rotation_ms: 8.33,         // 7200 RPM
            single_track_seek_ms: 1.2,
            incremental_seek_ms: 0.003,
            head_switch_ms: 0.3,
        }
    }

    /// The 2001 drive with `factor`× fewer cylinders.
    pub fn desktop_2001_scaled(factor: u32) -> Self {
        let mut g = Self::desktop_2001();
        g.cylinders = (g.cylinders / factor.max(1)).max(4);
        g
    }

    /// Validates internal consistency (sector divides track, non-zero
    /// everything, sane timings). Returns a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        if self.sector_bytes == 0 || self.track_bytes == 0 {
            return Err("sector and track sizes must be non-zero".into());
        }
        if !self.track_bytes.is_multiple_of(self.sector_bytes) {
            return Err(format!(
                "track size {} is not a multiple of sector size {}",
                self.track_bytes, self.sector_bytes
            ));
        }
        if self.surfaces == 0 || self.cylinders == 0 {
            return Err("disk must have at least one surface and cylinder".into());
        }
        if self.rotation_ms <= 0.0 {
            return Err("rotation time must be positive".into());
        }
        if self.single_track_seek_ms < 0.0 || self.incremental_seek_ms < 0.0 || self.head_switch_ms < 0.0 {
            return Err("seek parameters must be non-negative".into());
        }
        Ok(())
    }

    /// Sectors per track.
    pub fn sectors_per_track(&self) -> u64 {
        self.track_bytes / self.sector_bytes
    }

    /// Tracks per cylinder (one per surface).
    pub fn tracks_per_cylinder(&self) -> u64 {
        u64::from(self.surfaces)
    }

    /// Bytes per cylinder.
    pub fn cylinder_bytes(&self) -> u64 {
        self.track_bytes * self.tracks_per_cylinder()
    }

    /// Total formatted capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.cylinder_bytes() * u64::from(self.cylinders)
    }

    /// Total capacity in sectors.
    pub fn capacity_sectors(&self) -> u64 {
        self.capacity_bytes() / self.sector_bytes
    }

    /// Time to transfer one sector past the head, in milliseconds.
    pub fn sector_time_ms(&self) -> f64 {
        self.rotation_ms / self.sectors_per_track() as f64
    }

    /// Seek time between two cylinders per the paper's model: zero when the
    /// head does not move, otherwise `ST + N·SI` where `N` is the distance in
    /// tracks (cylinders).
    pub fn seek_time_ms(&self, from_cylinder: u32, to_cylinder: u32) -> f64 {
        let n = u64::from(from_cylinder.abs_diff(to_cylinder));
        if n == 0 {
            0.0
        } else {
            self.single_track_seek_ms + n as f64 * self.incremental_seek_ms
        }
    }

    /// Cost of crossing from one track to the next during a sequential
    /// transfer: a head switch inside a cylinder, a single-track seek when
    /// the crossing also advances the cylinder.
    pub fn track_crossing_ms(&self, crosses_cylinder: bool) -> f64 {
        if crosses_cylinder {
            self.seek_time_ms(0, 1)
        } else {
            self.head_switch_ms
        }
    }

    /// Maps an absolute sector number to its physical position.
    pub fn locate_sector(&self, sector: u64) -> ChsAddress {
        debug_assert!(sector < self.capacity_sectors(), "sector {sector} out of range");
        let spt = self.sectors_per_track();
        let track = sector / spt;
        let tpc = self.tracks_per_cylinder();
        let narrow = |v: u64| {
            // simlint::allow(r3, "CHS coordinates are bounded by the sector range asserted above")
            u32::try_from(v).unwrap_or_else(|_| unreachable!("CHS coordinate {v} exceeds u32"))
        };
        ChsAddress {
            cylinder: narrow(track / tpc),
            surface: narrow(track % tpc),
            sector: narrow(sector % spt),
        }
    }

    /// The cylinder holding an absolute sector number.
    pub fn cylinder_of_sector(&self, sector: u64) -> u32 {
        self.locate_sector(sector).cylinder
    }

    /// Upper bound on the sustained sequential transfer rate in bytes/ms:
    /// one cylinder per `surfaces` rotations plus the crossing penalties.
    pub fn nominal_sequential_rate(&self) -> f64 {
        let tpc = self.tracks_per_cylinder() as f64;
        let cyl_time = tpc * self.rotation_ms
            + (tpc - 1.0) * self.head_switch_ms
            + self.track_crossing_ms(true);
        self.cylinder_bytes() as f64 / cyl_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wren_iv_matches_table_1() {
        let g = DiskGeometry::wren_iv();
        g.validate().unwrap();
        assert_eq!(g.surfaces, 9);
        assert_eq!(g.cylinders, 1600);
        assert_eq!(g.track_bytes, 24 * KB);
        assert_eq!(g.sectors_per_track(), 48);
        // Table 1: 8 of these disks give a "2.8 G" system.
        let system = 8 * g.capacity_bytes();
        // 2,831,155,200 bytes = 2.83 decimal GB, the paper's "2.8 G".
        assert!((2_600 * MB..2_900 * MB).contains(&system), "system = {system}");
    }

    #[test]
    fn seek_model_is_st_plus_n_si() {
        let g = DiskGeometry::wren_iv();
        assert_eq!(g.seek_time_ms(10, 10), 0.0);
        assert!((g.seek_time_ms(0, 1) - (5.5 + 0.032)).abs() < 1e-12);
        assert!((g.seek_time_ms(100, 0) - (5.5 + 100.0 * 0.032)).abs() < 1e-12);
        // Symmetric in direction.
        assert_eq!(g.seek_time_ms(3, 40), g.seek_time_ms(40, 3));
    }

    #[test]
    fn locate_sector_walks_tracks_then_cylinders() {
        let g = DiskGeometry::wren_iv();
        let spt = g.sectors_per_track();
        assert_eq!(
            g.locate_sector(0),
            ChsAddress { cylinder: 0, surface: 0, sector: 0 }
        );
        assert_eq!(
            g.locate_sector(spt - 1),
            ChsAddress { cylinder: 0, surface: 0, sector: (spt - 1) as u32 }
        );
        assert_eq!(
            g.locate_sector(spt),
            ChsAddress { cylinder: 0, surface: 1, sector: 0 }
        );
        let per_cyl = spt * g.tracks_per_cylinder();
        assert_eq!(
            g.locate_sector(per_cyl * 3 + 5),
            ChsAddress { cylinder: 3, surface: 0, sector: 5 }
        );
    }

    #[test]
    fn sector_time_is_rotation_over_spt() {
        let g = DiskGeometry::wren_iv();
        assert!((g.sector_time_ms() - 16.67 / 48.0).abs() < 1e-12);
    }

    #[test]
    fn nominal_rate_close_to_track_rate() {
        let g = DiskGeometry::wren_iv();
        let track_rate = g.track_bytes as f64 / g.rotation_ms; // ~1.44 KB/ms
        let rate = g.nominal_sequential_rate();
        assert!(rate < track_rate);
        assert!(rate > 0.90 * track_rate, "rate {rate} vs track {track_rate}");
    }

    #[test]
    fn validate_rejects_bad_geometry() {
        let mut g = DiskGeometry::wren_iv();
        g.track_bytes = 1000; // not a multiple of 512
        assert!(g.validate().is_err());
        let mut g = DiskGeometry::wren_iv();
        g.rotation_ms = 0.0;
        assert!(g.validate().is_err());
        let mut g = DiskGeometry::wren_iv();
        g.surfaces = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn desktop_2001_is_a_faster_generation() {
        let old = DiskGeometry::wren_iv();
        let new = DiskGeometry::desktop_2001();
        new.validate().unwrap();
        let rate_ratio = new.nominal_sequential_rate() / old.nominal_sequential_rate();
        let seek_ratio = old.seek_time_ms(0, 100) / new.seek_time_ms(0, 100);
        assert!(rate_ratio > 15.0, "transfer grew ~20x, got {rate_ratio}");
        assert!((2.0..8.0).contains(&seek_ratio), "seeks only ~4x faster, got {seek_ratio}");
    }

    #[test]
    fn scaled_geometry_shrinks_capacity_only() {
        let g = DiskGeometry::wren_iv_scaled(16);
        assert_eq!(g.cylinders, 100);
        assert_eq!(g.rotation_ms, DiskGeometry::wren_iv().rotation_ms);
        assert_eq!(g.capacity_bytes(), DiskGeometry::wren_iv().capacity_bytes() / 16);
    }
}
