//! Parity striping [GRAY90]: "an array of disks containing parity
//! information across multiple disks, but files are allocated to single
//! disks" (§2.1).
//!
//! The logical address space is the concatenation of the disks' data
//! regions, so a file allocated contiguously lives on *one* disk — there is
//! no striping parallelism, which is exactly the trade Gray proposed: RAID-5
//! reliability economics with mirrored-disk-style request behaviour. Each
//! disk reserves the tail `1/N` of its surface as a parity region protecting
//! its neighbours' data; a write therefore pays a read-modify-write of the
//! parity unit on the *next* disk over.
//!
//! This is a behavioural model of Gray's layout (one data disk per request
//! plus one parity RMW on a different disk), not a bit-exact reconstruction
//! of his parity map — see DESIGN.md §"Substitutions".

use crate::disk::Disk;
use crate::geometry::DiskGeometry;
use crate::request::{IoKind, IoRequest, IoSpan, Storage};
use crate::stats::StorageStats;
use crate::time::SimTime;

/// A parity-striped array in Gray's style.
#[derive(Debug, Clone)]
pub struct ParityStripedArray {
    disks: Vec<Disk>,
    disk_unit_bytes: u64,
    /// Bytes of the data region at the front of each disk.
    data_bytes_per_disk: u64,
    stats: StorageStats,
}

impl ParityStripedArray {
    /// Builds a parity-striped array over `ndisks ≥ 3` identical disks.
    pub fn new(geom: DiskGeometry, ndisks: usize, disk_unit_bytes: u64) -> Self {
        assert!(ndisks >= 3, "parity striping requires at least 3 disks");
        assert!(disk_unit_bytes > 0 && disk_unit_bytes.is_multiple_of(geom.sector_bytes),
            "disk unit must be a positive multiple of the sector size");
        let raw = geom.capacity_bytes();
        // Data region: (N-1)/N of the disk, rounded down to a whole unit.
        let data = raw / ndisks as u64 * (ndisks as u64 - 1);
        let data = data - data % disk_unit_bytes;
        ParityStripedArray {
            disks: (0..ndisks).map(|_| Disk::new(geom)).collect(),
            disk_unit_bytes,
            data_bytes_per_disk: data,
            stats: StorageStats::new(ndisks),
        }
    }

    /// Bytes of data region per disk.
    pub fn data_bytes_per_disk(&self) -> u64 {
        self.data_bytes_per_disk
    }

    /// Maps a logical byte to (disk, physical byte within its data region).
    fn map(&self, byte: u64) -> (usize, u64) {
        let disk = (byte / self.data_bytes_per_disk) as usize;
        (disk, byte % self.data_bytes_per_disk)
    }

    /// The parity location protecting data byte `phys` of disk `disk`:
    /// the corresponding slot in the parity region of the next disk over.
    fn parity_of(&self, disk: usize, phys: u64) -> (usize, u64) {
        let n = self.disks.len() as u64;
        let pdisk = (disk + 1) % self.disks.len();
        let slot = phys / (n - 1) / self.disk_unit_bytes * self.disk_unit_bytes;
        let region = self.disks[0].geometry().capacity_bytes() - self.data_bytes_per_disk;
        (pdisk, self.data_bytes_per_disk + slot.min(region - self.disk_unit_bytes))
    }

}

impl Storage for ParityStripedArray {
    fn disk_unit_bytes(&self) -> u64 {
        self.disk_unit_bytes
    }

    fn capacity_units(&self) -> u64 {
        self.disks.len() as u64 * self.data_bytes_per_disk / self.disk_unit_bytes
    }

    fn ndisks(&self) -> usize {
        self.disks.len()
    }

    fn submit(&mut self, ready: SimTime, req: &IoRequest) -> IoSpan {
        debug_assert!(req.units > 0 && req.end() <= self.capacity_units());
        let bytes = req.units * self.disk_unit_bytes;
        let start = req.unit * self.disk_unit_bytes;
        let mut begin = SimTime::MAX;
        let mut completion = ready;
        match req.kind {
            IoKind::Read => {
                self.stats.logical_reads += 1;
                self.stats.logical_bytes_read += bytes;
            }
            IoKind::Write => {
                self.stats.logical_writes += 1;
                self.stats.logical_bytes_written += bytes;
            }
        }
        // Split at data-region (disk) boundaries; runs inside a region are
        // physically contiguous on a single disk.
        let mut cursor = start;
        let end_byte = start + bytes;
        while cursor < end_byte {
            let (disk, phys) = self.map(cursor);
            let run = (self.data_bytes_per_disk - phys).min(end_byte - cursor);
            match req.kind {
                IoKind::Read => {
                    begin = begin.min(self.disks[disk].free_at().max(ready));
                    let end = self.disks[disk].service_bytes(ready, phys, run, IoKind::Read);
                    completion = completion.max(end);
                }
                IoKind::Write => {
                    // Data write plus a parity RMW on the neighbour disk.
                    let (pdisk, pbyte) = self.parity_of(disk, phys);
                    begin = begin
                        .min(self.disks[disk].free_at().max(ready))
                        .min(self.disks[pdisk].free_at().max(ready));
                    let plen = (run / (self.disks.len() as u64 - 1)).max(self.disk_unit_bytes);
                    let plen = plen - plen % self.disk_unit_bytes;
                    let plen = plen.min(self.disks[0].geometry().capacity_bytes() - pbyte);
                    let old_data = self.disks[disk].service_bytes(ready, phys, run, IoKind::Read);
                    let old_parity = self.disks[pdisk].service_bytes(ready, pbyte, plen, IoKind::Read);
                    let reads_done = old_data.max(old_parity);
                    let dw = self.disks[disk].service_bytes(reads_done, phys, run, IoKind::Write);
                    let pw = self.disks[pdisk].service_bytes(reads_done, pbyte, plen, IoKind::Write);
                    completion = completion.max(dw.max(pw));
                }
            }
            cursor += run;
        }
        IoSpan { begin: begin.min(completion), end: completion }
    }

    fn next_idle(&self) -> SimTime {
        self.disks.iter().map(Disk::free_at).max().unwrap_or(SimTime::ZERO)
    }

    fn stats(&self) -> StorageStats {
        let mut snap = self.stats.clone();
        for (i, d) in self.disks.iter().enumerate() {
            snap.per_disk[i] = d.stats().clone();
        }
        snap
    }

    fn reset_stats(&mut self) {
        for d in &mut self.disks {
            d.reset_stats();
        }
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::KB;

    fn psa() -> ParityStripedArray {
        ParityStripedArray::new(DiskGeometry::wren_iv(), 8, KB)
    }

    #[test]
    fn capacity_reserves_one_nth_for_parity() {
        let p = psa();
        let raw = 8 * DiskGeometry::wren_iv().capacity_bytes();
        let cap = p.capacity_bytes();
        assert!(cap <= raw * 7 / 8);
        assert!(cap > raw * 6 / 8);
    }

    #[test]
    fn reads_stay_on_one_disk() {
        let mut p = psa();
        p.submit(SimTime::ZERO, &IoRequest::read(0, 1024)); // 1 MB, well inside disk 0
        let touched = p.stats().per_disk.iter().filter(|d| d.requests > 0).count();
        assert_eq!(touched, 1, "no striping parallelism by design");
    }

    #[test]
    fn logical_space_concatenates_disks() {
        let mut p = psa();
        let per_disk_units = p.data_bytes_per_disk() / KB;
        p.submit(SimTime::ZERO, &IoRequest::read(per_disk_units + 5, 1));
        assert!(p.stats().per_disk[1].bytes_read > 0);
        assert_eq!(p.stats().per_disk[0].bytes_read, 0);
    }

    #[test]
    fn writes_update_neighbour_parity() {
        let mut p = psa();
        p.submit(SimTime::ZERO, &IoRequest::write(0, 8));
        assert!(p.stats().per_disk[0].bytes_written > 0, "data disk written");
        assert!(p.stats().per_disk[1].bytes_written > 0, "parity neighbour written");
        assert!(p.stats().per_disk[0].bytes_read > 0, "RMW reads old data");
        assert!(p.stats().write_amplification() > 1.0);
    }

    #[test]
    fn cross_disk_read_splits() {
        let mut p = psa();
        let per_disk_units = p.data_bytes_per_disk() / KB;
        p.submit(SimTime::ZERO, &IoRequest::read(per_disk_units - 2, 4));
        assert!(p.stats().per_disk[0].bytes_read > 0);
        assert!(p.stats().per_disk[1].bytes_read > 0);
    }
}
