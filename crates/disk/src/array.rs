//! The plain striped disk array — the configuration used for every result
//! published in the paper.
//!
//! Data is striped across `N` disks with a configurable *stripe unit* (§2.1:
//! "the number of bytes allocated on a single disk before allocation is
//! performed on the next disk"). The array exposes a linear logical address
//! space of *disk units*; logical stripe `s` lives on disk `s mod N` at
//! physical stripe slot `s div N`, so a logically contiguous run maps to one
//! physically contiguous run per disk — which is exactly why the paper's
//! allocation policies chase contiguity: it buys both fewer seeks *and* free
//! parallelism.

use crate::disk::Disk;
use crate::geometry::DiskGeometry;
use crate::request::{IoKind, IoRequest, IoSpan, PiecePlan, ShardableStorage, Storage};
use crate::stats::StorageStats;
use crate::time::SimTime;
use serde::{de_field, Serialize, Value};

/// A contiguous physical run on one disk, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysicalRun {
    /// Index of the disk holding the run.
    pub disk: usize,
    /// First physical byte on that disk.
    pub start_byte: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Decomposes a logical byte range into per-disk physical runs under plain
/// striping, merging chunks that are physically adjacent on the same disk.
///
/// The returned runs are ordered by logical position, which is also the
/// order in which each disk must service its own runs.
pub fn striped_runs(start_byte: u64, len: u64, stripe_unit: u64, ndisks: usize) -> Vec<PhysicalRun> {
    debug_assert!(stripe_unit > 0 && ndisks > 0);
    let mut runs: Vec<PhysicalRun> = Vec::new();
    let mut last_per_disk: Vec<Option<usize>> = vec![None; ndisks];
    let mut cursor = start_byte;
    let end = start_byte + len;
    while cursor < end {
        let stripe = cursor / stripe_unit;
        let within = cursor % stripe_unit;
        let chunk = (stripe_unit - within).min(end - cursor);
        let disk = (stripe % ndisks as u64) as usize;
        let phys = (stripe / ndisks as u64) * stripe_unit + within;
        match last_per_disk[disk] {
            Some(idx) if runs[idx].start_byte + runs[idx].len == phys => {
                runs[idx].len += chunk;
            }
            _ => {
                runs.push(PhysicalRun { disk, start_byte: phys, len: chunk });
                last_per_disk[disk] = Some(runs.len() - 1);
            }
        }
        cursor += chunk;
    }
    runs
}

/// An array of identical disks with data striped across all of them and no
/// redundancy (the paper's default: "the results described in this study
/// assume no parity information … and merely stripe the data").
#[derive(Debug, Clone)]
pub struct StripedArray {
    disks: Vec<Disk>,
    /// Member count, kept separately from `disks.len()` so logical-side
    /// geometry (capacity, striping) stays valid while the disks are moved
    /// out to sharded-execution workers via [`ShardableStorage::take_disks`].
    nmembers: usize,
    stripe_unit_bytes: u64,
    disk_unit_bytes: u64,
    /// Usable bytes per member (the smallest disk's capacity, stripe
    /// aligned) — relevant for heterogeneous arrays.
    per_disk_share_bytes: u64,
    stats: StorageStats,
}

impl StripedArray {
    /// Builds an array of `ndisks` identical disks.
    ///
    /// `stripe_unit_bytes` must be a positive multiple of both the sector
    /// size and `disk_unit_bytes`; `disk_unit_bytes` must be a multiple of
    /// the sector size (§2.1 requires the stripe unit ≥ every sector size).
    pub fn new(geom: DiskGeometry, ndisks: usize, stripe_unit_bytes: u64, disk_unit_bytes: u64) -> Self {
        Self::heterogeneous(vec![geom; ndisks], stripe_unit_bytes, disk_unit_bytes)
    }

    /// Builds an array from per-disk geometries — §2.1: "the disk system is
    /// designed to allow multiple heterogeneous devices."
    ///
    /// Striping requires an equal logical share per member, so the usable
    /// space per disk is the *smallest* member's capacity (rounded down to
    /// whole stripe units); larger members' surplus cylinders go unused.
    /// Mechanics stay per-disk: a slow spindle gates every row it serves.
    pub fn heterogeneous(geoms: Vec<DiskGeometry>, stripe_unit_bytes: u64, disk_unit_bytes: u64) -> Self {
        assert!(!geoms.is_empty(), "array needs at least one disk");
        for geom in &geoms {
            // simlint::allow(r3, "constructor contract: an invalid geometry is a caller bug, not a runtime condition")
            geom.validate().expect("invalid disk geometry");
            assert!(disk_unit_bytes > 0 && disk_unit_bytes.is_multiple_of(geom.sector_bytes),
                "disk unit must be a positive multiple of every sector size");
        }
        assert!(stripe_unit_bytes > 0 && stripe_unit_bytes.is_multiple_of(disk_unit_bytes),
            "stripe unit must be a positive multiple of the disk unit");
        let min_capacity = geoms
            .iter()
            .map(DiskGeometry::capacity_bytes)
            .min()
            // simlint::allow(r3, "geoms non-emptiness asserted at the top of the constructor")
            .unwrap_or_else(|| unreachable!("asserted non-empty above"));
        let share = min_capacity / stripe_unit_bytes * stripe_unit_bytes;
        assert!(share > 0, "smallest disk below one stripe unit");
        let ndisks = geoms.len();
        StripedArray {
            disks: geoms.into_iter().map(Disk::new).collect(),
            nmembers: ndisks,
            stripe_unit_bytes,
            disk_unit_bytes,
            per_disk_share_bytes: share,
            stats: StorageStats::new(ndisks),
        }
    }

    /// The stripe unit in bytes.
    pub fn stripe_unit_bytes(&self) -> u64 {
        self.stripe_unit_bytes
    }

    /// Immutable view of the underlying disks.
    pub fn disks(&self) -> &[Disk] {
        &self.disks
    }

    fn account(&mut self, req: &IoRequest) {
        let bytes = req.units * self.disk_unit_bytes;
        match req.kind {
            IoKind::Read => {
                self.stats.logical_reads += 1;
                self.stats.logical_bytes_read += bytes;
            }
            IoKind::Write => {
                self.stats.logical_writes += 1;
                self.stats.logical_bytes_written += bytes;
            }
        }
    }

}

impl Storage for StripedArray {
    fn disk_unit_bytes(&self) -> u64 {
        self.disk_unit_bytes
    }

    fn capacity_units(&self) -> u64 {
        self.nmembers as u64 * self.per_disk_share_bytes / self.disk_unit_bytes
    }

    fn ndisks(&self) -> usize {
        self.nmembers
    }

    fn submit(&mut self, ready: SimTime, req: &IoRequest) -> IoSpan {
        debug_assert!(req.units > 0, "empty request");
        debug_assert!(req.end() <= self.capacity_units(), "request beyond array end");
        self.account(req);
        let start = req.unit * self.disk_unit_bytes;
        let len = req.units * self.disk_unit_bytes;
        let mut begin = SimTime::MAX;
        let mut end = ready;
        for run in striped_runs(start, len, self.stripe_unit_bytes, self.nmembers) {
            begin = begin.min(self.disks[run.disk].free_at().max(ready));
            let completion = self.disks[run.disk].service_bytes(ready, run.start_byte, run.len, req.kind);
            end = end.max(completion);
        }
        IoSpan { begin: begin.min(end), end }
    }

    fn next_idle(&self) -> SimTime {
        self.disks.iter().map(Disk::free_at).max().unwrap_or(SimTime::ZERO)
    }

    fn stats(&self) -> StorageStats {
        let mut snap = self.stats.clone();
        for (i, d) in self.disks.iter().enumerate() {
            snap.per_disk[i] = d.stats().clone();
        }
        snap
    }

    fn reset_stats(&mut self) {
        for d in &mut self.disks {
            d.reset_stats();
        }
        self.stats.reset();
    }

    fn as_shardable(&mut self) -> Option<&mut dyn ShardableStorage> {
        // Plain striping has no cross-disk coupling: every piece touches
        // exactly one disk, so pieces can be serviced independently.
        Some(self)
    }

    fn checkpoint_state(&self) -> Option<Value> {
        if self.disks.len() != self.nmembers {
            // Disks are out with sharded-execution workers; no coherent
            // snapshot exists until they come back.
            return None;
        }
        Some(Value::Object(vec![
            (
                "disks".to_string(),
                Value::Array(self.disks.iter().map(Disk::checkpoint_state).collect()),
            ),
            ("logical".to_string(), self.stats.to_value()),
        ]))
    }

    fn restore_state(&mut self, snapshot: &Value) -> Result<(), String> {
        if self.disks.len() != self.nmembers {
            return Err("cannot restore while member disks are taken".into());
        }
        let Some(Value::Array(disk_snaps)) = snapshot.get("disks") else {
            return Err("array snapshot missing the per-disk states".into());
        };
        if disk_snaps.len() != self.nmembers {
            return Err(format!(
                "snapshot holds {} disks, array has {}",
                disk_snaps.len(),
                self.nmembers
            ));
        }
        let logical: StorageStats = de_field(snapshot, "logical").map_err(|e| e.to_string())?;
        if logical.per_disk.len() != self.nmembers {
            return Err(format!(
                "logical stats cover {} disks, array has {}",
                logical.per_disk.len(),
                self.nmembers
            ));
        }
        // Validate every member against its geometry before committing any.
        let mut disks = self.disks.clone();
        for (disk, snap) in disks.iter_mut().zip(disk_snaps) {
            disk.restore_checkpoint_state(snap)?;
        }
        self.disks = disks;
        self.stats = logical;
        Ok(())
    }
}

impl ShardableStorage for StripedArray {
    fn plan_pieces(&mut self, req: &IoRequest, out: &mut Vec<PiecePlan>) {
        // Mirrors `submit` minus the servicing: same validation, same
        // logical accounting, same run decomposition in the same order.
        debug_assert!(req.units > 0, "empty request");
        debug_assert!(req.end() <= self.capacity_units(), "request beyond array end");
        self.account(req);
        let start = req.unit * self.disk_unit_bytes;
        let len = req.units * self.disk_unit_bytes;
        for run in striped_runs(start, len, self.stripe_unit_bytes, self.nmembers) {
            out.push(PiecePlan {
                disk: run.disk,
                start_byte: run.start_byte,
                len_bytes: run.len,
                kind: req.kind,
            });
        }
    }

    fn take_disks(&mut self) -> Vec<Disk> {
        debug_assert_eq!(self.disks.len(), self.nmembers, "disks already taken");
        std::mem::take(&mut self.disks)
    }

    fn restore_disks(&mut self, disks: Vec<Disk>) {
        debug_assert!(self.disks.is_empty(), "restoring over live disks");
        debug_assert_eq!(disks.len(), self.nmembers, "wrong member count restored");
        self.disks = disks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::KB;

    fn array() -> StripedArray {
        StripedArray::new(DiskGeometry::wren_iv(), 8, 24 * KB, KB)
    }

    #[test]
    fn capacity_is_eight_disks() {
        let a = array();
        assert_eq!(a.capacity_bytes(), 8 * DiskGeometry::wren_iv().capacity_bytes());
        assert_eq!(a.capacity_units() * KB, a.capacity_bytes());
    }

    #[test]
    fn runs_round_robin_across_disks() {
        // 4 stripe units starting at 0 → disks 0,1,2,3, each one chunk.
        let runs = striped_runs(0, 4 * 24 * KB, 24 * KB, 8);
        assert_eq!(runs.len(), 4);
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.disk, i);
            assert_eq!(r.start_byte, 0);
            assert_eq!(r.len, 24 * KB);
        }
    }

    #[test]
    fn runs_merge_physically_adjacent_chunks() {
        // Two full rows across 4 disks → each disk gets ONE 2-stripe-unit run.
        let su = 24 * KB;
        let runs = striped_runs(0, 8 * su, su, 4);
        assert_eq!(runs.len(), 4);
        for r in &runs {
            assert_eq!(r.len, 2 * su);
            assert_eq!(r.start_byte, 0);
        }
    }

    #[test]
    fn runs_handle_unaligned_ends() {
        let su = 24 * KB;
        // Start mid-stripe-unit, cover 1.5 units.
        let runs = striped_runs(su / 2, su + su / 2, su, 8);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0], PhysicalRun { disk: 0, start_byte: su / 2, len: su / 2 });
        assert_eq!(runs[1], PhysicalRun { disk: 1, start_byte: 0, len: su });
        let total: u64 = runs.iter().map(|r| r.len).sum();
        assert_eq!(total, su + su / 2);
    }

    #[test]
    fn runs_conserve_bytes_and_stay_in_bounds() {
        for (start, len) in [(0u64, 1u64), (1000, 24 * KB * 17 + 13), (24 * KB * 5, 512)] {
            let runs = striped_runs(start, len, 24 * KB, 8);
            assert_eq!(runs.iter().map(|r| r.len).sum::<u64>(), len);
            for r in &runs {
                assert!(r.disk < 8);
            }
        }
    }

    #[test]
    fn small_request_touches_one_disk() {
        let mut a = array();
        a.submit(SimTime::ZERO, &IoRequest::read(0, 8)); // 8 KB inside one 24 KB stripe unit
        let stats = a.stats();
        let busy = stats.per_disk.iter().filter(|d| d.requests > 0).count();
        assert_eq!(busy, 1);
        assert_eq!(a.stats().logical_bytes_read, 8 * KB);
    }

    #[test]
    fn large_request_engages_all_disks_in_parallel() {
        let mut a = array();
        // One full row: 8 × 24 KB.
        let end_row = a.submit(SimTime::ZERO, &IoRequest::read(0, 8 * 24)).end;
        let busy = a.stats().per_disk.iter().filter(|d| d.requests > 0).count();
        assert_eq!(busy, 8);

        // Same bytes on a single disk would take ~8× the transfer time; the
        // parallel version must be far faster than serial.
        let mut single = Disk::new(DiskGeometry::wren_iv());
        let serial_end = single.service_bytes(SimTime::ZERO, 0, 8 * 24 * KB, IoKind::Read);
        assert!(end_row.as_ms() < serial_end.as_ms() / 3.0,
            "parallel {} vs serial {}", end_row, serial_end);
    }

    #[test]
    fn write_accounting_separates_directions() {
        let mut a = array();
        a.submit(SimTime::ZERO, &IoRequest::write(0, 4));
        a.submit(SimTime::ZERO, &IoRequest::read(100, 2));
        assert_eq!(a.stats().logical_writes, 1);
        assert_eq!(a.stats().logical_reads, 1);
        assert_eq!(a.stats().logical_bytes_written, 4 * KB);
        assert_eq!(a.stats().logical_bytes_read, 2 * KB);
        assert!((a.stats().write_amplification() - 1.0).abs() < 1e-12, "no redundancy");
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut a = array();
        a.submit(SimTime::ZERO, &IoRequest::read(0, 8 * 24));
        a.reset_stats();
        assert_eq!(a.stats().combined().requests, 0);
        assert_eq!(a.stats().logical_reads, 0);
    }

    #[test]
    fn checkpoint_roundtrips_and_validates_shape() {
        let mut a = array();
        a.submit(SimTime::ZERO, &IoRequest::read(0, 8 * 24));
        a.submit(SimTime::ZERO, &IoRequest::write(8 * 24, 4));
        let snap = a.checkpoint_state().unwrap();
        let mut r = array();
        r.restore_state(&snap).unwrap();
        assert_eq!(r.stats(), a.stats());
        assert_eq!(r.next_idle(), a.next_idle());
        // Identical future behavior after restore.
        let s1 = a.submit(SimTime::ZERO, &IoRequest::read(17, 40));
        let s2 = r.submit(SimTime::ZERO, &IoRequest::read(17, 40));
        assert_eq!(s1, s2);
        assert_eq!(r.stats(), a.stats());
        // A snapshot from a differently-sized array is rejected.
        let mut small = StripedArray::new(DiskGeometry::wren_iv(), 4, 24 * KB, KB);
        let err = small.restore_state(&snap).unwrap_err();
        assert!(err.contains("8 disks"), "{err}");
        // No snapshot while the disks are out with sharded workers.
        let taken = a.take_disks();
        assert!(Storage::checkpoint_state(&a).is_none());
        assert!(a.restore_state(&snap).is_err());
        a.restore_disks(taken);
        assert!(Storage::checkpoint_state(&a).is_some());
    }

    #[test]
    #[should_panic(expected = "stripe unit")]
    fn rejects_stripe_unit_not_multiple_of_disk_unit() {
        StripedArray::new(DiskGeometry::wren_iv(), 8, 1536, KB);
    }

    #[test]
    fn span_begin_is_ready_when_idle() {
        let mut a = array();
        let ready = SimTime::from_ms(100.0);
        let span = a.submit(ready, &IoRequest::read(0, 8));
        assert_eq!(span.begin, ready, "idle disk starts immediately");
        assert!(span.end > span.begin);
    }

    #[test]
    fn span_begin_reflects_queueing_delay() {
        let mut a = array();
        // Occupy disk 0 with a long transfer, then submit a small request
        // to the same disk at time zero: it cannot begin until the first
        // one finishes.
        let first = a.submit(SimTime::ZERO, &IoRequest::read(0, 24));
        let second = a.submit(SimTime::ZERO, &IoRequest::read(8 * 24, 8)); // same disk, next row
        assert_eq!(second.begin, first.end, "FCFS queueing delays the start");
        assert!(second.duration_ms() < first.end.as_ms(), "service itself is short");
    }

    #[test]
    fn concurrent_requests_to_different_disks_overlap() {
        let mut a = array();
        let s0 = a.submit(SimTime::ZERO, &IoRequest::read(0, 8)); // disk 0
        let s1 = a.submit(SimTime::ZERO, &IoRequest::read(24, 8)); // disk 1
        assert_eq!(s1.begin, SimTime::ZERO, "different spindle: no wait");
        assert!(s0.end > SimTime::ZERO && s1.end > SimTime::ZERO);
    }

    #[test]
    fn heterogeneous_capacity_is_bounded_by_smallest_member() {
        let geoms = vec![
            DiskGeometry::wren_iv_scaled(16), // 100 cylinders
            DiskGeometry::wren_iv_scaled(8),  // 200 cylinders
            DiskGeometry::wren_iv_scaled(16),
            DiskGeometry::wren_iv_scaled(4),  // 400 cylinders
        ];
        let a = StripedArray::heterogeneous(geoms, 24 * KB, KB);
        assert_eq!(
            a.capacity_bytes(),
            4 * DiskGeometry::wren_iv_scaled(16).capacity_bytes(),
            "every member contributes only the smallest member's share"
        );
        assert_eq!(a.ndisks(), 4);
    }

    #[test]
    fn slow_member_gates_heterogeneous_rows() {
        // One member spins at half speed: a full-row read completes when
        // the slow disk finishes.
        let slow = DiskGeometry { rotation_ms: 33.34, ..DiskGeometry::wren_iv_scaled(16) };
        let geoms = vec![
            DiskGeometry::wren_iv_scaled(16),
            DiskGeometry::wren_iv_scaled(16),
            DiskGeometry::wren_iv_scaled(16),
            slow,
        ];
        let mut hetero = StripedArray::heterogeneous(geoms, 24 * KB, KB);
        let mut uniform = StripedArray::new(DiskGeometry::wren_iv_scaled(16), 4, 24 * KB, KB);
        let h = hetero.submit(SimTime::ZERO, &IoRequest::read(0, 4 * 24)).end;
        let u = uniform.submit(SimTime::ZERO, &IoRequest::read(0, 4 * 24)).end;
        assert!(h.as_ms() > 1.5 * u.as_ms(), "hetero {h} vs uniform {u}");
    }
}
