//! Accounting of per-disk and array-wide activity.

use serde::{Deserialize, Serialize};

/// Number of buckets in [`DiskStats::queue_depth_hist`]: depths `0..=7`
/// get their own bucket, the last bucket collects `8+`.
pub const QUEUE_DEPTH_BUCKETS: usize = 9;

/// Activity counters for one physical disk.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DiskStats {
    /// Number of physical requests serviced.
    pub requests: u64,
    /// Bytes read from the media.
    pub bytes_read: u64,
    /// Bytes written to the media.
    pub bytes_written: u64,
    /// Requests that required the head to move cylinders.
    pub seeks: u64,
    /// Total time spent seeking, in milliseconds.
    pub seek_ms: f64,
    /// Total rotational latency, in milliseconds.
    pub rotational_ms: f64,
    /// Total media transfer time, in milliseconds.
    pub transfer_ms: f64,
    /// Total time the disk was busy (seek + latency + transfer).
    pub busy_ms: f64,
    /// Head-switch penalties accumulated inside `transfer_ms` (a subset of
    /// it, never an additional busy component).
    pub head_switch_ms: f64,
    /// Total time requests waited behind earlier work before the head
    /// started serving them. Queue wait is *not* part of `busy_ms`.
    pub queue_wait_ms: f64,
    /// Requests that had to wait (arrived while the disk was busy).
    pub queued_requests: u64,
    /// Histogram of the in-flight queue depth observed at each request
    /// arrival: bucket `i` counts arrivals that found `i` earlier requests
    /// still in progress (last bucket = `QUEUE_DEPTH_BUCKETS - 1` or more).
    /// Lazily sized: empty until the first observation.
    pub queue_depth_hist: Vec<u64>,
}

impl DiskStats {
    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = DiskStats::default();
    }

    /// Records the queue depth seen by an arriving request.
    pub fn observe_queue_depth(&mut self, depth: usize) {
        if self.queue_depth_hist.is_empty() {
            self.queue_depth_hist = vec![0; QUEUE_DEPTH_BUCKETS];
        }
        let bucket = depth.min(QUEUE_DEPTH_BUCKETS - 1);
        self.queue_depth_hist[bucket] += 1;
    }

    /// Total bytes moved in either direction.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Fraction of busy time spent actually transferring data (the paper's
    /// motivation: read-optimized layouts maximize this).
    pub fn transfer_efficiency(&self) -> f64 {
        if self.busy_ms <= 0.0 {
            0.0
        } else {
            self.transfer_ms / self.busy_ms
        }
    }

    /// Merges another disk's counters into this one.
    pub fn merge(&mut self, other: &DiskStats) {
        self.requests += other.requests;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.seeks += other.seeks;
        self.seek_ms += other.seek_ms;
        self.rotational_ms += other.rotational_ms;
        self.transfer_ms += other.transfer_ms;
        self.busy_ms += other.busy_ms;
        self.head_switch_ms += other.head_switch_ms;
        self.queue_wait_ms += other.queue_wait_ms;
        self.queued_requests += other.queued_requests;
        if !other.queue_depth_hist.is_empty() {
            if self.queue_depth_hist.len() < other.queue_depth_hist.len() {
                self.queue_depth_hist.resize(other.queue_depth_hist.len(), 0);
            }
            for (mine, theirs) in self.queue_depth_hist.iter_mut().zip(&other.queue_depth_hist) {
                *mine += *theirs;
            }
        }
    }
}

/// Aggregate view over a whole storage configuration.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StorageStats {
    /// Per-disk counters, indexed by physical disk.
    pub per_disk: Vec<DiskStats>,
    /// Logical read requests submitted to the array.
    pub logical_reads: u64,
    /// Logical write requests submitted to the array.
    pub logical_writes: u64,
    /// Logical bytes read (excludes parity/mirror amplification).
    pub logical_bytes_read: u64,
    /// Logical bytes written (excludes parity/mirror amplification).
    pub logical_bytes_written: u64,
}

impl StorageStats {
    /// Creates stats for an array of `ndisks` disks.
    pub fn new(ndisks: usize) -> Self {
        StorageStats { per_disk: vec![DiskStats::default(); ndisks], ..Default::default() }
    }

    /// Resets every counter.
    pub fn reset(&mut self) {
        let n = self.per_disk.len();
        *self = StorageStats::new(n);
    }

    /// Sum of all per-disk counters.
    pub fn combined(&self) -> DiskStats {
        let mut total = DiskStats::default();
        for d in &self.per_disk {
            total.merge(d);
        }
        total
    }

    /// Logical bytes moved in either direction.
    pub fn logical_bytes_total(&self) -> u64 {
        self.logical_bytes_read + self.logical_bytes_written
    }

    /// Physical-over-logical write amplification (1.0 for a plain array,
    /// 2.0 for mirroring, higher for RAID-5 small writes).
    pub fn write_amplification(&self) -> f64 {
        let physical: u64 = self.per_disk.iter().map(|d| d.bytes_written).sum();
        if self.logical_bytes_written == 0 {
            0.0
        } else {
            physical as f64 / self.logical_bytes_written as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = DiskStats { requests: 1, bytes_read: 10, seek_ms: 2.0, busy_ms: 5.0, ..Default::default() };
        let b = DiskStats { requests: 2, bytes_read: 30, seek_ms: 1.0, busy_ms: 7.0, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.requests, 3);
        assert_eq!(a.bytes_read, 40);
        assert_eq!(a.seek_ms, 3.0);
        assert_eq!(a.busy_ms, 12.0);
    }

    #[test]
    fn merge_adds_queue_counters_and_histograms() {
        let mut a = DiskStats { queue_wait_ms: 1.5, queued_requests: 2, ..Default::default() };
        a.observe_queue_depth(0);
        a.observe_queue_depth(3);
        let mut b = DiskStats { queue_wait_ms: 0.5, queued_requests: 1, head_switch_ms: 2.0, ..Default::default() };
        b.observe_queue_depth(3);
        b.observe_queue_depth(100); // clamps into the overflow bucket
        a.merge(&b);
        assert_eq!(a.queue_wait_ms, 2.0);
        assert_eq!(a.queued_requests, 3);
        assert_eq!(a.head_switch_ms, 2.0);
        assert_eq!(a.queue_depth_hist.len(), QUEUE_DEPTH_BUCKETS);
        assert_eq!(a.queue_depth_hist[0], 1);
        assert_eq!(a.queue_depth_hist[3], 2);
        assert_eq!(a.queue_depth_hist[QUEUE_DEPTH_BUCKETS - 1], 1);
    }

    #[test]
    fn merge_into_empty_histogram_adopts_shape() {
        let mut a = DiskStats::default();
        let mut b = DiskStats::default();
        b.observe_queue_depth(1);
        a.merge(&b);
        assert_eq!(a.queue_depth_hist, b.queue_depth_hist);
        // Merging an empty histogram leaves the shape alone.
        a.merge(&DiskStats::default());
        assert_eq!(a.queue_depth_hist[1], 1);
    }

    #[test]
    fn transfer_efficiency_guards_division() {
        let d = DiskStats::default();
        assert_eq!(d.transfer_efficiency(), 0.0);
        let d = DiskStats { transfer_ms: 8.0, busy_ms: 10.0, ..Default::default() };
        assert!((d.transfer_efficiency() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn combined_sums_disks() {
        let mut s = StorageStats::new(3);
        s.per_disk[0].bytes_read = 5;
        s.per_disk[2].bytes_read = 7;
        assert_eq!(s.combined().bytes_read, 12);
    }

    #[test]
    fn write_amplification_ratio() {
        let mut s = StorageStats::new(2);
        s.logical_bytes_written = 100;
        s.per_disk[0].bytes_written = 100;
        s.per_disk[1].bytes_written = 100;
        assert!((s.write_amplification() - 2.0).abs() < 1e-12);
        s.logical_bytes_written = 0;
        assert_eq!(s.write_amplification(), 0.0);
    }

    #[test]
    fn reset_clears_but_keeps_shape() {
        let mut s = StorageStats::new(4);
        s.logical_reads = 9;
        s.per_disk[1].requests = 3;
        s.reset();
        assert_eq!(s.per_disk.len(), 4);
        assert_eq!(s.logical_reads, 0);
        assert_eq!(s.per_disk[1].requests, 0);
    }
}
