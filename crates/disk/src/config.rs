//! Declarative description of a disk system, used by the simulator and the
//! experiment drivers to build [`Storage`] instances.

use crate::array::StripedArray;
use crate::geometry::{DiskGeometry, KB};
use crate::mirror::MirroredArray;
use crate::parity_stripe::ParityStripedArray;
use crate::raid::Raid5Array;
use crate::request::Storage;
use serde::{Deserialize, Serialize};

/// Which of the four §2.1 configurations to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArrayLayout {
    /// Plain striping, no redundancy — the paper's default.
    Striped,
    /// Striping across mirrored pairs.
    Mirrored,
    /// Rotated-parity RAID-5.
    Raid5,
    /// Gray's parity striping (files on single disks).
    ParityStriped,
}

/// A complete disk-system description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Per-disk geometry (all disks identical; Table 1 default).
    pub geometry: DiskGeometry,
    /// Number of physical disks.
    pub ndisks: usize,
    /// Stripe unit in bytes (§2.1; default one track = 24 KB).
    pub stripe_unit_bytes: u64,
    /// Disk unit in bytes — the minimum transfer unit, "the smaller of the
    /// smallest block size supported by the file system and the stripe size".
    pub disk_unit_bytes: u64,
    /// Redundancy layout.
    pub layout: ArrayLayout,
}

impl ArrayConfig {
    /// The paper's simulated system: 8 Wren IV drives, 2.8 GB total, striped
    /// by track, addressed in 1 KB disk units.
    pub fn paper_default() -> Self {
        ArrayConfig {
            geometry: DiskGeometry::wren_iv(),
            ndisks: 8,
            stripe_unit_bytes: 24 * KB,
            disk_unit_bytes: KB,
            layout: ArrayLayout::Striped,
        }
    }

    /// The paper system scaled down by `factor` in capacity (same mechanics,
    /// same disk count) — used by tests and criterion benches so full sweeps
    /// stay fast. Throughput *percentages* remain comparable.
    pub fn scaled(factor: u32) -> Self {
        ArrayConfig { geometry: DiskGeometry::wren_iv_scaled(factor), ..Self::paper_default() }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.geometry.validate()?;
        if self.ndisks == 0 {
            return Err("array needs at least one disk".into());
        }
        if self.disk_unit_bytes == 0 || !self.disk_unit_bytes.is_multiple_of(self.geometry.sector_bytes) {
            return Err("disk unit must be a positive multiple of the sector size".into());
        }
        if !self.stripe_unit_bytes.is_multiple_of(self.disk_unit_bytes) || self.stripe_unit_bytes == 0 {
            return Err("stripe unit must be a positive multiple of the disk unit".into());
        }
        if !self.geometry.capacity_bytes().is_multiple_of(self.stripe_unit_bytes) {
            return Err("disk capacity must be a whole number of stripe units".into());
        }
        match self.layout {
            ArrayLayout::Mirrored if !self.ndisks.is_multiple_of(2) || self.ndisks < 2 => {
                Err("mirroring requires an even number of disks".into())
            }
            ArrayLayout::Raid5 | ArrayLayout::ParityStriped if self.ndisks < 3 => {
                Err("parity layouts require at least 3 disks".into())
            }
            _ => Ok(()),
        }
    }

    /// Builds the configured storage.
    pub fn build(&self) -> Box<dyn Storage> {
        // simlint::allow(r3, "constructor contract: an invalid config is a caller bug, not a runtime condition")
        self.validate().expect("invalid array configuration");
        match self.layout {
            ArrayLayout::Striped => Box::new(StripedArray::new(
                self.geometry, self.ndisks, self.stripe_unit_bytes, self.disk_unit_bytes,
            )),
            ArrayLayout::Mirrored => Box::new(MirroredArray::new(
                self.geometry, self.ndisks, self.stripe_unit_bytes, self.disk_unit_bytes,
            )),
            ArrayLayout::Raid5 => Box::new(Raid5Array::new(
                self.geometry, self.ndisks, self.stripe_unit_bytes, self.disk_unit_bytes,
            )),
            ArrayLayout::ParityStriped => Box::new(ParityStripedArray::new(
                self.geometry, self.ndisks, self.disk_unit_bytes,
            )),
        }
    }

    /// Usable capacity of the configured storage, in disk units.
    pub fn capacity_units(&self) -> u64 {
        let per_disk = self.geometry.capacity_bytes();
        let bytes = match self.layout {
            ArrayLayout::Striped => per_disk * self.ndisks as u64,
            ArrayLayout::Mirrored => per_disk * self.ndisks as u64 / 2,
            ArrayLayout::Raid5 => per_disk * (self.ndisks as u64 - 1),
            ArrayLayout::ParityStriped => {
                let data = per_disk / self.ndisks as u64 * (self.ndisks as u64 - 1);
                (data - data % self.disk_unit_bytes) * self.ndisks as u64
            }
        };
        bytes / self.disk_unit_bytes
    }

    /// Usable capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_units() * self.disk_unit_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::MB;

    #[test]
    fn paper_default_matches_table_1() {
        let c = ArrayConfig::paper_default();
        c.validate().unwrap();
        assert_eq!(c.ndisks, 8);
        let cap = c.capacity_bytes();
        assert!((2_600 * MB..2_900 * MB).contains(&cap), "2.8 G system, got {cap}");
    }

    #[test]
    fn build_matches_declared_capacity() {
        for layout in [
            ArrayLayout::Striped,
            ArrayLayout::Mirrored,
            ArrayLayout::Raid5,
            ArrayLayout::ParityStriped,
        ] {
            let c = ArrayConfig { layout, ..ArrayConfig::scaled(16) };
            let s = c.build();
            assert_eq!(s.capacity_units(), c.capacity_units(), "{layout:?}");
            assert_eq!(s.ndisks(), 8, "{layout:?}");
        }
    }

    #[test]
    fn validate_rejects_mismatched_units() {
        let mut c = ArrayConfig::paper_default();
        c.disk_unit_bytes = 1000;
        assert!(c.validate().is_err());
        let mut c = ArrayConfig::paper_default();
        c.stripe_unit_bytes = 25 * KB; // not a multiple of 1 KB? it is; use 1.5 units
        c.disk_unit_bytes = 16 * KB;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_layout_constraints() {
        let mut c = ArrayConfig::paper_default();
        c.layout = ArrayLayout::Mirrored;
        c.ndisks = 5;
        assert!(c.validate().is_err());
        c.layout = ArrayLayout::Raid5;
        c.ndisks = 2;
        assert!(c.validate().is_err());
    }
}
