//! RAID-5: "an array of disks where for each N blocks, there is one block
//! containing parity information for the remaining N blocks" [PATT88].
//!
//! Left-symmetric rotated parity over stripe-unit-sized chunks. Reads touch
//! only data disks. Partial-row writes pay the classic small-write penalty —
//! read old data and old parity, then write new data and new parity — while
//! writes covering a full row compute parity from the new data alone and
//! write everything in parallel. This is the configuration §6 of the paper
//! flags as future work ("the impact of a RAID … will reduce the small write
//! performance"); the `ablation_raid` bench measures exactly that.

use crate::disk::Disk;
use crate::geometry::DiskGeometry;
use crate::request::{IoKind, IoRequest, IoSpan, Storage};
use crate::stats::StorageStats;
use crate::time::SimTime;

/// One stripe-unit-sized piece of a logical request, located within a row.
#[derive(Debug, Clone, Copy)]
struct RowChunk {
    /// Parity row index.
    row: u64,
    /// Physical disk holding the chunk.
    disk: usize,
    /// Physical byte offset on that disk.
    phys_byte: u64,
    /// Chunk length in bytes.
    len: u64,
}

/// Physical byte span `[start, end)` covered by a non-empty group of
/// same-row chunks — the run of parity that must be read and rewritten.
fn touched_span(chunks: &[RowChunk]) -> (u64, u64) {
    // simlint::allow(r3, "callers group chunks by row and never pass an empty group")
    let first = chunks.first().unwrap_or_else(|| unreachable!("row group is non-empty"));
    chunks.iter().fold((first.phys_byte, first.phys_byte + first.len), |(lo, hi), c| {
        (lo.min(c.phys_byte), hi.max(c.phys_byte + c.len))
    })
}

/// A rotated-parity RAID-5 array.
#[derive(Debug, Clone)]
pub struct Raid5Array {
    disks: Vec<Disk>,
    stripe_unit_bytes: u64,
    disk_unit_bytes: u64,
    stats: StorageStats,
    /// Index of a failed disk, if the array is degraded.
    failed: Option<usize>,
}

impl Raid5Array {
    /// Builds a RAID-5 array over `ndisks ≥ 3` identical disks.
    pub fn new(geom: DiskGeometry, ndisks: usize, stripe_unit_bytes: u64, disk_unit_bytes: u64) -> Self {
        assert!(ndisks >= 3, "RAID-5 requires at least 3 disks");
        assert!(disk_unit_bytes > 0 && disk_unit_bytes.is_multiple_of(geom.sector_bytes),
            "disk unit must be a positive multiple of the sector size");
        assert!(stripe_unit_bytes > 0 && stripe_unit_bytes.is_multiple_of(disk_unit_bytes),
            "stripe unit must be a positive multiple of the disk unit");
        assert!(geom.capacity_bytes().is_multiple_of(stripe_unit_bytes),
            "disk capacity must be a whole number of stripe units");
        Raid5Array {
            disks: (0..ndisks).map(|_| Disk::new(geom)).collect(),
            stripe_unit_bytes,
            disk_unit_bytes,
            stats: StorageStats::new(ndisks),
            failed: None,
        }
    }

    /// Marks one disk as failed: the array keeps running *degraded*. Reads
    /// of lost chunks reconstruct from every surviving disk; writes update
    /// only the surviving members.
    pub fn fail_disk(&mut self, disk: usize) {
        assert!(disk < self.disks.len());
        assert!(self.failed.is_none(), "single-failure model");
        self.failed = Some(disk);
    }

    /// The failed disk, if any.
    pub fn failed_disk(&self) -> Option<usize> {
        self.failed
    }

    /// Rebuilds the failed disk onto a fresh replacement: streams every
    /// surviving disk in full, then streams the reconstructed contents onto
    /// the replacement. Returns the rebuild completion time; the array is
    /// healthy afterwards.
    pub fn rebuild(&mut self, ready: SimTime) -> SimTime {
        let Some(failed) = self.failed else {
            // Nothing to rebuild: the array is already healthy.
            return ready;
        };
        let sectors = self.disks[0].geometry().capacity_sectors();
        let mut reads_done = ready;
        for d in 0..self.disks.len() {
            if d != failed {
                let end = self.disks[d].service(ready, 0, sectors, IoKind::Read);
                reads_done = reads_done.max(end);
            }
        }
        // Fresh replacement spindle; the write streams after reconstruction.
        self.disks[failed] = Disk::new(*self.disks[0].geometry());
        let end = self.disks[failed].service(reads_done, 0, sectors, IoKind::Write);
        self.failed = None;
        end
    }

    /// Data disks per row.
    fn data_width(&self) -> u64 {
        self.disks.len() as u64 - 1
    }

    /// The disk holding row `row`'s parity (rotates left-symmetrically).
    pub fn parity_disk(&self, row: u64) -> usize {
        let n = self.disks.len() as u64;
        (n - 1 - row % n) as usize
    }

    /// Maps a logical data-stripe index to (row, physical disk).
    fn map_stripe(&self, stripe: u64) -> (u64, usize) {
        let row = stripe / self.data_width();
        let pos = (stripe % self.data_width()) as usize;
        let pd = self.parity_disk(row);
        let disk = if pos < pd { pos } else { pos + 1 };
        (row, disk)
    }

    /// Decomposes a logical byte range into row chunks.
    fn chunks(&self, start_byte: u64, len: u64) -> Vec<RowChunk> {
        let su = self.stripe_unit_bytes;
        let mut out = Vec::new();
        let mut cursor = start_byte;
        let end = start_byte + len;
        while cursor < end {
            let stripe = cursor / su;
            let within = cursor % su;
            let chunk = (su - within).min(end - cursor);
            let (row, disk) = self.map_stripe(stripe);
            out.push(RowChunk { row, disk, phys_byte: row * su + within, len: chunk });
            cursor += chunk;
        }
        out
    }

    fn service(&mut self, disk: usize, ready: SimTime, phys_byte: u64, len: u64, kind: IoKind) -> SimTime {
        self.disks[disk].service_bytes(ready, phys_byte, len, kind)
    }

    fn begin_at(&self, disk: usize, ready: SimTime) -> SimTime {
        self.disks[disk].free_at().max(ready)
    }

}

impl Storage for Raid5Array {
    fn disk_unit_bytes(&self) -> u64 {
        self.disk_unit_bytes
    }

    fn capacity_units(&self) -> u64 {
        self.data_width() * self.disks[0].geometry().capacity_bytes() / self.disk_unit_bytes
    }

    fn ndisks(&self) -> usize {
        self.disks.len()
    }

    fn submit(&mut self, ready: SimTime, req: &IoRequest) -> IoSpan {
        debug_assert!(req.units > 0 && req.end() <= self.capacity_units());
        let bytes = req.units * self.disk_unit_bytes;
        let start = req.unit * self.disk_unit_bytes;
        let mut begin = SimTime::MAX;
        let mut completion = ready;
        match req.kind {
            IoKind::Read => {
                self.stats.logical_reads += 1;
                self.stats.logical_bytes_read += bytes;
                for c in self.chunks(start, bytes) {
                    if Some(c.disk) == self.failed {
                        // Reconstruct the lost chunk: read the same span
                        // from every surviving disk and XOR (the XOR itself
                        // is free; the disk traffic is not).
                        for d in 0..self.disks.len() {
                            if Some(d) == self.failed {
                                continue;
                            }
                            begin = begin.min(self.begin_at(d, ready));
                            let end = self.service(d, ready, c.phys_byte, c.len, IoKind::Read);
                            completion = completion.max(end);
                        }
                    } else {
                        begin = begin.min(self.begin_at(c.disk, ready));
                        let end = self.service(c.disk, ready, c.phys_byte, c.len, IoKind::Read);
                        completion = completion.max(end);
                    }
                }
            }
            IoKind::Write => {
                self.stats.logical_writes += 1;
                self.stats.logical_bytes_written += bytes;
                // Group chunks by parity row; each row commits independently.
                let chunks = self.chunks(start, bytes);
                let su = self.stripe_unit_bytes;
                let mut i = 0;
                while i < chunks.len() {
                    let row = chunks[i].row;
                    let mut j = i;
                    let mut row_bytes = 0;
                    while j < chunks.len() && chunks[j].row == row {
                        row_bytes += chunks[j].len;
                        j += 1;
                    }
                    let pd = self.parity_disk(row);
                    let full_row = row_bytes == self.data_width() * su;
                    if full_row {
                        // Parity computed from new data: write all surviving
                        // disks at once (a failed member's share is simply
                        // lost until rebuild).
                        for c in &chunks[i..j] {
                            if Some(c.disk) == self.failed {
                                continue;
                            }
                            begin = begin.min(self.begin_at(c.disk, ready));
                            let end = self.service(c.disk, ready, c.phys_byte, c.len, IoKind::Write);
                            completion = completion.max(end);
                        }
                        if Some(pd) != self.failed {
                            begin = begin.min(self.begin_at(pd, ready));
                            let end = self.service(pd, ready, row * su, su, IoKind::Write);
                            completion = completion.max(end);
                        }
                    } else if self.failed.is_some()
                        && (Some(pd) == self.failed
                            || chunks[i..j].iter().any(|c| Some(c.disk) == self.failed))
                    {
                        // Degraded partial-row write touching the failure:
                        // reconstruct-write — read the touched span from
                        // every surviving disk, then write the surviving
                        // members of the new state.
                        let (p_start, p_end) = touched_span(&chunks[i..j]);
                        let mut reads_done = ready;
                        for d in 0..self.disks.len() {
                            if Some(d) == self.failed {
                                continue;
                            }
                            begin = begin.min(self.begin_at(d, ready));
                            let end = self.service(d, ready, p_start, p_end - p_start, IoKind::Read);
                            reads_done = reads_done.max(end);
                        }
                        for c in &chunks[i..j] {
                            if Some(c.disk) == self.failed {
                                continue;
                            }
                            let end = self.service(c.disk, reads_done, c.phys_byte, c.len, IoKind::Write);
                            completion = completion.max(end);
                        }
                        if Some(pd) != self.failed {
                            let end =
                                self.service(pd, reads_done, p_start, p_end - p_start, IoKind::Write);
                            completion = completion.max(end);
                        }
                    } else {
                        // Read-modify-write: old data + old parity first, then
                        // the new data and new parity once both reads land.
                        let mut reads_done = ready;
                        for c in &chunks[i..j] {
                            begin = begin.min(self.begin_at(c.disk, ready));
                            let end = self.service(c.disk, ready, c.phys_byte, c.len, IoKind::Read);
                            reads_done = reads_done.max(end);
                        }
                        // Parity is read (and later rewritten) only where the
                        // row is touched: one run covering the touched span.
                        let (p_start, p_end) = touched_span(&chunks[i..j]);
                        begin = begin.min(self.begin_at(pd, ready));
                        let end = self.service(pd, ready, p_start, p_end - p_start, IoKind::Read);
                        reads_done = reads_done.max(end);
                        for c in &chunks[i..j] {
                            let end = self.service(c.disk, reads_done, c.phys_byte, c.len, IoKind::Write);
                            completion = completion.max(end);
                        }
                        let end = self.service(pd, reads_done, p_start, p_end - p_start, IoKind::Write);
                        completion = completion.max(end);
                    }
                    i = j;
                }
            }
        }
        IoSpan { begin: begin.min(completion), end: completion }
    }

    fn next_idle(&self) -> SimTime {
        self.disks.iter().map(Disk::free_at).max().unwrap_or(SimTime::ZERO)
    }

    fn stats(&self) -> StorageStats {
        let mut snap = self.stats.clone();
        for (i, d) in self.disks.iter().enumerate() {
            snap.per_disk[i] = d.stats().clone();
        }
        snap
    }

    fn reset_stats(&mut self) {
        for d in &mut self.disks {
            d.reset_stats();
        }
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::KB;

    fn raid() -> Raid5Array {
        Raid5Array::new(DiskGeometry::wren_iv(), 8, 24 * KB, KB)
    }

    #[test]
    fn capacity_excludes_parity() {
        let r = raid();
        assert_eq!(r.capacity_bytes(), 7 * DiskGeometry::wren_iv().capacity_bytes());
    }

    #[test]
    fn parity_rotates_over_rows() {
        let r = raid();
        let disks: Vec<_> = (0..8).map(|row| r.parity_disk(row)).collect();
        assert_eq!(disks, vec![7, 6, 5, 4, 3, 2, 1, 0]);
        assert_eq!(r.parity_disk(8), 7);
    }

    #[test]
    fn data_mapping_skips_parity_disk() {
        let r = raid();
        // Row 0 has parity on disk 7: stripes 0..7 map to disks 0..7 minus 7.
        for s in 0..7u64 {
            let (row, disk) = r.map_stripe(s);
            assert_eq!(row, 0);
            assert_eq!(disk, s as usize);
        }
        // Row 7 has parity on disk 0: first stripe of that row maps to disk 1.
        let (row, disk) = r.map_stripe(49);
        assert_eq!(row, 7);
        assert_eq!(disk, 1);
    }

    #[test]
    fn reads_never_touch_parity() {
        let mut r = raid();
        r.submit(SimTime::ZERO, &IoRequest::read(0, 7 * 24)); // full row 0 of data
        assert_eq!(r.stats().per_disk[7].requests, 0, "row-0 parity disk untouched");
        assert!((r.stats().write_amplification() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn small_write_pays_rmw() {
        let mut r = raid();
        r.submit(SimTime::ZERO, &IoRequest::write(0, 8)); // 8 KB partial chunk on disk 0, row 0
        let d0 = &r.stats().per_disk[0];
        let d7 = &r.stats().per_disk[7];
        assert_eq!(d0.bytes_read, 8 * KB, "old data read");
        assert_eq!(d0.bytes_written, 8 * KB, "new data written");
        assert_eq!(d7.bytes_read, 8 * KB, "old parity read");
        assert_eq!(d7.bytes_written, 8 * KB, "new parity written");
        assert!((r.stats().write_amplification() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn full_row_write_skips_reads() {
        let mut r = raid();
        r.submit(SimTime::ZERO, &IoRequest::write(0, 7 * 24)); // exactly row 0
        let total = r.stats().combined();
        assert_eq!(total.bytes_read, 0, "no RMW for a full-stripe write");
        assert_eq!(total.bytes_written, 8 * 24 * KB, "7 data + 1 parity chunks");
        let amp = r.stats().write_amplification();
        assert!((amp - 8.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn small_write_slower_than_on_plain_array() {
        use crate::array::StripedArray;
        let mut r = raid();
        let mut a = StripedArray::new(DiskGeometry::wren_iv(), 8, 24 * KB, KB);
        let raid_end = r.submit(SimTime::ZERO, &IoRequest::write(0, 8)).end;
        let plain_end = a.submit(SimTime::ZERO, &IoRequest::write(0, 8)).end;
        assert!(raid_end > plain_end, "RMW must cost more: {raid_end} vs {plain_end}");
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn rejects_two_disks() {
        Raid5Array::new(DiskGeometry::wren_iv(), 2, 24 * KB, KB);
    }

    #[test]
    fn degraded_read_reconstructs_from_all_survivors() {
        let mut r = raid();
        r.fail_disk(0);
        assert_eq!(r.failed_disk(), Some(0));
        // Row 0: parity on disk 7; stripe 0 lives on disk 0.
        r.submit(SimTime::ZERO, &IoRequest::read(0, 24));
        let stats = r.stats();
        assert_eq!(stats.per_disk[0].requests, 0, "failed disk untouched");
        for d in 1..8 {
            assert_eq!(
                stats.per_disk[d].bytes_read,
                24 * KB,
                "survivor {d} contributes to reconstruction"
            );
        }
    }

    #[test]
    fn degraded_read_of_healthy_chunks_is_normal() {
        let mut r = raid();
        r.fail_disk(0);
        // Stripe 1 lives on disk 1: no reconstruction needed.
        r.submit(SimTime::ZERO, &IoRequest::read(24, 24));
        let stats = r.stats();
        let touched = stats.per_disk.iter().filter(|d| d.requests > 0).count();
        assert_eq!(touched, 1);
    }

    #[test]
    fn degraded_reads_cost_more() {
        let healthy_end = raid().submit(SimTime::ZERO, &IoRequest::read(0, 24)).end;
        let mut degraded = raid();
        degraded.fail_disk(0);
        let degraded_end = degraded.submit(SimTime::ZERO, &IoRequest::read(0, 24)).end;
        assert!(degraded_end >= healthy_end, "{degraded_end} vs {healthy_end}");
    }

    #[test]
    fn degraded_write_touching_failure_reconstructs() {
        let mut r = raid();
        r.fail_disk(0);
        // Partial write to stripe 0 (disk 0, failed): survivors are read,
        // parity is rewritten, the failed disk is never touched.
        r.submit(SimTime::ZERO, &IoRequest::write(0, 8));
        let stats = r.stats();
        assert_eq!(stats.per_disk[0].requests, 0);
        assert!(stats.per_disk[7].bytes_written > 0, "parity absorbed the update");
        assert!(stats.per_disk[1].bytes_read > 0, "survivors read for reconstruction");
    }

    #[test]
    fn degraded_write_with_failed_parity_still_lands_data() {
        let mut r = raid();
        r.fail_disk(7); // row 0's parity disk
        r.submit(SimTime::ZERO, &IoRequest::write(0, 8));
        let stats = r.stats();
        assert_eq!(stats.per_disk[7].requests, 0);
        assert_eq!(stats.per_disk[0].bytes_written, 8 * KB, "data still written");
    }

    #[test]
    fn rebuild_restores_health_and_costs_a_full_scan() {
        let mut r = Raid5Array::new(DiskGeometry::wren_iv_scaled(64), 4, 24 * KB, KB);
        r.fail_disk(2);
        let end = r.rebuild(SimTime::ZERO);
        assert_eq!(r.failed_disk(), None);
        // Rebuild >= read a whole disk + write a whole disk, back to back.
        let per_disk = DiskGeometry::wren_iv_scaled(64).capacity_bytes() as f64;
        let rate = DiskGeometry::wren_iv_scaled(64).nominal_sequential_rate();
        let floor = 2.0 * per_disk / rate;
        assert!(end.as_ms() > 0.9 * floor, "rebuild {} ms vs floor {floor} ms", end.as_ms());
        // Healthy again: degraded paths are off.
        r.submit(SimTime::ZERO, &IoRequest::read(0, 24));
        assert!(r.stats().per_disk[2].requests >= 1);
    }

    #[test]
    #[should_panic(expected = "single-failure")]
    fn double_failure_is_rejected() {
        let mut r = raid();
        r.fail_disk(0);
        r.fail_disk(1);
    }
}
