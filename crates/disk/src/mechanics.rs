//! Service-time mechanics: rotational latency and closed-form transfer time.
//!
//! A request's service time decomposes into
//!
//! 1. **seek** — `ST + N·SI` from the head's current cylinder to the target
//!    cylinder ([`DiskGeometry::seek_time_ms`]);
//! 2. **rotational latency** — the platter keeps spinning during the seek, so
//!    latency is computed from the absolute time at which the seek completes:
//!    the rotational *phase* at instant `t` is `(t mod rotation) /
//!    sector_time` sectors, and the head must wait for the target sector to
//!    come around;
//! 3. **transfer** — one sector time per sector, plus a head-switch penalty
//!    per track boundary and a single-track seek per cylinder boundary
//!    (computed in closed form, so multi-hundred-megabyte requests cost O(1)
//!    to evaluate).

use crate::geometry::DiskGeometry;

/// Breakdown of one physical request's service time, all in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServiceBreakdown {
    /// Initial seek to the first sector's cylinder.
    pub seek_ms: f64,
    /// Rotational latency waiting for the first sector.
    pub rotational_ms: f64,
    /// Media transfer including track/cylinder crossing penalties.
    pub transfer_ms: f64,
    /// Head-switch penalties inside the transfer. Informational: this time
    /// is a *subset* of `transfer_ms`, not an additional component, so
    /// `total_ms` stays `seek + rotational + transfer`.
    pub head_switch_ms: f64,
}

impl ServiceBreakdown {
    /// Total service time.
    pub fn total_ms(&self) -> f64 {
        self.seek_ms + self.rotational_ms + self.transfer_ms
    }
}

/// Head switches and cylinder crossings a contiguous run incurs.
///
/// A track boundary inside a cylinder costs a head switch; a cylinder
/// boundary costs a single-track seek instead (the head assembly moves, so
/// no separate switch is charged).
fn crossing_counts(geom: &DiskGeometry, start_sector: u64, nsectors: u64) -> (u64, u64) {
    if nsectors == 0 {
        return (0, 0);
    }
    let spt = geom.sectors_per_track();
    let tpc = geom.tracks_per_cylinder();
    let first_track = start_sector / spt;
    let last_track = (start_sector + nsectors - 1) / spt;
    let track_crossings = last_track - first_track;
    let cylinder_crossings = last_track / tpc - first_track / tpc;
    (track_crossings - cylinder_crossings, cylinder_crossings)
}

/// Rotational phase of the platter at absolute time `at_ms`, expressed as a
/// fractional sector index in `[0, sectors_per_track)`.
///
/// All surfaces share a spindle, so the phase is a property of the disk, not
/// of a track: the sector with index `k` passes under the heads when the
/// phase equals `k`.
pub fn rotational_phase_sectors(geom: &DiskGeometry, at_ms: f64) -> f64 {
    let spt = geom.sectors_per_track() as f64;
    let frac = (at_ms / geom.rotation_ms).rem_euclid(1.0);
    frac * spt
}

/// Tolerance (in sectors) for "the target sector is arriving right now".
///
/// Event timestamps are rounded to the microsecond, so a request that ends
/// exactly at a sector boundary can appear to start a fraction of a
/// microsecond *past* the next sector and would otherwise be charged a
/// phantom full rotation. 0.02 sectors ≈ 7 µs on the Wren IV — far below
/// anything the model resolves, far above the rounding error.
const SECTOR_PHASE_TOLERANCE: f64 = 0.02;

/// Time the head must wait, starting at `at_ms`, for sector-within-track
/// `target_sector` to arrive under it.
pub fn rotational_latency_ms(geom: &DiskGeometry, at_ms: f64, target_sector: u32) -> f64 {
    let spt = geom.sectors_per_track() as f64;
    let phase = rotational_phase_sectors(geom, at_ms);
    let distance = (f64::from(target_sector) - phase).rem_euclid(spt);
    if distance > spt - SECTOR_PHASE_TOLERANCE {
        // Just-missed by less than the timestamp resolution: the sector is
        // effectively under the head.
        return 0.0;
    }
    distance * geom.sector_time_ms()
}

/// Closed-form transfer time for `nsectors` starting at absolute sector
/// `start_sector`, assuming the head is already positioned over the start.
///
/// Charges `sector_time` per sector, `head_switch` per intra-cylinder track
/// boundary, and a single-track seek per cylinder boundary. Track skew is
/// assumed to hide re-synchronisation after crossings (see DESIGN.md).
pub fn transfer_time_ms(geom: &DiskGeometry, start_sector: u64, nsectors: u64) -> f64 {
    if nsectors == 0 {
        return 0.0;
    }
    let (head_switches, cylinder_crossings) = crossing_counts(geom, start_sector, nsectors);
    nsectors as f64 * geom.sector_time_ms()
        + head_switches as f64 * geom.track_crossing_ms(false)
        + cylinder_crossings as f64 * geom.track_crossing_ms(true)
}

/// Full service-time computation for a contiguous physical run.
///
/// `head_cylinder` is where the head currently rests; `ready_ms` is the
/// absolute time at which the disk starts working on this request.
pub fn service_breakdown(
    geom: &DiskGeometry,
    head_cylinder: u32,
    ready_ms: f64,
    start_sector: u64,
    nsectors: u64,
) -> ServiceBreakdown {
    let target = geom.locate_sector(start_sector);
    let seek_ms = geom.seek_time_ms(head_cylinder, target.cylinder);
    let rotational_ms = rotational_latency_ms(geom, ready_ms + seek_ms, target.sector);
    let transfer_ms = transfer_time_ms(geom, start_sector, nsectors);
    let (head_switches, _) = crossing_counts(geom, start_sector, nsectors);
    let head_switch_ms = head_switches as f64 * geom.track_crossing_ms(false);
    ServiceBreakdown { seek_ms, rotational_ms, transfer_ms, head_switch_ms }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> DiskGeometry {
        DiskGeometry::wren_iv()
    }

    #[test]
    fn phase_wraps_each_rotation() {
        let g = g();
        assert_eq!(rotational_phase_sectors(&g, 0.0), 0.0);
        let one_rev = rotational_phase_sectors(&g, g.rotation_ms);
        assert!(one_rev.abs() < 1e-9 || (one_rev - 48.0).abs() < 1e-9);
        let half = rotational_phase_sectors(&g, g.rotation_ms / 2.0);
        assert!((half - 24.0).abs() < 1e-9);
    }

    #[test]
    fn latency_to_current_sector_is_zero() {
        let g = g();
        assert!(rotational_latency_ms(&g, 0.0, 0).abs() < 1e-9);
    }

    #[test]
    fn latency_to_just_missed_sector_is_nearly_full_rotation() {
        let g = g();
        // At t slightly past sector 0's arrival, waiting for sector 0 again
        // costs almost a full rotation.
        let eps = g.sector_time_ms() * 0.5;
        let lat = rotational_latency_ms(&g, eps, 0);
        assert!(lat > g.rotation_ms - g.sector_time_ms());
        assert!(lat < g.rotation_ms);
    }

    #[test]
    fn latency_is_distance_times_sector_time() {
        let g = g();
        let lat = rotational_latency_ms(&g, 0.0, 10);
        assert!((lat - 10.0 * g.sector_time_ms()).abs() < 1e-9);
    }

    #[test]
    fn transfer_single_sector() {
        let g = g();
        assert!((transfer_time_ms(&g, 0, 1) - g.sector_time_ms()).abs() < 1e-12);
    }

    #[test]
    fn transfer_full_track_no_penalty() {
        let g = g();
        let t = transfer_time_ms(&g, 0, g.sectors_per_track());
        assert!((t - g.rotation_ms).abs() < 1e-9);
    }

    #[test]
    fn transfer_across_track_boundary_charges_head_switch() {
        let g = g();
        let spt = g.sectors_per_track();
        let t = transfer_time_ms(&g, spt - 1, 2);
        let expected = 2.0 * g.sector_time_ms() + g.head_switch_ms;
        assert!((t - expected).abs() < 1e-9);
    }

    #[test]
    fn transfer_across_cylinder_boundary_charges_track_seek() {
        let g = g();
        let per_cyl = g.sectors_per_track() * g.tracks_per_cylinder();
        let t = transfer_time_ms(&g, per_cyl - 1, 2);
        let expected = 2.0 * g.sector_time_ms() + g.seek_time_ms(0, 1);
        assert!((t - expected).abs() < 1e-9);
    }

    #[test]
    fn transfer_full_cylinder_counts_switches() {
        let g = g();
        let per_cyl = g.sectors_per_track() * g.tracks_per_cylinder();
        let t = transfer_time_ms(&g, 0, per_cyl);
        let expected = 9.0 * g.rotation_ms + 8.0 * g.head_switch_ms;
        assert!((t - expected).abs() < 1e-9);
    }

    #[test]
    fn transfer_is_additive_over_splits() {
        // Splitting a run at a track boundary must not change total media
        // time (the crossing penalty moves to the rotational term otherwise,
        // so compare pure transfer only for an exact-boundary split).
        let g = g();
        let spt = g.sectors_per_track();
        let whole = transfer_time_ms(&g, 0, 3 * spt);
        let parts = transfer_time_ms(&g, 0, spt)
            + g.head_switch_ms
            + transfer_time_ms(&g, spt, spt)
            + g.head_switch_ms
            + transfer_time_ms(&g, 2 * spt, spt);
        assert!((whole - parts).abs() < 1e-9);
    }

    #[test]
    fn service_breakdown_combines_components() {
        let g = g();
        let b = service_breakdown(&g, 0, 0.0, g.sectors_per_track() * g.tracks_per_cylinder() * 7, 4);
        assert!((b.seek_ms - g.seek_time_ms(0, 7)).abs() < 1e-12);
        assert!(b.rotational_ms >= 0.0 && b.rotational_ms < g.rotation_ms);
        assert!((b.transfer_ms - 4.0 * g.sector_time_ms()).abs() < 1e-12);
        assert!((b.total_ms() - (b.seek_ms + b.rotational_ms + b.transfer_ms)).abs() < 1e-12);
    }

    #[test]
    fn head_switch_component_is_subset_of_transfer() {
        let g = g();
        let per_cyl = g.sectors_per_track() * g.tracks_per_cylinder();
        // A full cylinder crosses 8 intra-cylinder track boundaries.
        let b = service_breakdown(&g, 0, 0.0, 0, per_cyl);
        assert!((b.head_switch_ms - 8.0 * g.head_switch_ms).abs() < 1e-9);
        assert!(b.head_switch_ms < b.transfer_ms, "switch time is inside transfer time");
        // total_ms does NOT double-count the switch component.
        assert!((b.total_ms() - (b.seek_ms + b.rotational_ms + b.transfer_ms)).abs() < 1e-12);
    }

    #[test]
    fn single_track_run_has_no_head_switch() {
        let g = g();
        let b = service_breakdown(&g, 0, 0.0, 3, 4);
        assert_eq!(b.head_switch_ms, 0.0);
    }

    #[test]
    fn zero_length_transfer_is_free() {
        let g = g();
        assert_eq!(transfer_time_ms(&g, 100, 0), 0.0);
    }
}
