//! Disk-system substrate for the `readopt` simulator.
//!
//! This crate models the storage hardware described in §2.1 of Seltzer &
//! Stonebraker, *"Read Optimized File System Designs: A Performance
//! Evaluation"* (ICDE 1991): a set of (possibly heterogeneous) disks that can
//! be configured as
//!
//! * a plain **striped array** ([`StripedArray`]) — the configuration all of
//!   the paper's published results use,
//! * a set of **mirrored disks** ([`MirroredArray`]),
//! * a **RAID-5** array with rotated parity ([`Raid5Array`]), or
//! * a **parity-striped** array in Gray's style ([`ParityStripedArray`]).
//!
//! Each individual [`Disk`] is described by its physical layout (tracks,
//! cylinders, platters) and performance characteristics (rotation speed and
//! the two-parameter seek model `ST + N·SI` from the paper). Service times
//! are computed with an exact rotational phase for the start of each request
//! and a closed-form transfer model that charges a head-switch penalty per
//! track boundary and a single-track seek per cylinder boundary (i.e. a
//! well-skewed drive; see DESIGN.md §"Substitutions").
//!
//! The array types expose a single logical linear address space measured in
//! **disk units** (the minimum unit of transfer between disk and memory,
//! §2.1) through the [`Storage`] trait. Per-disk queueing is modelled as an
//! open FCFS queue: each disk remembers when it becomes free, and a logical
//! request completes when the last of its per-disk chains completes.
//!
//! ```
//! use readopt_disk::{ArrayConfig, IoRequest, SimTime, calibrate_max_bandwidth};
//!
//! let config = ArrayConfig::paper_default(); // Table 1: 8 × Wren IV
//! let mut array = config.build();
//! // A full stripe row (8 × 24 KB) reads in parallel on all 8 spindles.
//! let span = array.submit(SimTime::ZERO, &IoRequest::read(0, 8 * 24));
//! assert!(span.end.as_ms() < 60.0, "one seekless row ≈ a few rotations");
//! // The §3 reference every experiment normalizes against:
//! let mb_s = calibrate_max_bandwidth(&config) * 1000.0 / (1024.0 * 1024.0);
//! assert!((9.5..12.0).contains(&mb_s), "paper: 10.8 MB/s");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod array;
pub mod calibrate;
pub mod config;
pub mod disk;
pub mod geometry;
pub mod mechanics;
pub mod mirror;
pub mod parity_stripe;
pub mod raid;
pub mod request;
pub mod stats;
pub mod time;

pub use array::StripedArray;
pub use calibrate::calibrate_max_bandwidth;
pub use config::{ArrayConfig, ArrayLayout};
pub use disk::Disk;
pub use geometry::DiskGeometry;
pub use mirror::MirroredArray;
pub use parity_stripe::ParityStripedArray;
pub use raid::Raid5Array;
pub use request::{IoKind, IoRequest, PiecePlan, ShardableStorage, Storage};
pub use stats::{DiskStats, StorageStats, QUEUE_DEPTH_BUCKETS};
pub use time::{SimDuration, SimTime};
