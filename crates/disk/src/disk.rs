//! A single spindle with FCFS queueing and head-position state.

use crate::geometry::DiskGeometry;
use crate::mechanics::{service_breakdown, ServiceBreakdown};
use crate::request::IoKind;
use crate::stats::{DiskStats, QUEUE_DEPTH_BUCKETS};
use crate::time::{SimDuration, SimTime};
use serde::{de_field, Serialize, Value};
use std::collections::VecDeque;

/// One physical disk.
///
/// The disk services requests first-come-first-served. It remembers the
/// cylinder its head rests on and the absolute time at which it becomes free;
/// [`Disk::service`] advances both and returns the request's completion time.
#[derive(Debug, Clone)]
pub struct Disk {
    geom: DiskGeometry,
    head_cylinder: u32,
    free_at: SimTime,
    stats: DiskStats,
    /// Completion times of requests already accepted, oldest first. Used
    /// only for queue-depth observation: entries at or before a new
    /// request's ready time have drained and are pruned on arrival.
    inflight: VecDeque<SimTime>,
}

impl Disk {
    /// Creates a disk with its head parked on cylinder 0, idle at time zero.
    pub fn new(geom: DiskGeometry) -> Self {
        // simlint::allow(r3, "constructor contract: an invalid geometry is a caller bug, not a runtime condition")
        geom.validate().expect("invalid disk geometry");
        Disk {
            geom,
            head_cylinder: 0,
            free_at: SimTime::ZERO,
            stats: DiskStats::default(),
            inflight: VecDeque::new(),
        }
    }

    /// The disk's geometry.
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geom
    }

    /// Cylinder the head currently rests on.
    pub fn head_cylinder(&self) -> u32 {
        self.head_cylinder
    }

    /// Absolute time at which the disk finishes its current backlog.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// Clears counters; head position and queue state persist.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Checkpoint snapshot of the disk's dynamic state: head position,
    /// backlog drain time, accumulated counters, and in-flight completion
    /// times. Geometry is construction-time configuration and is excluded.
    pub fn checkpoint_state(&self) -> Value {
        Value::Object(vec![
            ("head_cylinder".to_string(), self.head_cylinder.to_value()),
            ("free_at".to_string(), self.free_at.to_value()),
            ("stats".to_string(), self.stats.to_value()),
            (
                "inflight".to_string(),
                self.inflight.iter().copied().collect::<Vec<SimTime>>().to_value(),
            ),
        ])
    }

    /// Applies a [`Disk::checkpoint_state`] snapshot, validating it against
    /// this disk's geometry; on error the disk is left unchanged.
    pub fn restore_checkpoint_state(&mut self, snapshot: &Value) -> Result<(), String> {
        let head_cylinder: u32 = de_field(snapshot, "head_cylinder").map_err(|e| e.to_string())?;
        let free_at: SimTime = de_field(snapshot, "free_at").map_err(|e| e.to_string())?;
        let stats: DiskStats = de_field(snapshot, "stats").map_err(|e| e.to_string())?;
        let inflight: Vec<SimTime> = de_field(snapshot, "inflight").map_err(|e| e.to_string())?;
        if head_cylinder >= self.geom.cylinders {
            return Err(format!(
                "head on cylinder {head_cylinder} of a {}-cylinder disk",
                self.geom.cylinders
            ));
        }
        if inflight.windows(2).any(|w| w[0] > w[1]) {
            return Err("in-flight completions out of order".into());
        }
        if inflight.last().is_some_and(|&last| last > free_at) {
            return Err("in-flight completion past the disk's drain time".into());
        }
        if !stats.queue_depth_hist.is_empty()
            && stats.queue_depth_hist.len() != QUEUE_DEPTH_BUCKETS
        {
            return Err(format!(
                "queue-depth histogram has {} buckets, expected {QUEUE_DEPTH_BUCKETS}",
                stats.queue_depth_hist.len()
            ));
        }
        for (name, ms) in [
            ("seek_ms", stats.seek_ms),
            ("rotational_ms", stats.rotational_ms),
            ("transfer_ms", stats.transfer_ms),
            ("busy_ms", stats.busy_ms),
            ("head_switch_ms", stats.head_switch_ms),
            ("queue_wait_ms", stats.queue_wait_ms),
        ] {
            if !ms.is_finite() || ms < 0.0 {
                return Err(format!("disk stats field {name} is {ms}"));
            }
        }
        self.head_cylinder = head_cylinder;
        self.free_at = free_at;
        self.stats = stats;
        self.inflight = inflight.into();
        Ok(())
    }

    /// Estimates the service time of a request *without* executing it, for
    /// replica selection in mirrored configurations. `ready` is when the
    /// request could be handed to the disk.
    pub fn estimate(&self, ready: SimTime, start_sector: u64, nsectors: u64) -> (SimTime, ServiceBreakdown) {
        let begin = self.free_at.max(ready);
        let b = service_breakdown(&self.geom, self.head_cylinder, begin.as_ms(), start_sector, nsectors);
        (begin + SimDuration::from_ms(b.total_ms()), b)
    }

    /// Services a contiguous physical run of `nsectors` sectors starting at
    /// absolute sector `start_sector`. The request is queued behind any
    /// not-yet-finished work. Returns the completion time.
    pub fn service(&mut self, ready: SimTime, start_sector: u64, nsectors: u64, kind: IoKind) -> SimTime {
        debug_assert!(nsectors > 0, "empty physical request");
        debug_assert!(
            start_sector + nsectors <= self.geom.capacity_sectors(),
            "request [{start_sector}, +{nsectors}) beyond disk end {}",
            self.geom.capacity_sectors()
        );
        while self.inflight.front().is_some_and(|&done| done <= ready) {
            self.inflight.pop_front();
        }
        self.stats.observe_queue_depth(self.inflight.len());

        let begin = self.free_at.max(ready);
        let b = service_breakdown(&self.geom, self.head_cylinder, begin.as_ms(), start_sector, nsectors);
        let end = begin + SimDuration::from_ms(b.total_ms());

        let bytes = nsectors * self.geom.sector_bytes;
        self.stats.requests += 1;
        match kind {
            IoKind::Read => self.stats.bytes_read += bytes,
            IoKind::Write => self.stats.bytes_written += bytes,
        }
        if b.seek_ms > 0.0 {
            self.stats.seeks += 1;
        }
        self.stats.seek_ms += b.seek_ms;
        self.stats.rotational_ms += b.rotational_ms;
        self.stats.transfer_ms += b.transfer_ms;
        self.stats.busy_ms += b.total_ms();
        self.stats.head_switch_ms += b.head_switch_ms;
        if begin > ready {
            self.stats.queued_requests += 1;
            self.stats.queue_wait_ms += begin.as_ms() - ready.as_ms();
        }

        self.head_cylinder = self.geom.cylinder_of_sector(start_sector + nsectors - 1);
        self.free_at = end;
        self.inflight.push_back(end);
        end
    }

    /// Services a byte-addressed run (must be sector aligned).
    pub fn service_bytes(&mut self, ready: SimTime, start_byte: u64, nbytes: u64, kind: IoKind) -> SimTime {
        debug_assert_eq!(start_byte % self.geom.sector_bytes, 0, "unaligned start byte");
        debug_assert_eq!(nbytes % self.geom.sector_bytes, 0, "unaligned byte count");
        self.service(ready, start_byte / self.geom.sector_bytes, nbytes / self.geom.sector_bytes, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::KB;

    fn disk() -> Disk {
        Disk::new(DiskGeometry::wren_iv())
    }

    #[test]
    fn first_request_from_cylinder_zero_has_no_seek() {
        let mut d = disk();
        let end = d.service(SimTime::ZERO, 0, 1, IoKind::Read);
        assert_eq!(d.stats().seeks, 0);
        assert!(end.as_ms() <= d.geometry().rotation_ms + d.geometry().sector_time_ms() + 1e-6);
        assert_eq!(d.stats().bytes_read, 512);
    }

    #[test]
    fn queueing_is_fcfs() {
        let mut d = disk();
        let end1 = d.service(SimTime::ZERO, 0, 8, IoKind::Read);
        // Second request ready before the first finishes: starts at end1.
        let end2 = d.service(SimTime::ZERO, 8, 8, IoKind::Read);
        assert!(end2 > end1);
        assert_eq!(d.free_at(), end2);
    }

    #[test]
    fn idle_gap_is_respected() {
        let mut d = disk();
        let end1 = d.service(SimTime::ZERO, 0, 1, IoKind::Read);
        let later = end1 + SimDuration::from_ms(100.0);
        let end2 = d.service(later, 0, 1, IoKind::Read);
        assert!(end2 > later, "service begins at ready time, not before");
    }

    #[test]
    fn head_moves_to_last_sector_cylinder() {
        let mut d = disk();
        let per_cyl = d.geometry().sectors_per_track() * d.geometry().tracks_per_cylinder();
        d.service(SimTime::ZERO, per_cyl * 5, 1, IoKind::Write);
        assert_eq!(d.head_cylinder(), 5);
        assert_eq!(d.stats().seeks, 1);
        assert_eq!(d.stats().bytes_written, 512);
    }

    #[test]
    fn sequential_runs_after_each_other_do_not_seek() {
        let mut d = disk();
        d.service(SimTime::ZERO, 0, 48, IoKind::Read);
        let seeks_before = d.stats().seeks;
        d.service(SimTime::ZERO, 48, 48, IoKind::Read); // same cylinder, next surface
        assert_eq!(d.stats().seeks, seeks_before);
    }

    #[test]
    fn estimate_matches_service() {
        let d0 = disk();
        let (est_end, _) = d0.estimate(SimTime::from_ms(3.0), 1234, 16);
        let mut d1 = d0.clone();
        let end = d1.service(SimTime::from_ms(3.0), 1234, 16, IoKind::Read);
        assert_eq!(est_end, end);
    }

    #[test]
    fn service_bytes_converts_sectors() {
        let mut d = disk();
        d.service_bytes(SimTime::ZERO, 24 * KB, 24 * KB, IoKind::Read);
        assert_eq!(d.stats().bytes_read, 24 * KB);
    }

    #[test]
    fn busy_time_decomposes() {
        let mut d = disk();
        let per_cyl = d.geometry().sectors_per_track() * d.geometry().tracks_per_cylinder();
        d.service(SimTime::ZERO, per_cyl * 100, 96, IoKind::Read);
        let s = d.stats();
        assert!((s.busy_ms - (s.seek_ms + s.rotational_ms + s.transfer_ms)).abs() < 1e-9);
        assert!(s.transfer_efficiency() > 0.0 && s.transfer_efficiency() < 1.0);
    }

    #[test]
    fn queue_wait_accounts_time_behind_backlog() {
        let mut d = disk();
        let end1 = d.service(SimTime::ZERO, 0, 48, IoKind::Read);
        let end2 = d.service(SimTime::ZERO, 480, 8, IoKind::Read);
        let s = d.stats();
        assert_eq!(s.queued_requests, 1, "only the second request waited");
        assert!((s.queue_wait_ms - end1.as_ms()).abs() < 1e-9, "it waited for the whole first request");
        // Queue wait is accounted separately from busy time.
        assert!((s.busy_ms - (s.seek_ms + s.rotational_ms + s.transfer_ms)).abs() < 1e-9);
        assert!(end2 > end1);
    }

    #[test]
    fn queue_depth_histogram_counts_arrivals() {
        let mut d = disk();
        d.service(SimTime::ZERO, 0, 48, IoKind::Read); // arrives idle: depth 0
        d.service(SimTime::ZERO, 480, 8, IoKind::Read); // behind 1
        d.service(SimTime::ZERO, 960, 8, IoKind::Read); // behind 2
        let far_future = d.free_at() + SimDuration::from_ms(1.0);
        d.service(far_future, 0, 1, IoKind::Read); // backlog drained: depth 0
        let h = &d.stats().queue_depth_hist;
        assert_eq!(h[0], 2);
        assert_eq!(h[1], 1);
        assert_eq!(h[2], 1);
        assert_eq!(h.iter().sum::<u64>(), d.stats().requests);
    }

    #[test]
    fn head_switch_time_accumulates() {
        let mut d = disk();
        let spt = d.geometry().sectors_per_track();
        d.service(SimTime::ZERO, 0, 2 * spt, IoKind::Read); // one intra-cylinder boundary
        let s = d.stats();
        assert!((s.head_switch_ms - d.geometry().head_switch_ms).abs() < 1e-9);
        assert!(s.head_switch_ms <= s.transfer_ms);
    }

    #[test]
    fn checkpoint_roundtrips_and_rejects_corruption() {
        let mut d = disk();
        d.service(SimTime::ZERO, 0, 48, IoKind::Read);
        d.service(SimTime::ZERO, 4800, 8, IoKind::Write);
        let snap = d.checkpoint_state();
        let mut r = Disk::new(DiskGeometry::wren_iv());
        r.restore_checkpoint_state(&snap).unwrap();
        assert_eq!(r.head_cylinder(), d.head_cylinder());
        assert_eq!(r.free_at(), d.free_at());
        assert_eq!(r.stats(), d.stats());
        // Identical future behavior: the next request completes at the same
        // time and leaves identical counters (including queue-depth state).
        let e1 = d.service(SimTime::ZERO, 960, 8, IoKind::Read);
        let e2 = r.service(SimTime::ZERO, 960, 8, IoKind::Read);
        assert_eq!(e1, e2);
        assert_eq!(r.stats(), d.stats());
        // A head position beyond the geometry is rejected; the target disk
        // keeps its previous state.
        let Value::Object(mut fields) = snap else { unreachable!("snapshot is an object") };
        fields.iter_mut().find(|(k, _)| k == "head_cylinder").unwrap().1 = Value::U64(1 << 30);
        let before = r.stats().clone();
        assert!(r.restore_checkpoint_state(&Value::Object(fields)).is_err());
        assert_eq!(*r.stats(), before);
    }

    #[test]
    fn reset_stats_keeps_position() {
        let mut d = disk();
        let per_cyl = d.geometry().sectors_per_track() * d.geometry().tracks_per_cylinder();
        d.service(SimTime::ZERO, per_cyl * 7, 1, IoKind::Read);
        d.reset_stats();
        assert_eq!(d.stats().requests, 0);
        assert_eq!(d.head_cylinder(), 7);
    }
}
