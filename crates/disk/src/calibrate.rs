//! Maximum-sequential-throughput calibration.
//!
//! §3 of the paper expresses every performance number "as a percent of the
//! sustained sequential performance the disk system is capable of
//! providing" (10.8 MB/s for the Table 1 system). The paper does not say how
//! that reference was derived, so we *measure* it: scan a large logically
//! contiguous region of a freshly built array with row-sized requests and
//! take the observed rate. Because the same mechanics model produces both
//! the reference and the experiment numbers, the reported percentages are
//! self-consistent (see DESIGN.md §"Substitutions").

use crate::config::ArrayConfig;
use crate::geometry::MB;
use crate::request::{IoRequest, Storage};
use crate::time::SimTime;

/// Sustained sequential bandwidth of a fresh instance of `config`, in
/// bytes per millisecond.
///
/// Scans min(capacity, 64 MB × ndisks) from the start of the logical space
/// in requests of one full stripe row (all layouts benefit from whatever
/// parallelism they have; parity-striped arrays simply stream one disk at a
/// time, which matches their design point).
pub fn calibrate_max_bandwidth(config: &ArrayConfig) -> f64 {
    let mut storage = config.build();
    calibrate_storage(storage.as_mut(), config)
}

/// Calibration against an existing (fresh) storage instance.
///
/// The scan is issued as `2 × ndisks` huge concurrent requests spread
/// evenly across the logical space, all ready at time zero. Each request
/// is a maximal contiguous run (no per-request overhead) and the spread
/// guarantees every spindle participates regardless of layout — a single
/// request would only touch one disk of a parity-striped array and one
/// replica of each mirrored pair, under-reporting what the hardware can
/// deliver to a concurrent workload.
pub fn calibrate_storage(storage: &mut dyn Storage, config: &ArrayConfig) -> f64 {
    let unit = storage.disk_unit_bytes();
    let row_units = (config.stripe_unit_bytes * config.ndisks as u64 / unit).max(1);
    let budget_units = (64 * MB * config.ndisks as u64 / unit).min(storage.capacity_units());
    let nchunks = 2 * config.ndisks as u64;
    let chunk_units = (budget_units / nchunks / row_units * row_units).max(row_units);
    let segment_units = storage.capacity_units() / nchunks;
    let mut bytes = 0u64;
    let mut end = SimTime::ZERO;
    for k in 0..nchunks {
        let start = k * segment_units;
        let len = chunk_units.min(storage.capacity_units().saturating_sub(start));
        if len == 0 {
            continue;
        }
        let span = storage.submit(SimTime::ZERO, &IoRequest::read(start, len));
        end = end.max(span.end);
        bytes += len * unit;
    }
    storage.reset_stats();
    assert!(end > SimTime::ZERO, "calibration scanned nothing");
    bytes as f64 / end.as_ms()
}

/// Converts a byte count moved over a duration into a percentage of the
/// calibrated maximum bandwidth.
pub fn percent_of_max(bytes: u64, elapsed_ms: f64, max_bytes_per_ms: f64) -> f64 {
    if elapsed_ms <= 0.0 || max_bytes_per_ms <= 0.0 {
        return 0.0;
    }
    100.0 * (bytes as f64 / elapsed_ms) / max_bytes_per_ms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArrayLayout;

    #[test]
    fn paper_system_calibrates_near_10_8_mb_per_sec() {
        // Table 1 quotes 10.8 MB/s maximum throughput for the 8-disk system.
        // Our mechanics give ~10–11.5 MB/s depending on crossing penalties;
        // assert we land in that neighbourhood.
        let bw = calibrate_max_bandwidth(&ArrayConfig::scaled(8));
        let mb_per_sec = bw * 1000.0 / MB as f64;
        assert!(
            (9.5..12.0).contains(&mb_per_sec),
            "calibrated {mb_per_sec:.2} MB/s, expected ≈ 10.8"
        );
    }

    #[test]
    fn mirrored_concurrent_read_bandwidth_matches_striped() {
        // With concurrent readers, both replicas of every pair serve
        // different requests: the mirrored array reads as fast as the plain
        // 8-wide array (that's the mirroring sales pitch). Writes, of
        // course, pay 2× (covered by the write-amplification tests).
        let striped = calibrate_max_bandwidth(&ArrayConfig::scaled(16));
        let mirrored = calibrate_max_bandwidth(&ArrayConfig {
            layout: ArrayLayout::Mirrored,
            ..ArrayConfig::scaled(16)
        });
        let ratio = mirrored / striped;
        assert!((0.85..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn parity_striped_streams_one_file_from_one_disk() {
        // A pipelined whole-array scan engages every disk even under parity
        // striping (each disk streams its own region), so the *calibrated*
        // maxima are comparable. The layout's real cost shows on a single
        // contiguous file: it lives on one disk and reads at one disk's
        // rate, ~1/8 of the striped array's.
        let cfg_ps = ArrayConfig { layout: ArrayLayout::ParityStriped, ..ArrayConfig::scaled(16) };
        let cfg_st = ArrayConfig::scaled(16);
        let file_units = 4 * 1024; // 4 MB file
        let read_time = |cfg: &ArrayConfig| {
            let mut s = cfg.build();
            let mut end = crate::SimTime::ZERO;
            let mut cursor = 0;
            while cursor < file_units {
                let chunk = 192.min(file_units - cursor);
                end = end.max(s.submit(crate::SimTime::ZERO, &IoRequest::read(cursor, chunk)).end);
                cursor += chunk;
            }
            end.as_ms()
        };
        let t_ps = read_time(&cfg_ps);
        let t_st = read_time(&cfg_st);
        assert!(
            t_ps > 4.0 * t_st,
            "single-file read should lack parallelism: {t_ps} ms vs {t_st} ms"
        );
    }

    #[test]
    fn percent_of_max_basics() {
        assert_eq!(percent_of_max(0, 10.0, 100.0), 0.0);
        assert!((percent_of_max(500, 10.0, 100.0) - 50.0).abs() < 1e-12);
        assert_eq!(percent_of_max(10, 0.0, 100.0), 0.0);
    }
}
