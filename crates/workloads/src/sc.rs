//! The supercomputer workload (SC).
//!
//! "The super computer environment is characterized by 1 large file (500M)
//! 15 medium sized files (100M) and 10 small files (10M). The large and
//! medium files are all read and written in large contiguous bursts (32K
//! or 512K) with a predominance of reads (60 % reads, 30 % writes, 8 %
//! extends, and 2 % truncates). The small files are also read and written
//! in 32K bursts, but are periodically deleted and recreated as well as
//! being read and written (60 % reads, 30 % writes, 5 % extends, 5 %
//! deletes)."
//!
//! Large/medium files burst 512 KB, small files 32 KB; all access is
//! sequential (per-file cursor), which is what lets contiguous layouts push
//! the array toward its full bandwidth (Table 3: 88 % application, 94 %
//! sequential under buddy allocation).

use crate::scale_size;
use readopt_sim::FileTypeConfig;

const KB: u64 = 1024;
const MB: u64 = 1024 * KB;

/// Builds the SC workload for a disk system of `capacity_bytes`.
pub fn supercomputer(capacity_bytes: u64) -> Vec<FileTypeConfig> {
    let s = |bytes: u64, min: u64| scale_size(bytes, capacity_bytes, min);
    vec![
        FileTypeConfig {
            name: "sc-large".into(),
            num_files: 1,
            num_users: 2,
            process_time_ms: 25.0,
            hit_frequency_ms: 25.0,
            rw_size_bytes: 512 * KB,
            rw_deviation_bytes: 64 * KB,
            allocation_size_bytes: s(16 * MB, 64 * KB),
            truncate_size_bytes: 512 * KB,
            initial_size_bytes: s(500 * MB, MB),
            initial_deviation_bytes: s(50 * MB, 128 * KB),
            read_pct: 60.0,
            write_pct: 30.0,
            extend_pct: 8.0,
            deallocate_pct: 2.0,
            delete_fraction: 0.0,
            sequential_access: true,
            page_aligned: false,
        },
        FileTypeConfig {
            name: "sc-medium".into(),
            num_files: 15,
            num_users: 5,
            process_time_ms: 25.0,
            hit_frequency_ms: 25.0,
            rw_size_bytes: 512 * KB,
            rw_deviation_bytes: 64 * KB,
            allocation_size_bytes: s(MB, 32 * KB),
            truncate_size_bytes: 512 * KB,
            initial_size_bytes: s(100 * MB, 512 * KB),
            initial_deviation_bytes: s(20 * MB, 64 * KB),
            read_pct: 60.0,
            write_pct: 30.0,
            extend_pct: 8.0,
            deallocate_pct: 2.0,
            delete_fraction: 0.0,
            sequential_access: true,
            page_aligned: false,
        },
        FileTypeConfig {
            name: "sc-small".into(),
            num_files: 10,
            num_users: 3,
            process_time_ms: 25.0,
            hit_frequency_ms: 25.0,
            rw_size_bytes: 32 * KB,
            rw_deviation_bytes: 8 * KB,
            allocation_size_bytes: s(512 * KB, 16 * KB),
            truncate_size_bytes: 32 * KB,
            initial_size_bytes: s(10 * MB, 64 * KB),
            initial_deviation_bytes: s(2 * MB, 16 * KB),
            read_pct: 60.0,
            write_pct: 30.0,
            extend_pct: 5.0,
            deallocate_pct: 5.0,
            delete_fraction: 1.0, // "periodically deleted and recreated"
            sequential_access: true,
            page_aligned: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAPER_CAPACITY_BYTES;

    #[test]
    fn full_scale_sizes_are_the_papers() {
        let types = supercomputer(PAPER_CAPACITY_BYTES);
        assert_eq!(types[0].initial_size_bytes, 500 * MB);
        assert_eq!(types[1].initial_size_bytes, 100 * MB);
        assert_eq!(types[2].initial_size_bytes, 10 * MB);
    }

    #[test]
    fn burst_sizes_match_quote() {
        let types = supercomputer(PAPER_CAPACITY_BYTES);
        assert_eq!(types[0].rw_size_bytes, 512 * KB);
        assert_eq!(types[1].rw_size_bytes, 512 * KB);
        assert_eq!(types[2].rw_size_bytes, 32 * KB);
    }

    #[test]
    fn ratios_match_quote() {
        let types = supercomputer(PAPER_CAPACITY_BYTES);
        for t in &types[..2] {
            assert_eq!((t.read_pct, t.write_pct, t.extend_pct, t.deallocate_pct), (60.0, 30.0, 8.0, 2.0));
            assert_eq!(t.delete_fraction, 0.0, "large/medium truncate only");
        }
        assert_eq!(types[2].deallocate_pct, 5.0);
        assert_eq!(types[2].delete_fraction, 1.0);
    }

    #[test]
    fn scaled_down_keeps_structure() {
        let types = supercomputer(PAPER_CAPACITY_BYTES / 64);
        assert_eq!(types[0].num_files, 1);
        assert_eq!(types[1].num_files, 15);
        assert_eq!(types[2].num_files, 10);
        for t in &types {
            t.validate().unwrap();
        }
        let total: u64 = types.iter().map(|t| t.num_files * t.initial_size_bytes).sum();
        let frac = total as f64 / (PAPER_CAPACITY_BYTES / 64) as f64;
        assert!((0.6..0.9).contains(&frac), "population fraction {frac}");
    }
}
