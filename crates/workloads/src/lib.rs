//! The paper's three simulated workloads (§2.2):
//!
//! * **TS** — "a time sharing or software development environment …
//!   characterized by an abundance of small files (mean size 8K bytes)
//!   which are created, read, and deleted. Two-thirds of all requests are
//!   to these files. In addition there are larger files (mean size 96K)."
//! * **TP** — "a large transaction processing environment … 10 large files
//!   (210M) representing data files or relations, 5 small application logs
//!   (5M) and one transaction log (10M)."
//! * **SC** — "a super computer or complex query processing environment …
//!   1 large file (500M), 15 medium sized files (100M) and 10 small files
//!   (10M) … read and written in large contiguous bursts (32K or 512K)."
//!
//! Each builder takes the disk system's capacity: TP and SC use the paper's
//! absolute file sizes scaled by `capacity / 2.8 GB` (so test-sized arrays
//! exercise the same structure), while TS — whose file *counts* the paper
//! leaves open — sizes its population to land near the 90 % utilization
//! lower bound. Parameters not printed in the paper (user counts, process
//! times, r/w sizes for TP) are documented choices; see DESIGN.md
//! §"Substitutions" and EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod sc;
pub mod tp;
pub mod ts;

pub use sc::supercomputer;
pub use tp::transaction_processing;
pub use ts::timesharing;

use readopt_alloc::config::ExtentBasedConfig;
use readopt_sim::FileTypeConfig;
use serde::{Deserialize, Serialize};

/// Capacity of the paper's Table 1 disk system, the reference point for
/// scaling TP/SC file sizes.
pub const PAPER_CAPACITY_BYTES: u64 = 2_831_155_200;

const KB: u64 = 1024;

/// The three §2.2 workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Time sharing / software development.
    Timesharing,
    /// Large transaction processing.
    TransactionProcessing,
    /// Supercomputer / complex query processing.
    Supercomputer,
}

impl WorkloadKind {
    /// All three, in the paper's table order (SC, TP, TS is Table 3's
    /// order; sweeps use TS, TP, SC — callers pick).
    pub fn all() -> [WorkloadKind; 3] {
        [
            WorkloadKind::Timesharing,
            WorkloadKind::TransactionProcessing,
            WorkloadKind::Supercomputer,
        ]
    }

    /// The paper's two-letter label.
    pub fn short_name(&self) -> &'static str {
        match self {
            WorkloadKind::Timesharing => "TS",
            WorkloadKind::TransactionProcessing => "TP",
            WorkloadKind::Supercomputer => "SC",
        }
    }

    /// Builds the workload's file types for a disk system of the given
    /// capacity.
    pub fn build(&self, capacity_bytes: u64) -> Vec<FileTypeConfig> {
        match self {
            WorkloadKind::Timesharing => timesharing(capacity_bytes),
            WorkloadKind::TransactionProcessing => transaction_processing(capacity_bytes),
            WorkloadKind::Supercomputer => supercomputer(capacity_bytes),
        }
    }

    /// The §4.3 extent-range table for this workload (`n` ∈ 1..=5): the
    /// paper uses one table for TS and another for TP/SC.
    pub fn extent_ranges(&self, n: usize) -> Vec<u64> {
        match self {
            WorkloadKind::Timesharing => ExtentBasedConfig::ts_ranges(n),
            _ => ExtentBasedConfig::tpsc_ranges(n),
        }
    }

    /// The fixed-block size §5 compares this workload against: "The 4K
    /// system is … compared with the timesharing workload while the 16K is
    /// compared for the transaction processing and supercomputer workloads."
    pub fn fixed_block_bytes(&self) -> u64 {
        match self {
            WorkloadKind::Timesharing => 4 * KB,
            _ => 16 * KB,
        }
    }
}

/// Scales one of the paper's absolute sizes to the simulated capacity,
/// keeping at least `min` bytes.
pub(crate) fn scale_size(paper_bytes: u64, capacity_bytes: u64, min: u64) -> u64 {
    let scaled = (paper_bytes as u128 * capacity_bytes as u128 / PAPER_CAPACITY_BYTES as u128) as u64;
    scaled.max(min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_validate_at_full_and_test_scale() {
        for kind in WorkloadKind::all() {
            for capacity in [PAPER_CAPACITY_BYTES, PAPER_CAPACITY_BYTES / 64] {
                let types = kind.build(capacity);
                assert!(!types.is_empty(), "{kind:?}");
                for t in &types {
                    t.validate().unwrap_or_else(|e| panic!("{kind:?}: {e}"));
                }
            }
        }
    }

    #[test]
    fn initial_population_lands_in_the_intended_band() {
        // TP/SC initialize at the paper's absolute sizes (~75 % of the
        // system); TS initializes lower (~48 %) so its allocation test is
        // growth-dominated (see ts.rs docs).
        for (kind, band) in [
            (WorkloadKind::Timesharing, 0.78..0.92),
            (WorkloadKind::TransactionProcessing, 0.70..0.90),
            (WorkloadKind::Supercomputer, 0.70..0.90),
        ] {
            let cap = PAPER_CAPACITY_BYTES;
            let total: u64 = kind
                .build(cap)
                .iter()
                .map(|t| t.num_files * t.initial_size_bytes)
                .sum();
            let frac = total as f64 / cap as f64;
            assert!(
                band.contains(&frac),
                "{kind:?}: initial population at {:.1} % of capacity",
                100.0 * frac
            );
        }
    }

    #[test]
    fn ts_small_files_receive_two_thirds_of_requests() {
        let types = timesharing(PAPER_CAPACITY_BYTES);
        let small = types.iter().find(|t| t.name.contains("small")).expect("small type");
        let total_users: u32 = types.iter().map(|t| t.num_users).sum();
        // Users drive requests at (roughly) equal rates, so the small type
        // needs about 2/3 of the users.
        let frac = f64::from(small.num_users) / f64::from(total_users);
        assert!((frac - 2.0 / 3.0).abs() < 0.05, "small-file user share {frac}");
    }

    #[test]
    fn tp_structure_matches_the_paper() {
        let types = transaction_processing(PAPER_CAPACITY_BYTES);
        assert_eq!(types.len(), 3);
        let rel = &types[0];
        assert_eq!(rel.num_files, 10);
        assert_eq!(rel.initial_size_bytes, 210 * 1024 * 1024);
        assert_eq!(rel.read_pct, 60.0);
        assert_eq!(rel.write_pct, 30.0);
        assert_eq!(rel.extend_pct, 7.0);
        let app_log = &types[1];
        assert_eq!(app_log.num_files, 5);
        assert_eq!(app_log.extend_pct, 93.0);
        let txn_log = &types[2];
        assert_eq!(txn_log.num_files, 1);
        assert_eq!(txn_log.extend_pct, 94.0);
        assert_eq!(txn_log.read_pct, 5.0, "system log reads more (aborts)");
    }

    #[test]
    fn sc_structure_matches_the_paper() {
        let types = supercomputer(PAPER_CAPACITY_BYTES);
        assert_eq!(types.len(), 3);
        assert_eq!(types[0].num_files, 1);
        assert_eq!(types[0].initial_size_bytes, 500 * 1024 * 1024);
        assert_eq!(types[1].num_files, 15);
        assert_eq!(types[2].num_files, 10);
        assert!(types.iter().all(|t| t.sequential_access), "SC bursts are contiguous");
        assert_eq!(types[0].rw_size_bytes, 512 * 1024);
        assert_eq!(types[2].rw_size_bytes, 32 * 1024);
        assert!((types[2].delete_fraction - 1.0).abs() < f64::EPSILON, "small files are deleted/recreated");
    }

    #[test]
    fn scaling_shrinks_tp_proportionally() {
        let full = transaction_processing(PAPER_CAPACITY_BYTES);
        let small = transaction_processing(PAPER_CAPACITY_BYTES / 64);
        assert_eq!(full[0].num_files, small[0].num_files, "counts preserved");
        let ratio = full[0].initial_size_bytes as f64 / small[0].initial_size_bytes as f64;
        assert!((ratio - 64.0).abs() < 1.0, "sizes scale: {ratio}");
    }

    #[test]
    fn per_workload_selections_match_section_5() {
        assert_eq!(WorkloadKind::Timesharing.fixed_block_bytes(), 4 * KB);
        assert_eq!(WorkloadKind::Supercomputer.fixed_block_bytes(), 16 * KB);
        assert_eq!(WorkloadKind::Timesharing.extent_ranges(1), vec![4 * KB]);
        assert_eq!(
            WorkloadKind::TransactionProcessing.extent_ranges(2),
            vec![512 * KB, 16 * 1024 * KB]
        );
    }
}
