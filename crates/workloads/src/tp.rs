//! The transaction-processing workload (TP).
//!
//! "The transaction processing environment is characterized by 10 large
//! files (210M) representing data files or relations, 5 small application
//! logs (5M) and one transaction log (10M). The relations are randomly read
//! 60 % of the time, written 30 % of the time, extended 7 % of the time,
//! and truncated 3 % of the time. The log files receive mostly extend
//! operations (93 % and 94 % respectively) with a periodic read request
//! (2 % and 5 %) and an infrequent truncate (5 % and 1 %). The system log
//! receives a slightly higher read percentage to simulate periodic
//! transaction aborts."
//!
//! Unpublished parameters: relations are accessed in 8 KB pages (dev 2 KB)
//! — the small-random-I/O regime the paper's §5 discussion assumes
//! ("limited by the random reads and writes to the large data files") —
//! and logs append in 4 KB records. Sizes scale with the simulated
//! capacity; counts and ratios are the paper's.

use crate::scale_size;
use readopt_sim::FileTypeConfig;

const KB: u64 = 1024;
const MB: u64 = 1024 * KB;

/// Builds the TP workload for a disk system of `capacity_bytes`.
pub fn transaction_processing(capacity_bytes: u64) -> Vec<FileTypeConfig> {
    let s = |bytes: u64, min: u64| scale_size(bytes, capacity_bytes, min);
    vec![
        FileTypeConfig {
            name: "tp-relation".into(),
            num_files: 10,
            num_users: 64,
            process_time_ms: 10.0,
            hit_frequency_ms: 10.0,
            rw_size_bytes: 16 * KB,
            rw_deviation_bytes: 0,
            // Relations want the largest extents on offer (16 MB at full
            // scale in the §4.3 TP/SC range tables).
            allocation_size_bytes: s(16 * MB, 16 * KB),
            truncate_size_bytes: 16 * KB,
            initial_size_bytes: s(210 * MB, 256 * KB),
            initial_deviation_bytes: s(10 * MB, 16 * KB),
            read_pct: 60.0,
            write_pct: 30.0,
            extend_pct: 7.0,
            deallocate_pct: 3.0,
            delete_fraction: 0.0, // "truncated 3% of the time" — never deleted
            sequential_access: false,
            page_aligned: true, // DBMS page I/O
        },
        FileTypeConfig {
            name: "tp-app-log".into(),
            num_files: 5,
            num_users: 5,
            process_time_ms: 40.0,
            hit_frequency_ms: 20.0,
            rw_size_bytes: 4 * KB,
            rw_deviation_bytes: KB,
            allocation_size_bytes: s(64 * KB, 4 * KB),
            truncate_size_bytes: 48 * KB,
            initial_size_bytes: s(5 * MB, 32 * KB),
            initial_deviation_bytes: s(MB, 8 * KB),
            read_pct: 2.0,
            write_pct: 0.0,
            extend_pct: 93.0,
            deallocate_pct: 5.0,
            delete_fraction: 0.0,
            sequential_access: true, // appends and scans
            page_aligned: false,
        },
        FileTypeConfig {
            name: "tp-txn-log".into(),
            num_files: 1,
            num_users: 2,
            process_time_ms: 20.0,
            hit_frequency_ms: 10.0,
            rw_size_bytes: 4 * KB,
            rw_deviation_bytes: KB,
            allocation_size_bytes: s(64 * KB, 4 * KB),
            truncate_size_bytes: 48 * KB,
            initial_size_bytes: s(10 * MB, 64 * KB),
            initial_deviation_bytes: s(2 * MB, 8 * KB),
            read_pct: 5.0, // "slightly higher read percentage … aborts"
            write_pct: 0.0,
            extend_pct: 94.0,
            deallocate_pct: 1.0,
            delete_fraction: 0.0,
            sequential_access: true,
            page_aligned: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAPER_CAPACITY_BYTES;

    #[test]
    fn full_scale_sizes_are_the_papers() {
        let types = transaction_processing(PAPER_CAPACITY_BYTES);
        assert_eq!(types[0].initial_size_bytes, 210 * MB);
        assert_eq!(types[1].initial_size_bytes, 5 * MB);
        assert_eq!(types[2].initial_size_bytes, 10 * MB);
    }

    #[test]
    fn relations_dominate_capacity() {
        let types = transaction_processing(PAPER_CAPACITY_BYTES);
        let rel = types[0].num_files * types[0].initial_size_bytes;
        let logs: u64 = types[1..].iter().map(|t| t.num_files * t.initial_size_bytes).sum();
        assert!(rel > 50 * logs, "2.1 GB of relations vs 35 MB of logs");
    }

    #[test]
    fn logs_mostly_extend() {
        let types = transaction_processing(PAPER_CAPACITY_BYTES);
        for log in &types[1..] {
            assert!(log.extend_pct >= 93.0);
            assert_eq!(log.delete_fraction, 0.0, "logs truncate, never delete");
        }
    }

    #[test]
    fn scaled_down_sizes_keep_minimums() {
        let types = transaction_processing(1024 * 1024); // absurdly small
        for t in &types {
            t.validate().unwrap();
            assert!(t.initial_size_bytes >= 32 * KB);
        }
    }
}
