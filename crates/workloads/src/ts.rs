//! The time-sharing workload (TS).
//!
//! "The time sharing workload is characterized by an abundance of small
//! files (mean size 8K bytes) which are created, read, and deleted.
//! Two-thirds of all requests are to these files. In addition there are
//! larger files (mean size 96K) which get the remaining requests. These
//! files are usually read (60 % of all requests) and occasionally extended,
//! written or truncated (15 % writes, 15 % extends, 5 % deletes and 5 %
//! truncates)."
//!
//! The paper does not publish TS file counts. Because deleted files are
//! re-created at freshly sampled initial sizes, the live population is
//! *stationary*: its steady-state footprint is `Σ count × S_eq`, where
//! `S_eq = initial + (extend_rate·rw − truncate_rate·trunc)/delete_rate`
//! per type. We size the counts so initialization lands near 84 % of
//! capacity and the steady state near 107 % — the allocation test therefore
//! reliably reaches its first failure, and the performance tests hold the
//! 90–95 % window without artificial topping-up. Two-thirds of the users
//! (and hence of the requests) go to the small type.

use readopt_sim::FileTypeConfig;

const KB: u64 = 1024;

/// Builds the TS workload for a disk system of `capacity_bytes`.
pub fn timesharing(capacity_bytes: u64) -> Vec<FileTypeConfig> {
    let small_mean = 8 * KB;
    let large_mean = 96 * KB;
    let small_count = (capacity_bytes as f64 * 0.12 / small_mean as f64).round().max(4.0) as u64;
    let large_count = (capacity_bytes as f64 * 0.74 / large_mean as f64).round().max(4.0) as u64;
    vec![
        FileTypeConfig {
            name: "ts-small".into(),
            num_files: small_count,
            num_users: 16,
            process_time_ms: 100.0,
            hit_frequency_ms: 50.0,
            rw_size_bytes: 4 * KB,
            rw_deviation_bytes: 2 * KB,
            // Small files want small extents — the paper's TS extent tables
            // bottom out at 1 KB.
            allocation_size_bytes: KB,
            truncate_size_bytes: 4 * KB,
            initial_size_bytes: small_mean,
            initial_deviation_bytes: 4 * KB,
            // "created, read, and deleted": reads dominate, deallocations
            // are mostly whole-file deletes.
            read_pct: 60.0,
            write_pct: 10.0,
            extend_pct: 15.0,
            deallocate_pct: 15.0,
            delete_fraction: 2.0 / 3.0,
            sequential_access: false,
            page_aligned: false,
        },
        FileTypeConfig {
            name: "ts-large".into(),
            num_files: large_count,
            num_users: 8,
            process_time_ms: 100.0,
            hit_frequency_ms: 50.0,
            rw_size_bytes: 8 * KB,
            rw_deviation_bytes: 4 * KB,
            allocation_size_bytes: 8 * KB,
            truncate_size_bytes: 8 * KB,
            initial_size_bytes: large_mean,
            initial_deviation_bytes: 32 * KB,
            // "60 % [reads], 15 % writes, 15 % extends, 5 % deletes and 5 %
            // truncates".
            read_pct: 60.0,
            write_pct: 15.0,
            extend_pct: 15.0,
            deallocate_pct: 10.0,
            delete_fraction: 0.5,
            sequential_access: false,
            page_aligned: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAPER_CAPACITY_BYTES;

    #[test]
    fn counts_scale_with_capacity() {
        let full = timesharing(PAPER_CAPACITY_BYTES);
        let small = timesharing(PAPER_CAPACITY_BYTES / 64);
        assert!(full[0].num_files > 60 * small[0].num_files / 2);
        assert!(full[0].num_files > 10_000, "abundant small files at full scale");
        // Mean sizes do NOT scale: 8 K / 96 K are the paper's numbers.
        assert_eq!(full[0].initial_size_bytes, small[0].initial_size_bytes);
        assert_eq!(full[1].initial_size_bytes, 96 * KB);
    }

    #[test]
    fn large_file_ratios_match_quote() {
        let t = &timesharing(PAPER_CAPACITY_BYTES)[1];
        assert_eq!(t.read_pct, 60.0);
        assert_eq!(t.write_pct, 15.0);
        assert_eq!(t.extend_pct, 15.0);
        assert_eq!(t.deallocate_pct, 10.0);
        assert!((t.delete_fraction - 0.5).abs() < f64::EPSILON, "5 % deletes + 5 % truncates");
    }

    #[test]
    fn tiny_capacity_still_produces_files() {
        let types = timesharing(1024 * 1024);
        assert!(types.iter().all(|t| t.num_files >= 4));
        for t in &types {
            t.validate().unwrap();
        }
    }
}
