//! End-to-end binary-results-store tests against the real `repro` binary:
//! `repro export` must regenerate the JSON sidecars byte-identically,
//! the store's point records must not depend on `--jobs`/`--shards`/
//! `--workers`, and a `users_1e6` ladder killed mid-rung by the
//! checkpoint fault injection must resume to the same store bytes.

use readopt_store::StoreReader;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn out_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    dir
}

fn run_repro(args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = repro();
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("repro runs")
}

fn run_ok(args: &[&str], env: &[(&str, &str)]) -> Output {
    let out = run_repro(args, env);
    assert!(
        out.status.success(),
        "repro {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn read(dir: &Path, file: &str) -> String {
    std::fs::read_to_string(dir.join(file))
        .unwrap_or_else(|e| panic!("read {}/{file}: {e}", dir.display()))
}

/// Every point-record payload in `store`, keyed by `(experiment, index)`.
fn point_records(store: &Path) -> BTreeMap<(String, u64), String> {
    let mut reader = StoreReader::open(store)
        .unwrap_or_else(|e| panic!("open {}: {e}", store.display()));
    let ids: Vec<(String, u64)> = reader.point_ids().to_vec();
    ids.into_iter()
        .map(|(exp, idx)| {
            let payload = reader.point(&exp, idx).expect("read point");
            ((exp, idx), payload)
        })
        .collect()
}

/// `repro --store` + `repro export` round-trips every sidecar
/// byte-identically, and neither the sweep point records nor the
/// deterministic artifacts depend on the parallelism knobs.
#[test]
fn store_export_roundtrips_and_is_parallelism_invariant() {
    let dir = out_dir("store_roundtrip");
    let base = ["table4", "--scale", "64", "--intervals", "4"];
    let store1 = dir.join("j1.rrs");
    let json1 = dir.join("j1");
    run_ok(
        &[&base[..], &["--jobs", "1", "--store", store1.to_str().unwrap(), "--json", json1.to_str().unwrap()]].concat(),
        &[],
    );

    // Export regenerates every sidecar the run wrote, byte-for-byte.
    let exported = dir.join("export");
    run_ok(
        &["export", "--store", store1.to_str().unwrap(), "--json", exported.to_str().unwrap()],
        &[],
    );
    let mut names: Vec<String> = std::fs::read_dir(&json1)
        .expect("list sidecars")
        .map(|e| e.expect("dir entry").file_name().into_string().expect("utf-8 name"))
        .collect();
    names.sort();
    assert!(names.contains(&String::from("table4.json")), "sidecars written: {names:?}");
    for name in &names {
        assert_eq!(
            read(&json1, name),
            read(&exported, name),
            "{name}: export must be byte-identical to the original sidecar"
        );
    }

    // The same sweep under every parallelism knob appends the same
    // point records and the same deterministic artifacts.
    let reference = point_records(&store1);
    assert!(
        reference.keys().any(|(exp, _)| exp == "table4"),
        "store holds table4 sweep points: {:?}",
        reference.keys().collect::<Vec<_>>()
    );
    for (tag, extra) in
        [("j2", ["--jobs", "2"]), ("s2", ["--shards", "2"]), ("w2", ["--workers", "2"])]
    {
        let store = dir.join(format!("{tag}.rrs"));
        run_ok(&[&base[..], &extra[..], &["--store", store.to_str().unwrap()]].concat(), &[]);
        let got = point_records(&store);
        for (id, payload) in &reference {
            // The profile artifact carries wall-clock; everything else
            // must match byte-for-byte.
            if id.0 == "artifact/profile" {
                continue;
            }
            assert_eq!(
                got.get(id),
                Some(payload),
                "{tag}: store record {id:?} must match the --jobs 1 bytes"
            );
        }
    }

    // A store written under one configuration refuses a different one.
    let clash = run_repro(
        &["table4", "--scale", "32", "--intervals", "4", "--store", store1.to_str().unwrap()],
        &[],
    );
    assert!(!clash.status.success(), "scale 32 against a scale-64 store must be rejected");
    assert!(
        String::from_utf8_lossy(&clash.stderr).contains("different run configuration"),
        "stderr names the meta mismatch:\n{}",
        String::from_utf8_lossy(&clash.stderr)
    );
}

/// A `users_1e6` rung killed mid-test by the checkpoint fault injection
/// resumes from the engine snapshot and seals a store whose ladder point
/// records are byte-identical to an uninterrupted run's.
#[test]
fn killed_users_ladder_resumes_to_identical_store_bytes() {
    let dir = out_dir("store_resume");
    let ckpt = dir.join("ckpt");
    std::fs::create_dir_all(&ckpt).expect("create ckpt dir");
    let base = ["users_1e6", "--scale", "64", "--intervals", "4"];
    let common = [
        ("REPRO_USERS_LADDER", "64"),
        ("REPRO_CKPT_DIR", ckpt.to_str().unwrap()),
        ("REPRO_CKPT_EVERY", "50"),
    ];

    // First attempt: die after the first snapshot write.
    let killed = dir.join("killed.rrs");
    let out = run_repro(
        &[&base[..], &["--store", killed.to_str().unwrap()]].concat(),
        &[&common[..], &[("REPRO_CKPT_KILL", "1")]].concat(),
    );
    assert_eq!(
        out.status.code(),
        Some(readopt_sim::CHECKPOINT_KILL_EXIT),
        "fault injection exits with the kill code:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(ckpt.join("users_64_heap.ckpt").exists(), "the snapshot survives the kill");

    // Second attempt, same store, kill disarmed: resumes mid-test.
    let out = run_ok(&[&base[..], &["--store", killed.to_str().unwrap()]].concat(), &common);
    assert!(
        !ckpt.join("users_64_heap.ckpt").exists(),
        "the snapshot is removed once the rung completes"
    );
    drop(out);

    // Uninterrupted reference run (no checkpointing at all).
    let reference = dir.join("ref.rrs");
    run_ok(
        &[&base[..], &["--store", reference.to_str().unwrap()]].concat(),
        &[("REPRO_USERS_LADDER", "64")],
    );

    let resumed = point_records(&killed);
    let fresh = point_records(&reference);
    let ladder_ids: Vec<&(String, u64)> =
        fresh.keys().filter(|(exp, _)| exp == "users_1e6").collect();
    assert_eq!(ladder_ids.len(), 2, "one record per backend: {ladder_ids:?}");
    for id in ladder_ids {
        assert_eq!(
            resumed.get(id),
            fresh.get(id),
            "{id:?}: resumed ladder record must match the uninterrupted bytes"
        );
    }
}
