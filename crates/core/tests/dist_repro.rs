//! End-to-end distributed-sweep tests against the real `repro` binary:
//! `--workers 2` must produce byte-identical artifacts to `--jobs 1`, with
//! and without a worker being killed mid-sweep.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn out_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    dir
}

fn run_table4(dir: &Path, extra: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = repro();
    cmd.args(["table4", "--scale", "64", "--intervals", "4", "--json"])
        .arg(dir)
        .args(extra);
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("repro runs");
    assert!(
        out.status.success(),
        "repro {extra:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn read(dir: &Path, file: &str) -> String {
    std::fs::read_to_string(dir.join(file))
        .unwrap_or_else(|e| panic!("read {}/{file}: {e}", dir.display()))
}

fn assert_artifacts_match(reference: &Path, candidate: &Path, what: &str) {
    for file in ["table4.json", "table4.metrics.json", "table4.hist.json"] {
        assert_eq!(
            read(reference, file),
            read(candidate, file),
            "{what}: {file} must be byte-identical to the --jobs 1 reference"
        );
    }
}

/// The dist summary line, e.g.
/// `  [dist] table4: 15 points on 2 workers (2 spawned, 0 retries)`.
fn dist_summary(stderr: &[u8]) -> (u32, u64) {
    let text = String::from_utf8_lossy(stderr);
    let line = text
        .lines()
        .find(|l| l.contains("[dist] table4:"))
        .unwrap_or_else(|| panic!("no dist summary in stderr:\n{text}"));
    let (_, counts) = line.split_once(':').expect("summary line has a colon");
    let nums: Vec<u64> = counts
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().unwrap())
        .collect();
    // points, workers, spawned, retries
    assert_eq!(nums.len(), 4, "unexpected dist summary shape: {line}");
    assert_eq!(nums[0], 15, "table4 distributes 15 points: {line}");
    assert_eq!(nums[1], 2, "ran with 2 workers: {line}");
    (u32::try_from(nums[2]).unwrap(), nums[3])
}

#[test]
fn workers_two_matches_jobs_one_byte_for_byte() {
    let ref_dir = out_dir("t4-jobs1");
    run_table4(&ref_dir, &["--jobs", "1"], &[]);

    let w2_dir = out_dir("t4-workers2");
    let out = run_table4(&w2_dir, &["--workers", "2"], &[]);
    let (spawned, _retries) = dist_summary(&out.stderr);
    assert!(spawned >= 2, "both worker slots connected");
    assert_artifacts_match(&ref_dir, &w2_dir, "clean distributed run");

    // The timing profile files the distributed run under the dist/ family
    // so the perf gate tracks it separately from in-process history.
    assert!(
        read(&w2_dir, "profile.json").contains("\"dist/table4\""),
        "profile entry must be labeled dist/table4"
    );
    assert!(
        read(&ref_dir, "profile.json").contains("\"table4\""),
        "in-process profile keeps the plain label"
    );
}

#[test]
fn killed_worker_is_respawned_and_artifacts_stay_identical() {
    let ref_dir = out_dir("t4-kill-ref");
    run_table4(&ref_dir, &["--jobs", "1"], &[]);

    // Worker 0 aborts (SIGKILL-equivalent) right after its first result:
    // the coordinator must respawn the slot, retry the lost point, and
    // still reassemble the exact reference bytes.
    let kill_dir = out_dir("t4-kill-w2");
    let out = run_table4(&kill_dir, &["--workers", "2"], &[("READOPT_DIST_KILL", "0:1")]);
    let (spawned, _retries) = dist_summary(&out.stderr);
    assert!(spawned >= 3, "the killed slot was respawned at least once ({spawned} spawned)");
    assert_artifacts_match(&ref_dir, &kill_dir, "kill-retry distributed run");
}
