//! `users_1e6` scaling family: one small-file point, repeated at
//! exponentially increasing user counts on both event-queue backends.
//!
//! The calendar queue's contract is *bit-identical pops at O(1) cost* — so
//! this driver is both a benchmark and an acceptance check: each rung runs
//! the identical configuration once per backend ([`EventQueueKind::Heap`],
//! [`EventQueueKind::Calendar`]), hard-asserts the application reports and
//! event counts match, and records the wall-clock ratio. The workload
//! ([`FileTypeConfig::many_users`]) holds ~`users` events pending and pops
//! ~2×`users` of them per run, so the rungs sweep the regime where the
//! heap's `O(log n)` per-pop cost becomes visible and the calendar's does
//! not.
//!
//! CI runs the smoke ladder (≤ 16 k users); the full ladder tops out at a
//! million users behind `repro --users-full`. Points run sequentially
//! (never fanned across the runner's job pool) so the timings measure the
//! queue, not scheduler contention.

use crate::context::ExperimentContext;
use crate::metrics::{ExperimentHist, ExperimentMetrics, PointHist};
use crate::report::TextTable;
use crate::runner::{self, Job, JobTiming};
use readopt_alloc::{ExtentConfig, FitStrategy, PolicyConfig};
use readopt_disk::SimDuration;
use readopt_sim::{
    CheckpointSpec, EventQueueKind, FileTypeConfig, PerfReport, SimConfig, Simulation, TestHist,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// The user counts CI visits (in order, ascending).
pub const SMOKE_LADDER: [u32; 3] = [1_000, 4_000, 16_000];

/// The full ladder (`repro --users-full`): adds the rungs where queue cost
/// dominates, topping out at the family's namesake million users.
pub const FULL_LADDER: [u32; 5] = [1_000, 4_000, 16_000, 100_000, 1_000_000];

/// Environment override for the ladder: comma-separated user counts
/// (e.g. `REPRO_USERS_LADDER=64,256`). Results-affecting, so it is part
/// of the store's meta fingerprint. Used by the kill/resume tests to run
/// the full checkpoint machinery on a rung that takes milliseconds.
pub const LADDER_ENV: &str = "REPRO_USERS_LADDER";

/// Directory for mid-rung engine checkpoints. When set, each
/// (rung, backend) application test runs checkpointed: a serde snapshot
/// of the full engine state lands in
/// `$REPRO_CKPT_DIR/users_<users>_<backend>.ckpt` every
/// [`CKPT_EVERY_ENV`] steps, a killed run resumes from it bit-identically,
/// and the file is removed when the rung completes.
pub const CKPT_DIR_ENV: &str = "REPRO_CKPT_DIR";

/// Steps between checkpoint snapshots (default 5000).
pub const CKPT_EVERY_ENV: &str = "REPRO_CKPT_EVERY";

/// Fault injection for the kill/resume tests: exit with
/// [`readopt_sim::CHECKPOINT_KILL_EXIT`] after the N-th snapshot write.
/// Unset it on the resuming run, or the resume kills itself again.
pub const CKPT_KILL_ENV: &str = "REPRO_CKPT_KILL";

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// The [`LADDER_ENV`] ladder, if set and well-formed.
pub fn ladder_from_env() -> Option<Vec<u32>> {
    let raw = std::env::var(LADDER_ENV).ok()?;
    let rungs: Option<Vec<u32>> = raw
        .split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|t| t.parse().ok())
        .collect();
    rungs.filter(|r| !r.is_empty())
}

/// One rung's measurement: the same simulation on both backends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsersScalePoint {
    /// User count (= pending-event count) of this rung.
    pub users: u32,
    /// Events popped during the measured application test — identical on
    /// both backends by assertion.
    pub events: u64,
    /// Wall-clock of the heap-backed run, seconds.
    pub wall_heap_s: f64,
    /// Wall-clock of the calendar-backed run, seconds.
    pub wall_calendar_s: f64,
    /// Application throughput, % of max — identical on both backends.
    pub application_pct: f64,
    /// Heap wall / calendar wall (> 1 means the calendar won).
    pub calendar_speedup: f64,
}

/// The full scaling sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsersScale {
    /// Whether the full (million-user) ladder ran, or just the smoke rungs.
    pub full_ladder: bool,
    /// One entry per rung, ascending user count.
    pub points: Vec<UsersScalePoint>,
    /// Calendar speedup at the largest rung (the headline number the perf
    /// gate tracks, warn-only).
    pub speedup_at_max_users: f64,
}

/// Builds one rung's configuration. Everything except `users` and the
/// backend is pinned so the two runs per rung — and consecutive snapshots
/// of the same rung — are comparable.
fn point_config(ctx: &ExperimentContext, users: u32, kind: EventQueueKind) -> SimConfig {
    let policy = PolicyConfig::Extent(ExtentConfig {
        // Small extents matched to the 64 KB files: allocation stays cheap
        // and successful, keeping the event queue the measured structure.
        range_means_bytes: vec![8 * 1024, 64 * 1024],
        fit: FitStrategy::FirstFit,
        sigma_frac: 0.1,
    });
    let mut cfg = SimConfig::new(ctx.array, policy, vec![FileTypeConfig::many_users(users)]);
    // One-second intervals over a short window: with a 3 s think time the
    // six measured seconds pop ~2×`users` events, which is enough signal
    // without making the million-user rung take minutes.
    cfg.interval = SimDuration::from_secs(1.0);
    cfg.max_intervals = 6;
    cfg.shards = 1;
    cfg.shard_workers = 1;
    cfg.event_queue = kind;
    cfg
}

/// Runs one rung on one backend: application test only (the sequential
/// test exercises the disk model, not the queue). The latency histogram
/// rides along so the backend-equality assertion covers the full latency
/// distribution, not just the headline report.
///
/// With a [`CheckpointSpec`], the application test runs checkpointed:
/// identical results (the snapshot writes are pure), but a killed run
/// resumes mid-test from the last snapshot instead of starting over —
/// the property that makes a preempted million-user rung cheap to retry.
fn run_point(cfg: SimConfig, seed: u64, ckpt: Option<&CheckpointSpec>) -> (PerfReport, u64, TestHist) {
    let mut sim = Simulation::new(&cfg, seed.wrapping_add(1));
    sim.reset_counters();
    sim.storage_reset_for_probe();
    let report = match ckpt {
        Some(spec) => sim
            .run_application_test_checkpointed(spec)
            .unwrap_or_else(|e| panic!("checkpointed rung {}: {e}", spec.path.display())),
        None => sim.run_application_test(),
    };
    let events = sim.engine_counters().events;
    let hist = sim.latency_hist("application");
    (report, events, hist)
}

/// Runs the sweep on the smoke or full ladder.
pub fn run(ctx: &ExperimentContext, full: bool) -> UsersScale {
    run_profiled(ctx, full).0
}

/// As [`run`], also returning per-point wall-clock timings, an (empty)
/// metrics sidecar — the per-backend equality assertions are the
/// observability here — and per-rung latency histograms (one per rung; the
/// heap and calendar histograms are asserted identical first).
pub fn run_profiled(
    ctx: &ExperimentContext,
    full: bool,
) -> (UsersScale, Vec<JobTiming>, ExperimentMetrics, ExperimentHist) {
    let env_ladder = ladder_from_env();
    let ladder: &[u32] = match &env_ladder {
        Some(l) => l,
        None if full => &FULL_LADDER,
        None => &SMOKE_LADDER,
    };
    let (points, timings, hists) = run_ladder(ctx, ladder);
    let speedup = points.last().map_or(1.0, |p| p.calendar_speedup);
    let result = UsersScale { full_ladder: full, points, speedup_at_max_users: speedup };
    (
        result,
        timings,
        ExperimentMetrics::empty("users_1e6"),
        ExperimentHist::new("users_1e6", hists),
    )
}

/// Runs an explicit ladder (tests use a tiny one). Each rung runs heap
/// first, then calendar, and asserts the two runs are bit-identical.
///
/// When the global results store is open, every completed
/// (rung, backend) appends a `users_1e6` point record holding only the
/// deterministic outcome triple (report, event count, latency histogram)
/// — never wall-clock — and a rung already recorded (a resumed run)
/// is deserialized from the store instead of re-simulated. Combined
/// with [`CKPT_DIR_ENV`] engine checkpoints this makes a killed ladder
/// resumable at two granularities: completed rungs skip entirely, the
/// interrupted rung restarts mid-test.
pub fn run_ladder(
    ctx: &ExperimentContext,
    ladder: &[u32],
) -> (Vec<UsersScalePoint>, Vec<JobTiming>, Vec<PointHist>) {
    let ckpt_dir = std::env::var(CKPT_DIR_ENV).ok();
    let mut points: Vec<UsersScalePoint> = Vec::new();
    let mut timings: Vec<JobTiming> = Vec::new();
    let mut hists: Vec<PointHist> = Vec::new();
    for (rung, &users) in ladder.iter().enumerate() {
        let mut walls = [0.0f64; 2];
        let mut outcomes: Vec<(PerfReport, u64, TestHist)> = Vec::new();
        for (i, kind) in [EventQueueKind::Heap, EventQueueKind::Calendar].into_iter().enumerate() {
            let cfg = point_config(ctx, users, kind);
            let seed = ctx.seed;
            let backend = match kind {
                EventQueueKind::Heap => "heap",
                EventQueueKind::Calendar => "calendar",
            };
            let label = format!("users_1e6/u{users}/{backend}");
            let record_index = (2 * rung + i) as u64;
            if let Some(stored) = crate::storex::lookup("users_1e6", record_index) {
                // Completed before the previous run was killed: trust the
                // stored bytes (they were verified on append) and skip the
                // simulation. The wall column reads 0 — timing is the one
                // thing a resumed run cannot reproduce.
                let outcome: (PerfReport, u64, TestHist) = serde_json::from_str(&stored)
                    .unwrap_or_else(|e| panic!("corrupt store record {label}: {e}"));
                eprintln!("  [store] users_1e6: {label} recovered, skipping the rerun");
                outcomes.push(outcome);
                timings.push(JobTiming { label, wall_ms: 0.0 });
                continue;
            }
            let ckpt = ckpt_dir.as_ref().map(|dir| CheckpointSpec {
                path: Path::new(dir).join(format!("users_{users}_{backend}.ckpt")),
                every_steps: env_u64(CKPT_EVERY_ENV).unwrap_or(5_000),
                kill_after: env_u64(CKPT_KILL_ENV),
                config_fingerprint: serde_json::to_string(&cfg)
                    .unwrap_or_else(|e| panic!("serialize rung config: {e}")),
            });
            // One job through the runner (sequentially: one job, one
            // thread) so the wall-clock comes from the same
            // instrumentation as every other experiment's profile.
            let out = runner::run_jobs(
                1,
                vec![Job::new(label, move || run_point(cfg, seed, ckpt.as_ref()))],
            );
            let outcome = out.results.into_iter().next();
            let timing = out.timings.into_iter().next();
            let (Some(outcome), Some(timing)) = (outcome, timing) else {
                continue;
            };
            if crate::storex::active() {
                let payload = serde_json::to_string(&outcome)
                    .unwrap_or_else(|e| panic!("serialize rung outcome: {e}"));
                crate::storex::record("users_1e6", record_index, &payload)
                    .unwrap_or_else(|e| panic!("results store: {e}"));
            }
            walls[i] = timing.wall_ms / 1e3;
            outcomes.push(outcome);
            timings.push(timing);
        }
        let [Some((heap_report, heap_events, heap_hist)), Some((cal_report, cal_events, cal_hist))] =
            [outcomes.first(), outcomes.get(1)]
        else {
            continue;
        };
        assert_eq!(
            heap_report, cal_report,
            "calendar run diverged from the heap reference at {users} users"
        );
        assert_eq!(
            heap_events, cal_events,
            "calendar popped a different event count at {users} users"
        );
        assert_eq!(
            heap_hist, cal_hist,
            "calendar latency distribution diverged from the heap reference at {users} users"
        );
        hists.push(PointHist::new(format!("users_1e6/u{users}"), vec![heap_hist.clone()]));
        points.push(UsersScalePoint {
            users,
            events: *heap_events,
            wall_heap_s: walls[0],
            wall_calendar_s: walls[1],
            application_pct: heap_report.throughput_pct,
            calendar_speedup: walls[0] / walls[1].max(1e-9),
        });
    }
    (points, timings, hists)
}

impl fmt::Display for UsersScale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ladder = if self.full_ladder { "full ladder" } else { "smoke ladder" };
        let mut t = TextTable::new(format!(
            "users_1e6 scaling ({ladder}; heap vs calendar, identical output asserted per rung)"
        ))
        .headers(["users", "events", "heap wall", "calendar wall", "application", "speedup"]);
        for p in &self.points {
            t.row([
                p.users.to_string(),
                p.events.to_string(),
                format!("{:.2}s", p.wall_heap_s),
                format!("{:.2}s", p.wall_calendar_s),
                format!("{:.1}%", p.application_pct),
                format!("{:.2}x", p.calendar_speedup),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sweep asserts backend equality internally; this exercises it
    /// end to end at a tiny rung so the calendar backend runs under the
    /// experiment plumbing (not just the queue-level differential tests).
    #[test]
    fn tiny_ladder_is_bit_identical_across_backends() {
        let ctx = ExperimentContext::fast(64);
        let (points, timings, hists) = run_ladder(&ctx, &[64, 256]);
        assert_eq!(points.len(), 2);
        assert_eq!(timings.len(), 4, "one timing per (rung, backend)");
        assert_eq!(hists.len(), 2, "one histogram per rung");
        assert!(hists.iter().all(|h| h.tests.len() == 1));
        assert!(points[0].users == 64 && points[1].users == 256);
        for p in &points {
            assert!(p.events > 0, "the measured window popped events");
            assert!(p.wall_heap_s >= 0.0 && p.wall_calendar_s >= 0.0);
            assert!(p.calendar_speedup > 0.0);
        }
        assert!(
            points[1].events > points[0].events,
            "event volume scales with the user count ({} vs {})",
            points[1].events,
            points[0].events,
        );
    }

    #[test]
    fn smoke_result_shape_and_labels() {
        let ctx = ExperimentContext::fast(64);
        let (result, timings, metrics, hists) = run_profiled(&ctx, false);
        assert!(!result.full_ladder);
        assert_eq!(result.points.len(), SMOKE_LADDER.len());
        assert_eq!(timings.len(), 2 * SMOKE_LADDER.len());
        assert_eq!(metrics.experiment, "users_1e6");
        assert_eq!(hists.experiment, "users_1e6");
        assert_eq!(hists.points.len(), SMOKE_LADDER.len());
        assert!(hists.points.iter().any(|p| p.label == "users_1e6/u1000"));
        assert!(timings.iter().any(|t| t.label == "users_1e6/u1000/heap"));
        assert!(timings.iter().any(|t| t.label == "users_1e6/u16000/calendar"));
        assert_eq!(result.speedup_at_max_users, result.points.last().map_or(1.0, |p| p.calendar_speedup));
        let shown = result.to_string();
        assert!(shown.contains("users_1e6 scaling"));
    }
}
