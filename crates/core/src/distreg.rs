//! Distributed-sweep registry: the bridge between the experiment drivers
//! and the `readopt-dist` coordinator/worker runtime.
//!
//! Every distributable experiment exposes its sweep as a `dist_jobs(ctx)`
//! builder that enumerates the identical, deterministic job list in every
//! process. That shared enumeration is the whole protocol contract: a point
//! is addressed purely by `(experiment, index)`, so the coordinator never
//! ships closures — a worker agent rebuilds the list from the context JSON
//! and runs the one index it was assigned. Because each point builds its own
//! simulation from the context seed (see `runner`), the reassembled sweep is
//! bit-identical to an in-process `--jobs N` run at any worker count, and a
//! retried point reproduces the exact bytes of the attempt it replaces.
//!
//! [`run_jobs_ctx`] is the single entry point the drivers call: it forks
//! worker agents when `ctx.workers >= 2` and the experiment is registered,
//! and otherwise (or if the distributed run fails outright) falls back to
//! the in-process thread runner.

use crate::context::ExperimentContext;
use crate::runner::{self, Job, JobTiming, RunOutcome};
use readopt_dist::{CoordinatorConfig, WorkerSpec};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Environment variable naming the worker binary to exec. Tests point this
/// at a freshly built `repro`; the repro binary itself defaults to
/// `current_exe`, so normal runs re-exec themselves.
pub const WORKER_BIN_ENV: &str = "REPRO_WORKER_BIN";

/// Experiments whose sweeps are registered for distribution. An experiment
/// qualifies when its point list is a pure function of the context (no
/// cross-point state) — which is every §3-suite sweep. The wall-clock
/// studies (`shard_scaling`, `users_1e6`) and the sub-second table stubs
/// stay in-process.
pub const DIST_EXPERIMENTS: &[&str] =
    &["diag", "fig1", "fig2", "fig4", "fig5", "fig6", "table3", "table4"];

/// Whether `experiment` is registered for distribution.
pub fn supports(experiment: &str) -> bool {
    DIST_EXPERIMENTS.contains(&experiment)
}

/// Number of sweep points `experiment` enumerates under `ctx`, or `None`
/// for unregistered experiments.
pub fn point_count(ctx: &ExperimentContext, experiment: &str) -> Option<usize> {
    match experiment {
        "diag" => Some(crate::diag::dist_jobs(ctx).len()),
        "fig1" => Some(crate::fig1::dist_jobs(ctx).len()),
        "fig2" => Some(crate::fig2::dist_jobs(ctx).len()),
        "fig4" => Some(crate::fig4::dist_jobs(ctx).len()),
        "fig5" => Some(crate::fig5::dist_jobs(ctx).len()),
        "fig6" => Some(crate::fig6::dist_jobs(ctx).len()),
        "table3" => Some(crate::table3::dist_jobs(ctx).len()),
        "table4" => Some(crate::table4::dist_jobs(ctx).len()),
        _ => None,
    }
}

/// Runs one sweep point by `(experiment, index)` and serializes its full
/// output (result + metrics + histogram triple) as the frame payload the
/// coordinator reassembles. This is what a worker agent executes per Assign.
pub fn run_point(ctx: &ExperimentContext, experiment: &str, index: u64) -> Result<String, String> {
    match experiment {
        "diag" => run_one(crate::diag::dist_jobs(ctx), index),
        "fig1" => run_one(crate::fig1::dist_jobs(ctx), index),
        "fig2" => run_one(crate::fig2::dist_jobs(ctx), index),
        "fig4" => run_one(crate::fig4::dist_jobs(ctx), index),
        "fig5" => run_one(crate::fig5::dist_jobs(ctx), index),
        "fig6" => run_one(crate::fig6::dist_jobs(ctx), index),
        "table3" => run_one(crate::table3::dist_jobs(ctx), index),
        "table4" => run_one(crate::table4::dist_jobs(ctx), index),
        _ => Err(format!("unknown distributed experiment {experiment:?}")),
    }
}

fn run_one<T: Serialize>(jobs: Vec<Job<'static, T>>, index: u64) -> Result<String, String> {
    let n = jobs.len();
    let idx = usize::try_from(index).map_err(|_| format!("point index {index} overflows usize"))?;
    let Some(job) = jobs.into_iter().nth(idx) else {
        return Err(format!("point index {index} out of range ({n} points)"));
    };
    serde_json::to_string(&job.run()).map_err(|e| format!("serialize point result: {e}"))
}

/// Runs `list` either across `ctx.workers` forked worker agents (when the
/// experiment is registered and `ctx.workers >= 2`) or across `ctx.jobs`
/// in-process threads. Results come back in submission order either way,
/// bit-identical between the two paths.
///
/// A distributed run that fails outright (spawn failure, retry budget
/// exhausted, a deterministically failing point) logs a warning and falls
/// back to the in-process runner rather than aborting the experiment.
pub fn run_jobs_ctx<T>(
    ctx: &ExperimentContext,
    experiment: &str,
    list: Vec<Job<'static, T>>,
) -> RunOutcome<T>
where
    T: Send + Serialize + Deserialize,
{
    if ctx.workers >= 2 && supports(experiment) && list.len() > 1 {
        match run_dist(ctx, experiment, &list) {
            Ok(out) => return out,
            Err(e) => eprintln!(
                "  [dist] {experiment}: distributed run failed ({e}); \
                 falling back to in-process threads"
            ),
        }
    }
    let out = runner::run_jobs(ctx.jobs, list);
    // Registered sweeps mirror every point into the open results store in
    // submission order, re-serializing with the exact same serializer the
    // worker agents use — so the store bytes are identical between the
    // in-process and distributed paths. (The dist path streams its
    // worker-serialized payloads instead; a fallback after a partial
    // distributed run re-records the already-streamed prefix, which the
    // store verifies byte-for-byte rather than duplicating.)
    if supports(experiment) && crate::storex::active() {
        for (i, result) in out.results.iter().enumerate() {
            let payload = serde_json::to_string(result)
                .unwrap_or_else(|e| panic!("serialize {experiment} point {i}: {e}"));
            crate::storex::record(experiment, i as u64, &payload)
                .unwrap_or_else(|e| panic!("results store: {e}"));
        }
    }
    out
}

fn run_dist<T: Deserialize>(
    ctx: &ExperimentContext,
    experiment: &str,
    list: &[Job<'static, T>],
) -> Result<RunOutcome<T>, String> {
    // Worker agents run their points sequentially (one Assign at a time),
    // so hand each one the whole machine share: jobs = the process count
    // lets the auto shard-worker budget divide cores the same way the
    // in-process runner would. Neither field influences results.
    let mut worker_ctx = *ctx;
    worker_ctx.workers = 0;
    worker_ctx.jobs = ctx.workers;
    let ctx_json =
        serde_json::to_string(&worker_ctx).map_err(|e| format!("serialize context: {e}"))?;

    let program = match std::env::var_os(WORKER_BIN_ENV) {
        Some(p) => PathBuf::from(p),
        None => std::env::current_exe().map_err(|e| format!("resolve worker binary: {e}"))?,
    };
    let spec = WorkerSpec {
        program,
        args: vec!["--worker-agent".to_string()],
        env: Vec::new(),
    };
    let cfg = CoordinatorConfig::new(ctx.workers);
    // The coordinator streams each payload as soon as the done-prefix is
    // contiguous, so the store grows in sweep order even while later
    // points are still in flight; a store append failure is parked and
    // surfaced after the sweep (the in-process fallback then re-records
    // with byte verification).
    let stream_err: std::sync::Mutex<Option<String>> = std::sync::Mutex::new(None);
    let on_point = |i: usize, payload: &str| {
        if let Err(e) = crate::storex::record(experiment, i as u64, payload) {
            let mut slot = stream_err.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            slot.get_or_insert(e);
        }
    };
    let outcome =
        readopt_dist::run_sweep_with(&spec, &cfg, &ctx_json, experiment, list.len(), &on_point)
            .map_err(|e| e.to_string())?;
    if let Some(e) = stream_err.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner) {
        return Err(format!("results store: {e}"));
    }

    let mut results = Vec::with_capacity(list.len());
    for (i, payload) in outcome.payloads.iter().enumerate() {
        results
            .push(serde_json::from_str(payload).map_err(|e| format!("parse point {i}: {e}"))?);
    }
    let timings = list
        .iter()
        .zip(&outcome.wall_ms)
        .map(|(job, &wall_ms)| JobTiming { label: job.label().to_string(), wall_ms })
        .collect();
    eprintln!(
        "  [dist] {experiment}: {} points on {} workers ({} spawned, {} retries)",
        list.len(),
        ctx.workers,
        outcome.workers_spawned,
        outcome.retries
    );
    Ok(RunOutcome { results, timings })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_exactly_the_sweep_experiments() {
        for exp in DIST_EXPERIMENTS {
            assert!(supports(exp));
        }
        assert!(!supports("users_1e6"));
        assert!(!supports("shard_scaling"));
        assert!(!supports("table1"));
    }

    #[test]
    fn point_counts_match_the_sweep_shapes() {
        let ctx = ExperimentContext::fast(64);
        assert_eq!(point_count(&ctx, "fig1"), Some(48));
        assert_eq!(point_count(&ctx, "fig2"), Some(48));
        assert_eq!(point_count(&ctx, "fig4"), Some(30));
        assert_eq!(point_count(&ctx, "fig5"), Some(30));
        assert_eq!(point_count(&ctx, "fig6"), Some(12));
        assert_eq!(point_count(&ctx, "diag"), Some(12));
        assert_eq!(point_count(&ctx, "table3"), Some(6));
        assert_eq!(point_count(&ctx, "table4"), Some(15));
        assert_eq!(point_count(&ctx, "nope"), None);
    }

    #[test]
    fn out_of_range_and_unknown_points_are_errors() {
        let ctx = ExperimentContext::fast(64);
        assert!(run_point(&ctx, "table3", 999).unwrap_err().contains("out of range"));
        assert!(run_point(&ctx, "bogus", 0).unwrap_err().contains("unknown"));
    }
}
