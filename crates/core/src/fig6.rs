//! Figure 6 (a, b): comparative performance of the four allocation
//! policies.
//!
//! §5 compares the *selected* configurations — buddy; restricted buddy with
//! five block sizes, grow factor 1, clustered; extent-based with three
//! ranges, first-fit — against 4 KB (TS) / 16 KB (TP, SC) fixed-block
//! systems "which do not bias towards automatic striping or contiguous
//! layout".
//!
//! Paper shape targets: every multiblock policy beats fixed-block
//! sequentially; SC/TP sequential near the full bandwidth for the
//! multiblock policies; nobody pushes TS past ~20 %; buddy wins SC
//! application via its enormous blocks.

use crate::context::ExperimentContext;
use crate::distreg;
use crate::metrics::{split3, ExperimentHist, ExperimentMetrics, PointHist, PointMetrics};
use crate::report::{pct, BarChart, TextTable};
use crate::runner::{Job, JobTiming};
use readopt_alloc::{FitStrategy, PolicyConfig};
use readopt_workloads::WorkloadKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One (policy, workload) cell of the comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Cell {
    /// Workload label.
    pub workload: String,
    /// Policy label ("buddy", "restricted-buddy", "extent", "fixed-4K"…).
    pub policy: String,
    /// Application throughput, % of max (Figure 6b).
    pub application_pct: f64,
    /// Sequential throughput, % of max (Figure 6a).
    pub sequential_pct: f64,
}

/// The full comparison grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6 {
    /// 3 workloads × 4 policies.
    pub cells: Vec<Fig6Cell>,
}

/// The §5 policy line-up for one workload.
pub fn policies_for(ctx: &ExperimentContext, wl: WorkloadKind) -> Vec<(String, PolicyConfig)> {
    vec![
        ("buddy".to_string(), PolicyConfig::paper_buddy()),
        ("restricted-buddy".to_string(), PolicyConfig::paper_restricted()),
        ("extent".to_string(), ctx.extent_policy(wl, 3, FitStrategy::FirstFit)),
        (
            format!("fixed-{}K", wl.fixed_block_bytes() / 1024),
            ExperimentContext::fixed_policy(wl),
        ),
    ]
}

/// Runs the comparison.
pub fn run(ctx: &ExperimentContext) -> Fig6 {
    run_profiled(ctx).0
}

/// As [`run`], also returning per-cell wall-clock timings and the
/// observability sidecars (per-cell metrics and latency histograms, in
/// sweep order).
pub fn run_profiled(
    ctx: &ExperimentContext,
) -> (Fig6, Vec<JobTiming>, ExperimentMetrics, ExperimentHist) {
    let out = distreg::run_jobs_ctx(ctx, "fig6", dist_jobs(ctx));
    let (cells, metrics, hists) = split3(out.results);
    (
        Fig6 { cells },
        out.timings,
        ExperimentMetrics::new("fig6", metrics),
        ExperimentHist::new("fig6", hists),
    )
}

/// The 12 cells as registry jobs (identical enumeration in every process).
pub(crate) fn dist_jobs(
    ctx: &ExperimentContext,
) -> Vec<Job<'static, (Fig6Cell, PointMetrics, PointHist)>> {
    let ctx = *ctx;
    let mut jobs = Vec::new();
    for wl in [
        WorkloadKind::Supercomputer,
        WorkloadKind::TransactionProcessing,
        WorkloadKind::Timesharing,
    ] {
        for (name, policy) in policies_for(&ctx, wl) {
            let label = format!("fig6/{}/{name}", wl.short_name());
            let point_label = label.clone();
            jobs.push(Job::new(label, move || {
                let ((app, seq), tms, ths) = ctx.run_performance_observed(wl, policy);
                let cell = Fig6Cell {
                    workload: wl.short_name().to_string(),
                    policy: name,
                    application_pct: app.throughput_pct,
                    sequential_pct: seq.throughput_pct,
                };
                (
                    cell,
                    PointMetrics::new(point_label.clone(), tms),
                    PointHist::new(point_label, ths),
                )
            }));
        }
    }
    jobs
}

impl Fig6 {
    /// The cell for a given workload and policy prefix.
    pub fn cell(&self, workload: &str, policy_prefix: &str) -> Option<&Fig6Cell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.policy.starts_with(policy_prefix))
    }
}

impl Fig6 {
    /// Renders the two panels (6a sequential, 6b application) as bar
    /// charts, grouped by workload like the paper's figure.
    pub fn chart(&self) -> String {
        let mut out = String::new();
        for (panel, pick) in [
            ("Figure 6a: Sequential Performance (% of max)", true),
            ("Figure 6b: Application Performance (% of max)", false),
        ] {
            let mut c = BarChart::new(panel).scale_to(100.0);
            let mut last_wl = String::new();
            for cell in &self.cells {
                if cell.workload != last_wl && !last_wl.is_empty() {
                    c.gap();
                }
                last_wl = cell.workload.clone();
                let v = if pick { cell.sequential_pct } else { cell.application_pct };
                c.bar(format!("{} {}", cell.workload, cell.policy), v);
            }
            out.push_str(&c.to_string());
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new("Figure 6: Comparative Performance of the Allocation Policies")
            .headers(["workload", "policy", "sequential (6a)", "application (6b)"]);
        for c in &self.cells {
            t.row([
                c.workload.clone(),
                c.policy.clone(),
                pct(c.sequential_pct),
                pct(c.application_pct),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_matches_section_5() {
        let ctx = ExperimentContext::fast(64);
        let ps = policies_for(&ctx, WorkloadKind::Timesharing);
        assert_eq!(ps.len(), 4);
        assert_eq!(ps[3].0, "fixed-4K");
        let ps = policies_for(&ctx, WorkloadKind::Supercomputer);
        assert_eq!(ps[3].0, "fixed-16K");
    }

    #[test]
    fn multiblock_beats_fixed_block_sequentially_on_sc() {
        let ctx = ExperimentContext::fast(64);
        let wl = WorkloadKind::Supercomputer;
        let (_, seq_extent) = ctx.run_performance(wl, ctx.extent_policy(wl, 3, FitStrategy::FirstFit));
        let (_, seq_fixed) = ctx.run_performance(wl, ExperimentContext::fixed_policy(wl));
        assert!(
            seq_extent.throughput_pct > seq_fixed.throughput_pct,
            "extent {} vs fixed {}",
            seq_extent.throughput_pct,
            seq_fixed.throughput_pct
        );
    }
}
