//! Table 1: disk drive parameters and the simulated system's maximum
//! throughput.
//!
//! The parameters are inputs, not results — this driver exists so the repro
//! harness can print them next to the *calibrated* maximum sequential
//! bandwidth, the 100 % reference every other experiment normalizes by
//! (paper: 10.8 MB/s for the 8-disk Wren IV system).

use crate::context::ExperimentContext;
use crate::report::TextTable;
use readopt_disk::calibrate_max_bandwidth;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Table 1's contents for the configured system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// Number of disks in the array.
    pub ndisks: usize,
    /// Total usable capacity in bytes.
    pub capacity_bytes: u64,
    /// Platters (data surfaces) per disk.
    pub platters: u32,
    /// Cylinders per disk.
    pub cylinders: u32,
    /// Bytes per track.
    pub track_bytes: u64,
    /// Single-track seek time, ms.
    pub single_track_seek_ms: f64,
    /// Incremental seek time, ms per track.
    pub incremental_seek_ms: f64,
    /// Rotation time, ms.
    pub rotation_ms: f64,
    /// Calibrated maximum sequential throughput, MB/s.
    pub calibrated_max_mb_s: f64,
}

/// Runs the calibration and collects the table.
pub fn run(ctx: &ExperimentContext) -> Table1 {
    let g = ctx.array.geometry;
    let bw = calibrate_max_bandwidth(&ctx.array);
    Table1 {
        ndisks: ctx.array.ndisks,
        capacity_bytes: ctx.array.capacity_bytes(),
        platters: g.surfaces,
        cylinders: g.cylinders,
        track_bytes: g.track_bytes,
        single_track_seek_ms: g.single_track_seek_ms,
        incremental_seek_ms: g.incremental_seek_ms,
        rotation_ms: g.rotation_ms,
        calibrated_max_mb_s: bw * 1000.0 / (1024.0 * 1024.0),
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new("Table 1: Disk Drive Parameters and Simulator Values")
            .headers(["parameter", "value"]);
        t.row(["Number of disks".to_string(), self.ndisks.to_string()]);
        t.row(["Total capacity".to_string(), format!("{:.2} G", self.capacity_bytes as f64 / 1e9)]);
        t.row(["Number of platters".to_string(), self.platters.to_string()]);
        t.row(["Number of cylinders".to_string(), self.cylinders.to_string()]);
        t.row(["Bytes per track".to_string(), format!("{} K", self.track_bytes / 1024)]);
        t.row(["Single track seek time".to_string(), format!("{} ms", self.single_track_seek_ms)]);
        t.row(["Seek incremental time".to_string(), format!("{} ms", self.incremental_seek_ms)]);
        t.row(["Single rotation time".to_string(), format!("{} ms", self.rotation_ms)]);
        t.row(["Calibrated max throughput".to_string(), format!("{:.2} MB/s", self.calibrated_max_mb_s)]);
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_calibrates_near_paper_value() {
        let t = run(&ExperimentContext::full());
        assert_eq!(t.ndisks, 8);
        assert!((9.5..12.0).contains(&t.calibrated_max_mb_s), "{}", t.calibrated_max_mb_s);
        let text = t.to_string();
        assert!(text.contains("Table 1"));
        assert!(text.contains("16.67 ms"));
    }
}
