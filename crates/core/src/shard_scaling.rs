//! Shard-scaling benchmark: one heavy sweep point, repeated at increasing
//! shard counts.
//!
//! The sharded engine's contract is *bit-identical output at any shard
//! count* — so this driver is both a benchmark and an acceptance check: it
//! runs the same (workload, policy) point at 1, 2 and 4 shards, hard-asserts
//! that every report is identical to the serial run, and records the
//! wall-clock ratio. Points run sequentially (never fanned across the
//! runner's job pool) so the timings measure the engine, not scheduler
//! contention.
//!
//! The effect-worker count is resolved per point exactly as production runs
//! resolve it (auto = what the machine affords); on a single-core host the
//! resolved count is 1, the engine stays on the in-line path, and the
//! recorded speedup is honestly ~1.0.

use crate::context::ExperimentContext;
use crate::metrics::ExperimentMetrics;
use crate::report::TextTable;
use crate::runner::{self, Job, JobTiming};
use readopt_alloc::{PolicyConfig, RestrictedConfig};
use readopt_workloads::WorkloadKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The shard counts the sweep visits, in order. The first entry must be 1:
/// it is the reference both for equality and for speedup.
pub const SHARD_SWEEP: [usize; 3] = [1, 2, 4];

/// One shard count's measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardScalingPoint {
    /// Shard count of this run.
    pub shards: usize,
    /// Effect-worker threads the context resolved to (1 = in-line path).
    pub workers: usize,
    /// Wall-clock of the application + sequential pair, seconds.
    pub wall_s: f64,
    /// Application throughput, % of max — identical across points.
    pub application_pct: f64,
    /// Sequential throughput, % of max — identical across points.
    pub sequential_pct: f64,
    /// Serial wall / this wall (1.0 for the reference point).
    pub speedup_vs_serial: f64,
}

/// The full scaling sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardScaling {
    /// Workload label of the measured point.
    pub workload: String,
    /// Sweep-point label of the measured configuration.
    pub point: String,
    /// One entry per shard count, in [`SHARD_SWEEP`] order.
    pub points: Vec<ShardScalingPoint>,
    /// Speedup at the largest shard count (the headline number the perf
    /// gate tracks, warn-only).
    pub speedup_at_max_shards: f64,
}

/// Runs the scaling sweep.
pub fn run(ctx: &ExperimentContext) -> ShardScaling {
    run_profiled(ctx).0
}

/// As [`run`], also returning per-point wall-clock timings and an (empty)
/// observability sidecar — the per-shard reports are the observability
/// here, and a metrics snapshot per point would triple the file for three
/// identical-by-assertion copies.
pub fn run_profiled(ctx: &ExperimentContext) -> (ShardScaling, Vec<JobTiming>, ExperimentMetrics) {
    // The heaviest smoke point: TS through the largest restricted-buddy
    // ladder, the configuration whose per-op I/O volume gives the effect
    // workers the most to chew on.
    let wl = WorkloadKind::Timesharing;
    let policy = || PolicyConfig::Restricted(RestrictedConfig::sweep_point(5, 1, true));
    let mut points: Vec<ShardScalingPoint> = Vec::new();
    let mut timings: Vec<JobTiming> = Vec::new();
    let mut reference: Option<((readopt_sim::PerfReport, readopt_sim::PerfReport), f64)> = None;
    for &shards in &SHARD_SWEEP {
        let point_ctx = ctx.with_shards(shards);
        let cfg = point_ctx.sim_config(wl, policy());
        let workers = cfg.shard_workers;
        let label = format!("shard_scaling/TS/n5-g1-c/s{shards}w{workers}");
        // One job through the runner (sequentially: one job, one thread) so
        // the wall-clock comes from the same instrumentation as every other
        // experiment's profile.
        let out = runner::run_jobs(
            1,
            vec![Job::new(label, move || point_ctx.run_performance(wl, policy()))],
        );
        let reports = out.results.into_iter().next();
        let timing = out.timings.into_iter().next();
        let (Some(reports), Some(timing)) = (reports, timing) else {
            continue;
        };
        let wall_s = timing.wall_ms / 1e3;
        let (serial_reports, serial_wall) = reference.get_or_insert((reports.clone(), wall_s));
        assert_eq!(
            *serial_reports, reports,
            "sharded run diverged from the serial reference at {shards} shards"
        );
        points.push(ShardScalingPoint {
            shards,
            workers,
            wall_s,
            application_pct: reports.0.throughput_pct,
            sequential_pct: reports.1.throughput_pct,
            speedup_vs_serial: *serial_wall / wall_s.max(1e-9),
        });
        timings.push(timing);
    }
    let speedup = points.last().map_or(1.0, |p| p.speedup_vs_serial);
    let result = ShardScaling {
        workload: wl.short_name().to_string(),
        point: "n5-g1-c".to_string(),
        points,
        speedup_at_max_shards: speedup,
    };
    (result, timings, ExperimentMetrics::empty("shard_scaling"))
}

impl fmt::Display for ShardScaling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(format!(
            "Shard scaling: {} {} (identical output asserted per point)",
            self.workload, self.point
        ))
        .headers(["shards", "workers", "wall", "application", "sequential", "speedup"]);
        for p in &self.points {
            t.row([
                p.shards.to_string(),
                p.workers.to_string(),
                format!("{:.2}s", p.wall_s),
                format!("{:.1}%", p.application_pct),
                format!("{:.1}%", p.sequential_pct),
                format!("{:.2}x", p.speedup_vs_serial),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sweep asserts report equality internally; this exercises it end
    /// to end at test scale with the threaded path forced on, so the
    /// pipelined engine runs under the experiment plumbing (not just the
    /// engine-level digest tests).
    #[test]
    fn scaling_sweep_is_bit_identical_and_reports_speedup() {
        let ctx = ExperimentContext::fast(64).with_shard_workers(2);
        let (result, timings, _metrics) = run_profiled(&ctx);
        assert_eq!(result.points.len(), SHARD_SWEEP.len());
        assert_eq!(timings.len(), SHARD_SWEEP.len());
        assert_eq!(result.points[0].speedup_vs_serial, 1.0, "reference point");
        for (p, &shards) in result.points.iter().zip(SHARD_SWEEP.iter()) {
            assert_eq!(p.shards, shards);
            assert_eq!(p.workers, 2.min(shards));
            assert_eq!(p.application_pct, result.points[0].application_pct);
            assert_eq!(p.sequential_pct, result.points[0].sequential_pct);
            assert!(p.wall_s >= 0.0 && p.speedup_vs_serial > 0.0);
        }
    }
}
