//! Figure 5 (a–f): application and sequential performance for the
//! extent-based policies, over the Figure 4 sweep.
//!
//! Paper shape targets: throughput fairly insensitive to first-fit vs
//! best-fit (first-fit marginally ahead from its low-address clustering);
//! TP/SC peak around 3 ranges, where the average extents per file bottom
//! out (Table 4).

use crate::context::ExperimentContext;
use crate::distreg;
use crate::metrics::{split3, ExperimentHist, ExperimentMetrics, PointHist, PointMetrics};
use crate::report::{pct, BarChart, TextTable};
use crate::runner::{Job, JobTiming};
use readopt_alloc::FitStrategy;
use readopt_workloads::WorkloadKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One bar of the figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Point {
    /// Workload label.
    pub workload: String,
    /// Number of extent ranges (1–5).
    pub n_ranges: usize,
    /// First-fit or best-fit.
    pub fit: FitStrategy,
    /// Application throughput, % of max.
    pub application_pct: f64,
    /// Sequential throughput, % of max.
    pub sequential_pct: f64,
    /// Average extents per live file at the end of the run (Table 4).
    pub avg_extents_per_file: f64,
}

/// The full sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5 {
    /// All 30 sweep points.
    pub points: Vec<Fig5Point>,
}

/// Runs the performance tests across the sweep.
pub fn run(ctx: &ExperimentContext) -> Fig5 {
    run_profiled(ctx).0
}

/// As [`run`], also returning per-point wall-clock timings and the
/// observability sidecars (per-point metrics and latency histograms).
pub fn run_profiled(
    ctx: &ExperimentContext,
) -> (Fig5, Vec<JobTiming>, ExperimentMetrics, ExperimentHist) {
    let out = distreg::run_jobs_ctx(ctx, "fig5", dist_jobs(ctx));
    let (points, metrics, hists) = split3(out.results);
    (
        Fig5 { points },
        out.timings,
        ExperimentMetrics::new("fig5", metrics),
        ExperimentHist::new("fig5", hists),
    )
}

/// The full sweep as registry jobs (identical enumeration in every process).
pub(crate) fn dist_jobs(
    ctx: &ExperimentContext,
) -> Vec<Job<'static, (Fig5Point, PointMetrics, PointHist)>> {
    let ctx = *ctx;
    let mut jobs = Vec::new();
    for wl in WorkloadKind::all() {
        for n_ranges in 1..=5usize {
            for fit in [FitStrategy::FirstFit, FitStrategy::BestFit] {
                let label = format!("fig5/{}/r{n_ranges}-{fit:?}", wl.short_name());
                let point_label = label.clone();
                jobs.push(Job::new(label, move || {
                    let policy = ctx.extent_policy(wl, n_ranges, fit);
                    let ((app, seq), tms, ths) = ctx.run_performance_observed(wl, policy);
                    let point = Fig5Point {
                        workload: wl.short_name().to_string(),
                        n_ranges,
                        fit,
                        application_pct: app.throughput_pct,
                        sequential_pct: seq.throughput_pct,
                        avg_extents_per_file: seq.avg_extents_per_file,
                    };
                    (
                        point,
                        PointMetrics::new(point_label.clone(), tms),
                        PointHist::new(point_label, ths),
                    )
                }));
            }
        }
    }
    jobs
}

impl Fig5 {
    /// Points for one workload, in sweep order.
    pub fn workload(&self, short_name: &str) -> Vec<&Fig5Point> {
        self.points.iter().filter(|p| p.workload == short_name).collect()
    }
}

impl Fig5 {
    /// Renders the six panels (application/sequential per workload).
    pub fn chart(&self) -> String {
        let mut out = String::new();
        for wl in ["TS", "TP", "SC"] {
            for (metric, app) in [("application", true), ("sequential", false)] {
                let mut c = BarChart::new(format!(
                    "Figure 5 ({wl}): {metric} performance (% of max)"
                ))
                .scale_to(100.0);
                let mut last_n = 0;
                for p in self.workload(wl) {
                    if p.n_ranges != last_n && last_n != 0 {
                        c.gap();
                    }
                    last_n = p.n_ranges;
                    let v = if app { p.application_pct } else { p.sequential_pct };
                    c.bar(format!("{} ranges {:?}", p.n_ranges, p.fit), v);
                }
                out.push_str(&c.to_string());
                out.push('\n');
            }
        }
        out
    }
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new("Figure 5: Application and Sequential Performance, Extent Based Policies")
            .headers(["workload", "ranges", "fit", "application", "sequential", "extents/file"]);
        for p in &self.points {
            t.row([
                p.workload.clone(),
                p.n_ranges.to_string(),
                format!("{:?}", p.fit),
                pct(p.application_pct),
                pct(p.sequential_pct),
                format!("{:.1}", p.avg_extents_per_file),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_strategies_perform_similarly() {
        let ctx = ExperimentContext::fast(64);
        let wl = WorkloadKind::Supercomputer;
        let (_, seq_ff) = ctx.run_performance(wl, ctx.extent_policy(wl, 3, FitStrategy::FirstFit));
        let (_, seq_bf) = ctx.run_performance(wl, ctx.extent_policy(wl, 3, FitStrategy::BestFit));
        let ratio = seq_ff.throughput_pct / seq_bf.throughput_pct.max(1e-9);
        assert!(
            (0.6..1.7).contains(&ratio),
            "first-fit {} vs best-fit {}",
            seq_ff.throughput_pct,
            seq_bf.throughput_pct
        );
    }
}
