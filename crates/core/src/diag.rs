//! Diagnostics: where does the disk time go?
//!
//! Not a paper artifact — this decomposes each (workload, policy)
//! application run into seek / rotational-latency / transfer shares of disk
//! busy time, plus utilization. It is the quantitative backing for the
//! throughput discussion in EXPERIMENTS.md: read-optimized layouts win by
//! converting seek time into transfer time, and this table shows exactly
//! how much of each the policies buy.

use crate::context::ExperimentContext;
use crate::distreg;
use crate::fig6::policies_for;
use crate::metrics::{split3, ExperimentHist, ExperimentMetrics, PointHist, PointMetrics};
use crate::report::{pct, TextTable};
use crate::runner::{Job, JobTiming};
use readopt_sim::Simulation;
use readopt_workloads::WorkloadKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One (workload, policy) decomposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiagRow {
    /// Workload label.
    pub workload: String,
    /// Policy label.
    pub policy: String,
    /// Application throughput, % of max.
    pub application_pct: f64,
    /// Share of disk busy time spent seeking, %.
    pub seek_share_pct: f64,
    /// Share spent in rotational latency, %.
    pub rotation_share_pct: f64,
    /// Share spent transferring data, %.
    pub transfer_share_pct: f64,
    /// Mean physical request size, KB.
    pub avg_request_kb: f64,
    /// Mean disk busy fraction during the measured window.
    pub disk_utilization: f64,
}

/// The full diagnostic grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diag {
    /// 3 workloads × 4 policies.
    pub rows: Vec<DiagRow>,
}

/// Runs the application test for every Figure 6 cell and decomposes the
/// disk time.
pub fn run(ctx: &ExperimentContext) -> Diag {
    run_profiled(ctx).0
}

/// As [`run`], also returning per-cell wall-clock timings and the
/// observability sidecars (the same snapshots the rows are derived from,
/// plus per-cell latency histograms).
pub fn run_profiled(
    ctx: &ExperimentContext,
) -> (Diag, Vec<JobTiming>, ExperimentMetrics, ExperimentHist) {
    let out = distreg::run_jobs_ctx(ctx, "diag", dist_jobs(ctx));
    let (rows, metrics, hists) = split3(out.results);
    (
        Diag { rows },
        out.timings,
        ExperimentMetrics::new("diag", metrics),
        ExperimentHist::new("diag", hists),
    )
}

/// The 12 cells as registry jobs (identical enumeration in every process).
pub(crate) fn dist_jobs(
    ctx: &ExperimentContext,
) -> Vec<Job<'static, (DiagRow, PointMetrics, PointHist)>> {
    let ctx = *ctx;
    let mut jobs = Vec::new();
    for wl in [
        WorkloadKind::Supercomputer,
        WorkloadKind::TransactionProcessing,
        WorkloadKind::Timesharing,
    ] {
        for (name, policy) in policies_for(&ctx, wl) {
            let label = format!("diag/{}/{name}", wl.short_name());
            let point_label = label.clone();
            jobs.push(Job::new(label, move || {
                let cfg = ctx.sim_config(wl, policy);
                let mut sim = Simulation::new(&cfg, ctx.seed.wrapping_add(1));
                let app = sim.run_application_test();
                let tm = sim.metrics_snapshot("application", app.measured_ms);
                let th = sim.latency_hist("application");
                let c = &tm.storage.combined;
                let (seek, rotation, transfer) = c.phase_shares_pct();
                let row = DiagRow {
                    workload: wl.short_name().to_string(),
                    policy: name,
                    application_pct: app.throughput_pct,
                    seek_share_pct: seek,
                    rotation_share_pct: rotation,
                    transfer_share_pct: transfer,
                    avg_request_kb: (c.bytes_read + c.bytes_written) as f64
                        / c.requests.max(1) as f64
                        / 1024.0,
                    disk_utilization: tm.storage.combined.utilization,
                };
                (
                    row,
                    PointMetrics::new(point_label.clone(), vec![tm]),
                    PointHist::new(point_label, vec![th]),
                )
            }));
        }
    }
    jobs
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new("Diagnostics: disk-time decomposition (application tests)")
            .headers([
                "workload", "policy", "app %max", "seek", "rotation", "transfer", "avg req", "disk busy",
            ]);
        for r in &self.rows {
            t.row([
                r.workload.clone(),
                r.policy.clone(),
                pct(r.application_pct),
                pct(r.seek_share_pct),
                pct(r.rotation_share_pct),
                pct(r.transfer_share_pct),
                format!("{:.1}K", r.avg_request_kb),
                pct(100.0 * r.disk_utilization),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_sums_to_one_and_tells_the_story() {
        let diag = run(&ExperimentContext::fast(64));
        assert_eq!(diag.rows.len(), 12);
        for r in &diag.rows {
            let total = r.seek_share_pct + r.rotation_share_pct + r.transfer_share_pct;
            assert!((total - 100.0).abs() < 0.5, "{}/{}: shares sum to {total}", r.workload, r.policy);
        }
        // SC under a multiblock policy spends most disk time transferring;
        // TS under any policy is seek/rotation dominated.
        let sc_buddy = diag.rows.iter().find(|r| r.workload == "SC" && r.policy == "buddy").unwrap();
        let ts_buddy = diag.rows.iter().find(|r| r.workload == "TS" && r.policy == "buddy").unwrap();
        assert!(
            sc_buddy.transfer_share_pct > 55.0,
            "SC buddy transfer share {}",
            sc_buddy.transfer_share_pct
        );
        assert!(
            ts_buddy.transfer_share_pct < 50.0,
            "TS buddy transfer share {}",
            ts_buddy.transfer_share_pct
        );
        assert!(sc_buddy.avg_request_kb > ts_buddy.avg_request_kb);
    }
}
