//! Experiment drivers reproducing every table and figure of the paper's
//! evaluation, plus the §6 future-work ablations.
//!
//! Each experiment module corresponds to one table or figure:
//!
//! | module | reproduces |
//! |--------|------------|
//! | [`table1`] | Table 1 — disk parameters & calibrated max throughput |
//! | [`table2`] | Table 2 — concrete file-type parameters per workload |
//! | [`table3`] | Table 3 — buddy allocation results |
//! | [`fig1`]   | Figure 1 — restricted buddy fragmentation sweep |
//! | [`fig2`]   | Figure 2 — restricted buddy performance sweep |
//! | [`fig3`]   | Figure 3 — grow factor × contiguity interaction |
//! | [`fig4`]   | Figure 4 — extent-based fragmentation sweep |
//! | [`fig5`]   | Figure 5 — extent-based performance sweep |
//! | [`table4`] | Table 4 — average extents per file |
//! | [`fig6`]   | Figure 6 — comparative performance of all policies |
//! | [`ablations`] | §6 extensions: RAID-5 (incl. degraded mode), stripe unit, file-mix, Koch reallocation, FFS |
//! | [`diag`]   | disk-time decomposition diagnostics |
//! | [`shard_scaling`] | sharded-engine wall-clock scaling (results-invariant) |
//! | [`users_scale`] | `users_1e6` — heap vs calendar queue at rising user counts (results-invariant) |
//!
//! Every driver takes an [`ExperimentContext`] choosing full (paper-scale)
//! or scaled-down arrays; results are serde-serializable and printable as
//! fixed-width text tables (see [`report`]).
//!
//! Sweeps execute through [`runner`]: each driver enumerates its points as
//! labeled jobs, fans them across `ExperimentContext::jobs` OS threads, and
//! reassembles results in sweep order — bit-identical at any thread count.
//! The `run_profiled` variants additionally return per-point wall-clock
//! timings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ablations;
pub mod context;
pub mod diag;
pub mod distreg;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod shard_scaling;
pub mod storex;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod users_scale;

pub use context::ExperimentContext;
pub use metrics::{ExperimentMetrics, PointMetrics};
