//! Figure 4 (a–f): internal and external fragmentation for the extent-based
//! policies.
//!
//! Sweep: 1–5 extent ranges (per-workload tables from §4.3) × first-fit /
//! best-fit × three workloads. Paper shape targets: "even with a wide range
//! of extent sizes, neither internal nor external fragmentation surpasses
//! 5 %"; best-fit consistently fragments (slightly) less.

use crate::context::ExperimentContext;
use crate::distreg;
use crate::metrics::{split3, ExperimentHist, ExperimentMetrics, PointHist, PointMetrics};
use crate::report::{pct, BarChart, TextTable};
use crate::runner::{Job, JobTiming};
use readopt_alloc::FitStrategy;
use readopt_workloads::WorkloadKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One bar of the figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Point {
    /// Workload label.
    pub workload: String,
    /// Number of extent ranges (1–5).
    pub n_ranges: usize,
    /// First-fit or best-fit.
    pub fit: FitStrategy,
    /// Internal fragmentation, % of allocated space.
    pub internal_pct: f64,
    /// External fragmentation, % of total space.
    pub external_pct: f64,
    /// Average extents per live file (feeds Table 4).
    pub avg_extents_per_file: f64,
}

/// The full sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4 {
    /// All 30 sweep points (3 workloads × 5 range counts × 2 fits).
    pub points: Vec<Fig4Point>,
}

/// Runs the allocation test across the sweep.
pub fn run(ctx: &ExperimentContext) -> Fig4 {
    run_profiled(ctx).0
}

/// As [`run`], also returning per-point wall-clock timings and the
/// observability sidecars (per-point metrics and latency histograms).
pub fn run_profiled(
    ctx: &ExperimentContext,
) -> (Fig4, Vec<JobTiming>, ExperimentMetrics, ExperimentHist) {
    let out = distreg::run_jobs_ctx(ctx, "fig4", dist_jobs(ctx));
    let (points, metrics, hists) = split3(out.results);
    (
        Fig4 { points },
        out.timings,
        ExperimentMetrics::new("fig4", metrics),
        ExperimentHist::new("fig4", hists),
    )
}

/// The full sweep as registry jobs (identical enumeration in every process).
pub(crate) fn dist_jobs(
    ctx: &ExperimentContext,
) -> Vec<Job<'static, (Fig4Point, PointMetrics, PointHist)>> {
    let ctx = *ctx;
    let mut jobs = Vec::new();
    for wl in WorkloadKind::all() {
        for n_ranges in 1..=5usize {
            for fit in [FitStrategy::FirstFit, FitStrategy::BestFit] {
                let label = format!("fig4/{}/r{n_ranges}-{fit:?}", wl.short_name());
                let point_label = label.clone();
                jobs.push(Job::new(label, move || {
                    let policy = ctx.extent_policy(wl, n_ranges, fit);
                    let (frag, tm, th) = ctx.run_allocation_observed(wl, policy);
                    let point = Fig4Point {
                        workload: wl.short_name().to_string(),
                        n_ranges,
                        fit,
                        internal_pct: frag.internal_pct,
                        external_pct: frag.external_pct,
                        avg_extents_per_file: frag.avg_extents_per_file,
                    };
                    (
                        point,
                        PointMetrics::new(point_label.clone(), vec![tm]),
                        PointHist::new(point_label, vec![th]),
                    )
                }));
            }
        }
    }
    jobs
}

impl Fig4 {
    /// Points for one workload, in sweep order.
    pub fn workload(&self, short_name: &str) -> Vec<&Fig4Point> {
        self.points.iter().filter(|p| p.workload == short_name).collect()
    }
}

impl Fig4 {
    /// Renders the six panels (internal/external per workload).
    pub fn chart(&self) -> String {
        let mut out = String::new();
        for wl in ["TS", "TP", "SC"] {
            for (metric, internal) in [("internal", true), ("external", false)] {
                let mut c = BarChart::new(format!(
                    "Figure 4 ({wl}): {metric} fragmentation (%)"
                ))
                .scale_at_least(6.0);
                let mut last_n = 0;
                for p in self.workload(wl) {
                    if p.n_ranges != last_n && last_n != 0 {
                        c.gap();
                    }
                    last_n = p.n_ranges;
                    let v = if internal { p.internal_pct } else { p.external_pct };
                    c.bar(format!("{} ranges {:?}", p.n_ranges, p.fit), v);
                }
                out.push_str(&c.to_string());
                out.push('\n');
            }
        }
        out
    }
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new("Figure 4: Fragmentation, Extent Based Policies")
            .headers(["workload", "ranges", "fit", "internal", "external"]);
        for p in &self.points {
            t.row([
                p.workload.clone(),
                p.n_ranges.to_string(),
                format!("{:?}", p.fit),
                pct(p.internal_pct),
                pct(p.external_pct),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ts_fragmentation_stays_low_at_fast_scale() {
        let ctx = ExperimentContext::fast(64);
        for fit in [FitStrategy::FirstFit, FitStrategy::BestFit] {
            let policy = ctx.extent_policy(WorkloadKind::Timesharing, 3, fit);
            let frag = ctx.run_allocation(WorkloadKind::Timesharing, policy);
            assert!(frag.internal_pct < 20.0, "{fit:?} internal {}", frag.internal_pct);
            assert!(frag.external_pct < 20.0, "{fit:?} external {}", frag.external_pct);
        }
    }
}
