//! Table 3: results for buddy allocation.
//!
//! The paper's numbers (full scale, for EXPERIMENTS.md comparison):
//!
//! | workload | internal | external | application | sequential |
//! |----------|----------|----------|-------------|------------|
//! | SC       | 43.1 %   | 13.4 %   | 88.0 %      | 94.4 %     |
//! | TP       | 15.2 %   |  9.0 %   | 27.7 %      | 93.9 %     |
//! | TS       | 18.4 %   |  2.3 %   |  8.4 %      | 12.0 %     |

use crate::context::ExperimentContext;
use crate::distreg;
use crate::metrics::{split3, ExperimentHist, ExperimentMetrics, PointHist, PointMetrics};
use crate::report::{pct, TextTable};
use crate::runner::{Job, JobTiming};
use readopt_alloc::PolicyConfig;
use readopt_workloads::WorkloadKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One row of Table 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Workload label (SC/TP/TS).
    pub workload: String,
    /// Internal fragmentation, % of allocated space.
    pub internal_pct: f64,
    /// External fragmentation, % of total space.
    pub external_pct: f64,
    /// Application throughput, % of max.
    pub application_pct: f64,
    /// Sequential throughput, % of max.
    pub sequential_pct: f64,
}

/// The full table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3 {
    /// Rows in the paper's order: SC, TP, TS.
    pub rows: Vec<Table3Row>,
}

/// Runs buddy allocation through the §3 suite on all three workloads.
pub fn run(ctx: &ExperimentContext) -> Table3 {
    run_profiled(ctx).0
}

/// As [`run`], also returning per-point wall-clock timings and the
/// observability sidecars. The allocation and performance tests of each
/// workload are independent simulations, so they fan out as separate jobs
/// (6 total).
pub fn run_profiled(
    ctx: &ExperimentContext,
) -> (Table3, Vec<JobTiming>, ExperimentMetrics, ExperimentHist) {
    let out = distreg::run_jobs_ctx(ctx, "table3", dist_jobs(ctx));
    let (values, metrics, hists): (Vec<(f64, f64)>, _, _) = split3(out.results);
    let workloads = [
        WorkloadKind::Supercomputer,
        WorkloadKind::TransactionProcessing,
        WorkloadKind::Timesharing,
    ];
    let rows = workloads
        .iter()
        .zip(values.chunks_exact(2))
        .map(|(wl, pair)| Table3Row {
            workload: wl.short_name().to_string(),
            internal_pct: pair[0].0,
            external_pct: pair[0].1,
            application_pct: pair[1].0,
            sequential_pct: pair[1].1,
        })
        .collect();
    (
        Table3 { rows },
        out.timings,
        ExperimentMetrics::new("table3", metrics),
        ExperimentHist::new("table3", hists),
    )
}

/// The 6 independent simulations as registry jobs (identical enumeration in
/// every process): alloc then perf per workload, SC/TP/TS order.
pub(crate) fn dist_jobs(
    ctx: &ExperimentContext,
) -> Vec<Job<'static, ((f64, f64), PointMetrics, PointHist)>> {
    let ctx = *ctx;
    let workloads = [
        WorkloadKind::Supercomputer,
        WorkloadKind::TransactionProcessing,
        WorkloadKind::Timesharing,
    ];
    let mut jobs: Vec<Job<((f64, f64), PointMetrics, PointHist)>> = Vec::new();
    for wl in workloads {
        let alloc_label = format!("table3/{}/alloc", wl.short_name());
        let alloc_point = alloc_label.clone();
        jobs.push(Job::new(alloc_label, move || {
            let (frag, tm, th) = ctx.run_allocation_observed(wl, PolicyConfig::paper_buddy());
            (
                (frag.internal_pct, frag.external_pct),
                PointMetrics::new(alloc_point.clone(), vec![tm]),
                PointHist::new(alloc_point, vec![th]),
            )
        }));
        let perf_label = format!("table3/{}/perf", wl.short_name());
        let perf_point = perf_label.clone();
        jobs.push(Job::new(perf_label, move || {
            let ((app, seq), tms, ths) =
                ctx.run_performance_observed(wl, PolicyConfig::paper_buddy());
            (
                (app.throughput_pct, seq.throughput_pct),
                PointMetrics::new(perf_point.clone(), tms),
                PointHist::new(perf_point, ths),
            )
        }));
    }
    jobs
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new("Table 3: Results for Buddy Allocation").headers([
            "Workload",
            "Internal Frag (% alloc)",
            "External Frag (% total)",
            "Application (% max)",
            "Sequential (% max)",
        ]);
        for r in &self.rows {
            t.row([
                r.workload.clone(),
                pct(r.internal_pct),
                pct(r.external_pct),
                pct(r.application_pct),
                pct(r.sequential_pct),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_scale_reproduces_table_3_shape() {
        let table = run(&ExperimentContext::fast(64));
        assert_eq!(table.rows.len(), 3);
        let sc = &table.rows[0];
        let tp = &table.rows[1];
        let ts = &table.rows[2];
        // Doubling over-allocates heavily under SC's large files.
        assert!(sc.internal_pct > 15.0, "SC internal {}", sc.internal_pct);
        // Sequential beats application for the large-file workloads.
        assert!(sc.sequential_pct > sc.application_pct * 0.9);
        // TS is the small-file-bound workload: lowest sequential throughput.
        assert!(ts.sequential_pct < sc.sequential_pct);
        assert!(ts.sequential_pct < tp.sequential_pct);
        let text = table.to_string();
        assert!(text.contains("Buddy"));
    }
}
