//! Multi-threaded sweep-point runner.
//!
//! Every figure/table in the reproduction is a sweep: a list of independent
//! (workload, policy) points, each of which builds its *own* simulation from
//! the context seed. That independence makes the sweeps embarrassingly
//! parallel — and, because each point's RNG stream depends only on the
//! context and the point itself (never on execution order), running them on
//! any number of threads produces bit-identical results.
//!
//! The runner takes a `Vec<Job<T>>` (label + closure), executes the closures
//! across `jobs` OS threads with [`std::thread::scope`], and reassembles the
//! results *in submission order* along with per-job wall-clock timings. No
//! external dependencies: dispatch is a shared atomic cursor over a slot
//! vector, so threads pull the next pending point as they free up (the
//! sweeps' points vary in cost by more than an order of magnitude, which
//! defeats static chunking).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One sweep point: a label for profiling plus the work producing its result.
pub struct Job<'scope, T> {
    label: String,
    work: Box<dyn FnOnce() -> T + Send + 'scope>,
}

impl<'scope, T> Job<'scope, T> {
    /// Wraps a closure as a runnable sweep point.
    pub fn new(label: impl Into<String>, work: impl FnOnce() -> T + Send + 'scope) -> Self {
        Job { label: label.into(), work: Box::new(work) }
    }

    /// The job's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Consumes the job and runs its closure inline. The worker agent uses
    /// this to execute a single point by index instead of going through
    /// the thread pool.
    pub fn run(self) -> T {
        (self.work)()
    }
}

/// Wall-clock cost of one executed job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobTiming {
    /// The job's label, e.g. `fig1/sc/n4-g2-c`.
    pub label: String,
    /// Wall-clock milliseconds the job's closure ran for.
    pub wall_ms: f64,
}

/// Results (in submission order) plus per-job timings of one runner pass.
pub struct RunOutcome<T> {
    /// One result per job, in the order the jobs were submitted —
    /// independent of how many threads ran them or in what order they
    /// finished.
    pub results: Vec<T>,
    /// Per-job wall-clock timings, in submission order.
    pub timings: Vec<JobTiming>,
}

/// Number of worker threads to use when the user doesn't say: the OS's
/// available parallelism, or 1 if that can't be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Runs `list` on up to `jobs` OS threads and reassembles the results in
/// submission order.
///
/// With `jobs <= 1` (or at most one job) the list runs inline on the calling
/// thread with no thread or synchronization overhead. A panicking job
/// panics the whole run, matching sequential behavior.
pub fn run_jobs<'scope, T: Send>(jobs: usize, list: Vec<Job<'scope, T>>) -> RunOutcome<T> {
    let n = list.len();
    let workers = jobs.max(1).min(n);
    if workers <= 1 {
        let mut results = Vec::with_capacity(n);
        let mut timings = Vec::with_capacity(n);
        for job in list {
            let start = Instant::now();
            results.push((job.work)());
            timings
                .push(JobTiming { label: job.label, wall_ms: start.elapsed().as_secs_f64() * 1e3 });
        }
        return RunOutcome { results, timings };
    }

    // Slot per job: workers claim indexes through the atomic cursor, take
    // the closure out of its slot, and park the result in the matching
    // output slot. Labels stay on this thread — only closures cross.
    let mut labels = Vec::with_capacity(n);
    let pending: Vec<Mutex<Option<Box<dyn FnOnce() -> T + Send + 'scope>>>> = list
        .into_iter()
        .map(|job| {
            labels.push(job.label);
            Mutex::new(Some(job.work))
        })
        .collect();
    let done: Vec<Mutex<Option<(T, f64)>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let work = pending[i].lock().unwrap().take().expect("each slot claimed once");
                let start = Instant::now();
                let result = work();
                let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                *done[i].lock().unwrap() = Some((result, wall_ms));
            });
        }
    });

    let mut results = Vec::with_capacity(n);
    let mut timings = Vec::with_capacity(n);
    for (label, slot) in labels.into_iter().zip(done) {
        let (result, wall_ms) =
            slot.into_inner().unwrap().expect("scope exit implies every job ran");
        results.push(result);
        timings.push(JobTiming { label, wall_ms });
    }
    RunOutcome { results, timings }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_jobs(n: usize) -> Vec<Job<'static, usize>> {
        (0..n).map(|i| Job::new(format!("sq/{i}"), move || i * i)).collect()
    }

    #[test]
    fn sequential_and_parallel_agree_in_order() {
        let expected: Vec<usize> = (0..37).map(|i| i * i).collect();
        for jobs in [1, 2, 4, 8, 64] {
            let out = run_jobs(jobs, square_jobs(37));
            assert_eq!(out.results, expected, "jobs = {jobs}");
            assert_eq!(out.timings.len(), 37);
            assert_eq!(out.timings[5].label, "sq/5");
        }
    }

    #[test]
    fn handles_empty_and_single() {
        let out = run_jobs(4, Vec::<Job<usize>>::new());
        assert!(out.results.is_empty() && out.timings.is_empty());
        let out = run_jobs(4, square_jobs(1));
        assert_eq!(out.results, vec![0]);
    }

    #[test]
    fn borrows_from_the_enclosing_scope() {
        let base = vec![10u64, 20, 30];
        let jobs: Vec<Job<u64>> =
            base.iter().enumerate().map(|(i, v)| Job::new(format!("b/{i}"), move || v + 1)).collect();
        let out = run_jobs(2, jobs);
        assert_eq!(out.results, vec![11, 21, 31]);
    }

    #[test]
    fn uneven_job_costs_still_reassemble_in_order() {
        let jobs: Vec<Job<usize>> = (0..16)
            .map(|i| {
                Job::new(format!("u/{i}"), move || {
                    // Earlier jobs sleep longer so completion order inverts
                    // submission order.
                    std::thread::sleep(std::time::Duration::from_millis((16 - i) as u64));
                    i
                })
            })
            .collect();
        let out = run_jobs(4, jobs);
        assert_eq!(out.results, (0..16).collect::<Vec<_>>());
        assert!(out.timings.iter().all(|t| t.wall_ms > 0.0));
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
