//! Process-global binary results-store session (`repro --store FILE`).
//!
//! The experiment drivers and the `repro` binary both need to append to
//! the same `.rrs` file from wherever a result materializes — the
//! in-process runner, the distributed coordinator's streaming callback,
//! the `users_1e6` ladder, the artifact writer — so the open store lives
//! behind one mutex-guarded global session for the life of the run.
//!
//! Three record families share the file, all addressed by
//! `(experiment, index)`:
//!
//! * **sweep points** — `experiment` is the registered experiment name,
//!   `index` its submission order, and the payload the exact
//!   `serde_json::to_string` bytes of the point result (identical
//!   between the in-process and worker-process paths by the determinism
//!   contract, so the store bytes are too);
//! * **ladder points** — `users_1e6` appends one record per
//!   (rung, backend) with only deterministic content, which is what lets
//!   a killed run skip completed rungs on resume;
//! * **artifacts** — `experiment` is `artifact/<name>` with index 0 and
//!   the payload the exact pretty-JSON bytes `--json` writes to
//!   `<name>.json`, which makes [`export`] a pure byte copy: the
//!   regenerated sidecars are byte-identical to the originals by
//!   construction.
//!
//! Opening an existing store resumes it: the valid record prefix is
//! recovered (a torn trailing frame is truncated away), the meta record
//! is checked against the current run configuration, and re-recorded
//! points are verified to match the recovered bytes instead of being
//! appended twice. A record that *disagrees* with its recorded bytes is
//! a hard error — it means the store was written under a different
//! configuration than the meta claims.

use readopt_store::{StoreReader, StoreWriter};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Mutex, PoisonError};

/// Experiment-name prefix for whole-artifact records (`artifact/<name>`
/// at index 0, payload = the exact `<name>.json` bytes).
pub const ARTIFACT_PREFIX: &str = "artifact/";

struct Session {
    writer: StoreWriter,
    /// Payload by id for every record already in the file — recovered on
    /// resume, or appended earlier in this run.
    seen: BTreeMap<(String, u64), String>,
}

static SESSION: Mutex<Option<Session>> = Mutex::new(None);

fn lock() -> std::sync::MutexGuard<'static, Option<Session>> {
    SESSION.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Opens (or resumes) the global store session. Returns the number of
/// point records recovered from an interrupted previous run (0 for a
/// fresh store).
///
/// `meta_json` is the canonical run-configuration fingerprint; resuming
/// a store whose meta record disagrees is an error — records produced
/// under a different configuration must never be mixed into one store.
pub fn open(path: &Path, meta_json: &str) -> Result<usize, String> {
    let mut guard = lock();
    if guard.is_some() {
        return Err(String::from("results store already open in this process"));
    }
    let (writer, recovered_count) = if path.exists() {
        let (writer, recovered) =
            StoreWriter::resume(path).map_err(|e| format!("resume {}: {e}", path.display()))?;
        match recovered.meta_json.as_deref() {
            Some(existing) if existing == meta_json => {
                let seen: BTreeMap<(String, u64), String> = recovered
                    .points
                    .into_iter()
                    .map(|p| ((p.experiment, p.index), p.payload))
                    .collect();
                let n = seen.len();
                *guard = Some(Session { writer, seen });
                return Ok(n);
            }
            Some(_) => {
                return Err(format!(
                    "store {} was written under a different run configuration \
                     (meta record mismatch); pass a fresh --store path",
                    path.display()
                ));
            }
            // The previous run died before the meta record landed:
            // nothing recoverable, start the file over.
            None => {
                drop(writer);
                let w = StoreWriter::create(path, meta_json)
                    .map_err(|e| format!("create {}: {e}", path.display()))?;
                (w, 0)
            }
        }
    } else {
        let w = StoreWriter::create(path, meta_json)
            .map_err(|e| format!("create {}: {e}", path.display()))?;
        (w, 0)
    };
    *guard = Some(Session { writer, seen: BTreeMap::new() });
    Ok(recovered_count)
}

/// Whether a store session is open (records will be appended).
pub fn active() -> bool {
    lock().is_some()
}

/// Appends one record, or verifies it against the already-stored bytes.
/// A no-op when no session is open.
pub fn record(experiment: &str, index: u64, payload: &str) -> Result<(), String> {
    let mut guard = lock();
    let Some(session) = guard.as_mut() else { return Ok(()) };
    let id = (experiment.to_string(), index);
    if let Some(stored) = session.seen.get(&id) {
        if stored == payload {
            return Ok(());
        }
        return Err(format!(
            "store record {experiment}[{index}] diverged from the stored bytes \
             ({} vs {} bytes) — the store was not produced by this configuration",
            stored.len(),
            payload.len()
        ));
    }
    session
        .writer
        .append_point(experiment, index, payload)
        .map_err(|e| format!("append {experiment}[{index}]: {e}"))?;
    session.seen.insert(id, payload.to_string());
    Ok(())
}

/// Records a whole JSON artifact (the exact bytes `--json` writes to
/// `<name>.json`). A no-op when no session is open.
pub fn record_artifact(name: &str, json: &str) -> Result<(), String> {
    record(&format!("{ARTIFACT_PREFIX}{name}"), 0, json)
}

/// The stored payload for `(experiment, index)`, if the (possibly
/// resumed) session already holds it. `None` when inactive or absent.
pub fn lookup(experiment: &str, index: u64) -> Option<String> {
    let guard = lock();
    let session = guard.as_ref()?;
    session.seen.get(&(experiment.to_string(), index)).cloned()
}

/// The stored bytes of artifact `name`, if the session already holds
/// them (i.e. the artifact landed before a previous run was killed). A
/// resumed run prefers these over re-serializing: wall-clock-carrying
/// artifacts (`profile`, the scaling studies) could not re-produce the
/// recorded bytes, and the sidecar on disk must match what [`export`]
/// regenerates.
pub fn lookup_artifact(name: &str) -> Option<String> {
    lookup(&format!("{ARTIFACT_PREFIX}{name}"), 0)
}

/// Seals and closes the session (writes the index block and footer).
/// Returns whether a session was actually open.
pub fn finish() -> Result<bool, String> {
    let mut guard = lock();
    let Some(session) = guard.take() else { return Ok(false) };
    session.writer.finish().map_err(|e| format!("finish store: {e}"))?;
    Ok(true)
}

/// Regenerates the JSON artifacts of a *finished* store into `dir`:
/// every `artifact/<name>` record becomes `dir/<name>.json` with the
/// exact payload bytes. Returns the artifact names written, in store
/// order.
pub fn export(store: &Path, dir: &Path) -> Result<Vec<String>, String> {
    let mut reader =
        StoreReader::open(store).map_err(|e| format!("open {}: {e}", store.display()))?;
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let ids: Vec<(String, u64)> = reader.point_ids().to_vec();
    let mut written = Vec::new();
    for (experiment, index) in ids {
        let Some(name) = experiment.strip_prefix(ARTIFACT_PREFIX) else { continue };
        if name.is_empty() || name.contains(['/', '\\']) {
            return Err(format!("store holds an unsafe artifact name {name:?}"));
        }
        let payload = reader
            .point(&experiment, index)
            .map_err(|e| format!("read {experiment}: {e}"))?;
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, payload).map_err(|e| format!("write {}: {e}", path.display()))?;
        written.push(name.to_string());
    }
    Ok(written)
}

/// The meta record (canonical run configuration) of a finished store.
pub fn read_meta(store: &Path) -> Result<String, String> {
    let mut reader =
        StoreReader::open(store).map_err(|e| format!("open {}: {e}", store.display()))?;
    reader.meta_json().map_err(|e| format!("read meta: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("storex-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    /// The global session forces the suite's storex tests to run as one
    /// scenario: open → record → verify-dedupe → finish → export.
    #[test]
    fn session_roundtrip_dedupe_and_export() {
        let dir = tmp("session");
        let store = dir.join("run.rrs");
        assert!(!active());
        assert_eq!(lookup("fig1", 0), None, "inactive lookup is None");
        record("fig1", 0, "dropped").expect("inactive record is a no-op");

        assert_eq!(open(&store, "{\"seed\":1}").expect("open"), 0);
        assert!(active());
        assert!(open(&store, "{\"seed\":1}").unwrap_err().contains("already open"));
        record("fig1", 0, "{\"x\":1}").expect("append");
        record("fig1", 1, "{\"x\":2}").expect("append");
        record_artifact("fig1", "{\n  \"rows\": []\n}").expect("artifact");
        // Re-recording identical bytes dedupes; diverging bytes are fatal.
        record("fig1", 0, "{\"x\":1}").expect("same bytes verify");
        assert!(record("fig1", 0, "{\"x\":9}").unwrap_err().contains("diverged"));
        assert_eq!(lookup("fig1", 1).as_deref(), Some("{\"x\":2}"));
        assert!(finish().expect("finish"));
        assert!(!finish().expect("idempotent"), "second finish is a no-op");
        assert!(!active());

        // Export regenerates exactly the artifact records.
        let out = dir.join("json");
        let names = export(&store, &out).expect("export");
        assert_eq!(names, ["fig1"]);
        let json = std::fs::read_to_string(out.join("fig1.json")).expect("read export");
        assert_eq!(json, "{\n  \"rows\": []\n}");
        assert_eq!(read_meta(&store).expect("meta"), "{\"seed\":1}");

        // Resume with matching meta recovers the records; a different
        // meta is rejected.
        assert!(open(&store, "{\"seed\":2}").unwrap_err().contains("different run"));
        assert_eq!(open(&store, "{\"seed\":1}").expect("resume"), 3);
        assert_eq!(lookup("fig1", 0).as_deref(), Some("{\"x\":1}"));
        record("fig1", 0, "{\"x\":1}").expect("recovered bytes verify");
        assert!(finish().expect("finish resumed store"));
    }
}
