//! Fixed-width text tables for experiment output.

use std::fmt;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with a title line.
    pub fn new(title: impl Into<String>) -> Self {
        TextTable { title: title.into(), headers: Vec::new(), rows: Vec::new() }
    }

    /// Sets the header row.
    pub fn headers<I, S>(mut self, headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a data row.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for row in std::iter::once(&self.headers).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        writeln!(f, "{}", self.title)?;
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "=".repeat(self.title.chars().count().max(total)))?;
        let write_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            writeln!(f, "{}", cells.join(" | ").trim_end())
        };
        if !self.headers.is_empty() {
            write_row(f, &self.headers)?;
            writeln!(f, "{}", "-".repeat(total))?;
        }
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a percentage with one decimal: `12.3%`.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// A horizontal bar chart, for rendering the paper's figures as text.
#[derive(Debug, Clone, Default)]
pub struct BarChart {
    title: String,
    bars: Vec<(String, f64)>,
    /// Fixed scale maximum; `None` auto-scales to the largest bar.
    max: Option<f64>,
    /// Minimum full-scale value when auto-scaling.
    floor: f64,
    width: usize,
}

impl BarChart {
    /// Starts a chart.
    pub fn new(title: impl Into<String>) -> Self {
        BarChart { title: title.into(), bars: Vec::new(), max: None, floor: 0.0, width: 40 }
    }

    /// Fixes the full-scale value (e.g. 100 for percentages).
    pub fn scale_to(mut self, max: f64) -> Self {
        self.max = Some(max);
        self
    }

    /// Auto-scales, but never below `floor` — keeps near-zero panels from
    /// blowing tiny noise up to full-width bars.
    pub fn scale_at_least(mut self, floor: f64) -> Self {
        self.max = None;
        self.floor = floor;
        self
    }

    /// Appends a bar.
    pub fn bar(&mut self, label: impl Into<String>, value: f64) {
        self.bars.push((label.into(), value));
    }

    /// Inserts a blank separator line between groups.
    pub fn gap(&mut self) {
        self.bars.push((String::new(), f64::NAN));
    }
}

impl fmt::Display for BarChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label_w = self.bars.iter().map(|(l, _)| l.chars().count()).max().unwrap_or(0);
        let max = self
            .max
            .unwrap_or_else(|| self.bars.iter().map(|&(_, v)| v).fold(self.floor, f64::max))
            .max(1e-9);
        writeln!(f, "{}", self.title)?;
        for (label, value) in &self.bars {
            if value.is_nan() {
                writeln!(f)?;
                continue;
            }
            let filled = ((value / max) * self.width as f64).round().clamp(0.0, self.width as f64);
            writeln!(
                f,
                "  {:<label_w$} |{:<bar_w$}| {:.1}",
                label,
                "█".repeat(filled as usize),
                value,
                label_w = label_w,
                bar_w = self.width
            )?;
        }
        Ok(())
    }
}

/// Formats a byte count using binary units the paper's style ("8K", "16M").
pub fn bytes(b: u64) -> String {
    const KB: u64 = 1024;
    const MB: u64 = 1024 * KB;
    const GB: u64 = 1024 * MB;
    if b >= GB && b.is_multiple_of(GB) {
        format!("{}G", b / GB)
    } else if b >= MB && b.is_multiple_of(MB) {
        format!("{}M", b / MB)
    } else if b >= KB && b.is_multiple_of(KB) {
        format!("{}K", b / KB)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("Demo").headers(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "22222"]);
        let s = t.to_string();
        assert!(s.contains("Demo"));
        assert!(s.contains("alpha | 1"));
        assert!(s.contains("b     | 22222"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn pct_and_bytes_formatting() {
        assert_eq!(pct(88.04), "88.0%");
        assert_eq!(bytes(1024), "1K");
        assert_eq!(bytes(16 * 1024 * 1024), "16M");
        assert_eq!(bytes(3 * 1024 * 1024 * 1024), "3G");
        assert_eq!(bytes(1500), "1500B");
    }

    #[test]
    fn empty_table_renders() {
        let t = TextTable::new("Empty");
        assert!(t.to_string().contains("Empty"));
        assert!(t.is_empty());
    }

    #[test]
    fn bar_chart_scales_and_aligns() {
        let mut c = BarChart::new("demo").scale_to(100.0);
        c.bar("full", 100.0);
        c.bar("half", 50.0);
        c.gap();
        c.bar("tiny", 1.0);
        let s = c.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].matches('█').count() == 40, "{}", lines[1]);
        assert!(lines[2].matches('█').count() == 20, "{}", lines[2]);
        assert_eq!(lines[3].trim(), "");
        assert!(lines[4].contains("1.0"));
    }

    #[test]
    fn bar_chart_autoscale() {
        let mut c = BarChart::new("auto");
        c.bar("a", 10.0);
        c.bar("b", 5.0);
        let s = c.to_string();
        assert!(s.lines().nth(1).unwrap().matches('█').count() == 40);
    }
}
