//! Table 2: the file-type parameters.
//!
//! Table 2 in the paper is the parameter *schema*; the concrete values per
//! workload are scattered through §2.2's prose (and some are never given —
//! see DESIGN.md §"Substitutions" #4–5). This driver prints the exact
//! values this reproduction uses for each workload at the configured array
//! capacity, so every simulation input is inspectable.

use crate::context::ExperimentContext;
use crate::report::{bytes, TextTable};
use readopt_sim::FileTypeConfig;
use readopt_workloads::WorkloadKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// All three workloads' concrete parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// `(workload label, its file types)`.
    pub workloads: Vec<(String, Vec<FileTypeConfig>)>,
}

/// Builds each workload at the context's capacity.
pub fn run(ctx: &ExperimentContext) -> Table2 {
    let cap = ctx.array.capacity_bytes();
    Table2 {
        workloads: WorkloadKind::all()
            .into_iter()
            .map(|wl| (wl.short_name().to_string(), wl.build(cap)))
            .collect(),
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (wl, types) in &self.workloads {
            let mut t = TextTable::new(format!("Table 2 ({wl}): file type parameters")).headers([
                "parameter".to_string(),
                types.first().map(|t| t.name.clone()).unwrap_or_default(),
                types.get(1).map(|t| t.name.clone()).unwrap_or_default(),
                types.get(2).map(|t| t.name.clone()).unwrap_or_default(),
            ]);
            let col = |get: &dyn Fn(&FileTypeConfig) -> String| -> Vec<String> {
                let mut row = Vec::with_capacity(4);
                for i in 0..3 {
                    row.push(types.get(i).map(get).unwrap_or_default());
                }
                row
            };
            let rows: Vec<(&str, Vec<String>)> = vec![
                ("Number of Files", col(&|t| t.num_files.to_string())),
                ("Number of Users", col(&|t| t.num_users.to_string())),
                ("Process Time", col(&|t| format!("{} ms", t.process_time_ms))),
                ("Hit Frequency", col(&|t| format!("{} ms", t.hit_frequency_ms))),
                ("Read/Write Size", col(&|t| bytes(t.rw_size_bytes))),
                ("RW Deviation", col(&|t| bytes(t.rw_deviation_bytes))),
                ("Allocation Size", col(&|t| bytes(t.allocation_size_bytes))),
                ("Truncate Size", col(&|t| bytes(t.truncate_size_bytes))),
                ("Initial Size", col(&|t| bytes(t.initial_size_bytes))),
                ("Initial Deviation", col(&|t| bytes(t.initial_deviation_bytes))),
                ("Read Ratio", col(&|t| format!("{}%", t.read_pct))),
                ("Write Ratio", col(&|t| format!("{}%", t.write_pct))),
                ("Extend Ratio", col(&|t| format!("{}%", t.extend_pct))),
                ("Deallocate Ratio", col(&|t| format!("{}%", t.deallocate_pct))),
                (
                    "Delete Ratio (of deallocs)",
                    col(&|t| format!("{:.0}%", 100.0 * t.delete_fraction)),
                ),
                (
                    "Access Pattern",
                    col(&|t| if t.sequential_access { "sequential".into() } else { "random".into() }),
                ),
            ];
            for (name, mut cells) in rows {
                let mut row = vec![name.to_string()];
                row.append(&mut cells);
                t.row(row);
            }
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_prints_every_workload_and_parameter() {
        let t2 = run(&ExperimentContext::full());
        assert_eq!(t2.workloads.len(), 3);
        let text = t2.to_string();
        for label in ["(TS)", "(TP)", "(SC)"] {
            assert!(text.contains(label), "missing {label}");
        }
        for param in ["Hit Frequency", "Allocation Size", "Delete Ratio"] {
            assert!(text.contains(param), "missing {param}");
        }
        // The paper's signature values appear.
        assert!(text.contains("tp-relation"));
        assert!(text.contains("210M"), "TP relations are 210 MB at full scale");
        assert!(text.contains("500M"), "the SC large file is 500 MB");
    }
}
