//! Figure 1 (a–f): internal and external fragmentation for the restricted
//! buddy policy.
//!
//! The sweep covers every configuration §4.2 describes: four block-size
//! ladders (2–5 sizes), grow factors 1 and 2, clustered and unclustered —
//! for each of the three workloads. Paper shape targets: nothing above
//! ~6 %; TS worst; g=2 cuts TS internal fragmentation by about a third;
//! unclustered slightly worse external fragmentation.

use crate::context::ExperimentContext;
use crate::distreg;
use crate::metrics::{ExperimentHist, ExperimentMetrics, PointHist, PointMetrics};
use crate::report::{pct, BarChart, TextTable};
use crate::runner::{self, Job, JobTiming, RunOutcome};
use readopt_alloc::{PolicyConfig, RestrictedConfig};
use readopt_workloads::WorkloadKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One bar of the figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Point {
    /// Workload label.
    pub workload: String,
    /// Number of block sizes in the ladder (2–5).
    pub nsizes: usize,
    /// Grow factor (1 or 2).
    pub grow_factor: u64,
    /// Clustered configuration?
    pub clustered: bool,
    /// Internal fragmentation, % of allocated space.
    pub internal_pct: f64,
    /// External fragmentation, % of total space.
    pub external_pct: f64,
}

/// The full sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1 {
    /// All 48 sweep points (3 workloads × 4 ladders × 2 grows × 2 modes).
    pub points: Vec<Fig1Point>,
}

/// The sweep's configuration axes, shared with Figure 2.
pub fn sweep_configs() -> Vec<(usize, u64, bool)> {
    let mut out = Vec::new();
    for nsizes in 2..=5usize {
        for grow in [1u64, 2] {
            for clustered in [true, false] {
                out.push((nsizes, grow, clustered));
            }
        }
    }
    out
}

/// One sweep point's full output: result + metrics + latency histogram.
type Fig1Out = (Fig1Point, PointMetrics, PointHist);

/// Runs the allocation test across the whole sweep.
pub fn run(ctx: &ExperimentContext) -> Fig1 {
    run_profiled(ctx).0
}

/// As [`run`], also returning per-point wall-clock timings and the
/// observability sidecars (per-point metrics and latency histograms, both
/// in sweep order).
pub fn run_profiled(
    ctx: &ExperimentContext,
) -> (Fig1, Vec<JobTiming>, ExperimentMetrics, ExperimentHist) {
    assemble(distreg::run_jobs_ctx(ctx, "fig1", dist_jobs(ctx)))
}

/// The full sweep as registry jobs (worker agents enumerate the identical
/// list, so a point index means the same configuration in every process).
pub(crate) fn dist_jobs(ctx: &ExperimentContext) -> Vec<Job<'static, Fig1Out>> {
    sweep_jobs(ctx, &WorkloadKind::all(), &sweep_configs())
}

/// Runs an arbitrary subset of the sweep (used by the determinism tests to
/// keep runtimes down); `run` covers the full grid.
pub fn run_sweep(
    ctx: &ExperimentContext,
    workloads: &[WorkloadKind],
    configs: &[(usize, u64, bool)],
) -> (Fig1, Vec<JobTiming>, ExperimentMetrics, ExperimentHist) {
    assemble(runner::run_jobs(ctx.jobs, sweep_jobs(ctx, workloads, configs)))
}

fn sweep_jobs(
    ctx: &ExperimentContext,
    workloads: &[WorkloadKind],
    configs: &[(usize, u64, bool)],
) -> Vec<Job<'static, Fig1Out>> {
    let ctx = *ctx;
    let mut jobs = Vec::new();
    for &wl in workloads {
        for &(nsizes, grow, clustered) in configs {
            let label = format!(
                "fig1/{}/n{nsizes}-g{grow}-{}",
                wl.short_name(),
                if clustered { "c" } else { "u" }
            );
            let point_label = label.clone();
            jobs.push(Job::new(label, move || {
                let policy = PolicyConfig::Restricted(RestrictedConfig::sweep_point(
                    nsizes, grow, clustered,
                ));
                let (frag, tm, th) = ctx.run_allocation_observed(wl, policy);
                let point = Fig1Point {
                    workload: wl.short_name().to_string(),
                    nsizes,
                    grow_factor: grow,
                    clustered,
                    internal_pct: frag.internal_pct,
                    external_pct: frag.external_pct,
                };
                (
                    point,
                    PointMetrics::new(point_label.clone(), vec![tm]),
                    PointHist::new(point_label, vec![th]),
                )
            }));
        }
    }
    jobs
}

fn assemble(
    out: RunOutcome<Fig1Out>,
) -> (Fig1, Vec<JobTiming>, ExperimentMetrics, ExperimentHist) {
    let (points, metrics, hists) = crate::metrics::split3(out.results);
    (
        Fig1 { points },
        out.timings,
        ExperimentMetrics::new("fig1", metrics),
        ExperimentHist::new("fig1", hists),
    )
}

impl Fig1 {
    /// Points for one workload, in sweep order.
    pub fn workload(&self, short_name: &str) -> Vec<&Fig1Point> {
        self.points.iter().filter(|p| p.workload == short_name).collect()
    }
}

impl Fig1 {
    /// Renders the six panels (internal/external per workload) as charts.
    pub fn chart(&self) -> String {
        let mut out = String::new();
        for wl in ["TS", "TP", "SC"] {
            for (metric, internal) in [("internal", true), ("external", false)] {
                let mut c = BarChart::new(format!(
                    "Figure 1 ({wl}): {metric} fragmentation (%)"
                ))
                .scale_at_least(6.0);
                let mut last_sizes = 0;
                for p in self.workload(wl) {
                    if p.nsizes != last_sizes && last_sizes != 0 {
                        c.gap();
                    }
                    last_sizes = p.nsizes;
                    let v = if internal { p.internal_pct } else { p.external_pct };
                    c.bar(
                        format!(
                            "{} sizes g{} {}",
                            p.nsizes,
                            p.grow_factor,
                            if p.clustered { "clustered" } else { "unclustered" }
                        ),
                        v,
                    );
                }
                out.push_str(&c.to_string());
                out.push('\n');
            }
        }
        out
    }
}

impl fmt::Display for Fig1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Figure 1: Internal and External Fragmentation, Restricted Buddy Policy",
        )
        .headers(["workload", "block sizes", "grow", "clustered", "internal", "external"]);
        for p in &self.points {
            t.row([
                p.workload.clone(),
                p.nsizes.to_string(),
                p.grow_factor.to_string(),
                if p.clustered { "yes".into() } else { "no".to_string() },
                pct(p.internal_pct),
                pct(p.external_pct),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_axes_cover_the_paper() {
        let configs = sweep_configs();
        assert_eq!(configs.len(), 16);
        assert!(configs.contains(&(5, 1, true)), "the §4.2 selected configuration");
    }

    #[test]
    fn fast_scale_reproduces_figure_1_shape() {
        // A reduced sweep (one ladder) to keep unit tests quick; the full
        // sweep runs in the repro binary and benches. The paper's claims
        // under test: TS fragments worst; the higher grow factor reduces TS
        // internal fragmentation substantially ("by approximately
        // one-third"); large-file workloads barely fragment; external
        // fragmentation stays small.
        let ctx = ExperimentContext::fast(64);
        let mut ts_internal = [0.0f64; 2];
        for wl in WorkloadKind::all() {
            for (i, grow) in [1u64, 2].into_iter().enumerate() {
                let policy = PolicyConfig::Restricted(RestrictedConfig::sweep_point(3, grow, true));
                let frag = ctx.run_allocation(wl, policy);
                assert!(
                    frag.external_pct < 15.0,
                    "{} g{} external {}",
                    wl.short_name(),
                    grow,
                    frag.external_pct
                );
                match wl {
                    WorkloadKind::Timesharing => ts_internal[i] = frag.internal_pct,
                    // SC/TP files dwarf every block class, so their
                    // internal fragmentation is "rarely discernible".
                    _ => assert!(
                        frag.internal_pct < 15.0,
                        "{} g{} internal {}",
                        wl.short_name(),
                        grow,
                        frag.internal_pct
                    ),
                }
            }
        }
        // TS pays the block-ladder boundary cost (see EXPERIMENTS.md for
        // why our absolute value exceeds the paper's ≤6 %), and g = 2
        // defers the boundary, cutting the waste.
        assert!(ts_internal[0] < 40.0, "TS g1 internal {}", ts_internal[0]);
        assert!(
            ts_internal[1] < ts_internal[0] * 0.8,
            "g2 should cut TS internal fragmentation: g1 {} vs g2 {}",
            ts_internal[0],
            ts_internal[1]
        );
    }
}
