//! Experiment-level observability: per-sweep-point metrics sidecars and the
//! `repro --explain` phase-breakdown view.
//!
//! Every experiment driver's `run_profiled` now also returns an
//! [`ExperimentMetrics`]: one [`PointMetrics`] per sweep point, each holding
//! the [`TestMetrics`] snapshots its simulations produced. The repro binary
//! writes them as `<experiment>.metrics.json` sidecars next to the results
//! and renders them as a human table under `--explain`. Because every sweep
//! point's metrics are produced inside that point's job and reassembled by
//! the runner in sweep order, the sidecar is bit-identical at any `--jobs`.
//!
//! [`wren_iv_cross_check`] closes the loop against the paper: it measures
//! single-disk random reads and compares the per-phase averages to the
//! Table 1 analytic values (seek `ST + N·SI`, expected rotational latency of
//! half a rotation, exact transfer time).

use crate::report::TextTable;
use readopt_disk::{Disk, DiskGeometry, IoKind, SimTime};
use readopt_sim::{DiskPhaseMetrics, SimRng, TestMetrics};
use serde::{Deserialize, Serialize};

/// Metrics snapshots for one sweep point.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PointMetrics {
    /// The sweep point's label (same text as the runner job's label).
    pub label: String,
    /// One snapshot per test the point ran, in execution order.
    pub tests: Vec<TestMetrics>,
}

impl PointMetrics {
    /// A point with snapshots in execution order.
    pub fn new(label: impl Into<String>, tests: Vec<TestMetrics>) -> Self {
        PointMetrics { label: label.into(), tests }
    }
}

/// Sidecar content for one experiment: `<experiment>.metrics.json`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExperimentMetrics {
    /// Experiment name ("fig2", "table4", …).
    pub experiment: String,
    /// Per-sweep-point snapshots in sweep order.
    pub points: Vec<PointMetrics>,
}

impl ExperimentMetrics {
    /// Wraps sweep-ordered point metrics.
    pub fn new(experiment: impl Into<String>, points: Vec<PointMetrics>) -> Self {
        ExperimentMetrics { experiment: experiment.into(), points }
    }

    /// For experiments with nothing to decompose (closed-form tables).
    pub fn empty(experiment: impl Into<String>) -> Self {
        ExperimentMetrics { experiment: experiment.into(), points: Vec::new() }
    }

    /// The `--explain` table: one row per (sweep point, test) with the
    /// array-combined per-request phase averages and busy-time shares.
    pub fn phase_table(&self) -> TextTable {
        let mut t = TextTable::new(format!("{} — where disk time went", self.experiment)).headers([
            "point",
            "test",
            "reqs",
            "seek ms",
            "rot ms",
            "xfer ms",
            "wait ms",
            "util",
            "seek/rot/xfer %",
            "frag runs",
        ]);
        for p in &self.points {
            for tm in &p.tests {
                let c = &tm.storage.combined;
                let (s, r, x) = c.phase_shares_pct();
                t.row([
                    p.label.clone(),
                    tm.test.clone(),
                    c.requests.to_string(),
                    format!("{:.3}", c.avg_seek_ms()),
                    format!("{:.3}", c.avg_rotational_ms()),
                    format!("{:.3}", c.avg_transfer_ms()),
                    format!("{:.3}", c.avg_queue_wait_ms()),
                    format!("{:.1}%", 100.0 * c.utilization),
                    format!("{s:.0}/{r:.0}/{x:.0}"),
                    tm.alloc.frag.free_extents.to_string(),
                ]);
            }
        }
        t
    }
}

/// Latency-histogram snapshots for one sweep point (`*.hist.json` sidecar).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PointHist {
    /// The sweep point's label (same text as the runner job's label).
    pub label: String,
    /// One log-bucketed histogram per test the point ran, in execution
    /// order (see [`readopt_sim::TestHist`]).
    pub tests: Vec<readopt_sim::TestHist>,
}

impl PointHist {
    /// A point with histograms in execution order.
    pub fn new(label: impl Into<String>, tests: Vec<readopt_sim::TestHist>) -> Self {
        PointHist { label: label.into(), tests }
    }
}

/// Sidecar content for one experiment's latency percentiles:
/// `<experiment>.hist.json`. Like the metrics sidecar, every histogram is
/// produced inside its point's job and reassembled in sweep order, so the
/// artifact is bit-identical at any `--jobs` or `--workers`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExperimentHist {
    /// Experiment name ("fig2", "table4", …).
    pub experiment: String,
    /// Per-sweep-point histograms in sweep order.
    pub points: Vec<PointHist>,
}

impl ExperimentHist {
    /// Wraps sweep-ordered point histograms.
    pub fn new(experiment: impl Into<String>, points: Vec<PointHist>) -> Self {
        ExperimentHist { experiment: experiment.into(), points }
    }

    /// For experiments that record no operation latencies.
    pub fn empty(experiment: impl Into<String>) -> Self {
        ExperimentHist { experiment: experiment.into(), points: Vec::new() }
    }

    /// Samples the engine's exact 200 k latency buffer dropped across all
    /// points — when non-zero, the exact-buffer p50/p99 in the results were
    /// computed over a clipped prefix and the bucketed percentiles here are
    /// the trustworthy ones. Surfaced per experiment in `profile.json`.
    pub fn dropped_samples(&self) -> u64 {
        let mut dropped = 0u64;
        for p in &self.points {
            for t in &p.tests {
                dropped += t.dropped;
            }
        }
        dropped
    }
}

/// Unzips a sweep's `(result, metrics, hist)` triples into parallel
/// vectors, preserving sweep order (the three-way `unzip` every driver's
/// reassembly needs).
pub fn split3<A, B, C>(triples: Vec<(A, B, C)>) -> (Vec<A>, Vec<B>, Vec<C>) {
    let mut a = Vec::with_capacity(triples.len());
    let mut b = Vec::with_capacity(triples.len());
    let mut c = Vec::with_capacity(triples.len());
    for (x, y, z) in triples {
        a.push(x);
        b.push(y);
        c.push(z);
    }
    (a, b, c)
}

/// Analytic per-phase expectations for single-sector random reads on a
/// geometry, straight from the Table 1 parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalyticPhases {
    /// Expected seek time over independent uniform cylinder pairs:
    /// `(1 - 1/C)·ST + SI·(C² - 1)/(3C)` (a same-cylinder pair costs 0).
    pub seek_ms: f64,
    /// Expected rotational latency: half a rotation.
    pub rotational_ms: f64,
    /// Exact transfer time for one sector.
    pub transfer_ms: f64,
}

/// Closed-form Table 1 expectations for `geom` under single-sector reads at
/// independent uniformly-distributed sectors.
pub fn analytic_phases(geom: &DiskGeometry) -> AnalyticPhases {
    let c = f64::from(geom.cylinders);
    // P(move) = 1 - 1/C; mean |i - j| over uniform i, j is (C² - 1)/(3C).
    let seek_ms = (1.0 - 1.0 / c) * geom.single_track_seek_ms
        + geom.incremental_seek_ms * (c * c - 1.0) / (3.0 * c);
    AnalyticPhases {
        seek_ms,
        rotational_ms: geom.rotation_ms / 2.0,
        transfer_ms: geom.sector_time_ms(),
    }
}

/// Measured vs. analytic phase averages for the Wren IV cross-check.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossCheck {
    /// Measured per-request averages.
    pub measured: AnalyticPhases,
    /// Closed-form expectations.
    pub expected: AnalyticPhases,
    /// Largest relative error across the three phases.
    pub worst_relative_error: f64,
}

/// Drives a single Wren IV disk through `samples` independent single-sector
/// reads at seeded-uniform sectors and compares the measured per-phase
/// averages against [`analytic_phases`]. Each read starts on an idle disk
/// (the next request is issued at the previous completion), so queueing
/// never pollutes the mechanics. Deterministic: same seed, same answer.
pub fn wren_iv_cross_check(samples: u64, seed: u64) -> CrossCheck {
    let geom = DiskGeometry::wren_iv();
    let mut disk = Disk::new(geom.clone());
    let mut rng = SimRng::new(seed);
    let capacity = geom.capacity_sectors();
    let mut clock = SimTime::ZERO;
    for _ in 0..samples {
        let sector = rng.uniform_u64(0, capacity - 1);
        clock = disk.service(clock, sector, 1, IoKind::Read);
    }
    let stats = disk.stats();
    let m = DiskPhaseMetrics::from_stats(stats, clock.as_ms());
    let measured = AnalyticPhases {
        seek_ms: m.avg_seek_ms(),
        rotational_ms: m.avg_rotational_ms(),
        transfer_ms: m.avg_transfer_ms(),
    };
    let expected = analytic_phases(&geom);
    let rel = |got: f64, want: f64| ((got - want) / want).abs();
    let worst = rel(measured.seek_ms, expected.seek_ms)
        .max(rel(measured.rotational_ms, expected.rotational_ms))
        .max(rel(measured.transfer_ms, expected.transfer_ms));
    CrossCheck { measured, expected, worst_relative_error: worst }
}

/// Renders the cross-check as a table for `--explain`.
pub fn cross_check_table(check: &CrossCheck) -> TextTable {
    let mut t = TextTable::new("Wren IV single-disk cross-check (vs. Table 1 analytics)")
        .headers(["phase", "measured ms", "analytic ms", "rel err"]);
    let rows = [
        ("seek", check.measured.seek_ms, check.expected.seek_ms),
        ("rotational", check.measured.rotational_ms, check.expected.rotational_ms),
        ("transfer", check.measured.transfer_ms, check.expected.transfer_ms),
    ];
    for (name, got, want) in rows {
        t.row([
            name.to_string(),
            format!("{got:.4}"),
            format!("{want:.4}"),
            format!("{:.2}%", 100.0 * ((got - want) / want).abs()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_wren_iv_matches_hand_math() {
        let a = analytic_phases(&DiskGeometry::wren_iv());
        // C = 1600, ST = 5.5, SI = 0.032: E[seek] ≈ 5.4966 + 17.0667 ms.
        assert!((a.rotational_ms - 16.67 / 2.0).abs() < 1e-9);
        assert!((a.transfer_ms - 16.67 / 48.0).abs() < 1e-9);
        assert!(a.seek_ms > 22.0 && a.seek_ms < 23.0, "E[seek] = {}", a.seek_ms);
    }

    #[test]
    fn cross_check_is_deterministic() {
        let a = wren_iv_cross_check(2_000, 7);
        let b = wren_iv_cross_check(2_000, 7);
        assert_eq!(a, b);
    }

    /// The PR's acceptance criterion: measured single-disk phase averages
    /// match the Table 1 analytic values within 1%.
    #[test]
    fn measured_phases_match_table1_within_one_percent() {
        let check = wren_iv_cross_check(20_000, 1991);
        assert!(
            check.worst_relative_error < 0.01,
            "worst relative error {:.4} >= 1%\n{}",
            check.worst_relative_error,
            cross_check_table(&check)
        );
    }

    #[test]
    fn phase_table_renders_points_and_tests() {
        use readopt_sim::{StorageMetrics, TestMetrics};
        let mut tm = TestMetrics { test: "application".into(), ..Default::default() };
        tm.storage = StorageMetrics::from_stats(&readopt_disk::StorageStats::new(2), 100.0);
        let em = ExperimentMetrics::new("fig9", vec![PointMetrics::new("n=3", vec![tm])]);
        let s = em.phase_table().to_string();
        assert!(s.contains("fig9"));
        assert!(s.contains("n=3"));
        assert!(s.contains("application"));
        assert!(ExperimentMetrics::empty("table1").points.is_empty());
    }
}
