//! Shared experiment plumbing: scale selection and simulation construction.

use readopt_alloc::PolicyConfig;
use readopt_disk::ArrayConfig;
use readopt_sim::{
    EventQueueKind, FragReport, PerfReport, SimConfig, Simulation, TestHist, TestMetrics,
};
use readopt_workloads::WorkloadKind;
use serde::{Deserialize, Serialize};

/// How an experiment run is scoped: which disk system, which seed, and how
/// patient to be.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentContext {
    /// The disk system every simulation in the experiment uses.
    pub array: ArrayConfig,
    /// Base RNG seed; individual simulations derive from it.
    pub seed: u64,
    /// Cap on measured intervals per performance test.
    pub max_intervals: usize,
    /// Worker threads sweep points run across (see `runner`). Results are
    /// bit-identical at any value; 1 means fully sequential.
    pub jobs: usize,
    /// Event-queue shards per simulation point (≥ 1). Results are
    /// bit-identical at any value; raising it lets one point's disk effects
    /// execute on `shard_workers` threads.
    pub shards: usize,
    /// Effect-worker threads per point: 0 = auto (what the machine affords
    /// after `jobs` point-level workers are accounted for), 1 = in-line,
    /// higher = that many threads (capped at `shards`).
    pub shard_workers: usize,
    /// Which structure backs every simulation's event queue. Results are
    /// bit-identical on either backend; `Calendar` is the O(1) choice for
    /// million-user points.
    pub event_queue: EventQueueKind,
    /// Worker *processes* to distribute registered sweeps across (see
    /// `crates/dist`): 0 or 1 means in-process threads (`jobs`), ≥ 2 forks
    /// that many worker agents. Results are bit-identical either way.
    pub workers: usize,
    /// Override for the per-test exact-latency reservoir cap (0 keeps the
    /// simulator's 200 k default). Shrinking it forces sample drops — the
    /// reservoir then degrades to histogram-derived percentiles and the
    /// drop counts surface in every profile — so tests can exercise the
    /// overflow accounting without recording millions of operations.
    /// Results-affecting: percentile fields change once samples drop.
    pub latency_sample_cap: usize,
}

impl ExperimentContext {
    /// Full paper scale: the Table 1 system (8 disks, 2.8 GB).
    pub fn full() -> Self {
        ExperimentContext {
            array: ArrayConfig::paper_default(),
            seed: 1991,
            max_intervals: 30,
            jobs: 1,
            shards: 1,
            shard_workers: 0,
            event_queue: EventQueueKind::Heap,
            workers: 0,
            latency_sample_cap: 0,
        }
    }

    /// Scaled-down arrays for tests and benches (capacity divided by
    /// `factor`, mechanics unchanged).
    pub fn fast(factor: u32) -> Self {
        ExperimentContext {
            array: ArrayConfig::scaled(factor),
            seed: 1991,
            max_intervals: 12,
            jobs: 1,
            shards: 1,
            shard_workers: 0,
            event_queue: EventQueueKind::Heap,
            workers: 0,
            latency_sample_cap: 0,
        }
    }

    /// With a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// With a different worker-thread count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// With a different shard count (worker threads stay on auto).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// With explicit effect-worker threads (mostly for tests that must
    /// force the threaded path regardless of the machine).
    pub fn with_shard_workers(mut self, workers: usize) -> Self {
        self.shard_workers = workers;
        self
    }

    /// With a different event-queue backend.
    pub fn with_event_queue(mut self, kind: EventQueueKind) -> Self {
        self.event_queue = kind;
        self
    }

    /// With a worker-process count (≥ 2 distributes registered sweeps).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// With a smaller exact-latency reservoir (0 restores the default).
    pub fn with_latency_cap(mut self, cap: usize) -> Self {
        self.latency_sample_cap = cap;
        self
    }

    /// Builds the simulation configuration for one (workload, policy) pair.
    pub fn sim_config(&self, workload: WorkloadKind, policy: PolicyConfig) -> SimConfig {
        let types = workload.build(self.array.capacity_bytes());
        let mut cfg = SimConfig::new(self.array, policy, types);
        cfg.max_intervals = self.max_intervals;
        cfg.shards = self.shards.max(1);
        cfg.shard_workers = if self.shard_workers == 0 {
            // Auto: split what the machine affords across the `jobs`
            // point-level workers so jobs × shard-workers stays within the
            // core count. Never more threads than shards; 1 collapses to
            // the in-line path.
            let cores = std::thread::available_parallelism().map_or(1, usize::from);
            (cores / self.jobs.max(1)).max(1).min(cfg.shards)
        } else {
            self.shard_workers.min(cfg.shards)
        };
        cfg.event_queue = self.event_queue;
        if self.latency_sample_cap > 0 {
            cfg.latency_sample_cap = self.latency_sample_cap;
        }
        cfg
    }

    /// Runs the §3 allocation test for one pair.
    pub fn run_allocation(&self, workload: WorkloadKind, policy: PolicyConfig) -> FragReport {
        self.run_allocation_metered(workload, policy).0
    }

    /// Like [`Self::run_allocation`] but also snapshots the observability
    /// view. The simulation call sequence is identical (snapshots are pure
    /// reads), so the report is bit-identical to the unmetered run.
    pub fn run_allocation_metered(
        &self,
        workload: WorkloadKind,
        policy: PolicyConfig,
    ) -> (FragReport, TestMetrics) {
        let (frag, metrics, _) = self.run_allocation_observed(workload, policy);
        (frag, metrics)
    }

    /// Like [`Self::run_allocation_metered`] but also snapshots the
    /// log-bucketed latency histogram (another pure read — the report and
    /// metrics stay bit-identical).
    pub fn run_allocation_observed(
        &self,
        workload: WorkloadKind,
        policy: PolicyConfig,
    ) -> (FragReport, TestMetrics, TestHist) {
        let cfg = self.sim_config(workload, policy);
        let mut sim = Simulation::new(&cfg, self.seed);
        let frag = sim.run_allocation_test();
        let metrics = sim.metrics_snapshot("allocation", sim.now().as_ms());
        let hist = sim.latency_hist("allocation");
        (frag, metrics, hist)
    }

    /// Runs the §3 application + sequential tests for one pair (one
    /// simulation, application first, exactly as the paper describes).
    pub fn run_performance(
        &self,
        workload: WorkloadKind,
        policy: PolicyConfig,
    ) -> (PerfReport, PerfReport) {
        self.run_performance_metered(workload, policy).0
    }

    /// Like [`Self::run_performance`] but also snapshots the observability
    /// view after each test. Counter/stat resets between tests touch no
    /// simulation state (clock, queue, RNG, head positions all persist), so
    /// the reports are bit-identical to the unmetered run.
    pub fn run_performance_metered(
        &self,
        workload: WorkloadKind,
        policy: PolicyConfig,
    ) -> ((PerfReport, PerfReport), Vec<TestMetrics>) {
        let (reports, metrics, _) = self.run_performance_observed(workload, policy);
        (reports, metrics)
    }

    /// Like [`Self::run_performance_metered`] but also snapshots each
    /// test's log-bucketed latency histogram (pure reads taken before the
    /// inter-test reset, so reports and metrics stay bit-identical).
    pub fn run_performance_observed(
        &self,
        workload: WorkloadKind,
        policy: PolicyConfig,
    ) -> ((PerfReport, PerfReport), Vec<TestMetrics>, Vec<TestHist>) {
        let cfg = self.sim_config(workload, policy);
        let mut sim = Simulation::new(&cfg, self.seed.wrapping_add(1));
        sim.reset_counters();
        sim.storage_reset_for_probe();
        let app = sim.run_application_test();
        let m_app = sim.metrics_snapshot("application", app.measured_ms);
        let h_app = sim.latency_hist("application");
        sim.reset_counters();
        sim.storage_reset_for_probe();
        let seq = sim.run_sequential_test();
        let m_seq = sim.metrics_snapshot("sequential", seq.measured_ms);
        let h_seq = sim.latency_hist("sequential");
        ((app, seq), vec![m_app, m_seq], vec![h_app, h_seq])
    }

    /// The extent-based policy for `workload` with `n` ranges and the given
    /// fit, using the §4.3 per-workload range tables. On scaled-down arrays
    /// the range means scale with capacity (a 16 MB extent is meaningless
    /// on a 44 MB test array), mirroring how the workload builders scale
    /// file sizes.
    pub fn extent_policy(
        &self,
        workload: WorkloadKind,
        n_ranges: usize,
        fit: readopt_alloc::FitStrategy,
    ) -> PolicyConfig {
        let scale = (self.array.capacity_bytes() as f64
            / readopt_workloads::PAPER_CAPACITY_BYTES as f64)
            .min(1.0);
        let means = workload
            .extent_ranges(n_ranges)
            .iter()
            .map(|&m| ((m as f64 * scale) as u64).max(1024))
            .collect();
        PolicyConfig::Extent(readopt_alloc::ExtentConfig {
            range_means_bytes: means,
            fit,
            sigma_frac: 0.1,
        })
    }

    /// The fixed-block baseline §5 pairs with `workload` (4 KB for TS,
    /// 16 KB for TP/SC). The free list starts pre-aged (shuffled): §5's
    /// baseline "does not bias towards automatic striping or contiguous
    /// layout", i.e. it is the aged V7 system of §1 whose "logically
    /// sequential blocks … get spread across the entire disk" — a freshly
    /// initialized list would be accidentally contiguous and tell us
    /// nothing about the policy.
    pub fn fixed_policy(workload: WorkloadKind) -> PolicyConfig {
        PolicyConfig::Fixed(readopt_alloc::FixedConfig {
            block_bytes: workload.fixed_block_bytes(),
            pre_age: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contexts_validate() {
        ExperimentContext::full().array.validate().unwrap();
        ExperimentContext::fast(64).array.validate().unwrap();
        assert!(ExperimentContext::fast(64).array.capacity_bytes() < ExperimentContext::full().array.capacity_bytes());
    }

    #[test]
    fn sim_configs_validate_for_every_workload() {
        let ctx = ExperimentContext::fast(64);
        for wl in WorkloadKind::all() {
            ctx.sim_config(wl, PolicyConfig::paper_extent_based()).validate().unwrap();
        }
    }

    #[test]
    fn shard_settings_flow_into_sim_config() {
        let ctx = ExperimentContext::fast(64);
        let cfg = ctx.sim_config(WorkloadKind::Timesharing, PolicyConfig::paper_extent_based());
        assert_eq!(cfg.shards, 1, "default is unsharded");
        let ctx = ctx.with_shards(4).with_shard_workers(2);
        let cfg = ctx.sim_config(WorkloadKind::Timesharing, PolicyConfig::paper_extent_based());
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.shard_workers, 2);
        // Explicit workers are capped at the shard count.
        let cfg = ctx
            .with_shards(2)
            .with_shard_workers(16)
            .sim_config(WorkloadKind::Timesharing, PolicyConfig::paper_extent_based());
        assert_eq!(cfg.shard_workers, 2);
        // Auto resolution never exceeds shards and is at least 1.
        let cfg = ExperimentContext::fast(64)
            .with_shards(3)
            .sim_config(WorkloadKind::Timesharing, PolicyConfig::paper_extent_based());
        assert!((1..=3).contains(&cfg.shard_workers));
        cfg.validate().unwrap();
    }

    #[test]
    fn event_queue_backend_flows_into_sim_config() {
        let ctx = ExperimentContext::fast(64);
        let cfg = ctx.sim_config(WorkloadKind::Timesharing, PolicyConfig::paper_extent_based());
        assert_eq!(cfg.event_queue, EventQueueKind::Heap, "heap by default");
        let cfg = ctx
            .with_event_queue(EventQueueKind::Calendar)
            .sim_config(WorkloadKind::Timesharing, PolicyConfig::paper_extent_based());
        assert_eq!(cfg.event_queue, EventQueueKind::Calendar);
        cfg.validate().unwrap();
    }

    #[test]
    fn per_workload_policies() {
        use readopt_alloc::FitStrategy;
        let full = ExperimentContext::full();
        let p = full.extent_policy(WorkloadKind::Timesharing, 3, FitStrategy::FirstFit);
        match p {
            PolicyConfig::Extent(c) => {
                assert_eq!(c.range_means_bytes.len(), 3);
                assert_eq!(c.range_means_bytes, WorkloadKind::Timesharing.extent_ranges(3));
            }
            _ => panic!("wrong family"),
        }
        // Scaled arrays scale the ranges.
        let fast = ExperimentContext::fast(64);
        match fast.extent_policy(WorkloadKind::Supercomputer, 2, FitStrategy::FirstFit) {
            PolicyConfig::Extent(c) => {
                assert!(c.range_means_bytes[1] < 16 * 1024 * 1024);
                assert!(c.range_means_bytes[0] >= 1024);
            }
            _ => panic!("wrong family"),
        }
        let f = ExperimentContext::fixed_policy(WorkloadKind::Supercomputer);
        match f {
            PolicyConfig::Fixed(c) => assert_eq!(c.block_bytes, 16 * 1024),
            _ => panic!("wrong family"),
        }
    }
}
