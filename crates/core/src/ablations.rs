//! §6 "future work" ablations, implemented:
//!
//! * **RAID / redundancy** — "the impact of a RAID in the underlying disk
//!   system will reduce the small write performance": TP under the four
//!   §2.1 disk configurations.
//! * **Stripe unit sensitivity** — "the different policies may show
//!   different sensitivities to the stripe size parameter": SC sequential
//!   throughput across stripe units.
//! * **File-mix sensitivity** — "varying the file distributions so that the
//!   proportion of large and small files is not constant may affect
//!   fragmentation": TS fragmentation as the small-file share of capacity
//!   varies.

use crate::context::ExperimentContext;
use crate::metrics::{split3, ExperimentHist, ExperimentMetrics, PointHist, PointMetrics};
use crate::report::{bytes, pct, TextTable};
use crate::runner::{self, Job, JobTiming};
use readopt_alloc::{FitStrategy, PolicyConfig};
use readopt_disk::ArrayLayout;
use readopt_workloads::WorkloadKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One redundancy-layout measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RaidRow {
    /// Layout under test.
    pub layout: String,
    /// TP application throughput, % of that layout's own max bandwidth.
    pub application_pct: f64,
    /// TP application throughput in MB/s (layouts have different maxima,
    /// so the absolute number is the honest comparison).
    pub application_mb_s: f64,
    /// Sequential throughput, % of max.
    pub sequential_pct: f64,
    /// Physical-over-logical write amplification observed.
    pub write_amplification: f64,
}

/// The RAID ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RaidAblation {
    /// One row per layout.
    pub rows: Vec<RaidRow>,
}

/// Runs TP (extent policy, 3 ranges, first-fit) under all four layouts.
pub fn run_raid(ctx: &ExperimentContext) -> RaidAblation {
    run_raid_profiled(ctx).0
}

/// As [`run_raid`], also returning per-layout wall-clock timings and the
/// observability sidecars (metrics + latency histograms, whose per-test
/// `dropped` counts feed the run profile's overflow accounting).
pub fn run_raid_profiled(
    ctx: &ExperimentContext,
) -> (RaidAblation, Vec<JobTiming>, ExperimentMetrics, ExperimentHist) {
    let ctx = *ctx;
    let jobs = [
        ArrayLayout::Striped,
        ArrayLayout::Mirrored,
        ArrayLayout::Raid5,
        ArrayLayout::ParityStriped,
    ]
    .into_iter()
    .map(|layout| {
        Job::new(format!("ablation-raid/{layout:?}"), move || {
            let mut lctx = ctx;
            lctx.array.layout = layout;
            let wl = WorkloadKind::TransactionProcessing;
            let policy = lctx.extent_policy(wl, 3, FitStrategy::FirstFit);
            let cfg = lctx.sim_config(wl, policy);
            let mut sim = readopt_sim::Simulation::new(&cfg, lctx.seed);
            let app = sim.run_application_test();
            // Hist snapshots are pure reads taken before the next test's
            // latency reset, so the reports stay bit-identical.
            let h_app = sim.latency_hist("application");
            let seq = sim.run_sequential_test();
            let h_seq = sim.latency_hist("sequential");
            let amp = sim.storage().stats().write_amplification();
            let tm = sim.metrics_snapshot("performance", sim.now().as_ms());
            let row = RaidRow {
                layout: format!("{layout:?}"),
                application_pct: app.throughput_pct,
                application_mb_s: app.throughput_mb_s,
                sequential_pct: seq.throughput_pct,
                write_amplification: amp,
            };
            let label = format!("ablation-raid/{layout:?}");
            (
                row,
                PointMetrics::new(label.clone(), vec![tm]),
                PointHist::new(label, vec![h_app, h_seq]),
            )
        })
    })
    .collect();
    let out = runner::run_jobs(ctx.jobs, jobs);
    let (rows, metrics, hists) = split3(out.results);
    (
        RaidAblation { rows },
        out.timings,
        ExperimentMetrics::new("ablation_raid", metrics),
        ExperimentHist::new("ablation_raid", hists),
    )
}

impl fmt::Display for RaidAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new("Ablation: TP under redundancy layouts (§6 future work)")
            .headers(["layout", "app %max", "app MB/s", "seq %max", "write amp"]);
        for r in &self.rows {
            t.row([
                r.layout.clone(),
                pct(r.application_pct),
                format!("{:.2}", r.application_mb_s),
                pct(r.sequential_pct),
                format!("{:.2}×", r.write_amplification),
            ]);
        }
        write!(f, "{t}")
    }
}

/// One stripe-unit measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StripeRow {
    /// Stripe unit in bytes.
    pub stripe_unit_bytes: u64,
    /// SC sequential throughput, % of (that configuration's) max.
    pub sequential_pct: f64,
    /// SC application throughput, % of max.
    pub application_pct: f64,
}

/// The stripe-unit ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StripeAblation {
    /// One row per stripe unit.
    pub rows: Vec<StripeRow>,
}

/// Runs SC (restricted buddy, §4.2 selection) across stripe units.
pub fn run_stripe_unit(ctx: &ExperimentContext) -> StripeAblation {
    run_stripe_unit_profiled(ctx).0
}

/// As [`run_stripe_unit`], also returning per-point wall-clock timings and
/// the observability sidecars.
pub fn run_stripe_unit_profiled(
    ctx: &ExperimentContext,
) -> (StripeAblation, Vec<JobTiming>, ExperimentMetrics, ExperimentHist) {
    let ctx = *ctx;
    let jobs = [8 * 1024u64, 12 * 1024, 24 * 1024, 72 * 1024, 96 * 1024]
        .into_iter()
        // Keep whole stripe units per disk.
        .filter(|&su| ctx.array.geometry.capacity_bytes().is_multiple_of(su))
        .map(|su| {
            Job::new(format!("ablation-stripe/{}K", su / 1024), move || {
                let mut lctx = ctx;
                lctx.array.stripe_unit_bytes = su;
                let wl = WorkloadKind::Supercomputer;
                let ((app, seq), tms, hs) =
                    lctx.run_performance_observed(wl, PolicyConfig::paper_restricted());
                let row = StripeRow {
                    stripe_unit_bytes: su,
                    sequential_pct: seq.throughput_pct,
                    application_pct: app.throughput_pct,
                };
                let label = format!("ablation-stripe/{}K", su / 1024);
                (row, PointMetrics::new(label.clone(), tms), PointHist::new(label, hs))
            })
        })
        .collect();
    let out = runner::run_jobs(ctx.jobs, jobs);
    let (rows, metrics, hists) = split3(out.results);
    (
        StripeAblation { rows },
        out.timings,
        ExperimentMetrics::new("ablation_stripe", metrics),
        ExperimentHist::new("ablation_stripe", hists),
    )
}

impl fmt::Display for StripeAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new("Ablation: SC vs stripe unit (§6 future work)")
            .headers(["stripe unit", "sequential", "application"]);
        for r in &self.rows {
            t.row([bytes(r.stripe_unit_bytes), pct(r.sequential_pct), pct(r.application_pct)]);
        }
        write!(f, "{t}")
    }
}

/// One file-mix measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileMixRow {
    /// Fraction of capacity held by small files (the rest is large files).
    pub small_share: f64,
    /// Internal fragmentation, %.
    pub internal_pct: f64,
    /// External fragmentation, %.
    pub external_pct: f64,
}

/// The file-mix ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileMixAblation {
    /// One row per mix.
    pub rows: Vec<FileMixRow>,
}

/// Varies the TS small:large capacity split and measures extent-policy
/// fragmentation.
pub fn run_file_mix(ctx: &ExperimentContext) -> FileMixAblation {
    run_file_mix_profiled(ctx).0
}

/// As [`run_file_mix`], also returning per-mix wall-clock timings and the
/// observability sidecars.
pub fn run_file_mix_profiled(
    ctx: &ExperimentContext,
) -> (FileMixAblation, Vec<JobTiming>, ExperimentMetrics, ExperimentHist) {
    let ctx = *ctx;
    let jobs = [0.05f64, 0.15, 0.30, 0.50]
        .into_iter()
        .map(|small_share| {
            Job::new(format!("ablation-file-mix/{:.0}pct", 100.0 * small_share), move || {
                let capacity = ctx.array.capacity_bytes();
                let mut types = readopt_workloads::timesharing(capacity);
                // Rebalance counts: small files take `small_share`, large
                // files take (0.82 − small_share) of capacity.
                types[0].num_files = ((capacity as f64 * small_share
                    / types[0].initial_size_bytes as f64) as u64)
                    .max(4);
                types[1].num_files = ((capacity as f64 * (0.82 - small_share)
                    / types[1].initial_size_bytes as f64) as u64)
                    .max(4);
                let policy = ctx.extent_policy(WorkloadKind::Timesharing, 3, FitStrategy::FirstFit);
                let mut cfg = ctx.sim_config(WorkloadKind::Timesharing, policy);
                cfg.file_types = types;
                let mut sim = readopt_sim::Simulation::new(&cfg, ctx.seed);
                let frag = sim.run_allocation_test();
                let tm = sim.metrics_snapshot("allocation", sim.now().as_ms());
                let hist = sim.latency_hist("allocation");
                let row = FileMixRow {
                    small_share,
                    internal_pct: frag.internal_pct,
                    external_pct: frag.external_pct,
                };
                let label = format!("ablation-file-mix/{:.0}pct", 100.0 * small_share);
                (
                    row,
                    PointMetrics::new(label.clone(), vec![tm]),
                    PointHist::new(label, vec![hist]),
                )
            })
        })
        .collect();
    let out = runner::run_jobs(ctx.jobs, jobs);
    let (rows, metrics, hists) = split3(out.results);
    (
        FileMixAblation { rows },
        out.timings,
        ExperimentMetrics::new("ablation_file_mix", metrics),
        ExperimentHist::new("ablation_file_mix", hists),
    )
}

impl fmt::Display for FileMixAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new("Ablation: TS fragmentation vs small-file share (§6 future work)")
            .headers(["small-file share", "internal", "external"]);
        for r in &self.rows {
            t.row([format!("{:.0}%", 100.0 * r.small_share), pct(r.internal_pct), pct(r.external_pct)]);
        }
        write!(f, "{t}")
    }
}

/// One row of the reallocation ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReallocRow {
    /// Workload label.
    pub workload: String,
    /// Internal fragmentation before the nightly pass, %.
    pub internal_before_pct: f64,
    /// Internal fragmentation after, %.
    pub internal_after_pct: f64,
    /// Mean allocated extents per file before.
    pub extents_before: f64,
    /// Mean allocated extents per file after.
    pub extents_after: f64,
    /// Sequential throughput after the pass, % of max.
    pub sequential_after_pct: f64,
    /// Units rewritten by the pass.
    pub units_moved: u64,
}

/// The reallocation ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReallocAblation {
    /// One row per workload.
    pub rows: Vec<ReallocRow>,
}

/// §4.1 notes the paper simulates Koch's buddy system *without* its nightly
/// reallocator. This ablation adds it back: run the application test, then
/// the reallocation pass, and measure fragmentation and sequential
/// throughput on the compacted layout. Koch's claims to check: "most files
/// are allocated in 3 extents and average under 4 % internal
/// fragmentation".
pub fn run_reallocation(ctx: &ExperimentContext) -> ReallocAblation {
    run_reallocation_profiled(ctx).0
}

/// As [`run_reallocation`], also returning per-workload wall-clock timings
/// and the observability sidecars.
pub fn run_reallocation_profiled(
    ctx: &ExperimentContext,
) -> (ReallocAblation, Vec<JobTiming>, ExperimentMetrics, ExperimentHist) {
    let ctx = *ctx;
    let jobs = WorkloadKind::all()
        .into_iter()
        .map(|wl| {
            Job::new(format!("ablation-realloc/{}", wl.short_name()), move || {
                let cfg = ctx.sim_config(wl, PolicyConfig::paper_buddy());
                let mut sim = readopt_sim::Simulation::new(&cfg, ctx.seed);
                let _ = sim.run_application_test();
                let h_app = sim.latency_hist("application");
                let before = sim.fragmentation_report(0);
                let moved = sim.run_reallocation().expect("buddy has a reallocator");
                let after = sim.fragmentation_report(0);
                sim.policy().check_invariants();
                let seq = sim.run_sequential_test();
                let h_seq = sim.latency_hist("sequential");
                let tm = sim.metrics_snapshot("performance", sim.now().as_ms());
                let row = ReallocRow {
                    workload: wl.short_name().to_string(),
                    internal_before_pct: before.internal_pct,
                    internal_after_pct: after.internal_pct,
                    extents_before: before.avg_extents_per_file,
                    extents_after: after.avg_extents_per_file,
                    sequential_after_pct: seq.throughput_pct,
                    units_moved: moved,
                };
                let label = format!("ablation-realloc/{}", wl.short_name());
                (
                    row,
                    PointMetrics::new(label.clone(), vec![tm]),
                    PointHist::new(label, vec![h_app, h_seq]),
                )
            })
        })
        .collect();
    let out = runner::run_jobs(ctx.jobs, jobs);
    let (rows, metrics, hists) = split3(out.results);
    (
        ReallocAblation { rows },
        out.timings,
        ExperimentMetrics::new("ablation_realloc", metrics),
        ExperimentHist::new("ablation_realloc", hists),
    )
}

impl fmt::Display for ReallocAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Ablation: Koch's nightly reallocator on the buddy policy ([KOCH87], omitted by the paper)",
        )
        .headers(["workload", "int.frag before", "after", "extents/file before", "after", "seq after"]);
        for r in &self.rows {
            t.row([
                r.workload.clone(),
                pct(r.internal_before_pct),
                pct(r.internal_after_pct),
                format!("{:.1}", r.extents_before),
                format!("{:.1}", r.extents_after),
                pct(r.sequential_after_pct),
            ]);
        }
        write!(f, "{t}")
    }
}

/// One row of the FFS comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FfsRow {
    /// Policy label.
    pub policy: String,
    /// Internal fragmentation at first allocation failure, %.
    pub internal_pct: f64,
    /// External fragmentation, %.
    pub external_pct: f64,
    /// TS application throughput, % of max.
    pub application_pct: f64,
    /// TS sequential throughput, % of max.
    pub sequential_pct: f64,
}

/// The FFS comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FfsAblation {
    /// One row per policy.
    pub rows: Vec<FfsRow>,
}

/// §1's three-way story, measured: the aged V7 fixed-block system, the BSD
/// FFS block+fragment refinement, and a read-optimized multiblock policy,
/// all on the small-file timesharing workload FFS was designed for.
pub fn run_ffs_comparison(ctx: &ExperimentContext) -> FfsAblation {
    run_ffs_comparison_profiled(ctx).0
}

/// As [`run_ffs_comparison`], also returning per-policy wall-clock timings
/// and the observability sidecars.
pub fn run_ffs_comparison_profiled(
    ctx: &ExperimentContext,
) -> (FfsAblation, Vec<JobTiming>, ExperimentMetrics, ExperimentHist) {
    let ctx = *ctx;
    let wl = WorkloadKind::Timesharing;
    let policies = [
        ("fixed-4K (aged V7)".to_string(), ExperimentContext::fixed_policy(wl)),
        ("ffs 8K/1K".to_string(), PolicyConfig::ffs_classic()),
        ("extent (3 ranges)".to_string(), ctx.extent_policy(wl, 3, readopt_alloc::FitStrategy::FirstFit)),
    ];
    let jobs = policies
        .into_iter()
        .map(|(name, policy)| {
            let point_label = format!("ablation-ffs/{name}");
            Job::new(format!("ablation-ffs/{name}"), move || {
                let (frag, tm_alloc, h_alloc) = ctx.run_allocation_observed(wl, policy.clone());
                let ((app, seq), mut tms, mut hs) = ctx.run_performance_observed(wl, policy);
                tms.insert(0, tm_alloc);
                hs.insert(0, h_alloc);
                let row = FfsRow {
                    policy: name,
                    internal_pct: frag.internal_pct,
                    external_pct: frag.external_pct,
                    application_pct: app.throughput_pct,
                    sequential_pct: seq.throughput_pct,
                };
                (
                    row,
                    PointMetrics::new(point_label.clone(), tms),
                    PointHist::new(point_label, hs),
                )
            })
        })
        .collect();
    let out = runner::run_jobs(ctx.jobs, jobs);
    let (rows, metrics, hists) = split3(out.results);
    (
        FfsAblation { rows },
        out.timings,
        ExperimentMetrics::new("ablation_ffs", metrics),
        ExperimentHist::new("ablation_ffs", hists),
    )
}

impl fmt::Display for FfsAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Ablation: V7 fixed block vs BSD FFS vs multiblock on TS (§1's motivating story)",
        )
        .headers(["policy", "internal", "external", "application", "sequential"]);
        for r in &self.rows {
            t.row([
                r.policy.clone(),
                pct(r.internal_pct),
                pct(r.external_pct),
                pct(r.application_pct),
                pct(r.sequential_pct),
            ]);
        }
        write!(f, "{t}")
    }
}

/// Degraded-RAID measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedRaidAblation {
    /// Latency of a 24 KB chunk read, healthy array, ms.
    pub read_healthy_ms: f64,
    /// Latency of the same read with the chunk's disk failed
    /// (reconstruction from all survivors), ms.
    pub read_degraded_ms: f64,
    /// Latency of an 8 KB partial-row write, healthy (read-modify-write), ms.
    pub write_healthy_ms: f64,
    /// Latency of the same write with the data disk failed
    /// (reconstruct-write), ms.
    pub write_degraded_ms: f64,
    /// Time to rebuild the failed disk onto a replacement, seconds.
    pub rebuild_secs: f64,
}

/// Measures RAID-5 degraded-mode service times and the rebuild cost on the
/// context's geometry — the operational flip side of §6's RAID caveat.
pub fn run_degraded_raid(ctx: &ExperimentContext) -> DegradedRaidAblation {
    run_degraded_raid_profiled(ctx).0
}

/// As [`run_degraded_raid`], timed through the runner as a single job (the
/// four service-time probes share one array model and are not worth
/// splitting). No simulation runs, so the histogram sidecar carries one
/// empty point (nothing sampled, nothing dropped).
pub fn run_degraded_raid_profiled(
    ctx: &ExperimentContext,
) -> (DegradedRaidAblation, Vec<JobTiming>, ExperimentMetrics, ExperimentHist) {
    let ctx = *ctx;
    let jobs = vec![Job::new("ablation-degraded-raid/probes", move || degraded_raid_probes(&ctx))];
    let mut out = runner::run_jobs(ctx.jobs, jobs);
    let (row, metrics) = out.results.remove(0);
    let hists = vec![PointHist::new("ablation-degraded-raid/probes".to_string(), Vec::new())];
    (
        row,
        out.timings,
        ExperimentMetrics::new("ablation_degraded_raid", vec![metrics]),
        ExperimentHist::new("ablation_degraded_raid", hists),
    )
}

fn degraded_raid_probes(ctx: &ExperimentContext) -> (DegradedRaidAblation, PointMetrics) {
    use readopt_disk::{IoRequest, Raid5Array, SimTime, Storage};
    use readopt_sim::{StorageMetrics, TestMetrics};
    let g = ctx.array.geometry;
    let su = ctx.array.stripe_unit_bytes;
    let du = ctx.array.disk_unit_bytes;
    let su_units = su / du;
    let one = |fail: Option<usize>, req: IoRequest| {
        let mut r = Raid5Array::new(g, ctx.array.ndisks, su, du);
        if let Some(d) = fail {
            r.fail_disk(d);
        }
        let span = r.submit(SimTime::ZERO, &req);
        span.end.as_ms()
    };
    let mut rebuild = Raid5Array::new(g, ctx.array.ndisks, su, du);
    rebuild.fail_disk(0);
    let rebuild_secs = rebuild.rebuild(SimTime::ZERO).as_secs();
    let row = DegradedRaidAblation {
        read_healthy_ms: one(None, IoRequest::read(0, su_units)),
        read_degraded_ms: one(Some(0), IoRequest::read(0, su_units)),
        write_healthy_ms: one(None, IoRequest::write(0, su_units / 3)),
        write_degraded_ms: one(Some(0), IoRequest::write(0, su_units / 3)),
        rebuild_secs,
    };
    // No Simulation is involved; decompose the rebuild pass (the one probe
    // that exercises every surviving spindle) straight from the array stats.
    let tm = TestMetrics {
        test: "rebuild".into(),
        window_ms: rebuild_secs * 1e3,
        storage: StorageMetrics::from_stats(&rebuild.stats(), rebuild_secs * 1e3),
        ..Default::default()
    };
    (row, PointMetrics::new("ablation-degraded-raid/probes".to_string(), vec![tm]))
}

impl fmt::Display for DegradedRaidAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new("Ablation: RAID-5 degraded mode (extension)")
            .headers(["operation", "healthy", "degraded"]);
        t.row([
            "chunk read".to_string(),
            format!("{:.2} ms", self.read_healthy_ms),
            format!("{:.2} ms (reconstructed)", self.read_degraded_ms),
        ]);
        t.row([
            "partial-row write".to_string(),
            format!("{:.2} ms", self.write_healthy_ms),
            format!("{:.2} ms (reconstruct-write)", self.write_degraded_ms),
        ]);
        t.row([
            "rebuild failed disk".to_string(),
            "—".to_string(),
            format!("{:.1} s", self.rebuild_secs),
        ]);
        write!(f, "{t}")
    }
}

/// One row of the disk-generation ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskGenRow {
    /// Drive generation label.
    pub generation: String,
    /// Workload label.
    pub workload: String,
    /// Policy label.
    pub policy: String,
    /// Sequential throughput, % of that generation's max.
    pub sequential_pct: f64,
    /// Application throughput, % of max.
    pub application_pct: f64,
}

/// The disk-generation ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskGenAblation {
    /// Rows grouped by generation.
    pub rows: Vec<DiskGenRow>,
}

/// Do the paper's 1991 conclusions survive a decade of disk evolution?
/// Re-runs the restricted-buddy vs aged-fixed-block comparison on SC and TS
/// with a circa-2001 geometry (20× the transfer rate, only ~4× the seek
/// speed). Since seeks got relatively *more* expensive per byte, contiguity
/// matters more — the fixed-block gap should widen.
pub fn run_disk_generations(ctx: &ExperimentContext) -> DiskGenAblation {
    run_disk_generations_profiled(ctx).0
}

/// As [`run_disk_generations`], also returning per-cell wall-clock timings
/// and the observability sidecars.
pub fn run_disk_generations_profiled(
    ctx: &ExperimentContext,
) -> (DiskGenAblation, Vec<JobTiming>, ExperimentMetrics, ExperimentHist) {
    use readopt_disk::DiskGeometry;
    let ctx = *ctx;
    // Keep the 2001 system at a few GB even for full-scale contexts (its
    // raw 64 GB would make the TS population enormous without changing any
    // conclusion).
    let scale = ((readopt_workloads::PAPER_CAPACITY_BYTES
        / ctx.array.capacity_bytes().max(1))
    .max(4)) as u32;
    let mut jobs = Vec::new();
    for (generation, geometry, stripe) in [
        ("1991 Wren IV", ctx.array.geometry, ctx.array.stripe_unit_bytes),
        // 2001 cylinders are 1 MB; 64 KB stripe units divide them evenly.
        ("2001 desktop", DiskGeometry::desktop_2001_scaled(scale), 64 * 1024),
    ] {
        for wl in [WorkloadKind::Supercomputer, WorkloadKind::Timesharing] {
            for (policy_name, policy) in [
                ("restricted-buddy", PolicyConfig::paper_restricted()),
                ("fixed (aged)", ExperimentContext::fixed_policy(wl)),
            ] {
                let label =
                    format!("ablation-disk-gen/{generation}/{}/{policy_name}", wl.short_name());
                let point_label = label.clone();
                jobs.push(Job::new(label, move || {
                    let mut gctx = ctx;
                    gctx.array.geometry = geometry;
                    gctx.array.stripe_unit_bytes = stripe;
                    let ((app, seq), tms, hs) = gctx.run_performance_observed(wl, policy);
                    let row = DiskGenRow {
                        generation: generation.to_string(),
                        workload: wl.short_name().to_string(),
                        policy: policy_name.to_string(),
                        sequential_pct: seq.throughput_pct,
                        application_pct: app.throughput_pct,
                    };
                    (
                        row,
                        PointMetrics::new(point_label.clone(), tms),
                        PointHist::new(point_label, hs),
                    )
                }));
            }
        }
    }
    let out = runner::run_jobs(ctx.jobs, jobs);
    let (rows, metrics, hists) = split3(out.results);
    (
        DiskGenAblation { rows },
        out.timings,
        ExperimentMetrics::new("ablation_disk_gen", metrics),
        ExperimentHist::new("ablation_disk_gen", hists),
    )
}

impl fmt::Display for DiskGenAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Ablation: 1991 vs 2001 disk generations (does the conclusion age well?)",
        )
        .headers(["generation", "workload", "policy", "sequential", "application"]);
        for r in &self.rows {
            t.row([
                r.generation.clone(),
                r.workload.clone(),
                r.policy.clone(),
                pct(r.sequential_pct),
                pct(r.application_pct),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conclusions_strengthen_on_modern_disks() {
        let ab = run_disk_generations(&ExperimentContext::fast(64));
        assert_eq!(ab.rows.len(), 8);
        let gap = |generation: &str| {
            let multi = ab
                .rows
                .iter()
                .find(|r| r.generation.starts_with(generation) && r.workload == "SC" && r.policy.starts_with("restricted"))
                .unwrap()
                .sequential_pct;
            let fixed = ab
                .rows
                .iter()
                .find(|r| r.generation.starts_with(generation) && r.workload == "SC" && r.policy.starts_with("fixed"))
                .unwrap()
                .sequential_pct;
            multi / fixed.max(1e-9)
        };
        let gap_1991 = gap("1991");
        let gap_2001 = gap("2001");
        assert!(gap_1991 > 1.5, "multiblock already wins in 1991: {gap_1991}");
        assert!(
            gap_2001 > gap_1991,
            "the contiguity advantage must widen on modern disks: 1991 {gap_1991:.1}x vs 2001 {gap_2001:.1}x"
        );
    }

    #[test]
    fn degraded_raid_costs_are_ordered() {
        let ab = run_degraded_raid(&ExperimentContext::fast(64));
        assert!(ab.read_degraded_ms >= ab.read_healthy_ms);
        assert!(ab.rebuild_secs > 0.0);
    }

    #[test]
    fn ffs_comparison_tells_section_1_story() {
        let ab = run_ffs_comparison(&ExperimentContext::fast(64));
        assert_eq!(ab.rows.len(), 3);
        let v7 = &ab.rows[0];
        let ffs = &ab.rows[1];
        // FFS's fragments avoid the 4K-block round-up waste of the fixed
        // system on 8K-mean files…
        assert!(
            ffs.internal_pct <= v7.internal_pct + 1.0,
            "ffs {} vs v7 {}",
            ffs.internal_pct,
            v7.internal_pct
        );
        // …and its cylinder-group locality beats the aged V7 free list
        // sequentially.
        assert!(
            ffs.sequential_pct > v7.sequential_pct,
            "ffs {} vs v7 {}",
            ffs.sequential_pct,
            v7.sequential_pct
        );
    }

    #[test]
    fn nightly_reallocation_matches_kochs_claims() {
        let ab = run_reallocation(&ExperimentContext::fast(64));
        assert_eq!(ab.rows.len(), 3);
        for r in &ab.rows {
            assert!(
                r.internal_after_pct <= r.internal_before_pct,
                "{}: {} -> {}",
                r.workload,
                r.internal_before_pct,
                r.internal_after_pct
            );
            assert!(r.extents_after <= 4.0, "{}: {} extents/file", r.workload, r.extents_after);
            assert!(r.units_moved > 0);
        }
        // Koch: "average under 4% internal fragmentation" — the rounded
        // third extent keeps waste tiny.
        let worst = ab.rows.iter().map(|r| r.internal_after_pct).fold(0.0, f64::max);
        assert!(worst < 8.0, "worst internal fragmentation after realloc: {worst}");
    }

    #[test]
    fn raid_rows_cover_all_layouts() {
        let ab = run_raid(&ExperimentContext::fast(64));
        assert_eq!(ab.rows.len(), 4);
        let striped = &ab.rows[0];
        let raid5 = &ab.rows[2];
        assert!(
            striped.write_amplification <= 1.01,
            "no redundancy overhead: {}",
            striped.write_amplification
        );
        assert!(
            raid5.write_amplification > 1.1,
            "RAID-5 RMW amplifies writes: {}",
            raid5.write_amplification
        );
        // The §6 prediction: RAID reduces (small-write-heavy) TP throughput.
        assert!(
            raid5.application_mb_s < striped.application_mb_s,
            "raid {} vs striped {} MB/s",
            raid5.application_mb_s,
            striped.application_mb_s
        );
    }

    #[test]
    fn stripe_sweep_produces_rows() {
        let ab = run_stripe_unit(&ExperimentContext::fast(64));
        assert!(ab.rows.len() >= 2);
        for r in &ab.rows {
            assert!(r.sequential_pct > 0.0);
        }
    }

    #[test]
    fn file_mix_sweep_produces_rows() {
        let ab = run_file_mix(&ExperimentContext::fast(64));
        assert_eq!(ab.rows.len(), 4);
        for r in &ab.rows {
            assert!(r.internal_pct >= 0.0 && r.external_pct >= 0.0);
        }
    }

    /// The regression this pins: the `repro` ablations profile used to
    /// hardcode `dropped_latency_samples: 0` because the ablation drivers
    /// returned no histograms at all — reservoir overflow in any ablation
    /// was silently reported as "every percentile exact". Every profiled
    /// ablation now returns an [`ExperimentHist`] whose per-test `dropped`
    /// counts the profile sums, and a tiny reservoir must surface them.
    #[test]
    fn ablation_hists_carry_real_drop_counts() {
        let ctx = ExperimentContext::fast(64).with_latency_cap(4);
        let (ab, _, _, hist) = run_file_mix_profiled(&ctx);
        assert_eq!(hist.experiment, "ablation_file_mix");
        assert_eq!(hist.points.len(), ab.rows.len(), "one hist point per mix");
        assert!(
            hist.dropped_samples() > 0,
            "a 4-sample reservoir must overflow during the allocation test"
        );
        for p in &hist.points {
            let point_drops: u64 = p.tests.iter().map(|t| t.dropped).sum();
            assert!(point_drops > 0, "{}: no drops recorded", p.label);
        }
        // The summed number is exactly the per-point aggregate — the value
        // the run profile now reports instead of the hardcoded zero.
        let total: u64 =
            hist.points.iter().flat_map(|p| p.tests.iter()).map(|t| t.dropped).sum();
        assert_eq!(hist.dropped_samples(), total);

        // And an uncapped context keeps every ablation percentile exact.
        let (_, _, _, uncapped) = run_file_mix_profiled(&ExperimentContext::fast(64));
        assert_eq!(uncapped.dropped_samples(), 0);
    }
}
