//! Figure 3: how contiguous allocation and grow factors interact.
//!
//! "Because the total file length is not a multiple of the new block size,
//! we are required to pay a seek when the block size grows." With sizes
//! 8K/64K/1M and grow factor 1, a file outgrows its 8 KB blocks after
//! 64 KB and its next (64 KB) block cannot be contiguous with them; with
//! grow factor 2 that first forced discontinuity moves out to 128 KB, past
//! most timesharing files — the reason g=2 wins TS sequential throughput
//! in Figure 2 while costing internal fragmentation in Figure 1.
//!
//! This driver grows a file 8 KB at a time on a fresh unclustered policy
//! and records where the physical layout breaks, plus the measured
//! single-stream sequential read time of the resulting file.

use crate::metrics::{ExperimentMetrics, PointMetrics};
use crate::report::TextTable;
use crate::runner::{self, Job, JobTiming};
use readopt_alloc::{FileHints, Policy, RestrictedPolicy};
use readopt_disk::{ArrayConfig, IoRequest, SimTime};
use readopt_sim::{AllocGauges, StorageMetrics, TestMetrics};
use serde::{Deserialize, Serialize};
use std::fmt;

const KB: u64 = 1024;

/// Layout trace for one grow factor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Grow factor.
    pub grow_factor: u64,
    /// File size (bytes) at which each discontiguity appears.
    pub break_points_bytes: Vec<u64>,
    /// Number of extents once the file reaches the target size.
    pub extents: usize,
    /// File size the trace grew to, bytes.
    pub file_bytes: u64,
    /// Allocated bytes at the end (over-allocation = internal frag cost).
    pub allocated_bytes: u64,
    /// Simulated time to read the file sequentially, ms.
    pub sequential_read_ms: f64,
}

/// The figure: one row per grow factor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3 {
    /// Rows for g = 1 and g = 2.
    pub rows: Vec<Fig3Row>,
}

/// Traces the §4.2 example ladder (8K / 64K / 1M) for g ∈ {1, 2}, growing
/// to 128 KB — past g=1's forced 64 KB-block transition (the paper's
/// "any file over 72K requires a 64K block") but within g=2's contiguous
/// 8 KB-block span, so the grow-factor difference shows up directly in the
/// extent count and the sequential read time.
pub fn run() -> Fig3 {
    run_with(&[8 * KB, 64 * KB, 1024 * KB], 128 * KB)
}

/// As [`run`], fanning the two grow-factor traces across `jobs` threads and
/// returning per-trace timings and the observability sidecar.
pub fn run_profiled(jobs: usize) -> (Fig3, Vec<JobTiming>, ExperimentMetrics) {
    run_with_jobs(&[8 * KB, 64 * KB, 1024 * KB], 128 * KB, jobs)
}

/// Traces an arbitrary ladder, growing a file 8 KB at a time to
/// `target_bytes`.
pub fn run_with(ladder_bytes: &[u64], target_bytes: u64) -> Fig3 {
    run_with_jobs(ladder_bytes, target_bytes, 1).0
}

fn run_with_jobs(
    ladder_bytes: &[u64],
    target_bytes: u64,
    jobs: usize,
) -> (Fig3, Vec<JobTiming>, ExperimentMetrics) {
    let job_list = [1u64, 2]
        .into_iter()
        .map(|grow| {
            let ladder = ladder_bytes.to_vec();
            Job::new(format!("fig3/g{grow}"), move || trace_grow(&ladder, target_bytes, grow))
        })
        .collect();
    let out = runner::run_jobs(jobs, job_list);
    let (rows, metrics) = out.results.into_iter().unzip();
    (Fig3 { rows }, out.timings, ExperimentMetrics::new("fig3", metrics))
}

fn trace_grow(ladder_bytes: &[u64], target_bytes: u64, grow: u64) -> (Fig3Row, PointMetrics) {
    let array = ArrayConfig::scaled(16);
    let unit = array.disk_unit_bytes;
    let sizes_units: Vec<u64> = ladder_bytes.iter().map(|&b| b / unit).collect();
    let mut policy: RestrictedPolicy = RestrictedPolicy::new(array.capacity_units(), &sizes_units, grow, None);
    let file = policy.create(&FileHints::default()).expect("fresh disk");
    let step = 8 * KB / unit;
    let mut logical = 0u64;
    let target_units = target_bytes / unit;
    let mut break_points = Vec::new();
    let mut last_extents = policy.extent_count(file).expect("file is live");
    while logical < target_units {
        let allocated = policy.allocated_units(file).expect("file is live");
        if logical + step > allocated {
            policy
                .extend(file, logical + step - allocated)
                .expect("fresh disk cannot fill");
        }
        logical += step;
        let extents = policy.extent_count(file).expect("file is live");
        if extents > last_extents {
            // The first extent is the file appearing, not a layout
            // break; every later increment is a forced discontiguity.
            if last_extents > 0 {
                break_points.push(logical * unit);
            }
            last_extents = extents;
        }
    }
    // Measure a single-stream sequential read of the laid-out file.
    let mut storage = array.build();
    let mut t = SimTime::ZERO;
    for e in policy.file_map(file).expect("file is live").extents() {
        t = storage.submit(t, &IoRequest::read(e.start, e.len)).end;
    }
    let row = Fig3Row {
        grow_factor: grow,
        break_points_bytes: break_points,
        extents: policy.extent_count(file).expect("file is live"),
        file_bytes: logical * unit,
        allocated_bytes: policy.allocated_units(file).expect("file is live") * unit,
        sequential_read_ms: t.as_ms(),
    };
    // The trace drives the array directly (no Simulation), so derive the
    // observability view straight from the array and policy counters.
    let frag = policy.frag_gauges();
    let capacity = array.capacity_units();
    let tm = TestMetrics {
        test: "trace".into(),
        window_ms: t.as_ms(),
        storage: StorageMetrics::from_stats(&storage.stats(), t.as_ms()),
        engine: Default::default(),
        alloc: AllocGauges {
            policy: "restricted".into(),
            utilization: 1.0 - frag.free_units as f64 / capacity as f64,
            frag,
        },
    };
    (row, PointMetrics::new(format!("fig3/g{grow}"), vec![tm]))
}

impl fmt::Display for Fig3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new("Figure 3: Grow Factor vs Contiguous Allocation (8K/64K/1M ladder)")
            .headers(["grow", "first break at", "extents", "allocated", "seq read (ms)"]);
        for r in &self.rows {
            t.row([
                r.grow_factor.to_string(),
                r.break_points_bytes
                    .first()
                    .map(|&b| format!("{} KB", b / KB))
                    .unwrap_or_else(|| "never".into()),
                r.extents.to_string(),
                format!("{} KB", r.allocated_bytes / KB),
                format!("{:.2}", r.sequential_read_ms),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_grow_factor_defers_the_first_break() {
        let fig = run();
        let g1 = &fig.rows[0];
        let g2 = &fig.rows[1];
        assert_eq!(g1.grow_factor, 1);
        assert_eq!(g2.grow_factor, 2);
        // g=1 breaks around the 64–72 KB the paper describes.
        let b1 = g1.break_points_bytes.first().copied().expect("g=1 must break");
        assert!((56 * KB..=80 * KB).contains(&b1), "g=1 first break at {} KB", b1 / KB);
        // g=2's sixteen 8 KB blocks cover the whole 128 KB file: no break,
        // fewer extents, faster single-stream read.
        assert!(g2.break_points_bytes.is_empty(), "{:?}", g2.break_points_bytes);
        assert!(g2.extents < g1.extents);
        assert!(
            g2.sequential_read_ms < g1.sequential_read_ms,
            "g2 {} vs g1 {}",
            g2.sequential_read_ms,
            g1.sequential_read_ms
        );
    }

    #[test]
    fn both_factors_fully_allocate_the_file() {
        for r in run().rows {
            assert!(r.allocated_bytes >= r.file_bytes);
            assert!(r.extents >= 1);
            assert!(r.sequential_read_ms > 0.0);
        }
    }
}
