//! `repro` — regenerates every table and figure of Seltzer & Stonebraker's
//! "Read Optimized File System Designs: A Performance Evaluation".
//!
//! ```text
//! usage: repro [EXPERIMENT ...] [--scale N] [--seed S] [--intervals K] [--json DIR]
//!
//! EXPERIMENT: table1 table2 table3 fig1 fig2 fig3 fig4 fig5 table4 fig6 ablations diag all
//!             (default: all)
//! --scale N:     divide the paper's 2.8 GB array capacity by N (default 1,
//!                i.e. full paper scale; benches use 64)
//! --seed S:      base RNG seed (default 1991)
//! --intervals K: cap on measured 10 s intervals per performance test
//! --json DIR:    also write each result as DIR/<experiment>.json
//! ```

use readopt_core::{ablations, diag, fig1, fig2, fig3, fig4, fig5, fig6, table1, table2, table3, table4, ExperimentContext};
use serde::Serialize;
use std::io::Write;
use std::time::Instant;

struct Options {
    experiments: Vec<String>,
    scale: u32,
    seed: u64,
    intervals: Option<usize>,
    json_dir: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        experiments: Vec::new(),
        scale: 1,
        seed: 1991,
        intervals: None,
        json_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                opts.scale = args
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--intervals" => {
                opts.intervals = Some(
                    args.next()
                        .ok_or("--intervals needs a value")?
                        .parse()
                        .map_err(|e| format!("--intervals: {e}"))?,
                );
            }
            "--json" => {
                opts.json_dir = Some(args.next().ok_or("--json needs a directory")?);
            }
            "--help" | "-h" => {
                return Err("help".into());
            }
            name if !name.starts_with('-') => opts.experiments.push(name.to_string()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if opts.experiments.is_empty() {
        opts.experiments.push("all".into());
    }
    Ok(opts)
}

fn write_json<T: Serialize>(dir: &Option<String>, name: &str, value: &T) {
    let Some(dir) = dir else { return };
    std::fs::create_dir_all(dir).expect("create json dir");
    let path = format!("{dir}/{name}.json");
    let json = serde_json::to_string_pretty(value).expect("serialize result");
    std::fs::write(&path, json).expect("write json");
    eprintln!("  wrote {path}");
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: repro [EXPERIMENT ...] [--scale N] [--seed S] [--intervals K] [--json DIR]\n\
                 experiments: table1 table2 table3 fig1 fig2 fig3 fig4 fig5 table4 fig6 ablations diag all"
            );
            std::process::exit(if e == "help" { 0 } else { 2 });
        }
    };

    let mut ctx = if opts.scale <= 1 {
        ExperimentContext::full()
    } else {
        ExperimentContext::fast(opts.scale)
    };
    ctx = ctx.with_seed(opts.seed);
    if let Some(k) = opts.intervals {
        ctx.max_intervals = k;
    }

    println!(
        "readopt repro — array: {} disks, {:.2} GB usable (scale 1/{}), seed {}\n",
        ctx.array.ndisks,
        ctx.array.capacity_bytes() as f64 / 1e9,
        opts.scale.max(1),
        ctx.seed
    );

    let run_all = opts.experiments.iter().any(|e| e == "all");
    let wants = |name: &str| run_all || opts.experiments.iter().any(|e| e == name);
    let mut ran = 0;

    macro_rules! experiment {
        ($name:literal, $body:expr) => {
            if wants($name) {
                let t0 = Instant::now();
                let result = $body;
                println!("{result}");
                println!("  [{} finished in {:.1}s]\n", $name, t0.elapsed().as_secs_f64());
                write_json(&opts.json_dir, $name, &result);
                ran += 1;
                let _ = std::io::stdout().flush();
            }
        };
    }

    experiment!("table1", table1::run(&ctx));
    experiment!("table2", table2::run(&ctx));
    experiment!("diag", diag::run(&ctx));
    experiment!("table3", table3::run(&ctx));
    if wants("fig1") {
        let t0 = Instant::now();
        let result = fig1::run(&ctx);
        println!("{result}");
        println!("{}", result.chart());
        println!("  [fig1 finished in {:.1}s]\n", t0.elapsed().as_secs_f64());
        write_json(&opts.json_dir, "fig1", &result);
        ran += 1;
        let _ = std::io::stdout().flush();
    }
    if wants("fig2") {
        let t0 = Instant::now();
        let result = fig2::run(&ctx);
        println!("{result}");
        println!("{}", result.chart());
        println!("  [fig2 finished in {:.1}s]\n", t0.elapsed().as_secs_f64());
        write_json(&opts.json_dir, "fig2", &result);
        ran += 1;
        let _ = std::io::stdout().flush();
    }
    experiment!("fig3", fig3::run());
    if wants("fig4") {
        let t0 = Instant::now();
        let result = fig4::run(&ctx);
        println!("{result}");
        println!("{}", result.chart());
        println!("  [fig4 finished in {:.1}s]\n", t0.elapsed().as_secs_f64());
        write_json(&opts.json_dir, "fig4", &result);
        ran += 1;
        let _ = std::io::stdout().flush();
    }
    if wants("fig5") {
        let t0 = Instant::now();
        let result = fig5::run(&ctx);
        println!("{result}");
        println!("{}", result.chart());
        println!("  [fig5 finished in {:.1}s]\n", t0.elapsed().as_secs_f64());
        write_json(&opts.json_dir, "fig5", &result);
        ran += 1;
        let _ = std::io::stdout().flush();
    }
    experiment!("table4", table4::run(&ctx));
    if wants("fig6") {
        let t0 = Instant::now();
        let result = fig6::run(&ctx);
        println!("{result}");
        println!("{}", result.chart());
        println!("  [fig6 finished in {:.1}s]\n", t0.elapsed().as_secs_f64());
        write_json(&opts.json_dir, "fig6", &result);
        ran += 1;
        let _ = std::io::stdout().flush();
    }
    if wants("ablations") {
        let t0 = Instant::now();
        let raid = ablations::run_raid(&ctx);
        println!("{raid}");
        write_json(&opts.json_dir, "ablation_raid", &raid);
        let stripe = ablations::run_stripe_unit(&ctx);
        println!("{stripe}");
        write_json(&opts.json_dir, "ablation_stripe", &stripe);
        let mix = ablations::run_file_mix(&ctx);
        println!("{mix}");
        write_json(&opts.json_dir, "ablation_file_mix", &mix);
        let realloc = ablations::run_reallocation(&ctx);
        println!("{realloc}");
        write_json(&opts.json_dir, "ablation_realloc", &realloc);
        let ffs = ablations::run_ffs_comparison(&ctx);
        println!("{ffs}");
        write_json(&opts.json_dir, "ablation_ffs", &ffs);
        let degraded = ablations::run_degraded_raid(&ctx);
        println!("{degraded}");
        write_json(&opts.json_dir, "ablation_degraded_raid", &degraded);
        let generations = ablations::run_disk_generations(&ctx);
        println!("{generations}");
        write_json(&opts.json_dir, "ablation_disk_generations", &generations);
        println!("  [ablations finished in {:.1}s]\n", t0.elapsed().as_secs_f64());
        ran += 1;
    }

    if ran == 0 {
        eprintln!("no experiment matched {:?}", opts.experiments);
        std::process::exit(2);
    }
}
