//! `repro` — regenerates every table and figure of Seltzer & Stonebraker's
//! "Read Optimized File System Designs: A Performance Evaluation".
//!
//! ```text
//! usage: repro [EXPERIMENT ...] [--scale N] [--seed S] [--intervals K]
//!              [--jobs J] [--workers W] [--shards S]
//!              [--event-queue heap|calendar]
//!              [--users-full] [--json DIR] [--explain]
//!
//! EXPERIMENT: table1 table2 table3 fig1 fig2 fig3 fig4 fig5 table4 fig6 ablations diag
//!             shard_scaling users_1e6 all (default: all)
//! --scale N:     divide the paper's 2.8 GB array capacity by N (default 1,
//!                i.e. full paper scale; benches use 64)
//! --seed S:      base RNG seed (default 1991)
//! --intervals K: cap on measured 10 s intervals per performance test
//! --jobs J:      worker threads for the sweep-point runner (default: the
//!                machine's available parallelism; results are bit-identical
//!                at any J)
//! --workers W:   worker *processes* for the registered sweeps (default 0 =
//!                in-process threads; W ≥ 2 forks that many `--worker-agent`
//!                copies of this binary and distributes points over pipes —
//!                results are bit-identical at any W, and dead or hung
//!                workers are respawned with their points retried)
//! --shards S:    event-queue shards inside each simulation point (default 1;
//!                results are bit-identical at any S ≥ 1 — raising it lets a
//!                point's disk effects run on worker threads, auto-sized from
//!                what the machine affords after --jobs is accounted for)
//! --event-queue: structure backing every simulation's event queue
//!                (default heap; results are bit-identical either way —
//!                calendar is the O(1) choice for million-user points)
//! --users-full:  run the users_1e6 experiment on its full ladder (up to a
//!                million users) instead of the CI smoke rungs
//! --json DIR:    also write each result as DIR/<experiment>.json plus its
//!                observability sidecars DIR/<experiment>.metrics.json and
//!                DIR/<experiment>.hist.json (per-point latency percentiles),
//!                and the timing profile as DIR/profile.json
//! --explain:     print each experiment's per-phase disk-time breakdown
//!                (seek / rotation / transfer / queue wait per sweep point)
//!                and the Wren IV analytic cross-check against Table 1
//!
//! repro --worker-agent   (internal) serve a coordinator over stdin/stdout;
//!                        spawned by --workers, never invoked by hand
//! ```

use readopt_core::metrics::{cross_check_table, wren_iv_cross_check, ExperimentHist};
use readopt_core::report::TextTable;
use readopt_core::runner::{self, JobTiming};
use readopt_core::{
    ablations, diag, distreg, fig1, fig2, fig3, fig4, fig5, fig6, shard_scaling, storex, table1,
    table2, table3, table4, users_scale, ExperimentContext, ExperimentMetrics,
};
use readopt_sim::EventQueueKind;
use serde::Serialize;
use std::io::Write;
use std::time::Instant;

struct Options {
    experiments: Vec<String>,
    scale: u32,
    seed: u64,
    intervals: Option<usize>,
    jobs: Option<usize>,
    workers: usize,
    shards: Option<usize>,
    event_queue: EventQueueKind,
    users_full: bool,
    json_dir: Option<String>,
    store: Option<String>,
    export: bool,
    explain: bool,
}

/// Wall-clock account of one experiment run: total plus per-sweep-point
/// timings from the runner (or, under `--workers`, from the worker agents).
#[derive(Serialize)]
struct ExperimentProfile {
    experiment: String,
    wall_s: f64,
    /// Latency samples beyond the per-test reservoir cap, summed over the
    /// experiment's points (0 means every percentile is exact).
    dropped_latency_samples: u64,
    points: Vec<JobTiming>,
}

/// The `--worker-agent` body: bind the coordinator's context, compute
/// registered sweep points by (experiment, index) until shutdown.
struct AgentRunner {
    ctx: Option<ExperimentContext>,
}

impl readopt_dist::PointRunner for AgentRunner {
    fn init(&mut self, ctx_json: &str) -> Result<(), String> {
        let ctx: ExperimentContext =
            serde_json::from_str(ctx_json).map_err(|e| format!("parse context: {e}"))?;
        self.ctx = Some(ctx);
        Ok(())
    }

    fn run(&mut self, experiment: &str, index: u64) -> Result<String, String> {
        let ctx = self.ctx.as_ref().ok_or("point assigned before init")?;
        distreg::run_point(ctx, experiment, index)
    }
}

fn worker_agent_main() -> ! {
    let mut runner = AgentRunner { ctx: None };
    match readopt_dist::serve_stdio(&mut runner, &readopt_dist::WorkerOptions::default()) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("worker-agent: {e}");
            std::process::exit(1);
        }
    }
}

/// The whole run's timing profile (written as `profile.json`).
#[derive(Serialize)]
struct RunProfile {
    jobs: usize,
    total_wall_s: f64,
    /// Wall-clock cost of one observability snapshot relative to the
    /// simulation work it describes (see `measure_metrics_overhead_pct`).
    metrics_overhead_pct: f64,
    experiments: Vec<ExperimentProfile>,
}

/// Measures the marginal wall-clock cost of the observability layer: the
/// always-on counters are plain field increments on paths that already do
/// arithmetic, so the snapshot (a pure read taken once per test) is the only
/// extra work. Calibration probe: a TS allocation test at 1/64 scale vs. 32
/// averaged snapshots of its end state.
fn measure_metrics_overhead_pct() -> f64 {
    use readopt_alloc::PolicyConfig;
    use readopt_workloads::WorkloadKind;
    let ctx = ExperimentContext::fast(64);
    let cfg = ctx.sim_config(WorkloadKind::Timesharing, PolicyConfig::paper_restricted());
    let mut sim = readopt_sim::Simulation::new(&cfg, ctx.seed);
    let t0 = Instant::now();
    let _ = sim.run_allocation_test();
    let run_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    for _ in 0..32 {
        std::hint::black_box(sim.metrics_snapshot("allocation", sim.now().as_ms()));
    }
    let snap_s = t1.elapsed().as_secs_f64() / 32.0;
    100.0 * snap_s / run_s.max(1e-9)
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        experiments: Vec::new(),
        scale: 1,
        seed: 1991,
        intervals: None,
        jobs: None,
        workers: 0,
        shards: None,
        event_queue: EventQueueKind::Heap,
        users_full: false,
        json_dir: None,
        store: None,
        export: false,
        explain: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                opts.scale = args
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--intervals" => {
                opts.intervals = Some(
                    args.next()
                        .ok_or("--intervals needs a value")?
                        .parse()
                        .map_err(|e| format!("--intervals: {e}"))?,
                );
            }
            "--jobs" => {
                let j: usize = args
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if j == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                opts.jobs = Some(j);
            }
            "--workers" => {
                opts.workers = args
                    .next()
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--shards" => {
                let s: usize = args
                    .next()
                    .ok_or("--shards needs a value")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if s == 0 {
                    return Err("--shards must be at least 1".into());
                }
                opts.shards = Some(s);
            }
            "--event-queue" => {
                opts.event_queue = match args.next().ok_or("--event-queue needs a value")?.as_str()
                {
                    "heap" => EventQueueKind::Heap,
                    "calendar" => EventQueueKind::Calendar,
                    other => return Err(format!("--event-queue: unknown backend {other}")),
                };
            }
            "--users-full" => {
                opts.users_full = true;
            }
            "--json" => {
                opts.json_dir = Some(args.next().ok_or("--json needs a directory")?);
            }
            "--store" => {
                opts.store = Some(args.next().ok_or("--store needs a file path")?);
            }
            "export" => {
                opts.export = true;
            }
            "--explain" => {
                opts.explain = true;
            }
            "--help" | "-h" => {
                return Err("help".into());
            }
            name if !name.starts_with('-') => opts.experiments.push(name.to_string()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if opts.experiments.is_empty() {
        opts.experiments.push("all".into());
    }
    Ok(opts)
}

fn write_json<T: Serialize>(dir: &Option<String>, name: &str, value: &T) {
    if dir.is_none() && !storex::active() {
        return;
    }
    // A resumed store's recorded artifact wins over re-serializing: the
    // wall-clock-carrying artifacts (profile, the scaling studies) could
    // not reproduce their recorded bytes, and the sidecar on disk must
    // stay byte-identical to what `repro export` regenerates.
    let json = match storex::lookup_artifact(name) {
        Some(stored) => stored,
        None => {
            let fresh = serde_json::to_string_pretty(value).expect("serialize result");
            storex::record_artifact(name, &fresh).unwrap_or_else(|e| {
                eprintln!("error: results store: {e}");
                std::process::exit(2);
            });
            fresh
        }
    };
    let Some(dir) = dir else { return };
    std::fs::create_dir_all(dir).expect("create json dir");
    let path = format!("{dir}/{name}.json");
    std::fs::write(&path, json).expect("write json");
    eprintln!("  wrote {path}");
}

/// The canonical run-configuration fingerprint stored as the `.rrs` meta
/// record. Results-invariant knobs (`jobs`, `workers`, `shards`,
/// `shard_workers`, `event_queue`) are normalized out — the whole point
/// of the store is that a sweep killed under `--jobs 8` can resume under
/// `--workers 2` and still produce the same bytes — while everything
/// results-affecting (array scale, seed, intervals, latency cap, the
/// users ladder) stays in and is enforced on resume.
fn store_meta_json(ctx: &ExperimentContext, opts: &Options) -> String {
    #[derive(Serialize)]
    struct StoreMeta {
        context: ExperimentContext,
        users_full: bool,
        users_ladder: String,
    }
    let mut c = *ctx;
    c.jobs = 1;
    c.workers = 0;
    c.shards = 1;
    c.shard_workers = 0;
    c.event_queue = EventQueueKind::Heap;
    let meta = StoreMeta {
        context: c,
        users_full: opts.users_full,
        users_ladder: std::env::var(users_scale::LADDER_ENV).unwrap_or_default(),
    };
    serde_json::to_string(&meta).expect("serialize store meta")
}

/// The end-of-run runner report: where the wall-clock went, slowest sweep
/// points first.
fn profile_table(profiles: &[ExperimentProfile], jobs: usize) -> String {
    let mut slowest: Vec<(&str, &JobTiming)> = profiles
        .iter()
        .flat_map(|p| p.points.iter().map(move |t| (p.experiment.as_str(), t)))
        .collect();
    slowest.sort_by(|a, b| b.1.wall_ms.total_cmp(&a.1.wall_ms));
    let mut t = TextTable::new(format!("Runner profile: slowest sweep points ({jobs} jobs)"))
        .headers(["experiment", "point", "wall"]);
    for (experiment, timing) in slowest.iter().take(12) {
        t.row([
            experiment.to_string(),
            timing.label.clone(),
            format!("{:.2}s", timing.wall_ms / 1e3),
        ]);
    }
    let mut out = t.to_string();
    let mut totals = TextTable::new("Per-experiment wall clock")
        .headers(["experiment", "points", "wall", "cpu (sum of points)"]);
    for p in profiles {
        // `+ 0.0` turns the empty sum's -0.0 into 0.0 for display.
        let cpu_s: f64 = p.points.iter().map(|t| t.wall_ms).sum::<f64>() / 1e3 + 0.0;
        totals.row([
            p.experiment.clone(),
            p.points.len().to_string(),
            format!("{:.1}s", p.wall_s),
            format!("{:.1}s", cpu_s),
        ]);
    }
    out.push('\n');
    out.push_str(&totals.to_string());
    out
}

fn main() {
    // The worker-agent mode bypasses normal argument handling entirely:
    // its whole contract is the frame protocol on stdin/stdout.
    if std::env::args().skip(1).any(|a| a == "--worker-agent") {
        worker_agent_main();
    }

    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: repro [EXPERIMENT ...] [--scale N] [--seed S] [--intervals K] [--jobs J] [--workers W] [--shards S] [--event-queue heap|calendar] [--users-full] [--store FILE] [--json DIR] [--explain]\n\
                 experiments: table1 table2 table3 fig1 fig2 fig3 fig4 fig5 table4 fig6 ablations diag shard_scaling users_1e6 all\n\
                 repro export --store FILE --json DIR: regenerate the JSON artifacts of a finished store (no simulation runs)"
            );
            std::process::exit(if e == "help" { 0 } else { 2 });
        }
    };

    if opts.export {
        let (Some(store), Some(dir)) = (&opts.store, &opts.json_dir) else {
            eprintln!("error: repro export needs both --store FILE and --json DIR");
            std::process::exit(2);
        };
        match storex::export(std::path::Path::new(store), std::path::Path::new(dir)) {
            Ok(names) => {
                for name in &names {
                    eprintln!("  wrote {dir}/{name}.json");
                }
                println!("exported {} artifacts from {store} to {dir}", names.len());
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    let jobs = opts.jobs.unwrap_or_else(runner::default_jobs);
    let mut ctx = if opts.scale <= 1 {
        ExperimentContext::full()
    } else {
        ExperimentContext::fast(opts.scale)
    };
    ctx = ctx.with_seed(opts.seed).with_jobs(jobs);
    if let Some(s) = opts.shards {
        ctx = ctx.with_shards(s);
    }
    if let Some(k) = opts.intervals {
        ctx.max_intervals = k;
    }
    ctx = ctx.with_event_queue(opts.event_queue).with_workers(opts.workers);

    if let Some(store) = &opts.store {
        match storex::open(std::path::Path::new(store), &store_meta_json(&ctx, &opts)) {
            Ok(0) => eprintln!("  [store] writing {store}"),
            Ok(n) => eprintln!("  [store] resumed {store} with {n} recovered point records"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    println!(
        "readopt repro — array: {} disks, {:.2} GB usable (scale 1/{}), seed {}, {} jobs, {} shards, {} queue{}\n",
        ctx.array.ndisks,
        ctx.array.capacity_bytes() as f64 / 1e9,
        opts.scale.max(1),
        ctx.seed,
        jobs,
        ctx.shards,
        match ctx.event_queue {
            EventQueueKind::Heap => "heap",
            EventQueueKind::Calendar => "calendar",
        },
        if ctx.workers >= 2 {
            format!(", {} worker processes", ctx.workers)
        } else {
            String::new()
        }
    );

    let run_all = opts.experiments.iter().any(|e| e == "all");
    let wants = |name: &str| run_all || opts.experiments.iter().any(|e| e == name);
    let t_start = Instant::now();
    let mut profiles: Vec<ExperimentProfile> = Vec::new();

    // Under --workers, registered sweeps ran distributed; their profile
    // entries get a `dist/` prefix so the perf gate tracks them as a
    // separate (warn-only) family instead of comparing process-distributed
    // wall clocks against in-process history.
    let profile_name = |name: &str| {
        if ctx.workers >= 2 && distreg::supports(name) {
            format!("dist/{name}")
        } else {
            name.to_string()
        }
    };

    // Each arm runs one experiment's profiled driver, prints its table (and
    // chart where the figure has one), records the timing profile, and
    // writes the JSON artifact plus its metrics and histogram sidecars.
    macro_rules! experiment {
        ($name:literal, $body:expr) => {
            experiment!($name, $body, |_result| {});
        };
        ($name:literal, $body:expr, $chart:expr) => {
            if wants($name) {
                let t0 = Instant::now();
                let (result, timings, metrics, hists) = $body;
                println!("{result}");
                #[allow(clippy::redundant_closure_call)]
                ($chart)(&result);
                if opts.explain && !metrics.points.is_empty() {
                    println!("{}", metrics.phase_table());
                }
                println!("  [{} finished in {:.1}s]\n", $name, t0.elapsed().as_secs_f64());
                write_json(&opts.json_dir, $name, &result);
                if !metrics.points.is_empty() {
                    write_json(&opts.json_dir, concat!($name, ".metrics"), &metrics);
                }
                if !hists.points.is_empty() {
                    write_json(&opts.json_dir, concat!($name, ".hist"), &hists);
                }
                profiles.push(ExperimentProfile {
                    experiment: profile_name($name),
                    wall_s: t0.elapsed().as_secs_f64(),
                    dropped_latency_samples: hists.dropped_samples(),
                    points: timings,
                });
                let _ = std::io::stdout().flush();
            }
        };
    }

    // table1/table2 are parameter dumps with no sweep to fan out; they run
    // inline and appear in the profile with no per-point breakdown and
    // empty metrics/histogram sidecars (nothing to decompose). fig3 and
    // shard_scaling derive from other sweeps' simulations and keep no
    // latency reservoir of their own.
    experiment!(
        "table1",
        (
            table1::run(&ctx),
            Vec::new(),
            ExperimentMetrics::empty("table1"),
            ExperimentHist::empty("table1")
        )
    );
    experiment!(
        "table2",
        (
            table2::run(&ctx),
            Vec::new(),
            ExperimentMetrics::empty("table2"),
            ExperimentHist::empty("table2")
        )
    );
    experiment!("diag", diag::run_profiled(&ctx));
    experiment!("table3", table3::run_profiled(&ctx));
    experiment!("fig1", fig1::run_profiled(&ctx), |r: &fig1::Fig1| println!("{}", r.chart()));
    experiment!("fig2", fig2::run_profiled(&ctx), |r: &fig2::Fig2| println!("{}", r.chart()));
    experiment!("fig3", {
        let (r, t, m) = fig3::run_profiled(ctx.jobs);
        (r, t, m, ExperimentHist::empty("fig3"))
    });
    experiment!("fig4", fig4::run_profiled(&ctx), |r: &fig4::Fig4| println!("{}", r.chart()));
    experiment!("fig5", fig5::run_profiled(&ctx), |r: &fig5::Fig5| println!("{}", r.chart()));
    experiment!("table4", table4::run_profiled(&ctx));
    experiment!("fig6", fig6::run_profiled(&ctx), |r: &fig6::Fig6| println!("{}", r.chart()));
    experiment!("shard_scaling", {
        let (r, t, m) = shard_scaling::run_profiled(&ctx);
        (r, t, m, ExperimentHist::empty("shard_scaling"))
    });
    experiment!("users_1e6", users_scale::run_profiled(&ctx, opts.users_full));
    if wants("ablations") {
        let t0 = Instant::now();
        let mut timings = Vec::new();
        // Summed from the real per-ablation histogram sidecars — this used
        // to be hardcoded to 0 because the ablation drivers returned no
        // histograms, silently reporting overflowed reservoirs as exact.
        let mut dropped: u64 = 0;
        macro_rules! ablation {
            ($json_name:literal, $body:expr) => {{
                let (result, t, metrics, hists) = $body;
                println!("{result}");
                if opts.explain && !metrics.points.is_empty() {
                    println!("{}", metrics.phase_table());
                }
                write_json(&opts.json_dir, $json_name, &result);
                write_json(&opts.json_dir, concat!($json_name, ".metrics"), &metrics);
                if !hists.points.is_empty() {
                    write_json(&opts.json_dir, concat!($json_name, ".hist"), &hists);
                }
                dropped += hists.dropped_samples();
                timings.extend(t);
            }};
        }
        ablation!("ablation_raid", ablations::run_raid_profiled(&ctx));
        ablation!("ablation_stripe", ablations::run_stripe_unit_profiled(&ctx));
        ablation!("ablation_file_mix", ablations::run_file_mix_profiled(&ctx));
        ablation!("ablation_realloc", ablations::run_reallocation_profiled(&ctx));
        ablation!("ablation_ffs", ablations::run_ffs_comparison_profiled(&ctx));
        ablation!("ablation_degraded_raid", ablations::run_degraded_raid_profiled(&ctx));
        ablation!("ablation_disk_generations", ablations::run_disk_generations_profiled(&ctx));
        println!("  [ablations finished in {:.1}s]\n", t0.elapsed().as_secs_f64());
        profiles.push(ExperimentProfile {
            experiment: "ablations".to_string(),
            wall_s: t0.elapsed().as_secs_f64(),
            dropped_latency_samples: dropped,
            points: timings,
        });
        let _ = std::io::stdout().flush();
    }

    if profiles.is_empty() {
        eprintln!("no experiment matched {:?}", opts.experiments);
        std::process::exit(2);
    }

    if opts.explain {
        // Ground the phase tables above: on an idle single Wren IV, the
        // measured per-phase averages must match the Table 1 analytics.
        println!("{}", cross_check_table(&wren_iv_cross_check(20_000, ctx.seed)));
    }

    println!("{}", profile_table(&profiles, jobs));
    let profile = RunProfile {
        jobs,
        total_wall_s: t_start.elapsed().as_secs_f64(),
        metrics_overhead_pct: measure_metrics_overhead_pct(),
        experiments: profiles,
    };
    write_json(&opts.json_dir, "profile", &profile);

    match storex::finish() {
        Ok(true) => {
            if let Some(store) = &opts.store {
                eprintln!("  [store] sealed {store}");
            }
        }
        Ok(false) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
