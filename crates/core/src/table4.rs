//! Table 4: average number of extents per file for each extent-based
//! configuration.
//!
//! The paper's values (first-fit; see EXPERIMENTS.md for the comparison and
//! the range-assignment caveat in DESIGN.md §"Substitutions"):
//!
//! | ranges | SC  | TP  | TS |
//! |--------|-----|-----|----|
//! | 1      | 162 | 267 | 5  |
//! | 2      | 124 | 13  | 9  |
//! | 3      | 97  | 12  | 9  |
//! | 4      | 151 | 14  | 7  |
//! | 5      | 162 | 108 | 6  |

use crate::context::ExperimentContext;
use crate::distreg;
use crate::metrics::{split3, ExperimentHist, ExperimentMetrics, PointHist, PointMetrics};
use crate::report::TextTable;
use crate::runner::{Job, JobTiming};
use readopt_alloc::FitStrategy;
use readopt_workloads::WorkloadKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One row: average extents per file for each workload at a range count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Number of extent ranges (1–5).
    pub n_ranges: usize,
    /// SC average extents per file.
    pub sc: f64,
    /// TP average extents per file.
    pub tp: f64,
    /// TS average extents per file.
    pub ts: f64,
}

/// The full table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4 {
    /// Rows for 1–5 ranges.
    pub rows: Vec<Table4Row>,
}

/// Measures average extents per file with first-fit allocation (the
/// configuration the paper carries into §5) after the allocation test has
/// filled the disk.
pub fn run(ctx: &ExperimentContext) -> Table4 {
    run_profiled(ctx).0
}

/// As [`run`], also returning per-point wall-clock timings and the
/// observability sidecars. Each of the 15 (range count, workload) cells is
/// an independent simulation job.
pub fn run_profiled(
    ctx: &ExperimentContext,
) -> (Table4, Vec<JobTiming>, ExperimentMetrics, ExperimentHist) {
    let out = distreg::run_jobs_ctx(ctx, "table4", dist_jobs(ctx));
    let (values, metrics, hists): (Vec<f64>, _, _) = split3(out.results);
    let rows = (1..=5usize)
        .zip(values.chunks_exact(3))
        .map(|(n_ranges, v)| Table4Row { n_ranges, sc: v[0], tp: v[1], ts: v[2] })
        .collect();
    (
        Table4 { rows },
        out.timings,
        ExperimentMetrics::new("table4", metrics),
        ExperimentHist::new("table4", hists),
    )
}

/// The 15 cells as registry jobs (identical enumeration in every process).
pub(crate) fn dist_jobs(
    ctx: &ExperimentContext,
) -> Vec<Job<'static, (f64, PointMetrics, PointHist)>> {
    let ctx = *ctx;
    let mut jobs = Vec::new();
    for n_ranges in 1..=5usize {
        for wl in [
            WorkloadKind::Supercomputer,
            WorkloadKind::TransactionProcessing,
            WorkloadKind::Timesharing,
        ] {
            let label = format!("table4/{}/r{n_ranges}", wl.short_name());
            let point_label = label.clone();
            jobs.push(Job::new(label, move || {
                let policy = ctx.extent_policy(wl, n_ranges, FitStrategy::FirstFit);
                let (frag, tm, th) = ctx.run_allocation_observed(wl, policy);
                (
                    frag.avg_extents_per_file,
                    PointMetrics::new(point_label.clone(), vec![tm]),
                    PointHist::new(point_label, vec![th]),
                )
            }));
        }
    }
    jobs
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new("Table 4: Average Number of Extents Per File")
            .headers(["ranges", "SC", "TP", "TS"]);
        for r in &self.rows {
            t.row([
                r.n_ranges.to_string(),
                format!("{:.0}", r.sc),
                format!("{:.0}", r.tp),
                format!("{:.0}", r.ts),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_small_range_forces_many_extents_for_tp() {
        let ctx = ExperimentContext::fast(64);
        let wl = WorkloadKind::TransactionProcessing;
        let one = ctx.run_allocation(wl, ctx.extent_policy(wl, 1, FitStrategy::FirstFit));
        let two = ctx.run_allocation(wl, ctx.extent_policy(wl, 2, FitStrategy::FirstFit));
        // Adding the 16 MB range collapses the relations' extent counts —
        // the paper's 267 → 13 drop, in shape.
        assert!(
            one.avg_extents_per_file > 2.0 * two.avg_extents_per_file,
            "1 range: {}, 2 ranges: {}",
            one.avg_extents_per_file,
            two.avg_extents_per_file
        );
    }

    #[test]
    fn ts_files_stay_at_a_handful_of_extents() {
        let ctx = ExperimentContext::fast(64);
        let wl = WorkloadKind::Timesharing;
        let frag = ctx.run_allocation(wl, ctx.extent_policy(wl, 3, FitStrategy::FirstFit));
        assert!(
            frag.avg_extents_per_file < 30.0,
            "TS extents per file {}",
            frag.avg_extents_per_file
        );
    }
}
