//! Figure 2 (a–f): application and sequential performance for the
//! restricted buddy policy, over the same sweep as Figure 1.
//!
//! Paper shape targets: larger maximum block sizes buy ~20–25 % more
//! throughput for SC/TP; clustering helps TS (up to ~20 % sequentially);
//! the grow factor matters mostly for TS (the Figure 3 interaction).

use crate::context::ExperimentContext;
use crate::distreg;
use crate::fig1::sweep_configs;
use crate::metrics::{split3, ExperimentHist, ExperimentMetrics, PointHist, PointMetrics};
use crate::report::{pct, BarChart, TextTable};
use crate::runner::{self, Job, JobTiming, RunOutcome};
use readopt_alloc::{PolicyConfig, RestrictedConfig};
use readopt_workloads::WorkloadKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One bar of the figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Point {
    /// Workload label.
    pub workload: String,
    /// Number of block sizes in the ladder (2–5).
    pub nsizes: usize,
    /// Grow factor (1 or 2).
    pub grow_factor: u64,
    /// Clustered configuration?
    pub clustered: bool,
    /// Application throughput, % of max.
    pub application_pct: f64,
    /// Sequential throughput, % of max.
    pub sequential_pct: f64,
}

/// The full sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2 {
    /// All sweep points.
    pub points: Vec<Fig2Point>,
}

/// One sweep point's full output: result + metrics + latency histograms.
type Fig2Out = (Fig2Point, PointMetrics, PointHist);

/// Runs the performance tests across the whole sweep.
pub fn run(ctx: &ExperimentContext) -> Fig2 {
    run_profiled(ctx).0
}

/// As [`run`], also returning per-point wall-clock timings and the
/// observability sidecars (per-point metrics and latency histograms, both
/// in sweep order).
pub fn run_profiled(
    ctx: &ExperimentContext,
) -> (Fig2, Vec<JobTiming>, ExperimentMetrics, ExperimentHist) {
    assemble(distreg::run_jobs_ctx(ctx, "fig2", dist_jobs(ctx)))
}

/// The full sweep as registry jobs (identical enumeration in every process).
pub(crate) fn dist_jobs(ctx: &ExperimentContext) -> Vec<Job<'static, Fig2Out>> {
    sweep_jobs(ctx, &WorkloadKind::all(), &sweep_configs())
}

/// Runs an arbitrary subset of the sweep (used by the determinism tests to
/// keep runtimes down); `run` covers the full grid.
pub fn run_sweep(
    ctx: &ExperimentContext,
    workloads: &[WorkloadKind],
    configs: &[(usize, u64, bool)],
) -> (Fig2, Vec<JobTiming>, ExperimentMetrics, ExperimentHist) {
    assemble(runner::run_jobs(ctx.jobs, sweep_jobs(ctx, workloads, configs)))
}

fn sweep_jobs(
    ctx: &ExperimentContext,
    workloads: &[WorkloadKind],
    configs: &[(usize, u64, bool)],
) -> Vec<Job<'static, Fig2Out>> {
    let ctx = *ctx;
    let mut jobs = Vec::new();
    for &wl in workloads {
        for &(nsizes, grow, clustered) in configs {
            let label = format!(
                "fig2/{}/n{nsizes}-g{grow}-{}",
                wl.short_name(),
                if clustered { "c" } else { "u" }
            );
            let point_label = label.clone();
            jobs.push(Job::new(label, move || {
                let policy = PolicyConfig::Restricted(RestrictedConfig::sweep_point(
                    nsizes, grow, clustered,
                ));
                let ((app, seq), tms, ths) = ctx.run_performance_observed(wl, policy);
                let point = Fig2Point {
                    workload: wl.short_name().to_string(),
                    nsizes,
                    grow_factor: grow,
                    clustered,
                    application_pct: app.throughput_pct,
                    sequential_pct: seq.throughput_pct,
                };
                (
                    point,
                    PointMetrics::new(point_label.clone(), tms),
                    PointHist::new(point_label, ths),
                )
            }));
        }
    }
    jobs
}

fn assemble(
    out: RunOutcome<Fig2Out>,
) -> (Fig2, Vec<JobTiming>, ExperimentMetrics, ExperimentHist) {
    let (points, metrics, hists) = split3(out.results);
    (
        Fig2 { points },
        out.timings,
        ExperimentMetrics::new("fig2", metrics),
        ExperimentHist::new("fig2", hists),
    )
}

impl Fig2 {
    /// Points for one workload, in sweep order.
    pub fn workload(&self, short_name: &str) -> Vec<&Fig2Point> {
        self.points.iter().filter(|p| p.workload == short_name).collect()
    }
}

impl Fig2 {
    /// Renders the six panels (application/sequential per workload).
    pub fn chart(&self) -> String {
        let mut out = String::new();
        for wl in ["TS", "TP", "SC"] {
            for (metric, app) in [("application", true), ("sequential", false)] {
                let mut c = BarChart::new(format!(
                    "Figure 2 ({wl}): {metric} performance (% of max)"
                ))
                .scale_to(100.0);
                let mut last_sizes = 0;
                for p in self.workload(wl) {
                    if p.nsizes != last_sizes && last_sizes != 0 {
                        c.gap();
                    }
                    last_sizes = p.nsizes;
                    let v = if app { p.application_pct } else { p.sequential_pct };
                    c.bar(
                        format!(
                            "{} sizes g{} {}",
                            p.nsizes,
                            p.grow_factor,
                            if p.clustered { "clustered" } else { "unclustered" }
                        ),
                        v,
                    );
                }
                out.push_str(&c.to_string());
                out.push('\n');
            }
        }
        out
    }
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new(
            "Figure 2: Application and Sequential Performance, Restricted Buddy Policy",
        )
        .headers(["workload", "block sizes", "grow", "clustered", "application", "sequential"]);
        for p in &self.points {
            t.row([
                p.workload.clone(),
                p.nsizes.to_string(),
                p.grow_factor.to_string(),
                if p.clustered { "yes".into() } else { "no".to_string() },
                pct(p.application_pct),
                pct(p.sequential_pct),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_blocks_help_large_file_workloads() {
        // One slice of the sweep: SC with 2-size vs 5-size ladders.
        let ctx = ExperimentContext::fast(64);
        let small = PolicyConfig::Restricted(RestrictedConfig::sweep_point(2, 1, true));
        let large = PolicyConfig::Restricted(RestrictedConfig::sweep_point(5, 1, true));
        let (_, seq_small) = ctx.run_performance(WorkloadKind::Supercomputer, small);
        let (_, seq_large) = ctx.run_performance(WorkloadKind::Supercomputer, large);
        assert!(
            seq_large.throughput_pct >= seq_small.throughput_pct * 0.9,
            "5-size ladder should not lose to 2-size: {} vs {}",
            seq_large.throughput_pct,
            seq_small.throughput_pct
        );
    }
}
