//! Fragmentation-gauge invariants across every policy family.
//!
//! The observability layer reports [`FragGauges`] per sweep point; these
//! tests pin the cross-policy contract: gauge `free_units` agrees with the
//! policy's own accounting, the largest free run fits inside the free
//! space, and runs appear/disappear coherently as files churn.

use readopt_alloc::{FileHints, Policy, PolicyConfig};

const CAPACITY_UNITS: u64 = 1 << 16;
const UNIT_BYTES: u64 = 1024;

fn all_policies() -> Vec<Box<dyn Policy>> {
    [
        PolicyConfig::paper_buddy(),
        PolicyConfig::paper_restricted(),
        PolicyConfig::paper_extent_based(),
        PolicyConfig::fixed_4k(),
        PolicyConfig::ffs_classic(),
    ]
    .iter()
    .map(|c| c.build(CAPACITY_UNITS, UNIT_BYTES, 7))
    .collect()
}

fn hints() -> FileHints {
    FileHints { mean_extent_bytes: 8 * 1024, ..Default::default() }
}

#[test]
fn gauges_agree_with_free_units_when_fresh() {
    for p in all_policies() {
        let g = p.frag_gauges();
        assert_eq!(g.free_units, p.free_units(), "{}", p.name());
        assert!(g.free_extents > 0, "{}: a fresh disk has free runs", p.name());
        assert!(g.largest_free_units <= g.free_units, "{}", p.name());
        assert!(g.largest_free_units > 0, "{}", p.name());
        assert!(g.mean_free_run_units() > 0.0, "{}", p.name());
    }
}

#[test]
fn churn_fragments_then_delete_restores_space() {
    for mut p in all_policies() {
        let name = p.name();
        let mut files = Vec::new();
        for _ in 0..64 {
            let f = p.create(&hints()).unwrap();
            p.extend(f, 24).unwrap();
            files.push(f);
        }
        // Delete every other file: free space must now be fragmented into
        // at least as many runs as survive deletions produce.
        for f in files.iter().step_by(2) {
            p.delete(*f).unwrap();
        }
        let g = p.frag_gauges();
        assert_eq!(g.free_units, p.free_units(), "{name}");
        assert!(g.free_extents > 1, "{name}: churn leaves multiple free runs");
        assert!(g.largest_free_units <= g.free_units, "{name}");

        for f in files.iter().skip(1).step_by(2) {
            p.delete(*f).unwrap();
        }
        let g = p.frag_gauges();
        assert_eq!(g.free_units, p.capacity_units() - p.metadata_units(), "{name}");
    }
}

#[test]
fn gauges_never_touch_policy_state() {
    for mut p in all_policies() {
        let f = p.create(&hints()).unwrap();
        p.extend(f, 100).unwrap();
        let before = p.frag_gauges();
        let again = p.frag_gauges();
        assert_eq!(before, again, "{}: gauges are a pure read", p.name());
        p.check_invariants();
    }
}
