//! Differential property tests for the restricted buddy's by-length
//! region availability index.
//!
//! Steps 2–3 of the paper's region-selection algorithm ("select a region
//! with a block of the correct size", "select the next region with
//! available space") used to walk every bookkeeping region linearly. The
//! index replaces those walks with per-class bitmap scans; these tests pin
//! that the indexed policy makes decisions *identical* to the linear scan
//! under arbitrary op streams, across free-list backends, and that the
//! index itself never drifts out of sync with the regions.

use proptest::prelude::*;
use readopt_alloc::blockset::{BTreeBlockSet, BitmapBlockSet};
use readopt_alloc::{FileHints, FileId, Policy, RestrictedPolicy};

/// One step of the policy op stream; fields are raw entropy shaped inside
/// the driver.
type RawOp = (u8, u16);

/// Replays `ops` against both policies, asserting identical behaviour
/// after every step. The mix leans on extend so files ladder through the
/// block classes and regions fill (forcing the step 2/3 spill paths).
fn run_differential(a: &mut dyn Policy, b: &mut dyn Policy, ops: &[RawOp]) {
    let mut files: Vec<FileId> = Vec::new();
    for &(sel, arg) in ops {
        let arg = u64::from(arg);
        match sel % 5 {
            0 => {
                let ra = a.create(&FileHints::default());
                let rb = b.create(&FileHints::default());
                assert_eq!(ra, rb, "create diverged");
                if let Ok(id) = ra {
                    files.push(id);
                }
            }
            // Two extend arms keep utilization high so the optimal region
            // runs dry and allocation falls through to steps 2–3.
            1 | 2 if !files.is_empty() => {
                let f = files[arg as usize % files.len()];
                // 1..=17 units: crosses class boundaries on the 1/8/64
                // ladder, so splits and spills both fire.
                let units = arg % 17 + 1;
                let ra = a.extend(f, units);
                let rb = b.extend(f, units);
                assert_eq!(ra, rb, "extend({units}) diverged");
            }
            3 if !files.is_empty() => {
                let f = files[arg as usize % files.len()];
                let units = arg % 11 + 1;
                let ra = a.truncate(f, units);
                let rb = b.truncate(f, units);
                assert_eq!(ra, rb, "truncate({units}) diverged");
            }
            4 if !files.is_empty() => {
                let f = files.swap_remove(arg as usize % files.len());
                let ra = a.delete(f);
                let rb = b.delete(f);
                assert_eq!(ra, rb, "delete diverged");
            }
            _ => {}
        }
        assert_eq!(a.free_units(), b.free_units(), "free_units diverged");
        assert_eq!(a.frag_gauges(), b.frag_gauges(), "frag gauges diverged");
        for &f in &files {
            assert_eq!(
                a.file_map(f).map(|m| m.extents().to_vec()),
                b.file_map(f).map(|m| m.extents().to_vec()),
                "extent maps diverged"
            );
        }
    }
    a.check_invariants();
    b.check_invariants();
}

const CAPACITY: u64 = 4096;

/// 1K/8K/64K ladder over 32 × 128-unit clustered regions: small enough to
/// fill within an op stream, many enough that the wrap search matters.
fn clustered<S: readopt_alloc::blockset::FreeBlockSet>() -> RestrictedPolicy<S> {
    RestrictedPolicy::new(CAPACITY, &[1, 8, 64], 1, Some(128))
}

fn raw_ops() -> impl Strategy<Value = Vec<RawOp>> {
    proptest::collection::vec((any::<u8>(), any::<u16>()), 1..160)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The availability index picks exactly the region the linear scan
    /// picks, step for step, with the index invariant held throughout.
    #[test]
    fn region_index_matches_linear_scan(ops in raw_ops()) {
        let mut indexed: RestrictedPolicy<BitmapBlockSet> = clustered();
        let mut linear: RestrictedPolicy<BitmapBlockSet> = clustered();
        linear.set_linear_region_scan(true);
        run_differential(&mut indexed, &mut linear, &ops);
        indexed.check_region_index();
        linear.check_region_index();
    }

    /// The index is backend-independent: indexed bitmap-set vs linear
    /// BTree-set restricted buddy still agree (crossing both axes).
    #[test]
    fn region_index_is_backend_independent(ops in raw_ops()) {
        let mut indexed: RestrictedPolicy<BitmapBlockSet> = clustered();
        let mut linear: RestrictedPolicy<BTreeBlockSet> = clustered();
        linear.set_linear_region_scan(true);
        run_differential(&mut indexed, &mut linear, &ops);
        indexed.check_region_index();
    }

    /// The unclustered configuration (one region) degenerates cleanly:
    /// steps 2–3 have no other region to offer either way.
    #[test]
    fn single_region_configuration_agrees(ops in raw_ops()) {
        let mut indexed: RestrictedPolicy<BitmapBlockSet> =
            RestrictedPolicy::new(CAPACITY, &[1, 8, 64], 1, None);
        let mut linear: RestrictedPolicy<BitmapBlockSet> =
            RestrictedPolicy::new(CAPACITY, &[1, 8, 64], 1, None);
        linear.set_linear_region_scan(true);
        run_differential(&mut indexed, &mut linear, &ops);
        indexed.check_region_index();
    }
}
