//! Differential property tests: every bitmap-backed free-space structure
//! must make decisions *identical* to its `BTreeSet`/`BTreeMap` reference
//! backend under arbitrary operation sequences.
//!
//! The same pseudo-random op stream is replayed against both backends of
//! each policy; after every single operation the grants, freed extents,
//! error outcomes, free-unit counts, and fragmentation gauges must match
//! exactly. This is the invariant that lets the word-level structures
//! replace the ordered sets without perturbing a byte of the paper's
//! simulation results.

use proptest::prelude::*;
use readopt_alloc::blockset::{BTreeBlockSet, BitmapBlockSet};
use readopt_alloc::freespace::{BTreeFreeSpaceMap, FreeSpaceMap};
use readopt_alloc::{
    BuddyPolicy, Extent, ExtentPolicy, FfsPolicy, FileHints, FileId, FitStrategy, Policy,
    RestrictedPolicy,
};

/// One step of the policy op stream; fields are raw entropy shaped inside
/// the driver.
type RawOp = (u8, u16);

/// Replays `ops` against both policies, asserting identical behaviour
/// after every step.
fn run_differential(a: &mut dyn Policy, b: &mut dyn Policy, ops: &[RawOp]) {
    let mut files: Vec<FileId> = Vec::new();
    for &(sel, arg) in ops {
        let arg = u64::from(arg);
        match sel % 4 {
            0 => {
                // Create with an allocation-size hint spanning sub-unit to
                // multi-block sizes.
                let hints = FileHints { mean_extent_bytes: (arg % 64 + 1) * 1024 };
                let ra = a.create(&hints);
                let rb = b.create(&hints);
                assert_eq!(ra, rb, "create diverged");
                if let Ok(id) = ra {
                    files.push(id);
                }
            }
            1 if !files.is_empty() => {
                let f = files[arg as usize % files.len()];
                let units = arg % 96 + 1;
                let ra = a.extend(f, units);
                let rb = b.extend(f, units);
                assert_eq!(ra, rb, "extend({units}) diverged");
            }
            2 if !files.is_empty() => {
                let f = files[arg as usize % files.len()];
                let units = arg % 128 + 1;
                let ra = a.truncate(f, units);
                let rb = b.truncate(f, units);
                assert_eq!(ra, rb, "truncate({units}) diverged");
            }
            3 if !files.is_empty() => {
                let f = files.swap_remove(arg as usize % files.len());
                let ra = a.delete(f);
                let rb = b.delete(f);
                assert_eq!(ra, rb, "delete diverged");
            }
            _ => {}
        }
        assert_eq!(a.free_units(), b.free_units(), "free_units diverged");
        assert_eq!(a.frag_gauges(), b.frag_gauges(), "frag gauges diverged");
        for &f in &files {
            assert_eq!(
                a.file_map(f).map(|m| m.extents().to_vec()),
                b.file_map(f).map(|m| m.extents().to_vec()),
                "extent maps diverged"
            );
        }
    }
    a.check_invariants();
    b.check_invariants();
}

const CAPACITY: u64 = 4096;

fn raw_ops() -> impl Strategy<Value = Vec<RawOp>> {
    proptest::collection::vec((any::<u8>(), any::<u16>()), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// FFS cylinder groups: bitmap block sets vs ordered sets.
    #[test]
    fn ffs_backends_are_equivalent(ops in raw_ops()) {
        let mut a: FfsPolicy<BitmapBlockSet> = FfsPolicy::new(CAPACITY, 8, 512);
        let mut b: FfsPolicy<BTreeBlockSet> = FfsPolicy::new(CAPACITY, 8, 512);
        run_differential(&mut a, &mut b, &ops);
    }

    /// Restricted-buddy per-class free lists: bitmap vs ordered sets.
    #[test]
    fn restricted_backends_are_equivalent(ops in raw_ops()) {
        let mut a: RestrictedPolicy<BitmapBlockSet> =
            RestrictedPolicy::new(CAPACITY, &[1, 4, 16, 64], 2, Some(1024));
        let mut b: RestrictedPolicy<BTreeBlockSet> =
            RestrictedPolicy::new(CAPACITY, &[1, 4, 16, 64], 2, Some(1024));
        run_differential(&mut a, &mut b, &ops);
    }

    /// Binary-buddy per-order free lists: bitmap vs ordered sets.
    #[test]
    fn buddy_backends_are_equivalent(ops in raw_ops()) {
        let mut a: BuddyPolicy<BitmapBlockSet> = BuddyPolicy::new(CAPACITY, 256);
        let mut b: BuddyPolicy<BTreeBlockSet> = BuddyPolicy::new(CAPACITY, 256);
        run_differential(&mut a, &mut b, &ops);
    }

    /// Extent policy: bitmap free-space map vs the BTree run map. Both
    /// sides share an RNG seed, so extent-size draws line up and any
    /// divergence is the free-space search itself.
    #[test]
    fn extent_backends_are_equivalent(ops in raw_ops(), seed in any::<u64>()) {
        let mut a: ExtentPolicy<FreeSpaceMap> =
            ExtentPolicy::new(CAPACITY, &[8, 64], FitStrategy::FirstFit, 0.1, 1024, seed);
        let mut b: ExtentPolicy<BTreeFreeSpaceMap> =
            ExtentPolicy::new(CAPACITY, &[8, 64], FitStrategy::FirstFit, 0.1, 1024, seed);
        run_differential(&mut a, &mut b, &ops);
        let mut a: ExtentPolicy<FreeSpaceMap> =
            ExtentPolicy::new(CAPACITY, &[8, 64], FitStrategy::BestFit, 0.1, 1024, seed);
        let mut b: ExtentPolicy<BTreeFreeSpaceMap> =
            ExtentPolicy::new(CAPACITY, &[8, 64], FitStrategy::BestFit, 0.1, 1024, seed);
        run_differential(&mut a, &mut b, &ops);
    }

    /// The raw free-space maps under direct fit/release traffic, including
    /// targeted `allocate_at` splits — exercises run coalescing and the
    /// by-length index far harder than the policy layer above.
    #[test]
    fn freespace_maps_are_equivalent(ops in proptest::collection::vec(
        (any::<u8>(), 0u64..CAPACITY, 1u64..128),
        1..200,
    )) {
        let mut a = FreeSpaceMap::with_capacity(CAPACITY);
        let mut b = BTreeFreeSpaceMap::with_capacity(CAPACITY);
        let mut held: Vec<Extent> = Vec::new();
        for &(sel, addr, len) in &ops {
            match sel % 4 {
                0 => {
                    let ra = a.allocate_first_fit(len);
                    let rb = b.allocate_first_fit(len);
                    assert_eq!(ra, rb, "first-fit diverged");
                    held.extend(ra);
                }
                1 => {
                    let ra = a.allocate_best_fit(len);
                    let rb = b.allocate_best_fit(len);
                    assert_eq!(ra, rb, "best-fit diverged");
                    held.extend(ra);
                }
                2 => {
                    let ra = a.allocate_at(addr, len);
                    let rb = b.allocate_at(addr, len);
                    assert_eq!(ra, rb, "allocate_at({addr}, {len}) diverged");
                    held.extend(ra);
                }
                3 if !held.is_empty() => {
                    let e = held.swap_remove(addr as usize % held.len());
                    a.release(e);
                    b.release(e);
                }
                _ => {}
            }
            assert_eq!(a.free_units(), b.free_units(), "free_units diverged");
            assert_eq!(a.run_count(), b.run_count(), "run_count diverged");
            assert_eq!(a.largest_run(), b.largest_run(), "largest_run diverged");
            assert_eq!(
                a.runs().collect::<Vec<_>>(),
                b.runs().collect::<Vec<_>>(),
                "run lists diverged"
            );
        }
        a.check_invariants();
        b.check_invariants();
    }
}
