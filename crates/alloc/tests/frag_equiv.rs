//! Differential property tests for the fragmentation-indexed fast paths.
//!
//! Two equivalences are pinned here, both load-bearing for bit-identical
//! simulation results:
//!
//! 1. `FfsPolicy` with the per-group run-length `FragIndex` makes decisions
//!    *identical* to the pre-index linear `frag_blocks` scan under
//!    arbitrary fragment-heavy op streams (the index is the same structure
//!    either way; only the lookup strategy differs).
//! 2. `FreeBitmap`'s run scans — now steered by the lazily maintained
//!    per-word longest-run cache — agree exactly with a naive bit-vector
//!    reference, including on ragged (non-multiple-of-64) lengths.

use proptest::prelude::*;
use readopt_alloc::bitmap::FreeBitmap;
use readopt_alloc::blockset::{BTreeBlockSet, BitmapBlockSet};
use readopt_alloc::{FfsPolicy, FileHints, FileId, Policy};

/// One step of the policy op stream; fields are raw entropy shaped inside
/// the driver.
type RawOp = (u8, u16);

/// Replays `ops` against both policies, asserting identical behaviour after
/// every step. The op mix is fragment-heavy: extends are mostly sub-block
/// so nearly every operation goes through `alloc_frags`/`free_frags`.
fn run_differential(a: &mut dyn Policy, b: &mut dyn Policy, ops: &[RawOp]) {
    let mut files: Vec<FileId> = Vec::new();
    for &(sel, arg) in ops {
        let arg = u64::from(arg);
        match sel % 5 {
            0 => {
                let ra = a.create(&FileHints::default());
                let rb = b.create(&FileHints::default());
                assert_eq!(ra, rb, "create diverged");
                if let Ok(id) = ra {
                    files.push(id);
                }
            }
            // Two extend arms (vs one each for truncate/delete) keep
            // utilization high and the fragment maps busy.
            1 | 2 if !files.is_empty() => {
                let f = files[arg as usize % files.len()];
                // 1..=7 fragments: always exercises the tail paths.
                let units = arg % 7 + 1;
                let ra = a.extend(f, units);
                let rb = b.extend(f, units);
                assert_eq!(ra, rb, "extend({units}) diverged");
            }
            3 if !files.is_empty() => {
                let f = files[arg as usize % files.len()];
                let units = arg % 11 + 1;
                let ra = a.truncate(f, units);
                let rb = b.truncate(f, units);
                assert_eq!(ra, rb, "truncate({units}) diverged");
            }
            4 if !files.is_empty() => {
                let f = files.swap_remove(arg as usize % files.len());
                let ra = a.delete(f);
                let rb = b.delete(f);
                assert_eq!(ra, rb, "delete diverged");
            }
            _ => {}
        }
        assert_eq!(a.free_units(), b.free_units(), "free_units diverged");
        assert_eq!(a.frag_gauges(), b.frag_gauges(), "frag gauges diverged");
        for &f in &files {
            assert_eq!(
                a.file_map(f).map(|m| m.extents().to_vec()),
                b.file_map(f).map(|m| m.extents().to_vec()),
                "extent maps diverged"
            );
        }
    }
    a.check_invariants();
    b.check_invariants();
}

const CAPACITY: u64 = 4096;

fn raw_ops() -> impl Strategy<Value = Vec<RawOp>> {
    proptest::collection::vec((any::<u8>(), any::<u16>()), 1..160)
}

/// Naive longest-run reference: the first index where a free run of `k`
/// begins, from a plain bool vector.
fn naive_first_free_run(bits: &[bool], k: usize) -> Option<usize> {
    let mut run = 0usize;
    for (i, &free) in bits.iter().enumerate() {
        if free {
            run += 1;
            if run >= k {
                return Some(i + 1 - k);
            }
        } else {
            run = 0;
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The run-length index picks exactly the block the linear scan picks,
    /// step for step, with the index invariant held throughout.
    #[test]
    fn frag_index_matches_linear_scan(ops in raw_ops()) {
        let mut indexed: FfsPolicy<BitmapBlockSet> = FfsPolicy::new(CAPACITY, 8, 512);
        let mut linear: FfsPolicy<BitmapBlockSet> = FfsPolicy::new(CAPACITY, 8, 512);
        linear.set_linear_scan(true);
        run_differential(&mut indexed, &mut linear, &ops);
        indexed.check_frag_index();
        linear.check_frag_index();
    }

    /// The index is backend-independent: indexed bitmap-set vs linear
    /// BTree-set ffs still agree (crossing both axes at once).
    #[test]
    fn frag_index_is_backend_independent(ops in raw_ops()) {
        let mut indexed: FfsPolicy<BitmapBlockSet> = FfsPolicy::new(CAPACITY, 8, 512);
        let mut linear: FfsPolicy<BTreeBlockSet> = FfsPolicy::new(CAPACITY, 8, 512);
        linear.set_linear_scan(true);
        run_differential(&mut indexed, &mut linear, &ops);
    }

    /// The cached-run bitmap scan agrees with a naive reference under
    /// arbitrary set/clear churn, on a ragged length, for every `k` probed.
    #[test]
    fn bitmap_run_scan_matches_naive(
        flips in proptest::collection::vec(0usize..1601, 1..300),
        ks in proptest::collection::vec(1usize..130, 1..8),
    ) {
        let n = 1601usize;
        let mut b = FreeBitmap::new(n);
        let mut bits = vec![false; n];
        for &i in &flips {
            if bits[i] {
                b.set_used(i);
            } else {
                b.set_free(i);
            }
            bits[i] = !bits[i];
            for &k in &ks {
                assert_eq!(
                    b.first_free_run(k),
                    naive_first_free_run(&bits, k),
                    "first_free_run({k}) diverged"
                );
            }
        }
    }
}
