//! The common interface all allocation policies implement.

use crate::filemap::FileMap;
use crate::types::{AllocError, Extent, FileHints, FileId};
use serde::{Deserialize, Serialize, Value};

/// Space accounting snapshot of a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyStats {
    /// Total managed units.
    pub capacity_units: u64,
    /// Currently free units.
    pub free_units: u64,
    /// Units allocated to file data (excludes metadata).
    pub data_units: u64,
    /// Units allocated to metadata (file descriptors etc.).
    pub metadata_units: u64,
}

impl PolicyStats {
    /// Fraction of capacity in use (data + metadata), in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity_units == 0 {
            0.0
        } else {
            (self.capacity_units - self.free_units) as f64 / self.capacity_units as f64
        }
    }
}

/// Free-space fragmentation gauges for the observability layer.
///
/// `free_extents` counts the discrete free blocks/runs the policy could
/// hand out without coalescing beyond what it already does;
/// `largest_free_units` is the biggest single allocation it could satisfy
/// contiguously. Both are computed on demand (snapshot time), never on the
/// allocation hot path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FragGauges {
    /// Currently free units (same quantity as [`Policy::free_units`]).
    pub free_units: u64,
    /// Number of discrete free blocks / contiguous free runs.
    pub free_extents: u64,
    /// Units in the largest contiguous free block the policy can hand out.
    pub largest_free_units: u64,
}

impl FragGauges {
    /// Mean size of a free run, in units (0 when nothing is free).
    pub fn mean_free_run_units(&self) -> f64 {
        if self.free_extents == 0 {
            0.0
        } else {
            self.free_units as f64 / self.free_extents as f64
        }
    }
}

/// A disk-space allocation policy.
///
/// All quantities are in *disk units*. Policies are deterministic given
/// their construction seed and call sequence.
///
/// `extend` allocates **at least** the requested units (policies round up to
/// their block/extent granularity — the source of internal fragmentation);
/// `truncate` frees **at most** the requested units (policies that cannot
/// split blocks free only whole tail blocks).
///
/// Every operation that names a [`FileId`] is fallible: a dead id yields
/// [`AllocError::DeadFile`] instead of a panic, so library callers decide
/// how to surface the bug (workspace invariant simlint r3).
///
/// `Send` is required so boxed policies (and the simulations owning them)
/// can move to experiment-runner worker threads.
pub trait Policy: Send {
    /// Short stable name for reports ("buddy", "restricted", …).
    fn name(&self) -> &'static str;

    /// Total managed units.
    fn capacity_units(&self) -> u64;

    /// Currently free units.
    fn free_units(&self) -> u64;

    /// Units consumed by metadata (e.g. file descriptor blocks).
    fn metadata_units(&self) -> u64 {
        0
    }

    /// Registers a new, empty file. May allocate metadata.
    fn create(&mut self, hints: &FileHints) -> Result<FileId, AllocError>;

    /// Grows `file` by at least `units`, returning the newly allocated
    /// extents in logical order.
    fn extend(&mut self, file: FileId, units: u64) -> Result<Vec<Extent>, AllocError>;

    /// Shrinks `file` by at most `units` from its logical end, returning
    /// the freed extents.
    fn truncate(&mut self, file: FileId, units: u64) -> Result<Vec<Extent>, AllocError>;

    /// Deletes `file`, freeing all of its space (and metadata). Returns the
    /// number of data units freed.
    fn delete(&mut self, file: FileId) -> Result<u64, AllocError>;

    /// The file's extent map.
    fn file_map(&self, file: FileId) -> Result<&FileMap, AllocError>;

    /// Units allocated to the file's data.
    fn allocated_units(&self, file: FileId) -> Result<u64, AllocError> {
        Ok(self.file_map(file)?.total_units())
    }

    /// Number of extents backing the file (physically merged view — the
    /// number of disjoint disk regions, i.e. of seeks a full scan pays).
    fn extent_count(&self, file: FileId) -> Result<usize, AllocError> {
        Ok(self.file_map(file)?.extent_count())
    }

    /// Number of *allocation units* backing the file — blocks for the
    /// buddy-style policies, extent-sized chunks for the extent policy —
    /// regardless of whether they happen to be physically adjacent. This is
    /// the statistic the paper's Table 4 reports ("a 96K file length /
    /// 4K extent size" gives 24, even on a freshly laid-out disk).
    fn allocation_count(&self, file: FileId) -> Result<usize, AllocError> {
        self.extent_count(file)
    }

    /// All currently live files.
    fn live_files(&self) -> Vec<FileId>;

    /// Runs the policy's offline reallocation pass, if it has one — Koch's
    /// nightly reallocator for the buddy policy \[KOCH87\], which the paper
    /// deliberately leaves out of its simulations ("we consider only the
    /// allocation and deallocation algorithm").
    ///
    /// `logical_sizes` supplies each live file's used size in units (the
    /// policy only tracks allocations). Returns the number of units
    /// rewritten, or `None` when the policy has no reallocator.
    fn reallocate(&mut self, logical_sizes: &[(FileId, u64)]) -> Result<Option<u64>, AllocError> {
        let _ = logical_sizes;
        Ok(None)
    }

    /// Free-space fragmentation gauges. The default reports only
    /// `free_units` (run structure untracked); every first-party policy
    /// overrides it with its real free-structure view.
    fn frag_gauges(&self) -> FragGauges {
        FragGauges { free_units: self.free_units(), free_extents: 0, largest_free_units: 0 }
    }

    /// Checkpoint snapshot of the policy's dynamic state, when the policy
    /// supports mid-run checkpointing. Configuration (capacity, strategy,
    /// size ranges) is *not* included: a resuming caller reconstructs the
    /// policy from its config and then applies the snapshot. The default
    /// reports `None` (unsupported).
    fn checkpoint_state(&self) -> Option<Value> {
        None
    }

    /// Applies a [`Policy::checkpoint_state`] snapshot to a freshly
    /// constructed policy. Implementations validate the snapshot (space
    /// conservation, slot consistency) and reject corrupt state with an
    /// error instead of mis-allocating later.
    fn restore_state(&mut self, _snapshot: &Value) -> Result<(), String> {
        Err(format!("the {} policy does not support checkpointing", self.name()))
    }

    /// Space accounting snapshot.
    fn stats(&self) -> PolicyStats {
        // `live_files` returns only live ids, so the per-file lookups
        // cannot fail; a dead id would simply contribute nothing.
        let data: u64 =
            self.live_files().iter().map(|&f| self.allocated_units(f).unwrap_or(0)).sum();
        PolicyStats {
            capacity_units: self.capacity_units(),
            free_units: self.free_units(),
            data_units: data,
            metadata_units: self.metadata_units(),
        }
    }

    /// Expensive global invariant check used by tests: extents of live
    /// files are in-bounds, disjoint, and `free + data + metadata` equals
    /// capacity.
    #[doc(hidden)]
    fn check_invariants(&self) {
        let mut spans: Vec<Extent> = Vec::new();
        let mut data = 0u64;
        for f in self.live_files() {
            let map = self
                .file_map(f)
                // simlint::allow(r3, "test-only invariant checker; panicking on violation is the point")
                .unwrap_or_else(|e| unreachable!("{}: live file {f} unmapped: {e}", self.name()));
            for e in map.extents() {
                assert!(e.len > 0, "{}: zero-length extent in {f}", self.name());
                assert!(
                    e.end() <= self.capacity_units(),
                    "{}: extent {e} of {f} out of bounds",
                    self.name()
                );
                spans.push(*e);
                data += e.len;
            }
        }
        spans.sort_unstable_by_key(|e| e.start);
        for w in spans.windows(2) {
            assert!(
                !w[0].overlaps(&w[1]),
                "{}: overlapping extents {} and {}",
                self.name(),
                w[0],
                w[1]
            );
        }
        assert_eq!(
            self.free_units() + data + self.metadata_units(),
            self.capacity_units(),
            "{}: space conservation violated (free {} + data {} + meta {} != cap {})",
            self.name(),
            self.free_units(),
            data,
            self.metadata_units(),
            self.capacity_units()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let s = PolicyStats { capacity_units: 100, free_units: 25, data_units: 70, metadata_units: 5 };
        assert!((s.utilization() - 0.75).abs() < 1e-12);
        let empty = PolicyStats { capacity_units: 0, free_units: 0, data_units: 0, metadata_units: 0 };
        assert_eq!(empty.utilization(), 0.0);
    }
}
