//! Allocation policies for read-optimized file systems.
//!
//! This crate implements the four policy families evaluated in Seltzer &
//! Stonebraker, *"Read Optimized File System Designs"* (ICDE 1991):
//!
//! * [`buddy`] — Koch's binary buddy allocation (§4.1, \[KOCH87\]): every
//!   extent is a power-of-two multiple of the sector size and each new
//!   extent doubles the file's allocation. Simple, fast, and prone to heavy
//!   internal fragmentation (Table 3).
//! * [`restricted`] — the restricted buddy system (§4.2): a small ladder of
//!   block sizes (e.g. 1K/8K/64K/1M/16M), a *grow policy* deciding when a
//!   file moves up the ladder, optional *clustering* into 32 MB bookkeeping
//!   regions, and a strong preference for physically sequential allocation.
//! * [`extent`] — the extent-based system (§4.3, \[STON89\]): every file
//!   carries an extent size drawn from a configured size range; extents may
//!   start anywhere; free space is kept coalesced and searched first-fit or
//!   best-fit.
//! * [`fixed`] — the fixed-block baseline of §5: V7-style allocation off the
//!   head of a free list with "no bias towards automatic striping or
//!   contiguous layout".
//! * [`ffs`] — an extension beyond the paper's baselines: the BSD Fast File
//!   System's block+fragment scheme its §1 discusses \[MCKU84\].
//!
//! All policies allocate from the same linear space of *disk units* that the
//! `readopt-disk` arrays expose, so logical contiguity translates directly
//! into physical striping and minimal seeks.
//!
//! The common interface is [`Policy`]; concrete policies are built from a
//! serializable [`PolicyConfig`]:
//!
//! ```
//! use readopt_alloc::{FileHints, Policy, PolicyConfig};
//!
//! // 1 M disk units of 1 KB over the §4.2 restricted buddy policy.
//! let mut policy = PolicyConfig::paper_restricted().build(1 << 20, 1024, 7);
//! let file = policy.create(&FileHints::default()).unwrap();
//! let granted = policy.extend(file, 100).unwrap();
//! assert!(granted.iter().map(|e| e.len).sum::<u64>() >= 100);
//! assert!(policy.extent_count(file).unwrap() <= 3, "sequential growth stays contiguous");
//! policy.delete(file).unwrap();
//! assert_eq!(policy.free_units() + policy.metadata_units(), policy.capacity_units());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bitmap;
pub mod blockset;
pub mod buddy;
pub mod buddy_core;
pub mod config;
pub mod extent;
pub mod filemap;
pub mod ffs;
pub mod fixed;
pub mod freespace;
pub mod policy;
pub mod restricted;
pub mod types;

pub use blockset::{BTreeBlockSet, BitmapBlockSet, FreeBlockSet};
pub use buddy::BuddyPolicy;
pub use config::{BuddyConfig, ExtentConfig, FitStrategy, FixedConfig, PolicyConfig, RestrictedConfig};
pub use extent::ExtentPolicy;
pub use ffs::{FfsConfig, FfsPolicy};
pub use freespace::{BTreeFreeSpaceMap, FreeMap, FreeSpaceMap};
pub use filemap::FileMap;
pub use fixed::FixedPolicy;
pub use policy::{FragGauges, Policy, PolicyStats};
pub use restricted::RestrictedPolicy;
pub use types::{AllocError, Extent, FileHints, FileId};
