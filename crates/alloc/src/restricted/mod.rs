//! The restricted buddy system (§4.2).
//!
//! "As in the buddy system, the restricted buddy system applies the
//! principle that as a file's size grows, so does its block size. … small
//! files are allocated from small blocks and don't suffer high
//! fragmentation. As files grow, they are allocated in larger and larger
//! chunks providing the ability to make large sequential transfers."
//!
//! The policy is parameterized by (1) the ladder of block sizes, (2) the
//! *grow policy* multiplier `g` — the allocation unit moves from `a_i` to
//! `a_{i+1}` once the file holds `g · a_{i+1}` worth of `a_i` blocks — and
//! (3) whether allocations are *clustered* into 32 MB bookkeeping regions
//! with per-region free lists and file descriptors.
//!
//! Allocation follows the paper's region-selection algorithm:
//!
//! 1. **Select the optimal region** — the region of the file's most recent
//!    block; failing that, the region of its file descriptor; for
//!    descriptor allocations, the region after the last descriptor
//!    allocation. Within the region, prefer the block physically following
//!    the file's last block; split a larger block (preferring the next
//!    sequential one) when the region has contiguous space but no block of
//!    the right size.
//! 2. **Select a region with a block of the correct size.**
//! 3. **Select the next region with available (contiguous) space** and
//!    split.

pub mod region;

use crate::bitmap::FreeBitmap;
use crate::blockset::{BitmapBlockSet, FreeBlockSet};
use crate::filemap::FileMap;
use crate::policy::Policy;
use crate::types::{AllocError, Extent, FileHints, FileId};
use region::Region;

/// One file's state under the restricted buddy policy.
#[derive(Debug, Clone)]
struct RFile {
    map: FileMap,
    /// Blocks in allocation order: `(address, class)`.
    blocks: Vec<(u64, usize)>,
    /// Units allocated per class (drives the grow policy).
    units_per_class: Vec<u64>,
    /// File descriptor block address (always class 0).
    fd_addr: u64,
}

/// The restricted buddy policy, generic over the free-list container
/// (bitmap by default; the `BTreeBlockSet` reference backend makes the
/// exact same allocation decisions and exists for differential tests and
/// benchmark baselines).
#[derive(Debug, Clone)]
pub struct RestrictedPolicy<S: FreeBlockSet = BitmapBlockSet> {
    /// Block class sizes in units, ascending, each dividing the next.
    sizes: Vec<u64>,
    grow_factor: u64,
    regions: Vec<Region<S>>,
    /// Region length in units (`u64::MAX`-like sentinel not needed: equals
    /// capacity when unclustered).
    region_units: u64,
    capacity: u64,
    files: Vec<Option<RFile>>,
    free_slots: Vec<u32>,
    /// Region in which the last file descriptor was allocated.
    fd_cursor: usize,
    metadata_units: u64,
    /// By-length region availability index: bit `r` of `avail[c]` is set
    /// iff `regions[r]` has a free block of exactly class `c`. Steps 2–3
    /// of the paper's region-selection algorithm become word-wise bitmap
    /// scans instead of a linear walk over every region.
    avail: Vec<FreeBitmap>,
    /// Differential-testing escape hatch: when set, steps 2–3 use the
    /// original linear region scans instead of the availability index.
    linear_region_scan: bool,
}

impl<S: FreeBlockSet> RestrictedPolicy<S> {
    /// Builds the policy.
    ///
    /// * `sizes_units` — ascending block classes (each must divide the next).
    /// * `grow_factor` — the grow-policy multiplier `g ≥ 1`.
    /// * `region_units` — bookkeeping region length; pass `None` for an
    ///   unclustered configuration (one region spanning the whole space).
    ///   Must be a multiple of the largest block class.
    pub fn new(
        capacity_units: u64,
        sizes_units: &[u64],
        grow_factor: u64,
        region_units: Option<u64>,
    ) -> Self {
        assert!(!sizes_units.is_empty(), "at least one block class");
        assert!(grow_factor >= 1, "grow factor must be ≥ 1");
        for w in sizes_units.windows(2) {
            assert!(w[0] < w[1] && w[1] % w[0] == 0, "classes must ascend and divide");
        }
        // simlint::allow(r3, "non-emptiness asserted at the top of the constructor")
        let top = *sizes_units.last().unwrap_or_else(|| unreachable!("asserted non-empty above"));
        if let Some(ru) = region_units {
            // Clustered: region bases must stay aligned to the top class.
            assert!(ru >= top, "region smaller than the largest block class");
            assert_eq!(ru % top, 0, "region must be a multiple of the top class");
        }
        let region_units = region_units.unwrap_or(capacity_units);
        let mut regions = Vec::new();
        let mut base = 0;
        while base < capacity_units {
            let end = (base + region_units).min(capacity_units);
            regions.push(Region::new(base, end, sizes_units));
            base = end;
        }
        let nregions = regions.len();
        let mut policy = RestrictedPolicy {
            sizes: sizes_units.to_vec(),
            grow_factor,
            regions,
            region_units,
            capacity: capacity_units,
            files: Vec::new(),
            free_slots: Vec::new(),
            fd_cursor: 0,
            metadata_units: 0,
            avail: sizes_units.iter().map(|_| FreeBitmap::new(nregions)).collect(),
            linear_region_scan: false,
        };
        for r in 0..nregions {
            policy.sync_region(r);
        }
        policy
    }

    /// Forces steps 2–3 of `allocate_block` back onto the original linear
    /// region scans (the availability index stays maintained but unused) —
    /// for differential tests pinning that the index changes no decision.
    pub fn set_linear_region_scan(&mut self, linear: bool) {
        self.linear_region_scan = linear;
    }

    /// Re-derives region `r`'s bits in the availability index from the
    /// region's own state. Must be called after any operation that may
    /// change which classes have free blocks in `r`.
    fn sync_region(&mut self, r: usize) {
        for c in 0..self.sizes.len() {
            let has = self.regions[r].has_free(&self.sizes, c);
            if has != self.avail[c].is_free(r) {
                if has {
                    self.avail[c].set_free(r);
                } else {
                    self.avail[c].set_used(r);
                }
            }
        }
    }

    /// First region in the wrap order `optimal+1, …, n−1, 0, …, optimal−1`
    /// (the optimal region itself excluded — step 1 already tried it)
    /// whose bit is set in `bits`.
    fn next_region_in(bits: &FreeBitmap, optimal: usize) -> Option<usize> {
        if let Some(r) = bits.first_free_at_or_after(optimal + 1) {
            return Some(r);
        }
        // Wrapped segment [0, optimal): `first_free` returns the global
        // minimum set bit; if that is `optimal` itself, nothing below it
        // is set either and the wrap comes up empty.
        bits.first_free().filter(|&r| r != optimal)
    }

    /// Distance from `optimal` along the wrap order (1 ≤ distance < n for
    /// any region other than `optimal`).
    fn wrap_distance(&self, optimal: usize, r: usize) -> usize {
        (r + self.regions.len() - optimal) % self.regions.len()
    }

    /// Verifies the availability index against the regions (test hook).
    #[doc(hidden)]
    pub fn check_region_index(&self) {
        for (c, bits) in self.avail.iter().enumerate() {
            assert_eq!(bits.len(), self.regions.len());
            for (r, region) in self.regions.iter().enumerate() {
                assert_eq!(
                    bits.is_free(r),
                    region.has_free(&self.sizes, c),
                    "avail index out of sync for class {c}, region {r}"
                );
            }
        }
    }

    /// Number of bookkeeping regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// The configured block classes, in units.
    pub fn class_sizes(&self) -> &[u64] {
        &self.sizes
    }

    fn file(&self, id: FileId) -> Result<&RFile, AllocError> {
        self.files
            .get(id.0 as usize)
            .and_then(|slot| slot.as_ref())
            .ok_or(AllocError::DeadFile(id))
    }

    fn file_mut(&mut self, id: FileId) -> Result<&mut RFile, AllocError> {
        self.files
            .get_mut(id.0 as usize)
            .and_then(|slot| slot.as_mut())
            .ok_or(AllocError::DeadFile(id))
    }

    fn region_of(&self, addr: u64) -> usize {
        ((addr / self.region_units) as usize).min(self.regions.len() - 1)
    }

    /// The class the grow policy prescribes for a file's next block: start
    /// at the smallest class and move up while the per-class quota
    /// (`g · a_{i+1}`) is met.
    fn next_class(&self, file: &RFile) -> usize {
        let mut c = 0;
        while c + 1 < self.sizes.len()
            && file.units_per_class[c] >= self.grow_factor * self.sizes[c + 1]
        {
            c += 1;
        }
        c
    }

    /// Core block allocation implementing the three-step region selection.
    ///
    /// `optimal` is the preferred region; `prefer` the preferred address
    /// (the unit following the file's last block, rounded up to class
    /// alignment by the caller).
    fn allocate_block(&mut self, class: usize, optimal: usize, prefer: Option<u64>) -> Option<u64> {
        // Perfect contiguity first: the exact preferred block, wherever it
        // lives (it may sit just past the optimal region's boundary).
        if let Some(p) = prefer {
            if p + self.sizes[class] <= self.capacity {
                let r = self.region_of(p);
                if self.regions[r].take_exact(&self.sizes, class, p) {
                    self.sync_region(r);
                    return Some(p);
                }
            }
        }
        // Step 1: the optimal region — right size, else split larger.
        if let Some(a) = self.regions[optimal].take_near(&self.sizes, class, prefer) {
            self.sync_region(optimal);
            return Some(a);
        }
        if let Some(a) = self.regions[optimal].split_for(&self.sizes, class, prefer) {
            self.sync_region(optimal);
            return Some(a);
        }
        // Step 2: any region with a block of the correct size.
        if let Some(r) = self.step2_region(class, optimal) {
            let a = self.regions[r].take_near(&self.sizes, class, None);
            self.sync_region(r);
            return a;
        }
        // Step 3: the next region with adequate contiguous space.
        if let Some(r) = self.step3_region(class, optimal) {
            let a = self.regions[r].split_for(&self.sizes, class, None);
            self.sync_region(r);
            return a;
        }
        None
    }

    /// Step 2's region choice: the first region in wrap order past
    /// `optimal` with a free block of exactly `class`.
    fn step2_region(&self, class: usize, optimal: usize) -> Option<usize> {
        if self.linear_region_scan {
            let nregions = self.regions.len();
            return (1..nregions)
                .map(|k| (optimal + k) % nregions)
                .find(|&r| self.regions[r].has_free(&self.sizes, class));
        }
        Self::next_region_in(&self.avail[class], optimal)
    }

    /// Step 3's region choice: the first region in wrap order past
    /// `optimal` with a free block of any class larger than `class` —
    /// the minimum wrap distance over the per-class indexes.
    fn step3_region(&self, class: usize, optimal: usize) -> Option<usize> {
        if self.linear_region_scan {
            let nregions = self.regions.len();
            return (1..nregions)
                .map(|k| (optimal + k) % nregions)
                .find(|&r| self.regions[r].has_larger(&self.sizes, class));
        }
        let mut best: Option<usize> = None;
        for k in class + 1..self.sizes.len() {
            if let Some(r) = Self::next_region_in(&self.avail[k], optimal) {
                if best.is_none_or(|b| {
                    self.wrap_distance(optimal, r) < self.wrap_distance(optimal, b)
                }) {
                    best = Some(r);
                }
            }
        }
        best
    }

    fn free_block(&mut self, class: usize, addr: u64) {
        let r = self.region_of(addr);
        self.regions[r].free_block(&self.sizes, class, addr);
        self.sync_region(r);
    }

    /// Preferred placement for a file's next block of `class`: the unit
    /// after its last block, rounded **up** to the class alignment. When
    /// the block size has just grown, the file's end is usually not aligned
    /// to the new size — the Figure 3 effect: the file pays a seek (or at
    /// least a gap) at every class transition.
    fn preferred_addr(&self, file: &RFile, class: usize) -> Option<u64> {
        let next = file.map.next_sequential_unit()?;
        let size = self.sizes[class];
        Some(next.div_ceil(size) * size)
    }
}

impl<S: FreeBlockSet> Policy for RestrictedPolicy<S> {
    fn name(&self) -> &'static str {
        "restricted-buddy"
    }

    fn capacity_units(&self) -> u64 {
        self.capacity
    }

    fn free_units(&self) -> u64 {
        self.regions.iter().map(|r| r.free_units()).sum()
    }

    fn frag_gauges(&self) -> crate::policy::FragGauges {
        // Blocks are the grant granularity (the ladder never coalesces
        // across classes), so each free block of each class is one extent;
        // the largest grant is the biggest class with any free block.
        let mut free_blocks = 0u64;
        let mut largest = 0u64;
        for (c, &size) in self.sizes.iter().enumerate() {
            let n: u64 = self.regions.iter().map(|r| r.free_block_count(&self.sizes, c)).sum();
            free_blocks += n;
            if n > 0 {
                largest = largest.max(size);
            }
        }
        crate::policy::FragGauges {
            free_units: self.free_units(),
            free_extents: free_blocks,
            largest_free_units: largest,
        }
    }

    fn metadata_units(&self) -> u64 {
        self.metadata_units
    }

    fn create(&mut self, _hints: &FileHints) -> Result<FileId, AllocError> {
        // "If the allocation request is for a file descriptor, the optimal
        // region is the region after the region in which the last request
        // was satisfied."
        let optimal = (self.fd_cursor + 1) % self.regions.len();
        let fd_addr = self
            .allocate_block(0, optimal, None)
            .ok_or(AllocError::DiskFull(self.sizes[0]))?;
        self.fd_cursor = self.region_of(fd_addr);
        self.metadata_units += self.sizes[0];
        let file = RFile {
            map: FileMap::new(),
            blocks: Vec::new(),
            units_per_class: vec![0; self.sizes.len()],
            fd_addr,
        };
        let id = match self.free_slots.pop() {
            Some(slot) => {
                self.files[slot as usize] = Some(file);
                FileId(slot)
            }
            None => {
                let id = FileId::from_index(self.files.len())?;
                self.files.push(Some(file));
                id
            }
        };
        Ok(id)
    }

    fn extend(&mut self, file: FileId, units: u64) -> Result<Vec<Extent>, AllocError> {
        debug_assert!(units > 0);
        let mut granted: Vec<(u64, usize)> = Vec::new();
        let mut remaining = units;
        while remaining > 0 {
            let (class, prefer, optimal) = {
                let f = self.file(file)?;
                let class = self.next_class(f);
                let prefer = self.preferred_addr(f, class);
                // "If the request is for a block of a file, the optimal
                // region is that region which contains the most recently
                // allocated block for that file. If no blocks have been
                // allocated, the optimal region is that [of] the file
                // descriptor."
                let optimal = match f.blocks.last() {
                    Some(&(addr, _)) => self.region_of(addr),
                    None => self.region_of(f.fd_addr),
                };
                (class, prefer, optimal)
            };
            let Some(addr) = self.allocate_block(class, optimal, prefer) else {
                // Unwind this call's blocks: a failed extend is atomic.
                for &(a, c) in granted.iter().rev() {
                    self.free_block(c, a);
                    let sizes_c = self.sizes[c];
                    let f = self.file_mut(file)?;
                    f.blocks.pop();
                    f.units_per_class[c] -= sizes_c;
                    f.map.pop_back(sizes_c);
                }
                return Err(AllocError::DiskFull(self.sizes[class]));
            };
            let size = self.sizes[class];
            let f = self.file_mut(file)?;
            f.blocks.push((addr, class));
            f.units_per_class[class] += size;
            f.map.push(Extent::new(addr, size));
            granted.push((addr, class));
            remaining = remaining.saturating_sub(size);
        }
        Ok(granted
            .into_iter()
            .map(|(a, c)| Extent::new(a, self.sizes[c]))
            .collect())
    }

    fn truncate(&mut self, file: FileId, units: u64) -> Result<Vec<Extent>, AllocError> {
        let mut freed = Vec::new();
        let mut remaining = units;
        while let Some(&(addr, class)) = self.file(file)?.blocks.last() {
            let size = self.sizes[class];
            if size > remaining {
                break;
            }
            let f = self.file_mut(file)?;
            f.blocks.pop();
            f.units_per_class[class] -= size;
            f.map.pop_back(size);
            self.free_block(class, addr);
            freed.push(Extent::new(addr, size));
            remaining -= size;
        }
        Ok(freed)
    }

    fn delete(&mut self, file: FileId) -> Result<u64, AllocError> {
        let f = self
            .files
            .get_mut(file.0 as usize)
            .and_then(|slot| slot.take())
            .ok_or(AllocError::DeadFile(file))?;
        let mut data = 0;
        for &(addr, class) in f.blocks.iter().rev() {
            self.free_block(class, addr);
            data += self.sizes[class];
        }
        self.free_block(0, f.fd_addr);
        self.metadata_units -= self.sizes[0];
        self.free_slots.push(file.0);
        Ok(data)
    }

    fn file_map(&self, file: FileId) -> Result<&FileMap, AllocError> {
        Ok(&self.file(file)?.map)
    }

    fn live_files(&self) -> Vec<FileId> {
        self.files
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_some())
            .filter_map(|(i, _)| FileId::from_index(i).ok())
            .collect()
    }

    fn allocation_count(&self, file: FileId) -> Result<usize, AllocError> {
        Ok(self.file(file)?.blocks.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1K/8K/64K ladder over 4 × 64 K-unit regions.
    fn clustered() -> RestrictedPolicy {
        RestrictedPolicy::new(4 * 64, &[1, 8, 64], 1, Some(64))
    }

    fn unclustered() -> RestrictedPolicy {
        RestrictedPolicy::new(4 * 64, &[1, 8, 64], 1, None)
    }

    #[test]
    fn construction_shapes() {
        assert_eq!(clustered().region_count(), 4);
        assert_eq!(unclustered().region_count(), 1);
    }

    #[test]
    fn grow_policy_ladders_up() {
        let mut p: RestrictedPolicy = RestrictedPolicy::new(1 << 14, &[1, 8, 64], 1, None);
        let f = p.create(&FileHints::default()).unwrap();
        // g=1: eight 1-unit blocks, then 8-unit blocks.
        p.extend(f, 8).unwrap();
        assert_eq!(p.file(f).unwrap().blocks.len(), 8);
        assert!(p.file(f).unwrap().blocks.iter().all(|&(_, c)| c == 0));
        // Next allocation must be class 1.
        p.extend(f, 1).unwrap();
        assert_eq!(p.file(f).unwrap().blocks.last().unwrap().1, 1);
        // After eight 8-unit blocks (64 units at class 1), class 2 follows.
        p.extend(f, 7 * 8 + 1).unwrap();
        assert_eq!(p.file(f).unwrap().blocks.last().unwrap().1, 2);
        p.check_invariants();
    }

    #[test]
    fn grow_factor_two_defers_promotion() {
        let mut p: RestrictedPolicy = RestrictedPolicy::new(1 << 14, &[1, 8, 64], 2, None);
        let f = p.create(&FileHints::default()).unwrap();
        p.extend(f, 16).unwrap(); // g=2 → sixteen class-0 blocks
        assert!(p.file(f).unwrap().blocks.iter().all(|&(_, c)| c == 0));
        assert_eq!(p.file(f).unwrap().blocks.len(), 16);
        p.extend(f, 1).unwrap();
        assert_eq!(p.file(f).unwrap().blocks.last().unwrap().1, 1);
        p.check_invariants();
    }

    #[test]
    fn sequential_extension_is_contiguous() {
        let mut p = unclustered();
        let f = p.create(&FileHints::default()).unwrap();
        p.extend(f, 4).unwrap();
        p.extend(f, 4).unwrap();
        // fd consumed unit 0; the data blocks run contiguously after it.
        assert_eq!(p.extent_count(f).unwrap(), 1, "perfectly sequential layout");
        p.check_invariants();
    }

    #[test]
    fn class_transition_creates_aligned_gap() {
        // The Figure 3 effect: when the class grows from 1 to 8 units, the
        // next block must be 8-aligned, so a gap (and a seek) appears.
        let mut p = unclustered();
        let f = p.create(&FileHints::default()).unwrap();
        p.extend(f, 8).unwrap(); // eight class-0 blocks: units 1..9 (0 is the fd)
        let tail_before = p.file_map(f).unwrap().next_sequential_unit().unwrap();
        assert_eq!(tail_before, 9);
        p.extend(f, 8).unwrap(); // class-1 block, preferred addr 16
        let last = *p.file_map(f).unwrap().extents().last().unwrap();
        assert_eq!(last.start % 8, 0, "class-1 block is 8-aligned");
        assert!(last.start >= 16, "rounded up past the unaligned tail");
        p.check_invariants();
    }

    #[test]
    fn fd_allocation_advances_regions_when_clustered() {
        let mut p = clustered();
        let a = p.create(&FileHints::default()).unwrap();
        let b = p.create(&FileHints::default()).unwrap();
        let c = p.create(&FileHints::default()).unwrap();
        let ra = p.region_of(p.file(a).unwrap().fd_addr);
        let rb = p.region_of(p.file(b).unwrap().fd_addr);
        let rc = p.region_of(p.file(c).unwrap().fd_addr);
        assert_ne!(ra, rb, "descriptors spread across regions");
        assert_ne!(rb, rc);
        assert_eq!(p.metadata_units(), 3);
        p.check_invariants();
    }

    #[test]
    fn file_blocks_cluster_near_descriptor() {
        let mut p = clustered();
        let a = p.create(&FileHints::default()).unwrap();
        let _b = p.create(&FileHints::default()).unwrap();
        p.extend(a, 4).unwrap();
        let fd_region = p.region_of(p.file(a).unwrap().fd_addr);
        for &(addr, _) in &p.file(a).unwrap().blocks {
            assert_eq!(p.region_of(addr), fd_region, "first block lands by the fd");
        }
        p.check_invariants();
    }

    #[test]
    fn spills_to_other_regions_when_optimal_full() {
        let mut p = clustered();
        let a = p.create(&FileHints::default()).unwrap();
        // Consume nearly everything; allocation must still succeed by
        // spilling across regions.
        p.extend(a, 200).unwrap();
        p.check_invariants();
        let util = 1.0 - p.free_units() as f64 / p.capacity_units() as f64;
        assert!(util > 0.75);
    }

    #[test]
    fn allocation_fails_only_when_no_block_available() {
        let mut p: RestrictedPolicy = RestrictedPolicy::new(64, &[1, 8], 1, None);
        let f = p.create(&FileHints::default()).unwrap();
        p.extend(f, 56).unwrap();
        // Remaining ≈ 7 units; class for next block is 1 (8 units) after
        // the ladder: blocks of 8 needed but only fragments remain → the
        // request fails, leaving external fragmentation.
        let err = p.extend(f, 8).unwrap_err();
        assert!(matches!(err, AllocError::DiskFull(_)));
        assert!(p.free_units() > 0, "space exists but not at the right size");
        p.check_invariants();
    }

    #[test]
    fn truncate_frees_whole_blocks_and_regresses_class() {
        let mut p = unclustered();
        let f = p.create(&FileHints::default()).unwrap();
        p.extend(f, 9).unwrap(); // 8 class-0 + 1 class-1
        assert_eq!(p.file(f).unwrap().blocks.last().unwrap().1, 1);
        let freed = p.truncate(f, 8).unwrap();
        assert_eq!(freed.iter().map(|e| e.len).sum::<u64>(), 8);
        // With the class-1 block gone, the grow policy is back at class 0...
        p.extend(f, 1).unwrap();
        // ...but the quota is still met (eight class-0 blocks) → class 1.
        assert_eq!(p.file(f).unwrap().blocks.last().unwrap().1, 1);
        p.check_invariants();
    }

    #[test]
    fn delete_restores_all_space_and_metadata() {
        let mut p = clustered();
        let before = p.free_units();
        let f = p.create(&FileHints::default()).unwrap();
        p.extend(f, 100).unwrap();
        p.delete(f).unwrap();
        assert_eq!(p.free_units(), before);
        assert_eq!(p.metadata_units(), 0);
        p.check_invariants();
    }

    #[test]
    fn failed_extend_is_atomic() {
        let mut p: RestrictedPolicy = RestrictedPolicy::new(32, &[1, 8], 1, None);
        let f = p.create(&FileHints::default()).unwrap();
        let free_before = p.free_units();
        let err = p.extend(f, 1000);
        assert!(err.is_err());
        assert_eq!(p.free_units(), free_before);
        assert_eq!(p.allocated_units(f).unwrap(), 0);
        p.check_invariants();
    }

    #[test]
    fn unclustered_still_prefers_contiguity() {
        // Room to spare: 20 one-unit extends climb the ladder all the way
        // to class-2 blocks (8 + 8·8 + 4·64 units).
        let mut p: RestrictedPolicy = RestrictedPolicy::new(4096, &[1, 8, 64], 1, None);
        let f = p.create(&FileHints::default()).unwrap();
        for _ in 0..20 {
            p.extend(f, 1).unwrap();
        }
        // Blocks within a class are laid out back to back; only the two
        // class transitions (Figure 3's alignment gaps) break the file.
        assert!(p.extent_count(f).unwrap() <= 3, "got {} extents", p.extent_count(f).unwrap());
        p.check_invariants();
    }
}
