//! Per-bookkeeping-region free-space management for the restricted buddy
//! policy (§4.2).
//!
//! "Free space is managed both by bit maps and free lists. A bit map is used
//! to record the state (free or used) of every maximum sized block in the
//! system. For smaller blocks, a circular doubly linked list of free blocks
//! is maintained in sorted order."
//!
//! A [`Region`] manages the blocks inside one bookkeeping region (32 MB in
//! the paper's clustered configurations; the whole disk when unclustered).
//! The largest block class is tracked with a [`FreeBitmap`]; each smaller
//! class uses an ordered set (the functional equivalent of the paper's
//! sorted circular list, with O(log n) instead of O(n) operations).

use crate::bitmap::FreeBitmap;
use crate::blockset::{BitmapBlockSet, FreeBlockSet};

/// Free-block bookkeeping for one region.
///
/// `sizes` (shared by all regions, in units, strictly ascending, each
/// dividing the next) defines the block classes. A block of class `c` is
/// always aligned to `sizes[c]` in the *global* address space — "a block of
/// size N always starts at an address which is an integral multiple [of] N".
#[derive(Debug, Clone)]
pub struct Region<S: FreeBlockSet = BitmapBlockSet> {
    base: u64,
    end: u64,
    /// Free lists for classes `0..top` (the top class lives in the bitmap).
    lists: Vec<S>,
    /// Bitmap over top-class slots covering `[base, end)`.
    top_bitmap: FreeBitmap,
    free_units: u64,
}

impl<S: FreeBlockSet> Region<S> {
    /// Builds a region spanning `[base, end)` with every block free.
    ///
    /// `base` must be aligned to the largest class size (true for the
    /// paper's 32 MB regions with a 16 MB top class, and trivially for the
    /// single unclustered region at base 0).
    pub fn new(base: u64, end: u64, sizes: &[u64]) -> Self {
        assert!(!sizes.is_empty() && base < end);
        // simlint::allow(r3, "non-emptiness asserted on the previous line")
        let top = *sizes.last().unwrap_or_else(|| unreachable!("asserted non-empty above"));
        assert_eq!(base % top, 0, "region base must be aligned to the top block class");
        let top_slots = ((end - base) / top) as usize;
        let mut region = Region {
            base,
            end,
            lists: (0..sizes.len() - 1).map(|c| S::new(base, end, sizes[c])).collect(),
            top_bitmap: FreeBitmap::new(top_slots),
            free_units: 0,
        };
        // Greedy seeding: at each address take the largest class that is
        // aligned and fits.
        let mut addr = base;
        'outer: while addr < end {
            for c in (0..sizes.len()).rev() {
                if addr.is_multiple_of(sizes[c]) && addr + sizes[c] <= end {
                    region.insert(sizes, c, addr);
                    addr += sizes[c];
                    continue 'outer;
                }
            }
            // Remainder smaller than the smallest class: unusable slack.
            break;
        }
        region
    }

    /// First unit of the region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// One-past-the-end unit.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Free units in this region.
    pub fn free_units(&self) -> u64 {
        self.free_units
    }

    /// Whether `addr` falls inside this region.
    pub fn contains(&self, addr: u64) -> bool {
        (self.base..self.end).contains(&addr)
    }

    fn top_class(&self, sizes: &[u64]) -> usize {
        sizes.len() - 1
    }

    fn slot(&self, sizes: &[u64], addr: u64) -> usize {
        ((addr - self.base) / sizes[self.top_class(sizes)]) as usize
    }

    fn slot_addr(&self, sizes: &[u64], slot: usize) -> u64 {
        self.base + slot as u64 * sizes[self.top_class(sizes)]
    }

    /// Whether any block of exactly class `c` is free.
    pub fn has_free(&self, sizes: &[u64], c: usize) -> bool {
        if c == self.top_class(sizes) {
            self.top_bitmap.free_count() > 0
        } else {
            !self.lists[c].is_empty()
        }
    }

    /// Whether any block of a class strictly larger than `c` is free —
    /// "adequate contiguous space" for a split.
    pub fn has_larger(&self, sizes: &[u64], c: usize) -> bool {
        (c + 1..sizes.len()).any(|k| self.has_free(sizes, k))
    }

    /// Inserts a free block without coalescing (seeding / split remainders).
    fn insert(&mut self, sizes: &[u64], c: usize, addr: u64) {
        debug_assert!(self.contains(addr));
        debug_assert_eq!(addr % sizes[c], 0, "misaligned class-{c} block at {addr}");
        if c == self.top_class(sizes) {
            self.top_bitmap.set_free(self.slot(sizes, addr));
        } else {
            let fresh = self.lists[c].insert(addr);
            debug_assert!(fresh, "double insert of class-{c} block at {addr}");
        }
        self.free_units += sizes[c];
    }

    /// Removes a specific free block (must be present).
    fn remove(&mut self, sizes: &[u64], c: usize, addr: u64) {
        if c == self.top_class(sizes) {
            self.top_bitmap.set_used(self.slot(sizes, addr));
        } else {
            let was = self.lists[c].remove(addr);
            debug_assert!(was, "removing absent class-{c} block at {addr}");
        }
        self.free_units -= sizes[c];
    }

    /// Number of free blocks of exactly class `c`.
    pub fn free_block_count(&self, sizes: &[u64], c: usize) -> u64 {
        if c == self.top_class(sizes) {
            self.top_bitmap.free_count() as u64
        } else {
            self.lists[c].len() as u64
        }
    }

    /// Whether the specific class-`c` block at `addr` is free.
    pub fn is_block_free(&self, sizes: &[u64], c: usize, addr: u64) -> bool {
        // A well-formed class-`c` block is aligned and lies fully inside
        // the region. The fit check matters for the top class on scaled
        // disks: the region length need not be a multiple of the top size,
        // and tail slack beyond the last full slot has no bitmap entry.
        if !self.contains(addr) || addr % sizes[c] != 0 || addr + sizes[c] > self.end {
            return false;
        }
        if c == self.top_class(sizes) {
            self.top_bitmap.is_free(self.slot(sizes, addr))
        } else {
            self.lists[c].contains(addr)
        }
    }

    /// Takes the class-`c` block at exactly `addr`, if free.
    pub fn take_exact(&mut self, sizes: &[u64], c: usize, addr: u64) -> bool {
        if self.is_block_free(sizes, c, addr) {
            self.remove(sizes, c, addr);
            true
        } else {
            false
        }
    }

    /// Takes a free class-`c` block, preferring the lowest address ≥
    /// `prefer` ("blocks are arranged sequentially, and the allocator
    /// attempts to allocate logically sequential blocks of a file to
    /// physically contiguous regions"), falling back to the lowest address
    /// in the region.
    pub fn take_near(&mut self, sizes: &[u64], c: usize, prefer: Option<u64>) -> Option<u64> {
        let addr = self.peek_near(sizes, c, prefer)?;
        self.remove(sizes, c, addr);
        Some(addr)
    }

    fn peek_near(&self, sizes: &[u64], c: usize, prefer: Option<u64>) -> Option<u64> {
        if c == self.top_class(sizes) {
            let from = prefer
                .filter(|&p| self.contains(p))
                .map(|p| self.slot(sizes, p.min(self.end - 1)))
                .unwrap_or(0);
            let slot = self
                .top_bitmap
                .first_free_at_or_after(from)
                .or_else(|| self.top_bitmap.first_free())?;
            Some(self.slot_addr(sizes, slot))
        } else {
            if let Some(p) = prefer {
                if let Some(a) = self.lists[c].first_at_or_after(p) {
                    return Some(a);
                }
            }
            self.lists[c].first()
        }
    }

    /// Splits a larger free block to produce one class-`c` block.
    ///
    /// Chooses the smallest larger class with a free block (preferring the
    /// block at or after `prefer`), carves out the child containing
    /// `prefer` when possible (else the first child), and returns the
    /// resulting block's address. Split remainders go onto the free lists —
    /// "the remaining space is linked into the free lists for the
    /// appropriate sized blocks".
    pub fn split_for(&mut self, sizes: &[u64], c: usize, prefer: Option<u64>) -> Option<u64> {
        let source_class = (c + 1..sizes.len()).find(|&k| self.has_free(sizes, k))?;
        // Prefer the larger block containing the preferred address.
        let container = prefer.map(|p| p - p % sizes[source_class]);
        let addr = container
            .filter(|&a| self.is_block_free(sizes, source_class, a))
            .or_else(|| self.peek_near(sizes, source_class, prefer))?;
        self.remove(sizes, source_class, addr);
        let mut cur_class = source_class;
        let mut cur_addr = addr;
        while cur_class > c {
            let child = sizes[cur_class - 1];
            let nchildren = sizes[cur_class] / child;
            let chosen = match prefer {
                Some(p) if (cur_addr..cur_addr + sizes[cur_class]).contains(&p) => {
                    cur_addr + (p - cur_addr) / child * child
                }
                _ => cur_addr,
            };
            for k in 0..nchildren {
                let a = cur_addr + k * child;
                if a != chosen {
                    self.insert(sizes, cur_class - 1, a);
                }
            }
            cur_addr = chosen;
            cur_class -= 1;
        }
        Some(cur_addr)
    }

    /// Returns a class-`c` block to the region, coalescing complete parent
    /// blocks upward — "these allocation policies attempt to coalesce
    /// buddies whenever possible".
    pub fn free_block(&mut self, sizes: &[u64], c: usize, addr: u64) {
        self.insert(sizes, c, addr);
        let mut c = c;
        let mut addr = addr;
        while c + 1 < sizes.len() {
            let parent = addr - addr % sizes[c + 1];
            if parent < self.base || parent + sizes[c + 1] > self.end {
                break;
            }
            let nchildren = sizes[c + 1] / sizes[c];
            let all_free = (0..nchildren).all(|k| {
                self.is_block_free(sizes, c, parent + k * sizes[c])
            });
            if !all_free {
                break;
            }
            for k in 0..nchildren {
                self.remove(sizes, c, parent + k * sizes[c]);
            }
            self.insert(sizes, c + 1, parent);
            addr = parent;
            c += 1;
        }
    }

    /// Debug invariant: every free block aligned, in bounds, disjoint;
    /// unit count consistent; complete parents always promoted.
    #[doc(hidden)]
    pub fn check_invariants(&self, sizes: &[u64]) {
        let mut spans: Vec<(u64, u64)> = Vec::new();
        let mut total = 0u64;
        for (c, list) in self.lists.iter().enumerate() {
            for a in list.addrs() {
                assert_eq!(a % sizes[c], 0);
                assert!(a >= self.base && a + sizes[c] <= self.end);
                spans.push((a, sizes[c]));
                total += sizes[c];
            }
        }
        let top = sizes.len() - 1;
        for slot in 0..self.top_bitmap.len() {
            if self.top_bitmap.is_free(slot) {
                let a = self.slot_addr(sizes, slot);
                spans.push((a, sizes[top]));
                total += sizes[top];
            }
        }
        assert_eq!(total, self.free_units, "region free-unit count out of sync");
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlapping free blocks in region");
        }
        // Maximal promotion: no complete free parent left unpromoted.
        for c in 0..sizes.len() - 1 {
            for a in self.lists[c].addrs() {
                let parent = a - a % sizes[c + 1];
                if parent >= self.base && parent + sizes[c + 1] <= self.end {
                    let nchildren = sizes[c + 1] / sizes[c];
                    let all = (0..nchildren).all(|k| self.is_block_free(sizes, c, parent + k * sizes[c]));
                    assert!(!all, "unpromoted complete parent at {parent} class {c}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIZES: &[u64] = &[1, 8, 64]; // 1K/8K/64K in 1 K units

    #[test]
    fn seeding_fills_with_top_blocks() {
        let r: Region = Region::new(0, 640, SIZES);
        assert_eq!(r.free_units(), 640);
        assert!(r.has_free(SIZES, 2));
        assert!(!r.has_free(SIZES, 0), "everything promoted to top blocks");
        r.check_invariants(SIZES);
    }

    #[test]
    fn seeding_handles_ragged_tail() {
        // 100 units: one 64-block, four 8-blocks, four 1-blocks.
        let r: Region = Region::new(0, 100, SIZES);
        assert_eq!(r.free_units(), 100);
        r.check_invariants(SIZES);
    }

    #[test]
    fn take_near_prefers_address_at_or_after() {
        let mut r: Region = Region::new(0, 640, SIZES);
        let a = r.take_near(SIZES, 2, Some(128)).unwrap();
        assert_eq!(a, 128);
        // Last block (576..640) then a repeat of the same preference: the
        // search wraps to the lowest free block.
        let b = r.take_near(SIZES, 2, Some(600)).unwrap();
        assert_eq!(b, 576);
        let c = r.take_near(SIZES, 2, Some(600)).unwrap();
        assert_eq!(c, 0, "wraps to lowest when nothing at/after prefer");
        r.check_invariants(SIZES);
    }

    #[test]
    fn split_descends_to_requested_class() {
        let mut r: Region = Region::new(0, 640, SIZES);
        assert!(!r.has_free(SIZES, 0));
        let a = r.split_for(SIZES, 0, None).unwrap();
        assert_eq!(a, 0);
        // Remainders: 7 class-0 blocks and 7 class-1 blocks.
        assert!(r.has_free(SIZES, 0));
        assert!(r.has_free(SIZES, 1));
        assert_eq!(r.free_units(), 640 - 1);
        r.check_invariants(SIZES);
    }

    #[test]
    fn split_carves_block_containing_preferred_address() {
        let mut r: Region = Region::new(0, 640, SIZES);
        let a = r.split_for(SIZES, 0, Some(70)).unwrap();
        assert_eq!(a, 70, "the child containing the preferred unit");
        r.check_invariants(SIZES);
    }

    #[test]
    fn free_block_promotes_complete_parents() {
        let mut r: Region = Region::new(0, 640, SIZES);
        // Split a top block fully into class-0 pieces.
        let mut taken = Vec::new();
        for _ in 0..64 {
            let a = r
                .take_near(SIZES, 0, None)
                .or_else(|| r.split_for(SIZES, 0, None))
                .unwrap();
            taken.push(a);
        }
        assert_eq!(r.free_units(), 640 - 64);
        for a in taken {
            r.free_block(SIZES, 0, a);
        }
        assert_eq!(r.free_units(), 640);
        assert!(!r.has_free(SIZES, 0), "all coalesced back to top blocks");
        assert!(!r.has_free(SIZES, 1));
        r.check_invariants(SIZES);
    }

    #[test]
    fn ragged_tail_probe_is_not_free_and_does_not_panic() {
        // 100 units: the top-class grid has one slot (0..64); 64..100 is
        // seeded as smaller blocks. Probing the top-aligned address 64 —
        // inside the region but past the last full top slot — used to walk
        // off the bitmap; it must simply report "not free".
        let mut r: Region = Region::new(0, 100, SIZES);
        assert!(!r.is_block_free(SIZES, 2, 64));
        assert!(!r.is_block_free(SIZES, 1, 70), "misaligned class-1 probe");
        // The original failure path: a split preferring an address in the
        // ragged tail probes the containing top block first.
        let a = r.split_for(SIZES, 0, Some(65));
        assert!(a.is_some());
        r.check_invariants(SIZES);
    }

    #[test]
    fn take_exact_only_takes_free_blocks() {
        let mut r: Region = Region::new(0, 640, SIZES);
        assert!(r.take_exact(SIZES, 2, 64));
        assert!(!r.take_exact(SIZES, 2, 64), "already taken");
        assert!(!r.take_exact(SIZES, 0, 64), "not free at that class");
        r.check_invariants(SIZES);
    }

    #[test]
    fn nonzero_base_regions_work() {
        let mut r: Region = Region::new(640, 1280, SIZES);
        let a = r.take_near(SIZES, 2, None).unwrap();
        assert_eq!(a, 640);
        assert!(r.contains(700));
        assert!(!r.contains(100));
        r.free_block(SIZES, 2, a);
        assert_eq!(r.free_units(), 640);
        r.check_invariants(SIZES);
    }

    #[test]
    fn has_larger_reports_split_potential() {
        let mut r: Region = Region::new(0, 64, SIZES);
        assert!(r.has_larger(SIZES, 0));
        assert!(!r.has_larger(SIZES, 2));
        let _ = r.take_near(SIZES, 2, None).unwrap();
        assert!(!r.has_larger(SIZES, 0), "nothing left at all");
    }

    #[test]
    fn single_class_region_uses_bitmap_only() {
        let sizes = &[4u64];
        let mut r: Region = Region::new(0, 40, sizes);
        assert_eq!(r.free_units(), 40);
        let a = r.take_near(sizes, 0, None).unwrap();
        assert_eq!(a, 0);
        r.free_block(sizes, 0, a);
        r.check_invariants(sizes);
    }
}
