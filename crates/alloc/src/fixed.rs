//! The fixed-block baseline (§5; §1's description of the UNIX V7 system).
//!
//! "We compare all the performance number[s] against a 4K and a 16K fixed
//! block system which does not bias towards automatic striping or
//! contiguous layout."
//!
//! Free blocks live on a free list; allocation pops the head and frees push
//! the head — exactly the V7 behaviour that makes the layout age: "as file
//! systems age, logically sequential blocks within a file get spread across
//! the entire disk". A fresh list is address-ordered (a newly built file
//! system), so early allocations are accidentally contiguous; churn then
//! scrambles it. Set `pre_age` to start from an already-scrambled list.

use crate::filemap::FileMap;
use crate::policy::Policy;
use crate::types::{AllocError, Extent, FileHints, FileId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::VecDeque;

/// One file's state under the fixed-block policy.
#[derive(Debug, Clone, Default)]
struct FFile {
    map: FileMap,
}

/// The fixed-block policy.
#[derive(Debug, Clone)]
pub struct FixedPolicy {
    block_units: u64,
    free_list: VecDeque<u64>,
    capacity: u64,
    files: Vec<Option<FFile>>,
    free_slots: Vec<u32>,
}

impl FixedPolicy {
    /// Builds the policy with blocks of `block_units`. When `pre_age` is
    /// set the free list starts shuffled (seeded by `seed`) instead of
    /// address-ordered.
    pub fn new(capacity_units: u64, block_units: u64, pre_age: bool, seed: u64) -> Self {
        assert!(block_units > 0);
        let nblocks = capacity_units / block_units;
        assert!(nblocks > 0, "capacity below one block");
        let mut blocks: Vec<u64> = (0..nblocks).map(|i| i * block_units).collect();
        if pre_age {
            blocks.shuffle(&mut SmallRng::seed_from_u64(seed));
        }
        FixedPolicy {
            block_units,
            free_list: blocks.into(),
            // Capacity rounded down to whole blocks; any remainder is
            // permanently unusable slack and excluded from accounting.
            capacity: nblocks * block_units,
            files: Vec::new(),
            free_slots: Vec::new(),
        }
    }

    /// Block size in units.
    pub fn block_units(&self) -> u64 {
        self.block_units
    }

    fn file_mut(&mut self, id: FileId) -> Result<&mut FFile, AllocError> {
        self.files
            .get_mut(id.0 as usize)
            .and_then(|slot| slot.as_mut())
            .ok_or(AllocError::DeadFile(id))
    }
}

impl Policy for FixedPolicy {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn capacity_units(&self) -> u64 {
        self.capacity
    }

    fn free_units(&self) -> u64 {
        self.free_list.len() as u64 * self.block_units
    }

    fn frag_gauges(&self) -> crate::policy::FragGauges {
        // The free list's order is policy state (pop_front serves the next
        // block), so measure contiguity on a sorted copy.
        let mut addrs: Vec<u64> = self.free_list.iter().copied().collect();
        addrs.sort_unstable();
        let mut runs = 0u64;
        let mut largest_blocks = 0u64;
        let mut run_blocks = 0u64;
        let mut prev: Option<u64> = None;
        for &a in &addrs {
            match prev {
                Some(p) if a == p + self.block_units => run_blocks += 1,
                _ => {
                    runs += 1;
                    run_blocks = 1;
                }
            }
            largest_blocks = largest_blocks.max(run_blocks);
            prev = Some(a);
        }
        crate::policy::FragGauges {
            free_units: self.free_units(),
            free_extents: runs,
            largest_free_units: largest_blocks * self.block_units,
        }
    }

    fn create(&mut self, _hints: &FileHints) -> Result<FileId, AllocError> {
        let id = match self.free_slots.pop() {
            Some(slot) => {
                self.files[slot as usize] = Some(FFile::default());
                FileId(slot)
            }
            None => {
                let id = FileId::from_index(self.files.len())?;
                self.files.push(Some(FFile::default()));
                id
            }
        };
        Ok(id)
    }

    fn extend(&mut self, file: FileId, units: u64) -> Result<Vec<Extent>, AllocError> {
        debug_assert!(units > 0);
        let nblocks = units.div_ceil(self.block_units);
        if (self.free_list.len() as u64) < nblocks {
            return Err(AllocError::DiskFull(self.block_units));
        }
        let mut granted = Vec::with_capacity(nblocks as usize);
        for _ in 0..nblocks {
            // Length was checked above, so the list cannot run dry
            // mid-loop; stopping early would still be accounted correctly.
            let Some(addr) = self.free_list.pop_front() else { break };
            let e = Extent::new(addr, self.block_units);
            self.file_mut(file)?.map.push(e);
            granted.push(e);
        }
        Ok(granted)
    }

    fn truncate(&mut self, file: FileId, units: u64) -> Result<Vec<Extent>, AllocError> {
        let whole_blocks = units / self.block_units * self.block_units;
        if whole_blocks == 0 {
            return Ok(Vec::new());
        }
        let freed = self.file_mut(file)?.map.pop_back(whole_blocks);
        for e in &freed {
            // The map may have merged adjacent blocks; return them to the
            // list one block at a time, head-first (V7 behaviour).
            debug_assert_eq!(e.len % self.block_units, 0);
            let mut a = e.start;
            while a < e.end() {
                self.free_list.push_front(a);
                a += self.block_units;
            }
        }
        Ok(freed)
    }

    fn delete(&mut self, file: FileId) -> Result<u64, AllocError> {
        let mut f = self
            .files
            .get_mut(file.0 as usize)
            .and_then(|slot| slot.take())
            .ok_or(AllocError::DeadFile(file))?;
        let mut total = 0;
        for e in f.map.take_all() {
            total += e.len;
            let mut a = e.start;
            while a < e.end() {
                self.free_list.push_front(a);
                a += self.block_units;
            }
        }
        self.free_slots.push(file.0);
        Ok(total)
    }

    fn file_map(&self, file: FileId) -> Result<&FileMap, AllocError> {
        self.files
            .get(file.0 as usize)
            .and_then(|slot| slot.as_ref())
            .map(|f| &f.map)
            .ok_or(AllocError::DeadFile(file))
    }

    fn live_files(&self) -> Vec<FileId> {
        self.files
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_some())
            .filter_map(|(i, _)| FileId::from_index(i).ok())
            .collect()
    }

    fn allocation_count(&self, file: FileId) -> Result<usize, AllocError> {
        Ok((self.allocated_units(file)? / self.block_units) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> FixedPolicy {
        FixedPolicy::new(1024, 4, false, 0)
    }

    #[test]
    fn fresh_list_allocates_contiguously() {
        let mut p = policy();
        let f = p.create(&FileHints::default()).unwrap();
        p.extend(f, 16).unwrap();
        assert_eq!(p.extent_count(f).unwrap(), 1, "fresh free list is address ordered");
        assert_eq!(p.allocated_units(f).unwrap(), 16);
        p.check_invariants();
    }

    #[test]
    fn requests_round_up_to_blocks() {
        let mut p = policy();
        let f = p.create(&FileHints::default()).unwrap();
        p.extend(f, 5).unwrap();
        assert_eq!(p.allocated_units(f).unwrap(), 8, "two 4-unit blocks");
        p.check_invariants();
    }

    #[test]
    fn churn_scrambles_layout() {
        let mut p = policy();
        // Interleave two files, delete one, then allocate a third: its
        // blocks come from the scattered holes head-first.
        let a = p.create(&FileHints::default()).unwrap();
        let b = p.create(&FileHints::default()).unwrap();
        for _ in 0..20 {
            p.extend(a, 4).unwrap();
            p.extend(b, 4).unwrap();
        }
        p.delete(a).unwrap();
        let c = p.create(&FileHints::default()).unwrap();
        p.extend(c, 40).unwrap();
        assert!(p.extent_count(c).unwrap() > 1, "aged layout is discontiguous");
        p.check_invariants();
    }

    #[test]
    fn pre_aged_list_is_scrambled_and_deterministic() {
        let mut p1 = FixedPolicy::new(1024, 4, true, 9);
        let mut p2 = FixedPolicy::new(1024, 4, true, 9);
        let f1 = p1.create(&FileHints::default()).unwrap();
        let f2 = p2.create(&FileHints::default()).unwrap();
        p1.extend(f1, 64).unwrap();
        p2.extend(f2, 64).unwrap();
        assert_eq!(p1.file_map(f1).unwrap().extents(), p2.file_map(f2).unwrap().extents());
        assert!(p1.extent_count(f1).unwrap() > 2, "shuffled list scatters blocks");
    }

    #[test]
    fn truncate_frees_whole_blocks_only() {
        let mut p = policy();
        let f = p.create(&FileHints::default()).unwrap();
        p.extend(f, 16).unwrap();
        assert!(p.truncate(f, 3).unwrap().is_empty(), "less than a block");
        let freed = p.truncate(f, 9).unwrap();
        assert_eq!(freed.iter().map(|e| e.len).sum::<u64>(), 8);
        assert_eq!(p.allocated_units(f).unwrap(), 8);
        p.check_invariants();
    }

    #[test]
    fn freed_blocks_are_reused_head_first() {
        let mut p = policy();
        let a = p.create(&FileHints::default()).unwrap();
        p.extend(a, 4).unwrap();
        let freed = p.truncate(a, 4).unwrap();
        let addr = freed[0].start;
        let b = p.create(&FileHints::default()).unwrap();
        p.extend(b, 4).unwrap();
        assert_eq!(p.file_map(b).unwrap().extents()[0].start, addr, "LIFO reuse");
    }

    #[test]
    fn disk_full_is_clean() {
        let mut p = FixedPolicy::new(16, 4, false, 0);
        let f = p.create(&FileHints::default()).unwrap();
        p.extend(f, 16).unwrap();
        let err = p.extend(f, 1).unwrap_err();
        assert!(matches!(err, AllocError::DiskFull(4)));
        assert_eq!(p.free_units(), 0);
        p.check_invariants();
    }

    #[test]
    fn capacity_rounds_down_to_blocks() {
        let p = FixedPolicy::new(10, 4, false, 0);
        assert_eq!(p.capacity_units(), 8);
        assert_eq!(p.free_units(), 8);
    }
}
