//! A BSD Fast File System–style baseline: fixed blocks plus fragments.
//!
//! §1 of the paper singles FFS out as "an evolutionary step from the simple
//! fixed block system": "Files are composed of a number of fixed sized
//! 'blocks' and a few smaller 'fragments'. In this way, tiny files may be
//! composed of fragments, thus avoiding excessive internal fragmentation.
//! At the same time, the larger block size (usually on the order of 8K or
//! 16K) … allows more data to be transferred for each seek" \[MCKU84\].
//!
//! The paper's §5 comparison uses plain fixed-block baselines; this policy
//! is provided as an *extension* so the intro's three-way story — V7 fixed
//! block vs FFS vs multiblock — can be measured (see
//! `ablations::run_ffs_comparison`).
//!
//! Model: the disk is divided into cylinder groups. A file holds whole
//! blocks plus at most one *tail* of 1..blocks_per_frag−1 contiguous
//! fragments carved from a fragmented block, exactly the FFS invariant.
//! Allocation prefers the file's current group and physically sequential
//! placement (standing in for FFS's rotational-layout optimization).

use crate::blockset::{BitmapBlockSet, FreeBlockSet};
use crate::filemap::FileMap;
use crate::policy::Policy;
use crate::types::{AllocError, Extent, FileHints, FileId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// FFS-style policy parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FfsConfig {
    /// Full block size in bytes (8 KB in classic FFS).
    pub block_bytes: u64,
    /// Fragment size in bytes (1 KB in classic FFS; must divide the block).
    pub fragment_bytes: u64,
    /// Cylinder-group size in bytes.
    pub group_bytes: u64,
}

impl Default for FfsConfig {
    fn default() -> Self {
        FfsConfig {
            block_bytes: 8 * 1024,
            fragment_bytes: 1024,
            group_bytes: 4 * 1024 * 1024,
        }
    }
}

/// Per-group index of fragmented blocks, bucketed by the length of each
/// block's longest contiguous free-fragment run.
///
/// `buckets[l]` holds the addresses of fragmented blocks whose longest
/// free run is exactly `l` fragments (bucket 0: fully-used fragmented
/// blocks). `alloc_frags` asks for "the lowest-addressed block with a free
/// run of ≥ n fragments"; the index answers with one `first()` probe per
/// qualifying bucket — O(frags_per_block · log blocks) — instead of a
/// linear scan over every fragmented block in the group. It is maintained
/// incrementally on every fragment allocation, fragment free, and
/// whole-block promotion/demotion, and is deliberately backend-independent
/// (plain `BTreeSet`s) so `FfsPolicy<BitmapBlockSet>` and
/// `FfsPolicy<BTreeBlockSet>` stay decision-identical by construction.
#[derive(Debug, Clone, Default)]
struct FragIndex {
    buckets: Vec<BTreeSet<u64>>,
}

impl FragIndex {
    fn new(frags_per_block: u64) -> Self {
        FragIndex { buckets: vec![BTreeSet::new(); frags_per_block as usize + 1] }
    }

    /// Registers `addr` under longest-run `run`.
    fn insert(&mut self, addr: u64, run: u64) {
        let fresh = self.buckets[run as usize].insert(addr);
        debug_assert!(fresh, "frag index already holds block {addr}");
    }

    /// Drops `addr`, currently filed under longest-run `run`.
    fn remove(&mut self, addr: u64, run: u64) {
        let was = self.buckets[run as usize].remove(&addr);
        debug_assert!(was, "frag index lost track of block {addr} (run {run})");
    }

    /// Moves `addr` between run buckets after its fragment bitmap changed.
    fn update(&mut self, addr: u64, old_run: u64, new_run: u64) {
        if old_run != new_run {
            self.remove(addr, old_run);
            self.insert(addr, new_run);
        }
    }

    /// Lowest-addressed block whose longest free run is at least `n` —
    /// exactly the block an address-ordered linear scan would pick.
    fn first_with_run(&self, n: u64) -> Option<u64> {
        self.buckets[n as usize..].iter().filter_map(|b| b.iter().next().copied()).min()
    }
}

/// One cylinder group's free-space bookkeeping.
#[derive(Debug, Clone)]
struct CylGroup<S: FreeBlockSet> {
    /// Addresses of fully free blocks.
    free_blocks: S,
    /// Fragmented blocks: address → bitmap of free fragments (bit i set =
    /// fragment i free). Blocks with all fragments free are promoted back
    /// to `free_blocks`.
    frag_blocks: BTreeMap<u64, u32>,
    /// Run-length index over `frag_blocks` (see [`FragIndex`]).
    frag_index: FragIndex,
    free_units: u64,
}

/// One file: whole blocks plus an optional fragment tail.
#[derive(Debug, Clone, Default)]
struct FfsFile {
    blocks: Vec<u64>,
    /// `(first fragment address, fragment count)` — always inside one block.
    tail: Option<(u64, u64)>,
    map: FileMap,
    group: usize,
}

/// The FFS-style block+fragment policy, generic over the free-block
/// container (bitmap by default; `BTreeBlockSet` for differential tests and
/// benchmark baselines — the policy logic is identical either way).
#[derive(Debug, Clone)]
pub struct FfsPolicy<S: FreeBlockSet = BitmapBlockSet> {
    block_units: u64,
    frags_per_block: u64,
    group_units: u64,
    groups: Vec<CylGroup<S>>,
    capacity: u64,
    files: Vec<Option<FfsFile>>,
    free_slots: Vec<u32>,
    /// Round-robin rotor for placing new files (FFS spreads inodes across
    /// cylinder groups).
    rotor: usize,
    /// When set, `alloc_frags` uses the pre-index linear scan over
    /// `frag_blocks` instead of the run-length index (which is still
    /// maintained). Differential-test and benchmark hook only.
    linear_scan: bool,
}

impl<S: FreeBlockSet> FfsPolicy<S> {
    /// Builds the policy over `capacity_units` with `block_units` per block
    /// (fragments are one disk unit) and `group_units` per cylinder group.
    pub fn new(capacity_units: u64, block_units: u64, group_units: u64) -> Self {
        assert!(block_units >= 2 && block_units <= 32, "FFS blocks are a few fragments");
        assert!(group_units >= block_units, "group must hold at least one block");
        let group_units = group_units / block_units * block_units;
        let capacity = capacity_units / block_units * block_units;
        assert!(capacity > 0, "capacity below one block");
        let mut groups = Vec::new();
        let mut base = 0;
        while base < capacity {
            let end = (base + group_units).min(capacity);
            let mut g = CylGroup {
                free_blocks: S::new(base, end, block_units),
                frag_blocks: BTreeMap::new(),
                frag_index: FragIndex::new(block_units),
                free_units: 0,
            };
            let mut a = base;
            while a + block_units <= end {
                g.free_blocks.insert(a);
                g.free_units += block_units;
                a += block_units;
            }
            groups.push(g);
            base = end;
        }
        FfsPolicy {
            block_units,
            frags_per_block: block_units,
            group_units,
            groups,
            capacity,
            files: Vec::new(),
            free_slots: Vec::new(),
            rotor: 0,
            linear_scan: false,
        }
    }

    /// Routes `alloc_frags` through the pre-index linear scan instead of
    /// the run-length index (which stays maintained either way). The two
    /// strategies are decision-identical by construction; the differential
    /// proptests in `tests/frag_equiv.rs` and the `alloc_bench` baseline
    /// flip this on to prove/measure it.
    #[doc(hidden)]
    pub fn set_linear_scan(&mut self, linear: bool) {
        self.linear_scan = linear;
    }

    /// Test-only invariant check: the run-length index lists exactly the
    /// fragmented blocks of each group, each filed under its true longest
    /// free-run length.
    #[doc(hidden)]
    pub fn check_frag_index(&self) {
        for (gi, g) in self.groups.iter().enumerate() {
            let mut indexed = 0usize;
            for (run, bucket) in g.frag_index.buckets.iter().enumerate() {
                for &addr in bucket {
                    let bm = g.frag_blocks.get(&addr).copied();
                    assert_eq!(
                        bm.map(longest_run),
                        Some(run as u64),
                        "group {gi}: block {addr} missing or filed under the wrong run bucket"
                    );
                    indexed += 1;
                }
            }
            assert_eq!(indexed, g.frag_blocks.len(), "group {gi}: index/map size mismatch");
        }
    }

    /// Builds from the byte-based config.
    pub fn from_config(capacity_units: u64, unit_bytes: u64, cfg: &FfsConfig) -> Self {
        assert_eq!(
            cfg.fragment_bytes, unit_bytes,
            "the disk unit is the fragment (the minimum transfer unit)"
        );
        let block_units = (cfg.block_bytes / unit_bytes).max(2);
        let group_units = (cfg.group_bytes / unit_bytes).max(block_units);
        Self::new(capacity_units, block_units, group_units)
    }

    fn group_of(&self, addr: u64) -> usize {
        ((addr / self.group_units) as usize).min(self.groups.len() - 1)
    }

    fn file(&self, id: FileId) -> Result<&FfsFile, AllocError> {
        self.files
            .get(id.0 as usize)
            .and_then(|slot| slot.as_ref())
            .ok_or(AllocError::DeadFile(id))
    }

    fn file_mut(&mut self, id: FileId) -> Result<&mut FfsFile, AllocError> {
        self.files
            .get_mut(id.0 as usize)
            .and_then(|slot| slot.as_mut())
            .ok_or(AllocError::DeadFile(id))
    }

    /// Takes a fully free block, preferring `prefer`'s exact address, then
    /// the lowest address ≥ `prefer` in the preferred group, then any group
    /// (scanning from the preferred one).
    fn alloc_block(&mut self, group: usize, prefer: Option<u64>) -> Option<u64> {
        if let Some(p) = prefer {
            let g = self.group_of(p.min(self.capacity - 1));
            if self.groups[g].free_blocks.remove(p) {
                self.groups[g].free_units -= self.block_units;
                return Some(p);
            }
        }
        let n = self.groups.len();
        for k in 0..n {
            let gi = (group + k) % n;
            let pick = {
                let g = &self.groups[gi];
                prefer
                    .and_then(|p| g.free_blocks.first_at_or_after(p))
                    .or_else(|| g.free_blocks.first())
            };
            if let Some(a) = pick {
                self.groups[gi].free_blocks.remove(a);
                self.groups[gi].free_units -= self.block_units;
                return Some(a);
            }
        }
        None
    }

    fn free_block(&mut self, addr: u64) {
        let gi = self.group_of(addr);
        let fresh = self.groups[gi].free_blocks.insert(addr);
        debug_assert!(fresh, "double free of block {addr}");
        self.groups[gi].free_units += self.block_units;
    }

    /// Allocates `n` *contiguous* fragments (1 ≤ n < frags_per_block) from a
    /// fragmented block in (preferably) `group`, breaking a free block when
    /// no fragmented block has room — exactly FFS's fragment policy.
    ///
    /// `Ok(None)` is the disk-full outcome. `Err(CorruptState)` means the
    /// run-length index and the fragment map disagreed — a library bug,
    /// reported instead of panicking (simlint r3).
    fn alloc_frags(&mut self, group: usize, n: u64) -> Result<Option<u64>, AllocError> {
        debug_assert!(n >= 1 && n < self.frags_per_block);
        let fpb = self.frags_per_block;
        let total = self.groups.len();
        for k in 0..total {
            let gi = (group + k) % total;
            // The lowest-addressed fragmented block with a contiguous free
            // run of n fragments. The run-length index answers with one
            // probe per qualifying bucket; the pre-index linear scan (kept
            // for the differential tests and the benchmark baseline) walks
            // every block. A block has a free run of n iff its longest run
            // is ≥ n, and both strategies take the lowest qualifying
            // address, so they pick the same block — and `free_run` then
            // picks the same offset inside it.
            let found = if self.linear_scan {
                self.groups[gi]
                    .frag_blocks
                    .iter()
                    .find_map(|(&addr, &bitmap)| free_run(bitmap, fpb, n).map(|off| (addr, off)))
            } else {
                match self.groups[gi].frag_index.first_with_run(n) {
                    Some(addr) => {
                        let &bitmap = self.groups[gi]
                            .frag_blocks
                            .get(&addr)
                            .ok_or(AllocError::CorruptState)?;
                        let off = free_run(bitmap, fpb, n).ok_or(AllocError::CorruptState)?;
                        Some((addr, off))
                    }
                    None => None,
                }
            };
            if let Some((addr, off)) = found {
                let Some(bm) = self.groups[gi].frag_blocks.get_mut(&addr) else {
                    debug_assert!(false, "block {addr} vanished from its fragment map");
                    return Err(AllocError::CorruptState);
                };
                let old_run = longest_run(*bm);
                *bm &= !(run_mask(off, n));
                let new_run = longest_run(*bm);
                self.groups[gi].frag_index.update(addr, old_run, new_run);
                self.groups[gi].free_units -= n;
                return Ok(Some(addr + off));
            }
        }
        // Break a free block into fragments.
        let Some(addr) = self.alloc_block(group, None) else {
            return Ok(None);
        };
        let gi = self.group_of(addr);
        // Mark the block fragmented: first n fragments used, rest free.
        let full: u32 = full_mask(fpb);
        let bitmap = full & !run_mask(0, n);
        self.groups[gi].frag_blocks.insert(addr, bitmap);
        self.groups[gi].frag_index.insert(addr, longest_run(bitmap));
        // alloc_block already subtracted a whole block; give back the
        // unused fragments.
        self.groups[gi].free_units += self.block_units - n;
        Ok(Some(addr))
    }

    /// Returns fragments to their block, promoting the block back to the
    /// free list when the last fragment comes home. `Err(CorruptState)`
    /// means the address did not belong to a fragmented block — a library
    /// bug, reported instead of panicking (simlint r3).
    fn free_frags(&mut self, addr: u64, n: u64) -> Result<(), AllocError> {
        let block = addr / self.block_units * self.block_units;
        let off = addr - block;
        let gi = self.group_of(block);
        let Some(bm) = self.groups[gi].frag_blocks.get_mut(&block) else {
            debug_assert!(false, "freeing fragments of a non-fragmented block {block}");
            return Err(AllocError::CorruptState);
        };
        debug_assert_eq!(*bm & run_mask(off, n), 0, "double free of fragments");
        let old_run = longest_run(*bm);
        *bm |= run_mask(off, n);
        let new_bitmap = *bm;
        self.groups[gi].free_units += n;
        if new_bitmap == full_mask(self.frags_per_block) {
            // All fragments free: promote back to a full block.
            self.groups[gi].frag_blocks.remove(&block);
            self.groups[gi].frag_index.remove(block, old_run);
            self.groups[gi].free_units -= self.block_units;
            self.free_block(block);
        } else {
            self.groups[gi].frag_index.update(block, old_run, longest_run(new_bitmap));
        }
        Ok(())
    }

    /// Rebuilds the file's merged extent map from blocks + tail.
    fn rebuild_map(&mut self, id: FileId) -> Result<(), AllocError> {
        let (blocks, tail) = {
            let f = self.file(id)?;
            (f.blocks.clone(), f.tail)
        };
        let bu = self.block_units;
        let f = self.file_mut(id)?;
        f.map = FileMap::new();
        for b in blocks {
            f.map.push(Extent::new(b, bu));
        }
        if let Some((addr, n)) = tail {
            f.map.push(Extent::new(addr, n));
        }
        Ok(())
    }
}

/// Bitmap with the low `n` bits set. Fragment counts are ≤ 32 (asserted at
/// construction), so the mask is built in the u32 domain — no narrowing.
fn full_mask(n: u64) -> u32 {
    // simlint::allow(r3, "fragment counts are asserted <= 32 at construction; try_from cannot fail")
    let n = u32::try_from(n).unwrap_or_else(|_| unreachable!("fragment count {n} exceeds u32"));
    if n >= 32 {
        u32::MAX
    } else {
        (1u32 << n) - 1
    }
}

/// Bitmap covering fragments `[off, off + n)`.
fn run_mask(off: u64, n: u64) -> u32 {
    // simlint::allow(r3, "fragment offsets are bounded by the <=32 fragment count")
    let off = u32::try_from(off).unwrap_or_else(|_| unreachable!("offset {off} exceeds u32"));
    full_mask(n) << off
}

/// First offset of a free run of `n` fragments in `bitmap`, if any.
fn free_run(bitmap: u32, frags_per_block: u64, n: u64) -> Option<u64> {
    (0..=frags_per_block.saturating_sub(n)).find(|&off| bitmap & run_mask(off, n) == run_mask(off, n))
}

/// Length of the longest contiguous run of set (free) bits in `bitmap`.
/// Classic bit trick: each `x &= x << 1` step shortens every run by one,
/// so the number of steps until zero is the longest run's length.
fn longest_run(bitmap: u32) -> u64 {
    let mut x = bitmap;
    let mut n = 0u64;
    while x != 0 {
        x &= x << 1;
        n += 1;
    }
    n
}

impl<S: FreeBlockSet> Policy for FfsPolicy<S> {
    fn name(&self) -> &'static str {
        "ffs"
    }

    fn capacity_units(&self) -> u64 {
        self.capacity
    }

    fn free_units(&self) -> u64 {
        self.groups.iter().map(|g| g.free_units).sum()
    }

    fn frag_gauges(&self) -> crate::policy::FragGauges {
        // A free run is either a whole free block or a maximal run of free
        // fragments inside a fragmented block (fragment runs never join
        // neighbouring blocks: FFS grants fragments from one block only).
        let mut free_extents = 0u64;
        let mut largest = 0u64;
        for g in &self.groups {
            if !g.free_blocks.is_empty() {
                free_extents += g.free_blocks.len() as u64;
                largest = largest.max(self.block_units);
            }
            for &bitmap in g.frag_blocks.values() {
                let mut run = 0u64;
                for off in 0..self.frags_per_block {
                    if bitmap & run_mask(off, 1) != 0 {
                        run += 1;
                        if run == 1 {
                            free_extents += 1;
                        }
                        largest = largest.max(run);
                    } else {
                        run = 0;
                    }
                }
            }
        }
        crate::policy::FragGauges {
            free_units: self.free_units(),
            free_extents,
            largest_free_units: largest,
        }
    }

    fn create(&mut self, _hints: &FileHints) -> Result<FileId, AllocError> {
        let group = self.rotor;
        self.rotor = (self.rotor + 1) % self.groups.len();
        let file = FfsFile { group, ..FfsFile::default() };
        let id = match self.free_slots.pop() {
            Some(slot) => {
                self.files[slot as usize] = Some(file);
                FileId(slot)
            }
            None => {
                let id = FileId::from_index(self.files.len())?;
                self.files.push(Some(file));
                id
            }
        };
        Ok(id)
    }

    fn extend(&mut self, file: FileId, units: u64) -> Result<Vec<Extent>, AllocError> {
        debug_assert!(units > 0);
        let bu = self.block_units;
        let (old_blocks, old_tail, group) = {
            let f = self.file(file)?;
            (f.blocks.len() as u64, f.tail, f.group)
        };
        let old_tail_units = old_tail.map_or(0, |(_, n)| n);
        let new_total = old_blocks * bu + old_tail_units + units;
        let want_blocks = new_total / bu;
        let want_tail = new_total % bu;

        // Allocate the new full blocks first (the first of them absorbs the
        // old tail's data, FFS-style), then the new tail, then release the
        // old tail — so a failure mid-way can roll back without having
        // destroyed anything.
        let mut new_blocks = Vec::new();
        let mut prefer = self.file(file)?.blocks.last().map(|&b| b + bu);
        for _ in old_blocks..want_blocks {
            match self.alloc_block(group, prefer) {
                Some(a) => {
                    prefer = Some(a + bu);
                    new_blocks.push(a);
                }
                None => {
                    for &a in &new_blocks {
                        self.free_block(a);
                    }
                    return Err(AllocError::DiskFull(bu));
                }
            }
        }
        let new_tail = if want_tail > 0 {
            match self.alloc_frags(group, want_tail) {
                Ok(Some(a)) => Some((a, want_tail)),
                no_grant => {
                    // Roll back the whole-block allocations on both the
                    // disk-full (`Ok(None)`) and corrupt-state outcomes so
                    // a failed extend never leaks blocks.
                    for &a in &new_blocks {
                        self.free_block(a);
                    }
                    return match no_grant {
                        Err(e) => Err(e),
                        _ => Err(AllocError::DiskFull(want_tail)),
                    };
                }
            }
        } else {
            None
        };
        if let Some((addr, n)) = old_tail {
            self.free_frags(addr, n)?;
        }
        {
            let f = self.file_mut(file)?;
            f.blocks.extend(&new_blocks);
            f.tail = new_tail;
        }
        self.rebuild_map(file)?;
        // Report the newly covered space: the new blocks plus the new tail
        // (the caller writes `units` new units; the map is authoritative).
        let mut granted: Vec<Extent> = new_blocks.iter().map(|&a| Extent::new(a, bu)).collect();
        if let Some((a, n)) = new_tail {
            granted.push(Extent::new(a, n));
        }
        Ok(granted)
    }

    fn truncate(&mut self, file: FileId, units: u64) -> Result<Vec<Extent>, AllocError> {
        let bu = self.block_units;
        let mut freed = Vec::new();
        let mut remaining = units;
        // Free the tail fragments first (they are the logical end).
        if let Some((addr, n)) = self.file(file)?.tail {
            if n <= remaining {
                self.free_frags(addr, n)?;
                self.file_mut(file)?.tail = None;
                freed.push(Extent::new(addr, n));
                remaining -= n;
            } else {
                // Shrink the tail in place: free its uppermost fragments.
                let keep = n - remaining;
                self.free_frags(addr + keep, remaining)?;
                self.file_mut(file)?.tail = Some((addr, keep));
                freed.push(Extent::new(addr + keep, remaining));
                remaining = 0;
            }
        }
        while remaining >= bu {
            let Some(addr) = self.file_mut(file)?.blocks.pop() else { break };
            self.free_block(addr);
            freed.push(Extent::new(addr, bu));
            remaining -= bu;
        }
        if !freed.is_empty() {
            self.rebuild_map(file)?;
        }
        Ok(freed)
    }

    fn delete(&mut self, file: FileId) -> Result<u64, AllocError> {
        let f = self
            .files
            .get_mut(file.0 as usize)
            .and_then(|slot| slot.take())
            .ok_or(AllocError::DeadFile(file))?;
        let mut total = 0;
        for addr in f.blocks {
            self.free_block(addr);
            total += self.block_units;
        }
        if let Some((addr, n)) = f.tail {
            self.free_frags(addr, n)?;
            total += n;
        }
        self.free_slots.push(file.0);
        Ok(total)
    }

    fn file_map(&self, file: FileId) -> Result<&FileMap, AllocError> {
        Ok(&self.file(file)?.map)
    }

    fn live_files(&self) -> Vec<FileId> {
        self.files
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_some())
            .filter_map(|(i, _)| FileId::from_index(i).ok())
            .collect()
    }

    fn allocation_count(&self, file: FileId) -> Result<usize, AllocError> {
        let f = self.file(file)?;
        Ok(f.blocks.len() + usize::from(f.tail.is_some()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 8-fragment blocks over 2048 units with 256-unit groups.
    fn policy() -> FfsPolicy {
        FfsPolicy::new(2048, 8, 256)
    }

    #[test]
    fn construction_shapes() {
        let p = policy();
        assert_eq!(p.capacity_units(), 2048);
        assert_eq!(p.free_units(), 2048);
        assert_eq!(p.groups.len(), 8);
    }

    #[test]
    fn tiny_files_live_in_fragments() {
        let mut p = policy();
        let f = p.create(&FileHints::default()).unwrap();
        p.extend(f, 3).unwrap();
        assert_eq!(p.allocated_units(f).unwrap(), 3, "three fragments, no whole block");
        assert_eq!(p.allocation_count(f).unwrap(), 1, "one fragment tail");
        p.check_invariants();
    }

    #[test]
    fn growth_promotes_fragments_into_blocks() {
        let mut p = policy();
        let f = p.create(&FileHints::default()).unwrap();
        p.extend(f, 3).unwrap();
        p.extend(f, 10).unwrap(); // total 13 = 1 block + 5 frags
        assert_eq!(p.allocated_units(f).unwrap(), 13);
        let fl = p.file(f).unwrap();
        assert_eq!(fl.blocks.len(), 1);
        assert_eq!(fl.tail.map(|(_, n)| n), Some(5));
        p.check_invariants();
    }

    #[test]
    fn block_multiple_files_have_no_tail() {
        let mut p = policy();
        let f = p.create(&FileHints::default()).unwrap();
        p.extend(f, 16).unwrap();
        assert!(p.file(f).unwrap().tail.is_none());
        assert_eq!(p.allocation_count(f).unwrap(), 2);
        p.check_invariants();
    }

    #[test]
    fn internal_fragmentation_is_sub_fragment_only() {
        // The FFS pitch: a population of tiny files wastes at most the
        // round-up to one fragment each (vs a whole 8-unit block under the
        // plain fixed policy).
        let mut p = policy();
        let mut allocated = 0;
        for _ in 0..64 {
            let f = p.create(&FileHints::default()).unwrap();
            p.extend(f, 3).unwrap();
            allocated += p.allocated_units(f).unwrap();
        }
        assert_eq!(allocated, 64 * 3, "fragments fit exactly");
        p.check_invariants();
    }

    #[test]
    fn fragments_share_blocks() {
        let mut p = policy();
        let a = p.create(&FileHints::default()).unwrap();
        let b = p.create(&FileHints::default()).unwrap();
        // Different rotor groups: force same group by filling... simplest:
        // both tails of 2; check total fragmented blocks ≤ 2.
        p.extend(a, 2).unwrap();
        p.extend(b, 2).unwrap();
        let frag_blocks: usize = p.groups.iter().map(|g| g.frag_blocks.len()).sum();
        assert!(frag_blocks <= 2);
        // Same-group sharing: create files until two tails land in one
        // group, then assert the group has a single fragmented block.
        p.check_invariants();
    }

    #[test]
    fn tail_fragments_are_contiguous() {
        let mut p = policy();
        for n in 1..8u64 {
            let f = p.create(&FileHints::default()).unwrap();
            p.extend(f, n).unwrap();
            let tail = p.file(f).unwrap().tail.expect("tail exists");
            assert_eq!(tail.1, n);
            assert_eq!(p.file_map(f).unwrap().extents().len(), 1, "one contiguous run");
        }
        p.check_invariants();
    }

    #[test]
    fn truncate_shrinks_tail_then_blocks() {
        let mut p = policy();
        let f = p.create(&FileHints::default()).unwrap();
        p.extend(f, 21).unwrap(); // 2 blocks + 5 frags
        let freed = p.truncate(f, 3).unwrap(); // tail 5 -> 2
        assert_eq!(freed.iter().map(|e| e.len).sum::<u64>(), 3);
        assert_eq!(p.file(f).unwrap().tail.map(|(_, n)| n), Some(2));
        let freed = p.truncate(f, 2 + 8).unwrap(); // rest of tail + one block
        assert_eq!(freed.iter().map(|e| e.len).sum::<u64>(), 10);
        assert_eq!(p.file(f).unwrap().blocks.len(), 1);
        assert!(p.file(f).unwrap().tail.is_none());
        p.check_invariants();
    }

    #[test]
    fn delete_restores_everything_and_promotes_fragments() {
        let mut p = policy();
        let before = p.free_units();
        let a = p.create(&FileHints::default()).unwrap();
        let b = p.create(&FileHints::default()).unwrap();
        p.extend(a, 13).unwrap();
        p.extend(b, 7).unwrap();
        p.delete(a).unwrap();
        p.delete(b).unwrap();
        assert_eq!(p.free_units(), before);
        let frag_blocks: usize = p.groups.iter().map(|g| g.frag_blocks.len()).sum();
        assert_eq!(frag_blocks, 0, "all fragment blocks promoted back");
        p.check_invariants();
    }

    #[test]
    fn sequential_growth_prefers_contiguity() {
        let mut p: FfsPolicy = FfsPolicy::new(2048, 8, 2048); // one group
        let f = p.create(&FileHints::default()).unwrap();
        for _ in 0..8 {
            p.extend(f, 8).unwrap();
        }
        assert_eq!(p.extent_count(f).unwrap(), 1, "blocks placed back to back");
        p.check_invariants();
    }

    #[test]
    fn disk_full_is_atomic() {
        let mut p: FfsPolicy = FfsPolicy::new(64, 8, 64);
        let f = p.create(&FileHints::default()).unwrap();
        p.extend(f, 60).unwrap(); // 7 blocks + 4 frags
        let free_before = p.free_units();
        assert!(p.extend(f, 64).is_err());
        assert_eq!(p.free_units(), free_before);
        p.check_invariants();
    }

    #[test]
    fn bitmap_helpers() {
        assert_eq!(full_mask(8), 0xFF);
        assert_eq!(run_mask(0, 3), 0b111);
        assert_eq!(run_mask(5, 2), 0b110_0000);
        assert_eq!(free_run(0xFF, 8, 3), Some(0));
        assert_eq!(free_run(0b1111_0000, 8, 3), Some(4));
        assert_eq!(free_run(0b0101_0101, 8, 2), None);
        assert_eq!(free_run(0, 8, 1), None);
    }

    #[test]
    fn longest_run_cases() {
        assert_eq!(longest_run(0), 0);
        assert_eq!(longest_run(0b1), 1);
        assert_eq!(longest_run(0b0101_0101), 1);
        assert_eq!(longest_run(0b0111_0011), 3);
        assert_eq!(longest_run(0xFF), 8);
        assert_eq!(longest_run(u32::MAX), 32);
        // free_run(bm, fpb, n) is Some iff longest_run(bm) >= n — the
        // equivalence the index relies on.
        for bm in [0u32, 0b1, 0b0101_0101, 0b0111_0011, 0b1110_0111, 0xFF] {
            for n in 1..8u64 {
                assert_eq!(free_run(bm, 8, n).is_some(), longest_run(bm) >= n, "bm={bm:b} n={n}");
            }
        }
    }

    #[test]
    fn frag_index_tracks_blocks_through_churn() {
        let mut p = policy();
        let mut files = Vec::new();
        for n in [1u64, 3, 5, 7, 2, 6, 4, 1, 3] {
            let f = p.create(&FileHints::default()).unwrap();
            p.extend(f, n).unwrap();
            files.push(f);
            p.check_frag_index();
        }
        for f in files.iter().step_by(2) {
            p.delete(*f).unwrap();
            p.check_frag_index();
        }
        for f in files.iter().skip(1).step_by(2) {
            p.truncate(*f, 1).unwrap();
            p.check_frag_index();
        }
    }

    #[test]
    fn linear_scan_matches_index() {
        // The same op stream through the indexed and linear strategies
        // produces identical grants (the heavyweight version lives in
        // tests/frag_equiv.rs).
        let run = |linear: bool| -> Vec<Vec<Extent>> {
            let mut p = policy();
            p.set_linear_scan(linear);
            let mut grants = Vec::new();
            let mut files = Vec::new();
            for n in [3u64, 5, 1, 7, 2, 6, 4, 3, 5, 1] {
                let f = p.create(&FileHints::default()).unwrap();
                grants.push(p.extend(f, n).unwrap());
                files.push(f);
            }
            for f in files.iter().step_by(3) {
                p.delete(*f).unwrap();
            }
            for n in [2u64, 4, 6] {
                let f = p.create(&FileHints::default()).unwrap();
                grants.push(p.extend(f, n).unwrap());
            }
            p.check_frag_index();
            grants
        };
        assert_eq!(run(false), run(true));
    }
}
