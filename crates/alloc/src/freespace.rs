//! Address-ordered, always-coalesced free-space map for extent systems.
//!
//! §4.3: "When an extent is freed, it is coalesced with its adjoining
//! extents if they are free." Two interchangeable backends implement the
//! [`FreeMap`] interface:
//!
//! * [`FreeSpaceMap`] (default) — a word-level [`FreeBitmap`] records the
//!   free/used state of every unit; maximal free runs are recovered with
//!   word scans (`trailing_zeros`/`leading_zeros`), while a
//!   `BTreeSet<(len, start)>` index answers best-fit and "largest free run"
//!   queries in O(log n).
//! * [`BTreeFreeSpaceMap`] — the original `BTreeMap<start, len>` run map,
//!   kept as the differential-testing reference and benchmark baseline.
//!
//! Both iterate runs lowest-address-first, so first-fit/best-fit decisions
//! are identical between backends.

use crate::bitmap::FreeBitmap;
use crate::types::Extent;
use serde::{Deserialize, Serialize, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;

/// The free-space interface the extent policy allocates through.
pub trait FreeMap: Debug + Clone + Send {
    /// An empty map (no free space).
    fn new() -> Self;
    /// A map with the whole range `[0, capacity)` free.
    fn with_capacity(capacity: u64) -> Self;
    /// Total free units.
    fn free_units(&self) -> u64;
    /// Number of distinct free runs.
    fn run_count(&self) -> usize;
    /// Length of the largest free run (0 when empty).
    fn largest_run(&self) -> u64;
    /// Returns a free run to the map, coalescing with neighbours.
    fn release(&mut self, ext: Extent);
    /// First-fit: carves `len` units from the lowest-addressed run that can
    /// hold them.
    fn allocate_first_fit(&mut self, len: u64) -> Option<Extent>;
    /// Best-fit: carves `len` units from the smallest run that can hold
    /// them (ties broken toward the lower address).
    fn allocate_best_fit(&mut self, len: u64) -> Option<Extent>;
    /// Allocates exactly `[start, start + len)` if entirely free.
    fn allocate_at(&mut self, start: u64, len: u64) -> Option<Extent>;
    /// True when `[start, start + len)` is entirely free.
    fn is_free(&self, start: u64, len: u64) -> bool;
    /// Every maximal free run in address order, collected. Used by
    /// checkpoint validation (never on the allocation hot path).
    fn collect_runs(&self) -> Vec<Extent>;
    /// Checkpoint snapshot of the map's state, when the backend supports
    /// checkpointing. The default reports `None` (unsupported).
    fn checkpoint_state(&self) -> Option<Value> {
        None
    }
    /// Replaces this map's state with a [`FreeMap::checkpoint_state`]
    /// snapshot, validating it first; on error the map is left unchanged.
    fn restore_state(&mut self, _snapshot: &Value) -> Result<(), String> {
        Err("this free-map backend does not support checkpointing".into())
    }
    /// Debug invariant check.
    fn check_invariants(&self);
}

/// Bitmap-backed coalesced free-extent map over a linear unit space.
///
/// The bitmap is the by-address truth (free runs are maximal runs of set
/// bits; coalescing is automatic); `by_len` registers every maximal run as
/// `(len, start)` for best-fit and largest-run queries and is kept in
/// lockstep by every mutation.
#[derive(Debug, Clone, Default)]
pub struct FreeSpaceMap {
    bits: FreeBitmap,
    by_len: BTreeSet<(u64, u64)>,
}

impl FreeSpaceMap {
    /// An empty map (no free space).
    pub fn new() -> Self {
        FreeSpaceMap::default()
    }

    /// A map with the whole range `[0, capacity)` free.
    pub fn with_capacity(capacity: u64) -> Self {
        let mut m = FreeSpaceMap::new();
        if capacity > 0 {
            m.bits.grow(capacity as usize);
            m.bits.set_range_free(0, capacity as usize);
            m.by_len.insert((capacity, 0));
        }
        m
    }

    /// Total free units.
    pub fn free_units(&self) -> u64 {
        self.bits.free_count() as u64
    }

    /// Number of distinct free runs.
    pub fn run_count(&self) -> usize {
        self.by_len.len()
    }

    /// Length of the largest free run (0 when empty).
    pub fn largest_run(&self) -> u64 {
        self.by_len.iter().next_back().map_or(0, |&(len, _)| len)
    }

    /// Iterates free runs in address order (bitmap scan).
    pub fn runs(&self) -> impl Iterator<Item = Extent> + '_ {
        let mut next = self.bits.first_free();
        std::iter::from_fn(move || {
            let start = next?;
            let end = self.bits.first_used_at_or_after(start).unwrap_or(self.bits.len());
            next = self.bits.first_free_at_or_after(end);
            Some(Extent::new(start as u64, (end - start) as u64))
        })
    }

    /// End (exclusive) of the maximal free run starting at or containing
    /// `i`.
    fn run_end(&self, i: usize) -> usize {
        self.bits.first_used_at_or_after(i).unwrap_or(self.bits.len())
    }

    /// Returns a free run to the map, coalescing with neighbours.
    ///
    /// The run must not overlap any existing free run (debug-asserted by
    /// the bitmap). Addresses past the current bitmap length extend it.
    pub fn release(&mut self, ext: Extent) {
        debug_assert!(ext.len > 0);
        let (start, len) = (ext.start as usize, ext.len as usize);
        if start + len > self.bits.len() {
            self.bits.grow(start + len);
        }
        let mut run_start = start;
        let mut run_end = start + len;
        // Coalesce with an abutting predecessor run.
        if start > 0 && self.bits.is_free(start - 1) {
            run_start = self.bits.free_run_start(start - 1);
            let was = self.by_len.remove(&((start - run_start) as u64, run_start as u64));
            debug_assert!(was, "by_len missing predecessor run at {run_start}");
        }
        // Coalesce with an abutting successor run.
        if start + len < self.bits.len() && self.bits.is_free(start + len) {
            run_end = self.run_end(start + len);
            let was = self.by_len.remove(&((run_end - (start + len)) as u64, (start + len) as u64));
            debug_assert!(was, "by_len missing successor run at {}", start + len);
        }
        self.bits.set_range_free(start, len);
        self.by_len.insert(((run_end - run_start) as u64, run_start as u64));
    }

    /// Carves the first `len` units from the maximal run
    /// `[run_start, run_end)`.
    fn carve(&mut self, run_start: usize, run_end: usize, len: usize) -> Option<Extent> {
        let was = self.by_len.remove(&((run_end - run_start) as u64, run_start as u64));
        debug_assert!(was, "by_len missing run at {run_start}");
        self.bits.set_range_used(run_start, len);
        if run_end > run_start + len {
            self.by_len.insert(((run_end - run_start - len) as u64, (run_start + len) as u64));
        }
        Some(Extent::new(run_start as u64, len as u64))
    }

    /// First-fit: carves `len` units from the lowest-addressed run that can
    /// hold them.
    pub fn allocate_first_fit(&mut self, len: u64) -> Option<Extent> {
        debug_assert!(len > 0);
        // The by-length index and the word scan are complementary: when few
        // runs qualify the index enumerates them all and the lowest start
        // wins outright; when many qualify the first fit sits close to the
        // front of the disk, so a bitmap scan capped by the index's best
        // candidate finds it in a handful of words. Either way the result
        // is the lowest-addressed qualifying run — identical to a pure
        // address-order search.
        const INDEX_BUDGET: usize = 64;
        let mut best: Option<(u64, u64)> = None; // (start, run_len)
        let mut exhausted = true;
        for (i, &(run_len, start)) in self.by_len.range((len, 0)..).enumerate() {
            if i == INDEX_BUDGET {
                exhausted = false;
                break;
            }
            if best.map_or(true, |(s, _)| start < s) {
                best = Some((start, run_len));
            }
        }
        // No qualifying run at all (also covers largest_run() < len).
        let (cand_start, cand_len) = best?;
        if !exhausted {
            if let Some(start) = self.bits.first_free_run_before(len as usize, cand_start as usize)
            {
                let end = self.run_end(start);
                return self.carve(start, end, len as usize);
            }
        }
        self.carve(cand_start as usize, (cand_start + cand_len) as usize, len as usize)
    }

    /// Best-fit: carves `len` units from the smallest run that can hold
    /// them (ties broken toward the lower address).
    pub fn allocate_best_fit(&mut self, len: u64) -> Option<Extent> {
        debug_assert!(len > 0);
        let &(run_len, start) = self.by_len.range((len, 0)..).next()?;
        self.carve(start as usize, (start + run_len) as usize, len as usize)
    }

    /// Allocates exactly `[start, start + len)` if that range is entirely
    /// free, e.g. for contiguity-preserving placement.
    pub fn allocate_at(&mut self, start: u64, len: u64) -> Option<Extent> {
        debug_assert!(len > 0);
        if !self.is_free(start, len) {
            return None;
        }
        let (start, len) = (start as usize, len as usize);
        let run_start = self.bits.free_run_start(start);
        let run_end = self.run_end(start);
        let was = self.by_len.remove(&((run_end - run_start) as u64, run_start as u64));
        debug_assert!(was, "by_len missing run at {run_start}");
        self.bits.set_range_used(start, len);
        if start > run_start {
            self.by_len.insert(((start - run_start) as u64, run_start as u64));
        }
        if run_end > start + len {
            self.by_len.insert(((run_end - start - len) as u64, (start + len) as u64));
        }
        Some(Extent::new(start as u64, len as u64))
    }

    /// True when `[start, start+len)` is entirely free.
    pub fn is_free(&self, start: u64, len: u64) -> bool {
        self.bits.free_in_range(start as usize, (start + len) as usize) as u64 == len
    }

    /// Debug invariant: the by_len index lists exactly the bitmap's maximal
    /// runs and the unit totals agree.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut total = 0u64;
        let mut n = 0usize;
        for run in self.runs() {
            assert!(run.len > 0, "zero-length run at {}", run.start);
            assert!(
                self.by_len.contains(&(run.len, run.start)),
                "missing len index for ({}, {})",
                run.start,
                run.len
            );
            total += run.len;
            n += 1;
        }
        assert_eq!(total, self.free_units(), "free_units out of sync");
        assert_eq!(self.by_len.len(), n, "index sizes differ");
    }
}

impl FreeMap for FreeSpaceMap {
    fn new() -> Self {
        FreeSpaceMap::new()
    }
    fn with_capacity(capacity: u64) -> Self {
        FreeSpaceMap::with_capacity(capacity)
    }
    fn free_units(&self) -> u64 {
        FreeSpaceMap::free_units(self)
    }
    fn run_count(&self) -> usize {
        FreeSpaceMap::run_count(self)
    }
    fn largest_run(&self) -> u64 {
        FreeSpaceMap::largest_run(self)
    }
    fn release(&mut self, ext: Extent) {
        FreeSpaceMap::release(self, ext)
    }
    fn allocate_first_fit(&mut self, len: u64) -> Option<Extent> {
        FreeSpaceMap::allocate_first_fit(self, len)
    }
    fn allocate_best_fit(&mut self, len: u64) -> Option<Extent> {
        FreeSpaceMap::allocate_best_fit(self, len)
    }
    fn allocate_at(&mut self, start: u64, len: u64) -> Option<Extent> {
        FreeSpaceMap::allocate_at(self, start, len)
    }
    fn is_free(&self, start: u64, len: u64) -> bool {
        FreeSpaceMap::is_free(self, start, len)
    }
    fn collect_runs(&self) -> Vec<Extent> {
        self.runs().collect()
    }
    fn checkpoint_state(&self) -> Option<Value> {
        // The by_len index is derived data; the bitmap alone is the truth.
        Some(self.bits.to_value())
    }
    fn restore_state(&mut self, snapshot: &Value) -> Result<(), String> {
        // FreeBitmap's deserializer validates word count, ghost bits, and
        // the popcount before handing anything back.
        let bits = FreeBitmap::from_value(snapshot).map_err(|e| e.to_string())?;
        self.bits = bits;
        let runs: Vec<(u64, u64)> = self.runs().map(|e| (e.len, e.start)).collect();
        self.by_len = runs.into_iter().collect();
        Ok(())
    }
    fn check_invariants(&self) {
        FreeSpaceMap::check_invariants(self)
    }
}

/// The original `BTreeMap`-backed coalesced free-extent map, kept as the
/// differential-testing reference and benchmark baseline for
/// [`FreeSpaceMap`].
#[derive(Debug, Clone, Default)]
pub struct BTreeFreeSpaceMap {
    by_addr: BTreeMap<u64, u64>,
    by_len: BTreeSet<(u64, u64)>,
    free_units: u64,
}

impl BTreeFreeSpaceMap {
    /// An empty map (no free space).
    pub fn new() -> Self {
        BTreeFreeSpaceMap::default()
    }

    /// A map with the whole range `[0, capacity)` free.
    pub fn with_capacity(capacity: u64) -> Self {
        let mut m = BTreeFreeSpaceMap::new();
        if capacity > 0 {
            m.insert_raw(0, capacity);
        }
        m
    }

    /// Total free units.
    pub fn free_units(&self) -> u64 {
        self.free_units
    }

    /// Number of distinct free runs.
    pub fn run_count(&self) -> usize {
        self.by_addr.len()
    }

    /// Length of the largest free run (0 when empty).
    pub fn largest_run(&self) -> u64 {
        self.by_len.iter().next_back().map_or(0, |&(len, _)| len)
    }

    /// Iterates free runs in address order.
    pub fn runs(&self) -> impl Iterator<Item = Extent> + '_ {
        self.by_addr.iter().map(|(&s, &l)| Extent::new(s, l))
    }

    fn insert_raw(&mut self, start: u64, len: u64) {
        self.by_addr.insert(start, len);
        self.by_len.insert((len, start));
        self.free_units += len;
    }

    fn remove_raw(&mut self, start: u64, len: u64) {
        let removed = self.by_addr.remove(&start);
        debug_assert_eq!(removed, Some(len));
        let was = self.by_len.remove(&(len, start));
        debug_assert!(was);
        self.free_units -= len;
    }

    /// Returns a free run to the map, coalescing with neighbours.
    ///
    /// The run must not overlap any existing free run (debug-asserted).
    pub fn release(&mut self, ext: Extent) {
        debug_assert!(ext.len > 0);
        let mut start = ext.start;
        let mut len = ext.len;
        // Coalesce with the predecessor if it abuts.
        if let Some((&p_start, &p_len)) = self.by_addr.range(..start).next_back() {
            debug_assert!(p_start + p_len <= start, "release overlaps predecessor");
            if p_start + p_len == start {
                self.remove_raw(p_start, p_len);
                start = p_start;
                len += p_len;
            }
        }
        // Coalesce with the successor if it abuts.
        if let Some((&n_start, &n_len)) = self.by_addr.range(ext.start..).next() {
            debug_assert!(ext.end() <= n_start, "release overlaps successor");
            if n_start == ext.end() {
                self.remove_raw(n_start, n_len);
                len += n_len;
            }
        }
        self.insert_raw(start, len);
    }

    /// First-fit: carves `len` units from the lowest-addressed run that can
    /// hold them.
    pub fn allocate_first_fit(&mut self, len: u64) -> Option<Extent> {
        debug_assert!(len > 0);
        // The address-ordered scan is O(runs) and on a fragmented disk most
        // oversized requests can't be satisfied at all; the by_len index
        // answers that in O(log n) before we walk anything.
        if self.largest_run() < len {
            return None;
        }
        let (start, run_len) = self
            .by_addr
            .iter()
            .find(|&(_, &l)| l >= len)
            .map(|(&s, &l)| (s, l))?;
        self.carve(start, run_len, len)
    }

    /// Best-fit: carves `len` units from the smallest run that can hold
    /// them (ties broken toward the lower address).
    pub fn allocate_best_fit(&mut self, len: u64) -> Option<Extent> {
        debug_assert!(len > 0);
        let &(run_len, start) = self.by_len.range((len, 0)..).next()?;
        self.carve(start, run_len, len)
    }

    /// Allocates exactly `[start, start + len)` if that range is entirely
    /// free, e.g. for contiguity-preserving placement.
    pub fn allocate_at(&mut self, start: u64, len: u64) -> Option<Extent> {
        debug_assert!(len > 0);
        let (&run_start, &run_len) = self.by_addr.range(..=start).next_back()?;
        if run_start + run_len < start + len {
            return None;
        }
        self.remove_raw(run_start, run_len);
        if start > run_start {
            self.insert_raw(run_start, start - run_start);
        }
        let tail = (run_start + run_len) - (start + len);
        if tail > 0 {
            self.insert_raw(start + len, tail);
        }
        Some(Extent::new(start, len))
    }

    /// True when `[start, start+len)` is entirely free.
    pub fn is_free(&self, start: u64, len: u64) -> bool {
        match self.by_addr.range(..=start).next_back() {
            Some((&run_start, &run_len)) => run_start + run_len >= start + len,
            None => false,
        }
    }

    fn carve(&mut self, run_start: u64, run_len: u64, len: u64) -> Option<Extent> {
        self.remove_raw(run_start, run_len);
        if run_len > len {
            self.insert_raw(run_start + len, run_len - len);
        }
        Some(Extent::new(run_start, len))
    }

    /// Debug invariant: runs are disjoint, sorted, non-adjacent (maximally
    /// coalesced) and the two indexes agree.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut prev_end: Option<u64> = None;
        let mut total = 0;
        for (&s, &l) in &self.by_addr {
            assert!(l > 0, "zero-length run at {s}");
            if let Some(pe) = prev_end {
                assert!(pe < s, "runs overlap or abut at {s} (prev end {pe})");
            }
            assert!(self.by_len.contains(&(l, s)), "missing len index for ({s}, {l})");
            prev_end = Some(s + l);
            total += l;
        }
        assert_eq!(total, self.free_units, "free_units out of sync");
        assert_eq!(self.by_len.len(), self.by_addr.len(), "index sizes differ");
    }
}

impl FreeMap for BTreeFreeSpaceMap {
    fn new() -> Self {
        BTreeFreeSpaceMap::new()
    }
    fn with_capacity(capacity: u64) -> Self {
        BTreeFreeSpaceMap::with_capacity(capacity)
    }
    fn free_units(&self) -> u64 {
        BTreeFreeSpaceMap::free_units(self)
    }
    fn run_count(&self) -> usize {
        BTreeFreeSpaceMap::run_count(self)
    }
    fn largest_run(&self) -> u64 {
        BTreeFreeSpaceMap::largest_run(self)
    }
    fn release(&mut self, ext: Extent) {
        BTreeFreeSpaceMap::release(self, ext)
    }
    fn allocate_first_fit(&mut self, len: u64) -> Option<Extent> {
        BTreeFreeSpaceMap::allocate_first_fit(self, len)
    }
    fn allocate_best_fit(&mut self, len: u64) -> Option<Extent> {
        BTreeFreeSpaceMap::allocate_best_fit(self, len)
    }
    fn allocate_at(&mut self, start: u64, len: u64) -> Option<Extent> {
        BTreeFreeSpaceMap::allocate_at(self, start, len)
    }
    fn is_free(&self, start: u64, len: u64) -> bool {
        BTreeFreeSpaceMap::is_free(self, start, len)
    }
    fn collect_runs(&self) -> Vec<Extent> {
        self.runs().collect()
    }
    fn check_invariants(&self) {
        BTreeFreeSpaceMap::check_invariants(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs the same scenario against both backends.
    fn on_both(scenario: impl Fn(&mut dyn FnMut() -> Box<dyn FreeMapDyn>)) {
        let mut make_bitmap = || Box::new(FreeSpaceMap::new()) as Box<dyn FreeMapDyn>;
        let mut make_btree = || Box::new(BTreeFreeSpaceMap::new()) as Box<dyn FreeMapDyn>;
        scenario(&mut make_bitmap);
        scenario(&mut make_btree);
    }

    /// Object-safe mirror of [`FreeMap`] for the dual-backend tests.
    trait FreeMapDyn {
        fn free_units(&self) -> u64;
        fn run_count(&self) -> usize;
        fn largest_run(&self) -> u64;
        fn release(&mut self, ext: Extent);
        fn allocate_first_fit(&mut self, len: u64) -> Option<Extent>;
        fn allocate_best_fit(&mut self, len: u64) -> Option<Extent>;
        fn allocate_at(&mut self, start: u64, len: u64) -> Option<Extent>;
        fn is_free(&self, start: u64, len: u64) -> bool;
        fn check_invariants(&self);
        fn seed_capacity(&mut self, capacity: u64);
    }

    impl<M: FreeMap> FreeMapDyn for M {
        fn free_units(&self) -> u64 {
            FreeMap::free_units(self)
        }
        fn run_count(&self) -> usize {
            FreeMap::run_count(self)
        }
        fn largest_run(&self) -> u64 {
            FreeMap::largest_run(self)
        }
        fn release(&mut self, ext: Extent) {
            FreeMap::release(self, ext)
        }
        fn allocate_first_fit(&mut self, len: u64) -> Option<Extent> {
            FreeMap::allocate_first_fit(self, len)
        }
        fn allocate_best_fit(&mut self, len: u64) -> Option<Extent> {
            FreeMap::allocate_best_fit(self, len)
        }
        fn allocate_at(&mut self, start: u64, len: u64) -> Option<Extent> {
            FreeMap::allocate_at(self, start, len)
        }
        fn is_free(&self, start: u64, len: u64) -> bool {
            FreeMap::is_free(self, start, len)
        }
        fn check_invariants(&self) {
            FreeMap::check_invariants(self)
        }
        fn seed_capacity(&mut self, capacity: u64) {
            *self = M::with_capacity(capacity);
        }
    }

    #[test]
    fn with_capacity_single_run() {
        on_both(|make| {
            let mut m = make();
            m.seed_capacity(100);
            assert_eq!(m.free_units(), 100);
            assert_eq!(m.run_count(), 1);
            assert_eq!(m.largest_run(), 100);
            m.check_invariants();
        });
    }

    #[test]
    fn first_fit_takes_lowest_address() {
        on_both(|make| {
            let mut m = make();
            m.release(Extent::new(50, 10));
            m.release(Extent::new(0, 5));
            let e = m.allocate_first_fit(5).unwrap();
            assert_eq!(e, Extent::new(0, 5));
            // Next request of 6 only fits in the high run.
            let e = m.allocate_first_fit(6).unwrap();
            assert_eq!(e.start, 50);
            m.check_invariants();
        });
    }

    #[test]
    fn best_fit_takes_smallest_run() {
        on_both(|make| {
            let mut m = make();
            m.release(Extent::new(0, 100));
            m.release(Extent::new(200, 6));
            let e = m.allocate_best_fit(5).unwrap();
            assert_eq!(e.start, 200, "prefers the 6-unit run over the 100-unit one");
            assert_eq!(m.largest_run(), 100);
            m.check_invariants();
        });
    }

    #[test]
    fn best_fit_tie_breaks_low_address() {
        on_both(|make| {
            let mut m = make();
            m.release(Extent::new(300, 8));
            m.release(Extent::new(100, 8));
            let e = m.allocate_best_fit(8).unwrap();
            assert_eq!(e.start, 100);
        });
    }

    #[test]
    fn release_coalesces_both_sides() {
        on_both(|make| {
            let mut m = make();
            m.release(Extent::new(0, 10));
            m.release(Extent::new(20, 10));
            assert_eq!(m.run_count(), 2);
            m.release(Extent::new(10, 10));
            assert_eq!(m.run_count(), 1);
            assert_eq!(m.largest_run(), 30);
            m.check_invariants();
        });
    }

    #[test]
    fn allocate_at_splits_run() {
        on_both(|make| {
            let mut m = make();
            m.seed_capacity(100);
            let e = m.allocate_at(40, 20).unwrap();
            assert_eq!(e, Extent::new(40, 20));
            assert_eq!(m.run_count(), 2);
            assert_eq!(m.free_units(), 80);
            assert!(m.allocate_at(45, 1).is_none(), "already taken");
            assert!(m.is_free(0, 40));
            assert!(!m.is_free(39, 2));
            m.check_invariants();
        });
    }

    #[test]
    fn allocate_at_edges() {
        on_both(|make| {
            let mut m = make();
            m.seed_capacity(10);
            assert!(m.allocate_at(0, 10).is_some());
            assert_eq!(m.free_units(), 0);
            assert!(m.allocate_at(0, 1).is_none());
            m.check_invariants();
        });
    }

    #[test]
    fn allocation_fails_when_no_run_large_enough() {
        on_both(|make| {
            let mut m = make();
            m.release(Extent::new(0, 4));
            m.release(Extent::new(10, 4));
            assert_eq!(m.free_units(), 8);
            assert!(m.allocate_first_fit(5).is_none(), "external fragmentation");
            assert!(m.allocate_best_fit(5).is_none());
        });
    }

    #[test]
    fn first_fit_early_exit_leaves_map_intact() {
        // Requests beyond largest_run() bail out of allocate_first_fit
        // before the address-ordered scan; the map must be untouched and
        // boundary sizes (== largest run) must still succeed.
        on_both(|make| {
            let mut m = make();
            m.release(Extent::new(0, 4));
            m.release(Extent::new(10, 16));
            m.release(Extent::new(100, 8));
            assert_eq!(m.largest_run(), 16);
            assert!(m.allocate_first_fit(17).is_none(), "larger than every run");
            assert_eq!(m.free_units(), 28, "failed allocation must not consume space");
            assert_eq!(m.run_count(), 3);
            m.check_invariants();
            // Exactly the largest run still allocates (no off-by-one in the
            // early exit), and first-fit semantics are preserved.
            let e = m.allocate_first_fit(16).unwrap();
            assert_eq!(e, Extent::new(10, 16));
            assert_eq!(m.largest_run(), 8);
            m.check_invariants();
        });
    }

    #[test]
    fn alternating_alloc_free_round_trips() {
        on_both(|make| {
            let mut m = make();
            m.seed_capacity(1000);
            let a = m.allocate_first_fit(100).unwrap();
            let b = m.allocate_first_fit(100).unwrap();
            let c = m.allocate_first_fit(100).unwrap();
            m.release(b);
            m.check_invariants();
            m.release(a);
            m.check_invariants();
            m.release(c);
            m.check_invariants();
            assert_eq!(m.run_count(), 1);
            assert_eq!(m.free_units(), 1000);
        });
    }

    #[test]
    fn bitmap_runs_iterator_reports_maximal_runs() {
        let mut m = FreeSpaceMap::with_capacity(100);
        m.allocate_at(20, 30).unwrap();
        m.allocate_at(90, 10).unwrap();
        let runs: Vec<Extent> = m.runs().collect();
        assert_eq!(runs, vec![Extent::new(0, 20), Extent::new(50, 40)]);
    }

    #[test]
    fn checkpoint_roundtrip_restores_runs_and_rejects_corruption() {
        let mut m = FreeSpaceMap::with_capacity(300);
        m.allocate_at(20, 30).unwrap();
        m.allocate_at(90, 10).unwrap();
        m.allocate_first_fit(5).unwrap();
        let snapshot = FreeMap::checkpoint_state(&m).unwrap();
        let mut restored = FreeSpaceMap::new();
        FreeMap::restore_state(&mut restored, &snapshot).unwrap();
        assert_eq!(restored.collect_runs(), FreeMap::collect_runs(&m));
        assert_eq!(restored.free_units(), m.free_units());
        restored.check_invariants();
        // Restored maps make identical allocation decisions.
        assert_eq!(restored.allocate_best_fit(7), m.allocate_best_fit(7));
        // A tampered snapshot (free_count off by one) is rejected and the
        // target map keeps its previous state.
        let Value::Object(mut fields) = snapshot else { panic!("bitmap serializes as an object") };
        let count = fields.iter_mut().find(|(k, _)| k == "free_count").unwrap();
        count.1 = Value::U64(1);
        let mut intact = FreeSpaceMap::with_capacity(64);
        let err = FreeMap::restore_state(&mut intact, &Value::Object(fields)).unwrap_err();
        assert!(err.contains("free_count"), "{err}");
        assert_eq!(intact.free_units(), 64, "failed restore must not mutate");
        // The reference backend opts out of checkpointing.
        let b = BTreeFreeSpaceMap::with_capacity(10);
        assert!(FreeMap::checkpoint_state(&b).is_none());
        assert!(FreeMap::restore_state(&mut BTreeFreeSpaceMap::new(), &Value::Null).is_err());
    }

    #[test]
    fn bitmap_release_past_end_grows() {
        let mut m = FreeSpaceMap::new();
        m.release(Extent::new(1000, 8));
        m.release(Extent::new(0, 8));
        assert_eq!(m.free_units(), 16);
        assert_eq!(m.run_count(), 2);
        assert_eq!(m.allocate_first_fit(8), Some(Extent::new(0, 8)));
        m.check_invariants();
    }
}
