//! Address-ordered, always-coalesced free-space map for extent systems.
//!
//! §4.3: "When an extent is freed, it is coalesced with its adjoining
//! extents if they are free." The map keeps every free run in a
//! `BTreeMap<start, len>` (address order, used for first-fit and for
//! coalescing) plus a `BTreeSet<(len, start)>` index (used for best-fit and
//! for "largest free run" queries in O(log n)).

use crate::types::Extent;
use std::collections::{BTreeMap, BTreeSet};

/// Coalesced free-extent map over a linear unit address space.
#[derive(Debug, Clone, Default)]
pub struct FreeSpaceMap {
    by_addr: BTreeMap<u64, u64>,
    by_len: BTreeSet<(u64, u64)>,
    free_units: u64,
}

impl FreeSpaceMap {
    /// An empty map (no free space).
    pub fn new() -> Self {
        FreeSpaceMap::default()
    }

    /// A map with the whole range `[0, capacity)` free.
    pub fn with_capacity(capacity: u64) -> Self {
        let mut m = FreeSpaceMap::new();
        if capacity > 0 {
            m.insert_raw(0, capacity);
        }
        m
    }

    /// Total free units.
    pub fn free_units(&self) -> u64 {
        self.free_units
    }

    /// Number of distinct free runs.
    pub fn run_count(&self) -> usize {
        self.by_addr.len()
    }

    /// Length of the largest free run (0 when empty).
    pub fn largest_run(&self) -> u64 {
        self.by_len.iter().next_back().map_or(0, |&(len, _)| len)
    }

    /// Iterates free runs in address order.
    pub fn runs(&self) -> impl Iterator<Item = Extent> + '_ {
        self.by_addr.iter().map(|(&s, &l)| Extent::new(s, l))
    }

    fn insert_raw(&mut self, start: u64, len: u64) {
        self.by_addr.insert(start, len);
        self.by_len.insert((len, start));
        self.free_units += len;
    }

    fn remove_raw(&mut self, start: u64, len: u64) {
        let removed = self.by_addr.remove(&start);
        debug_assert_eq!(removed, Some(len));
        let was = self.by_len.remove(&(len, start));
        debug_assert!(was);
        self.free_units -= len;
    }

    /// Returns a free run to the map, coalescing with neighbours.
    ///
    /// The run must not overlap any existing free run (debug-asserted).
    pub fn release(&mut self, ext: Extent) {
        debug_assert!(ext.len > 0);
        let mut start = ext.start;
        let mut len = ext.len;
        // Coalesce with the predecessor if it abuts.
        if let Some((&p_start, &p_len)) = self.by_addr.range(..start).next_back() {
            debug_assert!(p_start + p_len <= start, "release overlaps predecessor");
            if p_start + p_len == start {
                self.remove_raw(p_start, p_len);
                start = p_start;
                len += p_len;
            }
        }
        // Coalesce with the successor if it abuts.
        if let Some((&n_start, &n_len)) = self.by_addr.range(ext.start..).next() {
            debug_assert!(ext.end() <= n_start, "release overlaps successor");
            if n_start == ext.end() {
                self.remove_raw(n_start, n_len);
                len += n_len;
            }
        }
        self.insert_raw(start, len);
    }

    /// First-fit: carves `len` units from the lowest-addressed run that can
    /// hold them.
    pub fn allocate_first_fit(&mut self, len: u64) -> Option<Extent> {
        debug_assert!(len > 0);
        // The address-ordered scan is O(runs) and on a fragmented disk most
        // oversized requests can't be satisfied at all; the by_len index
        // answers that in O(log n) before we walk anything.
        if self.largest_run() < len {
            return None;
        }
        let (start, run_len) = self
            .by_addr
            .iter()
            .find(|&(_, &l)| l >= len)
            .map(|(&s, &l)| (s, l))?;
        self.carve(start, run_len, len)
    }

    /// Best-fit: carves `len` units from the smallest run that can hold
    /// them (ties broken toward the lower address).
    pub fn allocate_best_fit(&mut self, len: u64) -> Option<Extent> {
        debug_assert!(len > 0);
        let &(run_len, start) = self.by_len.range((len, 0)..).next()?;
        self.carve(start, run_len, len)
    }

    /// Allocates exactly `[start, start + len)` if that range is entirely
    /// free, e.g. for contiguity-preserving placement.
    pub fn allocate_at(&mut self, start: u64, len: u64) -> Option<Extent> {
        debug_assert!(len > 0);
        let (&run_start, &run_len) = self.by_addr.range(..=start).next_back()?;
        if run_start + run_len < start + len {
            return None;
        }
        self.remove_raw(run_start, run_len);
        if start > run_start {
            self.insert_raw(run_start, start - run_start);
        }
        let tail = (run_start + run_len) - (start + len);
        if tail > 0 {
            self.insert_raw(start + len, tail);
        }
        Some(Extent::new(start, len))
    }

    /// True when `[start, start+len)` is entirely free.
    pub fn is_free(&self, start: u64, len: u64) -> bool {
        match self.by_addr.range(..=start).next_back() {
            Some((&run_start, &run_len)) => run_start + run_len >= start + len,
            None => false,
        }
    }

    fn carve(&mut self, run_start: u64, run_len: u64, len: u64) -> Option<Extent> {
        self.remove_raw(run_start, run_len);
        if run_len > len {
            self.insert_raw(run_start + len, run_len - len);
        }
        Some(Extent::new(run_start, len))
    }

    /// Debug invariant: runs are disjoint, sorted, non-adjacent (maximally
    /// coalesced) and the two indexes agree.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut prev_end: Option<u64> = None;
        let mut total = 0;
        for (&s, &l) in &self.by_addr {
            assert!(l > 0, "zero-length run at {s}");
            if let Some(pe) = prev_end {
                assert!(pe < s, "runs overlap or abut at {s} (prev end {pe})");
            }
            assert!(self.by_len.contains(&(l, s)), "missing len index for ({s}, {l})");
            prev_end = Some(s + l);
            total += l;
        }
        assert_eq!(total, self.free_units, "free_units out of sync");
        assert_eq!(self.by_len.len(), self.by_addr.len(), "index sizes differ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_capacity_single_run() {
        let m = FreeSpaceMap::with_capacity(100);
        assert_eq!(m.free_units(), 100);
        assert_eq!(m.run_count(), 1);
        assert_eq!(m.largest_run(), 100);
        m.check_invariants();
    }

    #[test]
    fn first_fit_takes_lowest_address() {
        let mut m = FreeSpaceMap::new();
        m.release(Extent::new(50, 10));
        m.release(Extent::new(0, 5));
        let e = m.allocate_first_fit(5).unwrap();
        assert_eq!(e, Extent::new(0, 5));
        // Next request of 6 only fits in the high run.
        let e = m.allocate_first_fit(6).unwrap();
        assert_eq!(e.start, 50);
        m.check_invariants();
    }

    #[test]
    fn best_fit_takes_smallest_run() {
        let mut m = FreeSpaceMap::new();
        m.release(Extent::new(0, 100));
        m.release(Extent::new(200, 6));
        let e = m.allocate_best_fit(5).unwrap();
        assert_eq!(e.start, 200, "prefers the 6-unit run over the 100-unit one");
        assert_eq!(m.largest_run(), 100);
        m.check_invariants();
    }

    #[test]
    fn best_fit_tie_breaks_low_address() {
        let mut m = FreeSpaceMap::new();
        m.release(Extent::new(300, 8));
        m.release(Extent::new(100, 8));
        let e = m.allocate_best_fit(8).unwrap();
        assert_eq!(e.start, 100);
    }

    #[test]
    fn release_coalesces_both_sides() {
        let mut m = FreeSpaceMap::new();
        m.release(Extent::new(0, 10));
        m.release(Extent::new(20, 10));
        assert_eq!(m.run_count(), 2);
        m.release(Extent::new(10, 10));
        assert_eq!(m.run_count(), 1);
        assert_eq!(m.largest_run(), 30);
        m.check_invariants();
    }

    #[test]
    fn allocate_at_splits_run() {
        let mut m = FreeSpaceMap::with_capacity(100);
        let e = m.allocate_at(40, 20).unwrap();
        assert_eq!(e, Extent::new(40, 20));
        assert_eq!(m.run_count(), 2);
        assert_eq!(m.free_units(), 80);
        assert!(m.allocate_at(45, 1).is_none(), "already taken");
        assert!(m.is_free(0, 40));
        assert!(!m.is_free(39, 2));
        m.check_invariants();
    }

    #[test]
    fn allocate_at_edges() {
        let mut m = FreeSpaceMap::with_capacity(10);
        assert!(m.allocate_at(0, 10).is_some());
        assert_eq!(m.free_units(), 0);
        assert!(m.allocate_at(0, 1).is_none());
        m.check_invariants();
    }

    #[test]
    fn allocation_fails_when_no_run_large_enough() {
        let mut m = FreeSpaceMap::new();
        m.release(Extent::new(0, 4));
        m.release(Extent::new(10, 4));
        assert_eq!(m.free_units(), 8);
        assert!(m.allocate_first_fit(5).is_none(), "external fragmentation");
        assert!(m.allocate_best_fit(5).is_none());
    }

    #[test]
    fn first_fit_early_exit_leaves_map_intact() {
        // Requests beyond largest_run() bail out of allocate_first_fit
        // before the address-ordered scan; the map must be untouched and
        // boundary sizes (== largest run) must still succeed.
        let mut m = FreeSpaceMap::new();
        m.release(Extent::new(0, 4));
        m.release(Extent::new(10, 16));
        m.release(Extent::new(100, 8));
        assert_eq!(m.largest_run(), 16);
        assert!(m.allocate_first_fit(17).is_none(), "larger than every run");
        assert_eq!(m.free_units(), 28, "failed allocation must not consume space");
        assert_eq!(m.run_count(), 3);
        m.check_invariants();
        // Exactly the largest run still allocates (no off-by-one in the
        // early exit), and first-fit semantics are preserved.
        let e = m.allocate_first_fit(16).unwrap();
        assert_eq!(e, Extent::new(10, 16));
        assert_eq!(m.largest_run(), 8);
        m.check_invariants();
    }

    #[test]
    fn alternating_alloc_free_round_trips() {
        let mut m = FreeSpaceMap::with_capacity(1000);
        let a = m.allocate_first_fit(100).unwrap();
        let b = m.allocate_first_fit(100).unwrap();
        let c = m.allocate_first_fit(100).unwrap();
        m.release(b);
        m.check_invariants();
        m.release(a);
        m.check_invariants();
        m.release(c);
        m.check_invariants();
        assert_eq!(m.run_count(), 1);
        assert_eq!(m.free_units(), 1000);
    }
}
