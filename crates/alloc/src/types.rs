//! Shared value types for the allocation layer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A contiguous run of disk units in the array's logical address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Extent {
    /// First disk unit of the run.
    pub start: u64,
    /// Length in disk units (always > 0 for stored extents).
    pub len: u64,
}

impl Extent {
    /// Builds an extent; `len` must be positive.
    pub fn new(start: u64, len: u64) -> Self {
        debug_assert!(len > 0, "zero-length extent");
        Extent { start, len }
    }

    /// One-past-the-end unit.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// True when `other` begins exactly where `self` ends.
    pub fn abuts(&self, other: &Extent) -> bool {
        self.end() == other.start
    }

    /// True when the two extents share at least one unit.
    pub fn overlaps(&self, other: &Extent) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

impl fmt::Display for Extent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, +{})", self.start, self.len)
    }
}

/// Identifier of a file known to a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FileId(pub u32);

impl FileId {
    /// Converts a storage-slot index to an id without a narrowing cast,
    /// failing with [`AllocError::TooManyFiles`] once the 32-bit id space
    /// is exhausted. Policies route every slot→id conversion through here
    /// so the bound is enforced in exactly one place.
    pub fn from_index(index: usize) -> Result<FileId, AllocError> {
        u32::try_from(index).map(FileId).map_err(|_| AllocError::TooManyFiles)
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Per-file information a policy may use when creating a file.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FileHints {
    /// Mean extent size for extent-based systems (Table 2's "Allocation
    /// Size" parameter), in bytes. Other policies ignore it.
    pub mean_extent_bytes: u64,
}

impl Default for FileHints {
    fn default() -> Self {
        FileHints { mean_extent_bytes: 4 * 1024 }
    }
}

/// Why a policy operation could not be satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocError {
    /// No block/extent of the required size exists anywhere — the §3
    /// "disk full condition" that ends an allocation test. The payload is
    /// the number of units that could not be found.
    DiskFull(u64),
    /// An operation named a file id that is not live (never created, or
    /// already deleted). Always a caller bug, but reported as an error so
    /// library code never panics (simlint r3).
    DeadFile(FileId),
    /// The 32-bit file-id space is exhausted.
    TooManyFiles,
    /// The policy's internal free-space bookkeeping disagreed with itself
    /// (e.g. an index named a block its backing map does not hold). Always
    /// a library bug; reported as an error instead of `unreachable!` so
    /// library code never panics (simlint r3) and callers can surface the
    /// corruption. Debug builds additionally pinpoint the site with
    /// `debug_assert!`s.
    CorruptState,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::DiskFull(units) => write!(f, "disk full: no room for {units} units"),
            AllocError::DeadFile(id) => write!(f, "dead file id {id}"),
            AllocError::TooManyFiles => write!(f, "file id space (u32) exhausted"),
            AllocError::CorruptState => {
                write!(f, "internal allocator state corrupted (free-space bookkeeping out of sync)")
            }
        }
    }
}

impl std::error::Error for AllocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extent_end_and_abut() {
        let a = Extent::new(0, 10);
        let b = Extent::new(10, 5);
        assert_eq!(a.end(), 10);
        assert!(a.abuts(&b));
        assert!(!b.abuts(&a));
    }

    #[test]
    fn extent_overlap_cases() {
        let a = Extent::new(10, 10);
        assert!(a.overlaps(&Extent::new(15, 1)));
        assert!(a.overlaps(&Extent::new(5, 6)));
        assert!(!a.overlaps(&Extent::new(20, 5)));
        assert!(!a.overlaps(&Extent::new(0, 10)));
    }

    #[test]
    fn error_formats() {
        let e = AllocError::DiskFull(42);
        assert!(e.to_string().contains("42"));
    }
}
