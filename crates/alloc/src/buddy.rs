//! Koch's buddy allocation policy (§4.1, \[KOCH87\]).
//!
//! "A file may be composed of some number of extents. The size of each
//! extent is a power of two multiple of the sector size. Each time a new
//! extent is required, the extent size is chosen to double the current size
//! of the file."
//!
//! Only the allocation/deallocation algorithm is modelled — *not* the DTSS
//! nightly reallocator — matching the paper's simulation. Extents are capped
//! (default 64 MB; §5 observes the buddy system using 64 MB blocks for
//! files over 100 MB), after which a file keeps appending max-size extents.
//!
//! Doubling over-allocates aggressively, which is exactly the severe
//! internal fragmentation Table 3 reports (43 % for the supercomputer
//! workload); Knuth and Knowlton predicted as much.

use crate::blockset::{BitmapBlockSet, FreeBlockSet};
use crate::buddy_core::{order_for_units, BuddyCore};
use crate::filemap::FileMap;
use crate::policy::Policy;
use crate::types::{AllocError, Extent, FileHints, FileId};

/// One file's state under the buddy policy.
#[derive(Debug, Clone, Default)]
struct BuddyFile {
    /// Buddy blocks in allocation order (`(address, order)`), needed to
    /// return blocks at their original granularity.
    blocks: Vec<(u64, u32)>,
    /// Merged extent view for I/O mapping.
    map: FileMap,
}

/// The Koch buddy policy, generic over the buddy core's free-block
/// container (bitmap by default; see [`BuddyCore`]).
#[derive(Debug, Clone)]
pub struct BuddyPolicy<S: FreeBlockSet = BitmapBlockSet> {
    core: BuddyCore<S>,
    files: Vec<Option<BuddyFile>>,
    free_slots: Vec<u32>,
    max_extent_units: u64,
}

impl<S: FreeBlockSet> BuddyPolicy<S> {
    /// Creates the policy over `capacity_units`, capping extents at
    /// `max_extent_units` (rounded up to a power of two).
    pub fn new(capacity_units: u64, max_extent_units: u64) -> Self {
        assert!(max_extent_units > 0);
        BuddyPolicy {
            core: BuddyCore::new(capacity_units),
            files: Vec::new(),
            free_slots: Vec::new(),
            max_extent_units: max_extent_units.next_power_of_two(),
        }
    }

    fn file(&self, id: FileId) -> Result<&BuddyFile, AllocError> {
        self.files
            .get(id.0 as usize)
            .and_then(|slot| slot.as_ref())
            .ok_or(AllocError::DeadFile(id))
    }

    fn file_mut(&mut self, id: FileId) -> Result<&mut BuddyFile, AllocError> {
        self.files
            .get_mut(id.0 as usize)
            .and_then(|slot| slot.as_mut())
            .ok_or(AllocError::DeadFile(id))
    }

    /// Size in units of the next extent Koch's doubling rule would pick for
    /// a file currently holding `current_units`, when at least
    /// `needed_units` more are wanted.
    fn next_extent_units(&self, current_units: u64, needed_units: u64) -> u64 {
        let want = if current_units == 0 {
            // First allocation: just enough for the request, as a power of
            // two (a new file's size is known at its first write).
            needed_units.next_power_of_two()
        } else {
            // Doubling: the new extent equals the file's current size
            // (current is always a power of two or a multiple of the cap).
            current_units.next_power_of_two()
        };
        want.min(self.max_extent_units)
    }
}

impl<S: FreeBlockSet> Policy for BuddyPolicy<S> {
    fn name(&self) -> &'static str {
        "buddy"
    }

    fn capacity_units(&self) -> u64 {
        self.core.capacity()
    }

    fn free_units(&self) -> u64 {
        self.core.free_units()
    }

    fn frag_gauges(&self) -> crate::policy::FragGauges {
        // Buddy blocks are the grant granularity: adjacent free blocks of
        // different orders never merge into one grant, so each free block
        // is one free extent.
        let free_blocks: usize = self.core.free_histogram().iter().map(|&(_, n)| n).sum();
        crate::policy::FragGauges {
            free_units: self.core.free_units(),
            free_extents: free_blocks as u64,
            largest_free_units: self.core.largest_free_block(),
        }
    }

    fn create(&mut self, _hints: &FileHints) -> Result<FileId, AllocError> {
        let file = BuddyFile::default();
        let id = match self.free_slots.pop() {
            Some(slot) => {
                self.files[slot as usize] = Some(file);
                FileId(slot)
            }
            None => {
                let id = FileId::from_index(self.files.len())?;
                self.files.push(Some(file));
                id
            }
        };
        Ok(id)
    }

    fn extend(&mut self, file: FileId, units: u64) -> Result<Vec<Extent>, AllocError> {
        debug_assert!(units > 0);
        let mut granted: Vec<Extent> = Vec::new();
        let mut remaining = units;
        while remaining > 0 {
            let current = self.file(file)?.map.total_units();
            let size = self.next_extent_units(current, remaining);
            let order = order_for_units(size);
            let Some(addr) = self.core.allocate(order) else {
                // Roll back this call's partial allocations so a failed
                // extend is atomic.
                for e in granted.iter().rev() {
                    // Each granted extent is exactly one buddy block.
                    self.core.free(e.start, order_for_units(e.len));
                    let f = self.file_mut(file)?;
                    f.blocks.pop();
                    f.map.pop_back(e.len);
                }
                return Err(AllocError::DiskFull(size));
            };
            let f = self.file_mut(file)?;
            f.blocks.push((addr, order));
            let ext = Extent::new(addr, 1 << order);
            f.map.push(ext);
            granted.push(ext);
            remaining = remaining.saturating_sub(1 << order);
        }
        Ok(granted)
    }

    fn truncate(&mut self, file: FileId, units: u64) -> Result<Vec<Extent>, AllocError> {
        // Buddy blocks cannot be split, so free whole tail blocks that fit
        // entirely within the truncated range.
        let mut freed = Vec::new();
        let mut remaining = units;
        while let Some(&(addr, order)) = self.file(file)?.blocks.last() {
            let size = 1u64 << order;
            if size > remaining {
                break;
            }
            let f = self.file_mut(file)?;
            f.blocks.pop();
            self.core.free(addr, order);
            let f = self.file_mut(file)?;
            let popped = f.map.pop_back(size);
            debug_assert_eq!(popped.iter().map(|e| e.len).sum::<u64>(), size);
            freed.push(Extent::new(addr, size));
            remaining -= size;
        }
        Ok(freed)
    }

    fn delete(&mut self, file: FileId) -> Result<u64, AllocError> {
        let f = self
            .files
            .get_mut(file.0 as usize)
            .and_then(|slot| slot.take())
            .ok_or(AllocError::DeadFile(file))?;
        let mut freed = 0;
        for (addr, order) in f.blocks {
            self.core.free(addr, order);
            freed += 1u64 << order;
        }
        self.free_slots.push(file.0);
        Ok(freed)
    }

    fn file_map(&self, file: FileId) -> Result<&FileMap, AllocError> {
        Ok(&self.file(file)?.map)
    }

    fn live_files(&self) -> Vec<FileId> {
        self.files
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_some())
            .filter_map(|(i, _)| FileId::from_index(i).ok())
            .collect()
    }

    fn allocation_count(&self, file: FileId) -> Result<usize, AllocError> {
        Ok(self.file(file)?.blocks.len())
    }

    /// Koch's nightly reallocator \[KOCH87\]: "this reallocator shuffles
    /// extents around to reduce both the internal and external
    /// fragmentation. Using this combination, most files are allocated in 3
    /// extents and average under 4 % internal fragmentation."
    ///
    /// Every file is rewritten as a tight binary decomposition of its
    /// *logical* size — at most [`REALLOC_MAX_EXTENTS`] blocks, the final
    /// one rounded up to cover the tail — after all data blocks have been
    /// returned to the buddy structure, so the survivors pack from the low
    /// addresses. Files whose rounded decomposition no longer fits (the
    /// disk can be that full) fall back to the exact decomposition, which
    /// never needs more space than was just freed.
    fn reallocate(&mut self, logical_sizes: &[(FileId, u64)]) -> Result<Option<u64>, AllocError> {
        // Validate every id up front so a dead entry cannot leave phase 1
        // half-done (freeing some files' blocks but not others).
        for &(id, _) in logical_sizes {
            self.file(id)?;
        }
        // Phase 1: free every listed file's blocks (the caller lists live
        // files only).
        for &(id, _) in logical_sizes {
            let f = self.file_mut(id)?;
            let blocks = std::mem::take(&mut f.blocks);
            f.map.take_all();
            for (addr, order) in blocks {
                self.core.free(addr, order);
            }
        }
        // Phase 2: largest files first, so the big aligned blocks they need
        // still exist.
        let mut order_of_work: Vec<(FileId, u64)> =
            logical_sizes.iter().copied().filter(|&(_, units)| units > 0).collect();
        order_of_work.sort_by_key(|&(_, units)| std::cmp::Reverse(units));
        let mut moved = 0;
        for (id, units) in order_of_work {
            let plan = decompose_for_realloc(units, self.max_extent_units, REALLOC_MAX_EXTENTS);
            let plan = if self.plan_fits(&plan) {
                plan
            } else {
                exact_decomposition(units, self.max_extent_units)
            };
            // Worklist: when an aligned block of the wanted order cannot be
            // carved (possible near 100 % utilization with a ragged
            // capacity tail), fall back to two half-size blocks.
            let mut work: std::collections::VecDeque<u32> = plan.into();
            while let Some(order) = work.pop_front() {
                match self.core.allocate(order) {
                    Some(addr) => {
                        let f = self.file_mut(id)?;
                        f.blocks.push((addr, order));
                        f.map.push(Extent::new(addr, 1 << order));
                    }
                    None if order > 0 => {
                        work.push_front(order - 1);
                        work.push_front(order - 1);
                    }
                    None => break, // not a single unit free: stop gracefully
                }
            }
            moved += self.file(id)?.map.total_units();
        }
        Ok(Some(moved))
    }
}

/// Koch's reallocator rewrites each file into at most this many extents
/// ("most files are allocated in 3 extents").
pub const REALLOC_MAX_EXTENTS: usize = 3;

/// Largest-first binary decomposition of `units`, at most `max_extents`
/// blocks with the tail rounded up.
fn decompose_for_realloc(units: u64, max_extent_units: u64, max_extents: usize) -> Vec<u32> {
    debug_assert!(units > 0);
    let cap_order = order_for_units(max_extent_units);
    let mut orders = Vec::new();
    let mut remaining = units;
    while remaining > 0 {
        let is_last_slot = orders.len() + 1 >= max_extents;
        let order = if is_last_slot {
            // Round the tail up so the extent budget holds (unless even the
            // largest block cannot cover it — then capped blocks keep
            // appending; huge files legitimately take more extents).
            order_for_units(remaining).min(cap_order)
        } else {
            // Largest power of two ≤ remaining.
            (63 - remaining.leading_zeros()).min(cap_order)
        };
        orders.push(order);
        remaining = remaining.saturating_sub(1 << order);
    }
    orders
}

/// Exact decomposition (one block per set bit, capped): never allocates
/// more than `units` rounded up to one unit.
fn exact_decomposition(units: u64, max_extent_units: u64) -> Vec<u32> {
    let cap_order = order_for_units(max_extent_units);
    let mut orders = Vec::new();
    let mut remaining = units;
    while remaining > 0 {
        let order = (63 - remaining.leading_zeros()).min(cap_order);
        orders.push(order);
        remaining = remaining.saturating_sub(1 << order);
    }
    orders
}

impl<S: FreeBlockSet> BuddyPolicy<S> {
    /// Whether blocks of the planned orders can all be carved from the
    /// current free structure (conservative: checks the largest need).
    fn plan_fits(&self, plan: &[u32]) -> bool {
        let need: u64 = plan.iter().map(|&o| 1u64 << o).sum();
        let largest = plan.iter().map(|&o| 1u64 << o).max().unwrap_or(0);
        self.core.free_units() >= need && self.core.largest_free_block() >= largest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BuddyPolicy {
        BuddyPolicy::new(1 << 20, 1 << 16) // 1 M units, 64 K-unit extent cap
    }

    #[test]
    fn first_allocation_rounds_to_power_of_two() {
        let mut p = policy();
        let f = p.create(&FileHints::default()).unwrap();
        p.extend(f, 5).unwrap();
        assert_eq!(p.allocated_units(f).unwrap(), 8, "5 units round to an 8-block");
        p.check_invariants();
    }

    #[test]
    fn growth_doubles_allocation() {
        let mut p = policy();
        let f = p.create(&FileHints::default()).unwrap();
        p.extend(f, 8).unwrap(); // 8
        p.extend(f, 1).unwrap(); // +8  → 16
        assert_eq!(p.allocated_units(f).unwrap(), 16);
        p.extend(f, 1).unwrap(); // +16 → 32
        assert_eq!(p.allocated_units(f).unwrap(), 32);
        // Doubling continues until the request is covered: +32, +64, then a
        // full +128 even though only 4 more units were needed — the
        // over-allocation Table 3 measures as internal fragmentation.
        p.extend(f, 100).unwrap();
        assert_eq!(p.allocated_units(f).unwrap(), 256);
        p.check_invariants();
    }

    #[test]
    fn extent_sizes_are_capped() {
        let mut p: BuddyPolicy = BuddyPolicy::new(1 << 20, 1 << 4);
        let f = p.create(&FileHints::default()).unwrap();
        p.extend(f, 1 << 8).unwrap();
        for &(_, order) in &p.file(f).unwrap().blocks {
            assert!(order <= 4, "extent above cap");
        }
        assert_eq!(p.allocated_units(f).unwrap(), 1 << 8, "cap removes over-allocation");
        p.check_invariants();
    }

    #[test]
    fn doubling_produces_internal_fragmentation() {
        let mut p = policy();
        let f = p.create(&FileHints::default()).unwrap();
        // Simulate a file growing by small appends: allocation races ahead.
        let mut logical = 0u64;
        for _ in 0..10 {
            p.extend(f, 3).unwrap();
            logical += 3;
        }
        assert!(p.allocated_units(f).unwrap() > logical, "over-allocation expected");
        p.check_invariants();
    }

    #[test]
    fn truncate_frees_only_whole_blocks() {
        let mut p = policy();
        let f = p.create(&FileHints::default()).unwrap();
        p.extend(f, 8).unwrap();
        p.extend(f, 1).unwrap(); // blocks: 8, 8
        let freed = p.truncate(f, 4).unwrap();
        assert!(freed.is_empty(), "4 < tail block of 8");
        let freed = p.truncate(f, 9).unwrap();
        assert_eq!(freed.len(), 1);
        assert_eq!(p.allocated_units(f).unwrap(), 8);
        p.check_invariants();
    }

    #[test]
    fn delete_returns_all_space() {
        let mut p = policy();
        let before = p.free_units();
        let f = p.create(&FileHints::default()).unwrap();
        p.extend(f, 1000).unwrap();
        assert!(p.free_units() < before);
        p.delete(f).unwrap();
        assert_eq!(p.free_units(), before);
        assert!(p.live_files().is_empty());
        p.check_invariants();
    }

    #[test]
    fn failed_extend_is_atomic() {
        let mut p: BuddyPolicy = BuddyPolicy::new(100, 1 << 16); // 64+32+4 decomposition
        let f = p.create(&FileHints::default()).unwrap();
        let free_before = p.free_units();
        // Asks for 127 → first block 128 > capacity: immediate failure.
        assert!(p.extend(f, 127).is_err());
        assert_eq!(p.free_units(), free_before);
        assert_eq!(p.allocated_units(f).unwrap(), 0);
        p.check_invariants();
    }

    #[test]
    fn file_ids_are_recycled() {
        let mut p = policy();
        let a = p.create(&FileHints::default()).unwrap();
        p.delete(a).unwrap();
        let b = p.create(&FileHints::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn realloc_decompositions_cover_their_targets() {
        for units in [1u64, 3, 7, 100, 1000, 4097, (1 << 17) + 5] {
            let plan = decompose_for_realloc(units, 1 << 16, REALLOC_MAX_EXTENTS);
            let total: u64 = plan.iter().map(|&o| 1u64 << o).sum();
            assert!(total >= units, "plan for {units} covers only {total}");
            // Within the budget unless the cap forces more blocks.
            if units <= (1 << 16) * REALLOC_MAX_EXTENTS as u64 {
                assert!(plan.len() <= REALLOC_MAX_EXTENTS, "{units}: {plan:?}");
            }
            let exact: u64 = exact_decomposition(units, 1 << 16).iter().map(|&o| 1u64 << o).sum();
            assert_eq!(exact, units.next_multiple_of(1), "exact plan is exact");
        }
    }

    #[test]
    fn nightly_reallocation_cuts_fragmentation_and_extent_count() {
        let mut p = policy();
        // Grow files in tiny appends so doubling over-allocates badly and
        // blocks scatter; delete every other file to fragment free space.
        let mut files = Vec::new();
        let mut logicals = Vec::new();
        for i in 0..40u64 {
            let f = p.create(&FileHints::default()).unwrap();
            let mut logical = 0;
            for _ in 0..(i % 7 + 3) {
                p.extend(f, 100).unwrap();
                logical += 100;
            }
            files.push(f);
            logicals.push(logical);
        }
        for i in (0..files.len()).step_by(2) {
            p.delete(files[i]).unwrap();
        }
        let survivors: Vec<(FileId, u64)> = files
            .iter()
            .zip(&logicals)
            .enumerate()
            .filter(|(i, _)| i % 2 == 1)
            .map(|(_, (&f, &l))| (f, l))
            .collect();
        let alloc_before: u64 = survivors.iter().map(|&(f, _)| p.allocated_units(f).unwrap()).sum();
        let used: u64 = survivors.iter().map(|&(_, l)| l).sum();
        let moved = p.reallocate(&survivors).unwrap().expect("buddy has a reallocator");
        p.check_invariants();
        let alloc_after: u64 = survivors.iter().map(|&(f, _)| p.allocated_units(f).unwrap()).sum();
        assert!(moved >= used, "all surviving data was rewritten");
        assert!(
            alloc_after < alloc_before,
            "internal fragmentation must drop: {alloc_before} -> {alloc_after} for {used} used"
        );
        // Koch: "most files are allocated in 3 extents".
        for &(f, l) in &survivors {
            assert!(
                p.allocation_count(f).unwrap() <= REALLOC_MAX_EXTENTS,
                "file with {l} units has {} blocks",
                p.allocation_count(f).unwrap()
            );
            assert!(p.allocated_units(f).unwrap() >= l, "still covers the data");
        }
    }

    #[test]
    fn reallocation_is_idempotent_on_a_tight_layout() {
        let mut p = policy();
        let f = p.create(&FileHints::default()).unwrap();
        p.extend(f, 1000).unwrap();
        let files = vec![(f, 1000u64)];
        p.reallocate(&files).unwrap().unwrap();
        let after_first: Vec<_> = p.file_map(f).unwrap().extents().to_vec();
        p.reallocate(&files).unwrap().unwrap();
        assert_eq!(p.file_map(f).unwrap().extents(), &after_first[..], "stable fixed point");
        p.check_invariants();
    }

    #[test]
    fn sequential_doubling_is_contiguous_on_fresh_disk() {
        let mut p = policy();
        let f = p.create(&FileHints::default()).unwrap();
        p.extend(f, 8).unwrap();
        p.extend(f, 8).unwrap();
        p.extend(f, 16).unwrap();
        // Fresh buddy space splits from the lowest address, so the doubling
        // sequence 8,8,16 lands at 0,8,16 — one merged extent.
        assert_eq!(p.extent_count(f).unwrap(), 1);
        assert_eq!(p.file_map(f).unwrap().extents()[0], Extent::new(0, 32));
    }
}
