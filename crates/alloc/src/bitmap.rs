//! A plain bitmap over block slots.
//!
//! §4.2: "A bit map is used to record the state (free or used) of every
//! maximum sized block in the system." The restricted buddy policy keeps one
//! of these per bookkeeping region for its largest block class; smaller
//! classes use sorted free lists.

use serde::{Deserialize, Serialize};

/// Fixed-size bitmap; bit set ⇒ slot free.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FreeBitmap {
    words: Vec<u64>,
    len: usize,
    free_count: usize,
}

impl FreeBitmap {
    /// Creates a bitmap of `len` slots, all initially **used** (clear).
    pub fn new(len: usize) -> Self {
        FreeBitmap { words: vec![0; len.div_ceil(64)], len, free_count: 0 }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap has no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of free slots.
    pub fn free_count(&self) -> usize {
        self.free_count
    }

    /// Whether slot `i` is free.
    pub fn is_free(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Marks slot `i` free. Panics in debug builds on double-free.
    pub fn set_free(&mut self, i: usize) {
        debug_assert!(i < self.len);
        debug_assert!(!self.is_free(i), "slot {i} already free");
        self.words[i / 64] |= 1 << (i % 64);
        self.free_count += 1;
    }

    /// Marks slot `i` used. Panics in debug builds when not free.
    pub fn set_used(&mut self, i: usize) {
        debug_assert!(i < self.len);
        debug_assert!(self.is_free(i), "slot {i} not free");
        self.words[i / 64] &= !(1 << (i % 64));
        self.free_count -= 1;
    }

    /// Index of the first free slot at or after `from`, if any.
    pub fn first_free_at_or_after(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let mut w = from / 64;
        let mut masked = self.words[w] & (u64::MAX << (from % 64));
        loop {
            if masked != 0 {
                let i = w * 64 + masked.trailing_zeros() as usize;
                return (i < self.len).then_some(i);
            }
            w += 1;
            if w >= self.words.len() {
                return None;
            }
            masked = self.words[w];
        }
    }

    /// Index of the first free slot, if any.
    pub fn first_free(&self) -> Option<usize> {
        self.first_free_at_or_after(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_used() {
        let b = FreeBitmap::new(100);
        assert_eq!(b.free_count(), 0);
        assert_eq!(b.first_free(), None);
        assert!(!b.is_free(0));
    }

    #[test]
    fn set_and_find() {
        let mut b = FreeBitmap::new(200);
        b.set_free(5);
        b.set_free(130);
        assert_eq!(b.free_count(), 2);
        assert_eq!(b.first_free(), Some(5));
        assert_eq!(b.first_free_at_or_after(6), Some(130));
        assert_eq!(b.first_free_at_or_after(131), None);
        b.set_used(5);
        assert_eq!(b.first_free(), Some(130));
    }

    #[test]
    fn boundary_at_word_edges() {
        let mut b = FreeBitmap::new(128);
        b.set_free(63);
        b.set_free(64);
        b.set_free(127);
        assert_eq!(b.first_free_at_or_after(63), Some(63));
        assert_eq!(b.first_free_at_or_after(64), Some(64));
        assert_eq!(b.first_free_at_or_after(65), Some(127));
    }

    #[test]
    fn out_of_range_from_is_none() {
        let mut b = FreeBitmap::new(10);
        b.set_free(9);
        assert_eq!(b.first_free_at_or_after(10), None);
        assert_eq!(b.first_free_at_or_after(9), Some(9));
    }

    #[test]
    fn bits_beyond_len_are_ignored() {
        // len not a multiple of 64: ensure search never reports ghost slots.
        let b = FreeBitmap::new(70);
        assert_eq!(b.first_free(), None);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn double_free_panics_in_debug() {
        let mut b = FreeBitmap::new(4);
        b.set_free(1);
        b.set_free(1);
    }
}
