//! A word-level bitmap over block slots.
//!
//! §4.2: "A bit map is used to record the state (free or used) of every
//! maximum sized block in the system." Originally only the restricted buddy
//! policy's largest block class lived here; the bitmap now backs *every*
//! policy's free lists (via [`crate::blockset::BitmapBlockSet`]) and the
//! extent system's free-space map, so the primitives below are the
//! simulator's allocation hot path.
//!
//! All scans are word-at-a-time (`u64` plus `trailing_zeros`/`count_ones`),
//! steered by two per-word *summary indexes*: `summary` (bit `j` set iff
//! word `j` has **any** free slot) lets "first free" skip fully-used
//! regions, and `full` (bit `j` set iff word `j` is **entirely** free) lets
//! the run-boundary scans ("first used", "run start") skip the interior of
//! long free runs. Either way a single summary-word probe covers 64 words
//! = 4096 slots.
//!
//! A third, lazily maintained cache accelerates the run search under heavy
//! fragmentation: `max_run[w]` is the length of the longest free run wholly
//! inside word `w`. `first_free_run_before` uses it to dismiss a mixed word
//! in O(1) — if the carried run cannot be completed by the word's leading
//! free bits and no interior run is long enough, the whole segment walk is
//! skipped. Writes only *invalidate* the entry (one byte store), so callers
//! that never search for runs pay nothing for it.

use serde::{de_field, Deserialize, Error, Serialize, Value};

/// `max_run` sentinel: the word changed since the entry was computed.
const STALE_RUN: u8 = u8::MAX;

/// Length of the longest contiguous run of set bits in `x` (0..=64).
/// Each `x &= x << 1` step shortens every run by one, so the step count is
/// the longest run's length; the all-ones word short-circuits because the
/// loop's shift would otherwise never introduce zeros.
fn longest_one_run(x: u64) -> u8 {
    if x == u64::MAX {
        return 64;
    }
    let mut x = x;
    let mut n = 0u8;
    while x != 0 {
        x &= x << 1;
        n += 1;
    }
    n
}

/// Fixed-size bitmap; bit set ⇒ slot free.
#[derive(Debug, Clone, Default, Eq)]
pub struct FreeBitmap {
    words: Vec<u64>,
    /// Summary index: bit `j` set iff `words[j] != 0`. Derived data,
    /// rebuilt on deserialization.
    summary: Vec<u64>,
    /// Second summary level: bit `j` set iff `words[j] == u64::MAX`
    /// (every slot in the word free). Derived data, rebuilt on
    /// deserialization.
    full: Vec<u64>,
    /// Longest free run wholly inside each word, or [`STALE_RUN`] when the
    /// word changed since the entry was computed. Derived data: invalidated
    /// word-granularly on every set/clear, recomputed lazily by the run
    /// scans, rebuilt exactly on deserialization.
    max_run: Vec<u8>,
    len: usize,
    free_count: usize,
}

/// Equality is over the ground truth only (`words`, `len`, `free_count`);
/// the summary levels are a pure function of `words` and the `max_run`
/// cache may legitimately differ in staleness between two equal bitmaps.
impl PartialEq for FreeBitmap {
    fn eq(&self, other: &Self) -> bool {
        self.words == other.words && self.len == other.len && self.free_count == other.free_count
    }
}

impl FreeBitmap {
    /// Creates a bitmap of `len` slots, all initially **used** (clear).
    pub fn new(len: usize) -> Self {
        let nwords = len.div_ceil(64);
        FreeBitmap {
            words: vec![0; nwords],
            summary: vec![0; nwords.div_ceil(64)],
            full: vec![0; nwords.div_ceil(64)],
            max_run: vec![0; nwords],
            len,
            free_count: 0,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap has no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of free slots.
    pub fn free_count(&self) -> usize {
        self.free_count
    }

    /// Whether slot `i` is free.
    pub fn is_free(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Refreshes both summary levels' bits for word `w` from its value and
    /// invalidates the word's longest-run cache entry (recomputed lazily by
    /// the run scans — a one-byte store is all a write path ever pays).
    fn summary_update(&mut self, w: usize) {
        let (sw, bit) = (w / 64, 1u64 << (w % 64));
        if self.words[w] != 0 {
            self.summary[sw] |= bit;
        } else {
            self.summary[sw] &= !bit;
        }
        if self.words[w] == u64::MAX {
            self.full[sw] |= bit;
        } else {
            self.full[sw] &= !bit;
        }
        self.max_run[w] = STALE_RUN;
    }

    /// Longest free run wholly inside word `w`, from the cache when fresh,
    /// recomputing (and re-caching) when the word changed since.
    fn max_run_of(&mut self, w: usize) -> usize {
        if self.max_run[w] == STALE_RUN {
            self.max_run[w] = longest_one_run(self.words[w]);
        }
        self.max_run[w] as usize
    }

    /// Marks slot `i` free. Panics in debug builds on double-free.
    pub fn set_free(&mut self, i: usize) {
        debug_assert!(i < self.len);
        debug_assert!(!self.is_free(i), "slot {i} already free");
        self.words[i / 64] |= 1 << (i % 64);
        self.summary_update(i / 64);
        self.free_count += 1;
    }

    /// Marks slot `i` used. Panics in debug builds when not free.
    pub fn set_used(&mut self, i: usize) {
        debug_assert!(i < self.len);
        debug_assert!(self.is_free(i), "slot {i} not free");
        self.words[i / 64] &= !(1 << (i % 64));
        self.summary_update(i / 64);
        self.free_count -= 1;
    }

    /// The in-word bit mask covering `[start, end)` clipped to word `w`.
    fn word_mask(w: usize, start: usize, end: usize) -> u64 {
        let lo = start.max(w * 64) - w * 64;
        let hi = end.min((w + 1) * 64) - w * 64;
        // hi ∈ 1..=64 here; build the mask without a 64-bit shift overflow.
        let upper = if hi == 64 { u64::MAX } else { (1u64 << hi) - 1 };
        upper & !((1u64 << lo) - 1)
    }

    /// Marks every slot in `[start, start + n)` free, word at a time.
    /// Panics in debug builds if any slot is already free.
    pub fn set_range_free(&mut self, start: usize, n: usize) {
        debug_assert!(start + n <= self.len);
        if n == 0 {
            return;
        }
        let end = start + n;
        for w in start / 64..=(end - 1) / 64 {
            let mask = Self::word_mask(w, start, end);
            debug_assert_eq!(self.words[w] & mask, 0, "double free in range at word {w}");
            self.words[w] |= mask;
            self.summary_update(w);
        }
        self.free_count += n;
    }

    /// Marks every slot in `[start, start + n)` used, word at a time.
    /// Panics in debug builds if any slot is not free.
    pub fn set_range_used(&mut self, start: usize, n: usize) {
        debug_assert!(start + n <= self.len);
        if n == 0 {
            return;
        }
        let end = start + n;
        for w in start / 64..=(end - 1) / 64 {
            let mask = Self::word_mask(w, start, end);
            debug_assert_eq!(self.words[w] & mask, mask, "using non-free slot in word {w}");
            self.words[w] &= !mask;
            self.summary_update(w);
        }
        self.free_count -= n;
    }

    /// Number of free slots in `[start, end)` by per-word popcount.
    pub fn free_in_range(&self, start: usize, end: usize) -> usize {
        let end = end.min(self.len);
        if start >= end {
            return 0;
        }
        let mut total = 0usize;
        for w in start / 64..=(end - 1) / 64 {
            total += (self.words[w] & Self::word_mask(w, start, end)).count_ones() as usize;
        }
        total
    }

    /// Index of the first free slot at or after `from`, if any.
    ///
    /// The word containing `from` is probed directly; past it the summary
    /// index steers the scan straight to the next word with any free slot.
    pub fn first_free_at_or_after(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let w = from / 64;
        let masked = self.words[w] & (u64::MAX << (from % 64));
        if masked != 0 {
            return Some(w * 64 + masked.trailing_zeros() as usize);
        }
        // Summary scan: find the next word with any free slot.
        let from_w = w + 1;
        if from_w >= self.words.len() {
            return None;
        }
        let mut sw = from_w / 64;
        let mut smasked = self.summary[sw] & (u64::MAX << (from_w % 64));
        loop {
            if smasked != 0 {
                let next_w = sw * 64 + smasked.trailing_zeros() as usize;
                return Some(next_w * 64 + self.words[next_w].trailing_zeros() as usize);
            }
            sw += 1;
            if sw >= self.summary.len() {
                return None;
            }
            smasked = self.summary[sw];
        }
    }

    /// Index of the first free slot, if any.
    pub fn first_free(&self) -> Option<usize> {
        self.first_free_at_or_after(0)
    }

    /// Index of the first **used** slot at or after `from`, or `None` when
    /// everything from `from` to the end is free.
    ///
    /// The word containing `from` is probed directly; past it the `full`
    /// summary steers the scan straight over the interior of a long free
    /// run to the next word with any used slot.
    pub fn first_used_at_or_after(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let w = from / 64;
        let masked = !self.words[w] & (u64::MAX << (from % 64));
        if masked != 0 {
            let i = w * 64 + masked.trailing_zeros() as usize;
            // Bits past `len` in the tail word are clear (= "used");
            // they are not real slots.
            return (i < self.len).then_some(i);
        }
        let from_w = w + 1;
        if from_w >= self.words.len() {
            return None;
        }
        let mut sw = from_w / 64;
        let mut smasked = !self.full[sw] & (u64::MAX << (from_w % 64));
        loop {
            if smasked != 0 {
                let next_w = sw * 64 + smasked.trailing_zeros() as usize;
                // `full` bits beyond the last real word read as "not
                // full"; they are not real words.
                if next_w >= self.words.len() {
                    return None;
                }
                let i = next_w * 64 + (!self.words[next_w]).trailing_zeros() as usize;
                return (i < self.len).then_some(i);
            }
            sw += 1;
            if sw >= self.full.len() {
                return None;
            }
            smasked = !self.full[sw];
        }
    }

    /// Start of the maximal free run containing free slot `i`.
    ///
    /// The word containing `i` is probed directly; below it the `full`
    /// summary steers the backward scan straight over the run's interior
    /// to the nearest word with any used slot.
    pub fn free_run_start(&self, i: usize) -> usize {
        debug_assert!(self.is_free(i));
        let w = i / 64;
        // Used bits strictly below `i` within its word.
        let below = if i % 64 == 0 { 0 } else { (1u64 << (i % 64)) - 1 };
        let inv = !self.words[w] & below;
        if inv != 0 {
            return w * 64 + 63 - inv.leading_zeros() as usize + 1;
        }
        if w == 0 {
            return 0;
        }
        let to_w = w - 1;
        let mut sw = to_w / 64;
        // `full` bits at and below `to_w` only.
        let keep = to_w % 64;
        let mut smasked =
            !self.full[sw] & (if keep == 63 { u64::MAX } else { (1u64 << (keep + 1)) - 1 });
        loop {
            if smasked != 0 {
                let pw = sw * 64 + 63 - smasked.leading_zeros() as usize;
                // The word is not fully free, so it has a used bit.
                let inv = !self.words[pw];
                return pw * 64 + 63 - inv.leading_zeros() as usize + 1;
            }
            if sw == 0 {
                return 0;
            }
            sw -= 1;
            smasked = !self.full[sw];
        }
    }

    /// Start of the first maximal free run of at least `k` slots, if any.
    ///
    /// A single streaming pass: a run length is carried across words, the
    /// `summary` index skips fully-used 64-word blocks, the `full` index
    /// swallows fully-free 64-word blocks, and only mixed words are walked
    /// segment by segment. Takes `&mut self` because the walk lazily
    /// refreshes the per-word longest-run cache (`max_run`) that lets it
    /// dismiss most mixed words without walking them.
    pub fn first_free_run(&mut self, k: usize) -> Option<usize> {
        self.first_free_run_before(k, self.len)
    }

    /// Like [`Self::first_free_run`], but gives up once the next run would
    /// start at or past `limit` — the caller already knows a qualifying run
    /// begins there, so anything the scan could still find cannot be the
    /// first fit. Runs that *begin* below `limit` are followed to their end.
    pub fn first_free_run_before(&mut self, k: usize, limit: usize) -> Option<usize> {
        debug_assert!(k > 0);
        let nwords = self.words.len();
        let mut run_start = 0usize;
        let mut run_len = 0usize;
        let mut w = 0usize;
        while w < nwords {
            if run_len == 0 && w * 64 >= limit {
                return None;
            }
            if w % 64 == 0 {
                let sw = w / 64;
                if self.summary[sw] == 0 {
                    // 64 all-used words.
                    run_len = 0;
                    w += 64;
                    continue;
                }
                if self.full[sw] == u64::MAX {
                    // 64 all-free words (only possible away from the tail).
                    if run_len == 0 {
                        run_start = w * 64;
                    }
                    run_len += 64 * 64;
                    if run_len >= k {
                        return Some(run_start);
                    }
                    w += 64;
                    continue;
                }
            }
            let word = self.words[w];
            if word == 0 {
                run_len = 0;
            } else if word == u64::MAX {
                if run_len == 0 {
                    run_start = w * 64;
                }
                run_len += 64;
                if run_len >= k {
                    return Some(run_start);
                }
            } else {
                // Mixed word. A qualifying run can only end inside it two
                // ways: the carried run grows by the word's trailing free
                // bits, or a run lies wholly within the word — and the
                // latter is bounded by the cached longest in-word run. When
                // neither reaches `k`, the segment walk below cannot return
                // here, so skip it: the state it would leave behind is
                // exactly the word's leading free bits as the carried run.
                let prefix = word.trailing_ones() as usize;
                if run_len > 0 && run_len + prefix >= k {
                    return Some(run_start);
                }
                if self.max_run_of(w) < k {
                    let suffix = word.leading_ones() as usize;
                    run_len = suffix;
                    if suffix > 0 {
                        run_start = w * 64 + 64 - suffix;
                    }
                } else {
                    // The run ends here: walk the word's used/free segments
                    // to find where.
                    let mut x = word;
                    let mut offset = 0usize;
                    while offset < 64 {
                        if x & 1 == 0 {
                            if x == 0 {
                                // Used through the top of the word.
                                run_len = 0;
                                break;
                            }
                            let used = x.trailing_zeros() as usize;
                            run_len = 0;
                            x >>= used;
                            offset += used;
                        } else {
                            // The shift above filled the top with zeros, so
                            // this counts at most the bits left in the word.
                            let free = (!x).trailing_zeros() as usize;
                            if run_len == 0 {
                                run_start = w * 64 + offset;
                            }
                            run_len += free;
                            if run_len >= k {
                                return Some(run_start);
                            }
                            x >>= free;
                            offset += free;
                        }
                    }
                }
            }
            w += 1;
        }
        None
    }

    /// Extends the bitmap to `new_len` slots; the new slots start **used**.
    pub fn grow(&mut self, new_len: usize) {
        debug_assert!(new_len >= self.len);
        let nwords = new_len.div_ceil(64);
        self.words.resize(nwords, 0);
        self.summary.resize(nwords.div_ceil(64), 0);
        self.full.resize(nwords.div_ceil(64), 0);
        // All-used new words have a longest free run of exactly 0.
        self.max_run.resize(nwords, 0);
        self.len = new_len;
    }

    /// Rebuilds the summary indexes and the longest-run cache from the
    /// words (deserialization).
    fn rebuild_summary(&mut self) {
        self.summary = vec![0; self.words.len().div_ceil(64)];
        self.full = vec![0; self.words.len().div_ceil(64)];
        self.max_run = self.words.iter().map(|&w| longest_one_run(w)).collect();
        for w in 0..self.words.len() {
            if self.words[w] != 0 {
                self.summary[w / 64] |= 1 << (w % 64);
            }
            if self.words[w] == u64::MAX {
                self.full[w / 64] |= 1 << (w % 64);
            }
        }
    }

    /// Validates the structural invariants: word count matches `len`, no
    /// ghost bits beyond `len`, and `free_count` equals the popcount.
    /// Returns a description of the first violation, if any.
    fn validate(&self) -> Result<(), String> {
        if self.words.len() != self.len.div_ceil(64) {
            return Err(format!(
                "word count {} does not match {} slots",
                self.words.len(),
                self.len
            ));
        }
        if self.len % 64 != 0 {
            if let Some(&tail) = self.words.last() {
                if tail & !((1u64 << (self.len % 64)) - 1) != 0 {
                    return Err(format!("ghost bits set beyond slot {}", self.len));
                }
            }
        }
        let pop: usize = self.words.iter().map(|w| w.count_ones() as usize).sum();
        if pop != self.free_count {
            return Err(format!(
                "free_count {} does not match popcount {pop}",
                self.free_count
            ));
        }
        Ok(())
    }
}

impl Serialize for FreeBitmap {
    fn to_value(&self) -> Value {
        // The summary is derived data: serialize only the ground truth.
        Value::Object(vec![
            ("words".to_string(), self.words.to_value()),
            ("len".to_string(), self.len.to_value()),
            ("free_count".to_string(), self.free_count.to_value()),
        ])
    }
}

impl Deserialize for FreeBitmap {
    /// Reconstructs the bitmap and **validates** it: a snapshot whose
    /// `free_count` disagrees with the word popcount, whose word count is
    /// wrong for `len`, or which has ghost bits past `len` is rejected
    /// loudly instead of silently mis-allocating later.
    fn from_value(v: &Value) -> Result<Self, Error> {
        let mut bitmap = FreeBitmap {
            words: de_field(v, "words")?,
            summary: Vec::new(),
            full: Vec::new(),
            max_run: Vec::new(),
            len: de_field(v, "len")?,
            free_count: de_field(v, "free_count")?,
        };
        bitmap
            .validate()
            .map_err(|why| Error::msg(format!("corrupt FreeBitmap snapshot: {why}")))?;
        bitmap.rebuild_summary();
        Ok(bitmap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_used() {
        let b = FreeBitmap::new(100);
        assert_eq!(b.free_count(), 0);
        assert_eq!(b.first_free(), None);
        assert!(!b.is_free(0));
    }

    #[test]
    fn set_and_find() {
        let mut b = FreeBitmap::new(200);
        b.set_free(5);
        b.set_free(130);
        assert_eq!(b.free_count(), 2);
        assert_eq!(b.first_free(), Some(5));
        assert_eq!(b.first_free_at_or_after(6), Some(130));
        assert_eq!(b.first_free_at_or_after(131), None);
        b.set_used(5);
        assert_eq!(b.first_free(), Some(130));
    }

    #[test]
    fn boundary_at_word_edges() {
        let mut b = FreeBitmap::new(128);
        b.set_free(63);
        b.set_free(64);
        b.set_free(127);
        assert_eq!(b.first_free_at_or_after(63), Some(63));
        assert_eq!(b.first_free_at_or_after(64), Some(64));
        assert_eq!(b.first_free_at_or_after(65), Some(127));
    }

    #[test]
    fn out_of_range_from_is_none() {
        let mut b = FreeBitmap::new(10);
        b.set_free(9);
        assert_eq!(b.first_free_at_or_after(10), None);
        assert_eq!(b.first_free_at_or_after(9), Some(9));
    }

    #[test]
    fn bits_beyond_len_are_ignored() {
        // len not a multiple of 64: ensure search never reports ghost slots.
        let b = FreeBitmap::new(70);
        assert_eq!(b.first_free(), None);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn double_free_panics_in_debug() {
        let mut b = FreeBitmap::new(4);
        b.set_free(1);
        b.set_free(1);
    }

    #[test]
    fn summary_skips_long_used_regions() {
        // One free slot far out: the scan must find it through thousands of
        // empty words.
        let mut b = FreeBitmap::new(1 << 18);
        b.set_free((1 << 18) - 3);
        assert_eq!(b.first_free(), Some((1 << 18) - 3));
        assert_eq!(b.first_free_at_or_after(12345), Some((1 << 18) - 3));
        b.set_used((1 << 18) - 3);
        assert_eq!(b.first_free(), None);
    }

    #[test]
    fn full_summary_skips_long_free_runs() {
        // A quarter-million-slot free run with used slots only at the very
        // edges: both run-boundary scans must cross it via the `full`
        // summary and still land exactly.
        let n = 1 << 18;
        let mut b = FreeBitmap::new(n);
        b.set_range_free(1, n - 2);
        assert_eq!(b.first_used_at_or_after(1), Some(n - 1));
        assert_eq!(b.free_run_start(n - 2), 1);
        assert_eq!(b.first_free_run(n - 2), Some(1));
        // Poke a hole mid-run: scans from either side stop at it, and the
        // run search rolls over to whichever half still fits.
        b.set_used(n / 2);
        assert_eq!(b.first_used_at_or_after(1), Some(n / 2));
        assert_eq!(b.free_run_start(n - 2), n / 2 + 1);
        assert_eq!(b.free_run_start(n / 2 - 1), 1);
        assert_eq!(b.first_free_run(n / 2 - 1), Some(1));
        assert_eq!(b.first_free_run(n / 2), None, "both halves now too short");
    }

    #[test]
    fn range_ops_cross_word_boundaries() {
        let mut b = FreeBitmap::new(300);
        b.set_range_free(50, 120); // spans words 0..=2
        assert_eq!(b.free_count(), 120);
        assert!(b.is_free(50) && b.is_free(169) && !b.is_free(49) && !b.is_free(170));
        assert_eq!(b.free_in_range(0, 300), 120);
        assert_eq!(b.free_in_range(60, 70), 10);
        assert_eq!(b.free_in_range(0, 51), 1);
        b.set_range_used(60, 20);
        assert_eq!(b.free_count(), 100);
        assert_eq!(b.free_in_range(50, 170), 100);
        assert!(!b.is_free(60) && !b.is_free(79) && b.is_free(59) && b.is_free(80));
    }

    #[test]
    fn range_ops_exact_word_and_single_slot() {
        let mut b = FreeBitmap::new(192);
        b.set_range_free(64, 64); // exactly word 1
        assert_eq!(b.free_in_range(64, 128), 64);
        assert_eq!(b.first_free(), Some(64));
        b.set_range_used(64, 64);
        assert_eq!(b.free_count(), 0);
        b.set_range_free(63, 1);
        assert_eq!(b.free_count(), 1);
        assert!(b.is_free(63));
    }

    #[test]
    fn first_used_and_run_scans() {
        let mut b = FreeBitmap::new(400);
        b.set_range_free(10, 30); // run [10, 40)
        b.set_range_free(100, 200); // run [100, 300)
        assert_eq!(b.first_used_at_or_after(0), Some(0));
        assert_eq!(b.first_used_at_or_after(10), Some(40));
        assert_eq!(b.first_used_at_or_after(150), Some(300));
        assert_eq!(b.free_run_start(15), 10);
        assert_eq!(b.free_run_start(10), 10);
        assert_eq!(b.free_run_start(299), 100);
        assert_eq!(b.first_free_run(20), Some(10));
        assert_eq!(b.first_free_run(31), Some(100));
        assert_eq!(b.first_free_run(200), Some(100));
        assert_eq!(b.first_free_run(201), None);
    }

    #[test]
    fn run_to_the_end_is_open() {
        let mut b = FreeBitmap::new(100);
        b.set_range_free(90, 10);
        assert_eq!(b.first_used_at_or_after(90), None);
        assert_eq!(b.first_free_run(10), Some(90));
        assert_eq!(b.free_run_start(99), 90);
    }

    #[test]
    fn grow_adds_used_slots() {
        let mut b = FreeBitmap::new(10);
        b.set_range_free(0, 10);
        b.grow(500);
        assert_eq!(b.len(), 500);
        assert_eq!(b.free_count(), 10);
        assert!(!b.is_free(10) && !b.is_free(499));
        assert_eq!(b.first_used_at_or_after(0), Some(10));
        b.set_free(499);
        assert_eq!(b.first_free_at_or_after(10), Some(499));
    }

    #[test]
    fn ragged_tail_runs_at_1000_and_1601() {
        // Unit counts not a multiple of 64 (tail word partly ghost): the
        // run scans must neither count ghost bits past `len` as free nor
        // miss runs that touch or live inside the tail word.
        for n in [1000usize, 1601] {
            let mut b = FreeBitmap::new(n);
            b.set_range_free(n - 37, 37);
            assert_eq!(b.first_free_run(37), Some(n - 37), "run touching the end (n={n})");
            assert_eq!(b.first_free_run(38), None, "ghost bits must not extend a run (n={n})");
            assert_eq!(b.first_free_run_before(37, n), Some(n - 37), "n={n}");
            assert_eq!(b.first_used_at_or_after(n - 37), None, "n={n}");
            assert_eq!(b.free_run_start(n - 1), n - 37, "n={n}");
            // Punch a hole near the end: the runs split exactly.
            b.set_used(n - 20);
            assert_eq!(b.first_free_run(18), Some(n - 19), "n={n}");
            assert_eq!(b.first_free_run(20), None, "n={n}");
            // A fully free ragged bitmap is one run of exactly `len`.
            let mut c = FreeBitmap::new(n);
            c.set_range_free(0, n);
            assert_eq!(c.first_free_run(n), Some(0), "n={n}");
            assert_eq!(c.first_free_run(n + 1), None, "n={n}");
        }
    }

    #[test]
    fn max_run_cache_tracks_mutation() {
        // The lazily maintained longest-run cache must go stale and refresh
        // correctly as words mutate — including the partial tail word.
        let mut b = FreeBitmap::new(1601);
        b.set_range_free(100, 30);
        assert_eq!(b.first_free_run(30), Some(100));
        b.set_used(110);
        assert_eq!(b.first_free_run(30), None, "cache entry must not survive the punch");
        assert_eq!(b.first_free_run(19), Some(111));
        b.set_free(110);
        assert_eq!(b.first_free_run(30), Some(100), "cache must refresh after refill");
        // Run wholly inside the ragged tail word ([1600, 1601) is the only
        // real slot of the last word).
        let mut t = FreeBitmap::new(1601);
        t.set_range_free(1595, 6);
        assert_eq!(t.first_free_run(6), Some(1595));
        assert_eq!(t.first_free_run(7), None);
        t.set_free(1594);
        assert_eq!(t.first_free_run(7), Some(1594));
    }

    #[test]
    fn equality_ignores_cache_staleness() {
        let mut a = FreeBitmap::new(200);
        a.set_range_free(10, 50);
        let b = a.clone();
        // Refresh a's cache only; the bitmaps still hold the same slots.
        assert_eq!(a.first_free_run(8), Some(10));
        assert_eq!(a, b);
    }

    #[test]
    fn serde_round_trip_preserves_state() {
        let mut b = FreeBitmap::new(130);
        b.set_range_free(5, 70);
        b.set_used(40);
        let v = b.to_value();
        let back = FreeBitmap::from_value(&v).expect("clean snapshot");
        assert_eq!(back, b);
        assert_eq!(back.first_free(), Some(5));
        assert_eq!(back.first_free_at_or_after(41), Some(41));
    }

    #[test]
    fn corrupted_free_count_fails_loudly() {
        let mut b = FreeBitmap::new(64);
        b.set_range_free(0, 8);
        let v = match b.to_value() {
            Value::Object(mut pairs) => {
                for (k, val) in &mut pairs {
                    if k == "free_count" {
                        *val = Value::U64(9); // popcount is 8
                    }
                }
                Value::Object(pairs)
            }
            other => other,
        };
        let err = FreeBitmap::from_value(&v).unwrap_err();
        assert!(format!("{err}").contains("popcount"), "{err}");
    }

    #[test]
    fn ghost_bits_fail_loudly() {
        let b = FreeBitmap::new(70);
        let v = match b.to_value() {
            Value::Object(mut pairs) => {
                for (k, val) in &mut pairs {
                    if k == "words" {
                        // Slot 71 does not exist; setting its bit corrupts
                        // the tail word.
                        *val = Value::Array(vec![Value::U64(0), Value::U64(1 << 7)]);
                    }
                    if k == "free_count" {
                        *val = Value::U64(1); // popcount "agrees"
                    }
                }
                Value::Object(pairs)
            }
            other => other,
        };
        let err = FreeBitmap::from_value(&v).unwrap_err();
        assert!(format!("{err}").contains("ghost"), "{err}");
    }

    #[test]
    fn wrong_word_count_fails_loudly() {
        let b = FreeBitmap::new(128);
        let v = match b.to_value() {
            Value::Object(mut pairs) => {
                for (k, val) in &mut pairs {
                    if k == "words" {
                        *val = Value::Array(vec![Value::U64(0)]); // needs 2
                    }
                }
                Value::Object(pairs)
            }
            other => other,
        };
        assert!(FreeBitmap::from_value(&v).is_err());
    }
}
