//! The extent-based allocation policy (§4.3, \[STON89\]).
//!
//! "In the extent based models, every file has an extent size associated
//! with it. Each time a file grows beyond its current allocation,
//! additional disk storage is allocated in extent sized chunks. … an extent
//! may begin at any address. When an extent is freed, it is coalesced with
//! its adjoining extents if they are free."
//!
//! Each configuration offers a set of *extent size ranges* — normal
//! distributions whose standard deviation is 10 % of the mean. At file
//! creation the policy picks the range whose mean is nearest (in log space)
//! to the file's "Allocation Size" hint (Table 2) and draws the file's
//! extent size from it; see DESIGN.md §"Substitutions" for why log-nearest.
//!
//! Free space is searched **first-fit** or **best-fit**; the paper selects
//! first-fit for the final comparison because "the slight clustering that
//! results from [the] tendency to allocate blocks toward the beginning of
//! the disk system" buys a little seek locality.

use crate::filemap::FileMap;
use crate::freespace::{FreeMap, FreeSpaceMap};
use crate::policy::Policy;
use crate::types::{AllocError, Extent, FileHints, FileId};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{de_field, Deserialize, Serialize, Value};

/// Free-extent search strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FitStrategy {
    /// Lowest-addressed run that fits.
    FirstFit,
    /// Smallest run that fits.
    BestFit,
}

/// One file's state under the extent policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct EFile {
    map: FileMap,
    /// This file's extent size in units, fixed at creation.
    extent_units: u64,
}

/// The extent-based policy.
///
/// Generic over the free-space map backend (word-level bitmap by default;
/// the `BTreeFreeSpaceMap` reference backend makes identical decisions and
/// exists for differential tests and benchmark baselines).
#[derive(Debug, Clone)]
pub struct ExtentPolicy<M: FreeMap = FreeSpaceMap> {
    free: M,
    capacity: u64,
    fit: FitStrategy,
    /// Available extent-size range means, in units.
    range_means: Vec<u64>,
    /// σ as a fraction of the mean (0.1 in the paper).
    sigma_frac: f64,
    unit_bytes: u64,
    rng: SmallRng,
    files: Vec<Option<EFile>>,
    free_slots: Vec<u32>,
}

impl<M: FreeMap> ExtentPolicy<M> {
    /// Builds the policy.
    ///
    /// * `range_means_units` — the configuration's extent ranges (µ of each
    ///   normal distribution), in units.
    /// * `sigma_frac` — σ/µ, 0.1 in the paper.
    /// * `unit_bytes` — disk unit size, used to convert byte-based hints.
    /// * `seed` — RNG seed for extent-size draws (deterministic runs).
    pub fn new(
        capacity_units: u64,
        range_means_units: &[u64],
        fit: FitStrategy,
        sigma_frac: f64,
        unit_bytes: u64,
        seed: u64,
    ) -> Self {
        assert!(!range_means_units.is_empty(), "at least one extent range");
        assert!(range_means_units.iter().all(|&m| m > 0));
        assert!((0.0..1.0).contains(&sigma_frac));
        let mut means = range_means_units.to_vec();
        means.sort_unstable();
        ExtentPolicy {
            free: M::with_capacity(capacity_units),
            capacity: capacity_units,
            fit,
            range_means: means,
            sigma_frac,
            unit_bytes,
            rng: SmallRng::seed_from_u64(seed),
            files: Vec::new(),
            free_slots: Vec::new(),
        }
    }

    /// The range mean nearest in log space to `target_units`.
    fn nearest_range(&self, target_units: u64) -> u64 {
        let t = (target_units.max(1) as f64).ln();
        self.range_means
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let da = ((a as f64).ln() - t).abs();
                let db = ((b as f64).ln() - t).abs();
                da.total_cmp(&db)
            })
            // simlint::allow(r3, "min_by over a non-empty set; constructor asserts ranges exist")
            .unwrap_or_else(|| unreachable!("constructor requires at least one extent range"))
    }

    /// Draws from Normal(mean, sigma_frac·mean) via Box–Muller, clamped to
    /// at least one unit.
    fn sample_extent_units(&mut self, mean: u64) -> u64 {
        let mu = mean as f64;
        let sigma = self.sigma_frac * mu;
        let u1: f64 = self.rng.random_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.random_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (mu + sigma * z).round().max(1.0) as u64
    }

    fn allocate(&mut self, units: u64) -> Option<Extent> {
        match self.fit {
            FitStrategy::FirstFit => self.free.allocate_first_fit(units),
            FitStrategy::BestFit => self.free.allocate_best_fit(units),
        }
    }

    fn file(&self, id: FileId) -> Result<&EFile, AllocError> {
        self.files
            .get(id.0 as usize)
            .and_then(|slot| slot.as_ref())
            .ok_or(AllocError::DeadFile(id))
    }

    fn file_mut(&mut self, id: FileId) -> Result<&mut EFile, AllocError> {
        self.files
            .get_mut(id.0 as usize)
            .and_then(|slot| slot.as_mut())
            .ok_or(AllocError::DeadFile(id))
    }

    /// The extent size assigned to `file`, in units.
    pub fn file_extent_units(&self, file: FileId) -> Result<u64, AllocError> {
        Ok(self.file(file)?.extent_units)
    }

    /// The configured range means, in units.
    pub fn range_means_units(&self) -> &[u64] {
        &self.range_means
    }
}

impl<M: FreeMap> Policy for ExtentPolicy<M> {
    fn name(&self) -> &'static str {
        "extent"
    }

    fn capacity_units(&self) -> u64 {
        self.capacity
    }

    fn free_units(&self) -> u64 {
        self.free.free_units()
    }

    fn frag_gauges(&self) -> crate::policy::FragGauges {
        crate::policy::FragGauges {
            free_units: self.free.free_units(),
            free_extents: self.free.run_count() as u64,
            largest_free_units: self.free.largest_run(),
        }
    }

    fn create(&mut self, hints: &FileHints) -> Result<FileId, AllocError> {
        let target_units = (hints.mean_extent_bytes / self.unit_bytes).max(1);
        let mean = self.nearest_range(target_units);
        let extent_units = self.sample_extent_units(mean);
        let file = EFile { map: FileMap::new(), extent_units };
        let id = match self.free_slots.pop() {
            Some(slot) => {
                self.files[slot as usize] = Some(file);
                FileId(slot)
            }
            None => {
                let id = FileId::from_index(self.files.len())?;
                self.files.push(Some(file));
                id
            }
        };
        Ok(id)
    }

    fn extend(&mut self, file: FileId, units: u64) -> Result<Vec<Extent>, AllocError> {
        debug_assert!(units > 0);
        let chunk = self.file(file)?.extent_units;
        let mut granted: Vec<Extent> = Vec::new();
        let mut remaining = units;
        while remaining > 0 {
            let Some(e) = self.allocate(chunk) else {
                for &g in granted.iter().rev() {
                    self.free.release(g);
                    self.file_mut(file)?.map.pop_back(g.len);
                }
                return Err(AllocError::DiskFull(chunk));
            };
            self.file_mut(file)?.map.push(e);
            granted.push(e);
            remaining = remaining.saturating_sub(chunk);
        }
        Ok(granted)
    }

    fn truncate(&mut self, file: FileId, units: u64) -> Result<Vec<Extent>, AllocError> {
        let freed = self.file_mut(file)?.map.pop_back(units);
        for &e in &freed {
            self.free.release(e);
        }
        Ok(freed)
    }

    fn delete(&mut self, file: FileId) -> Result<u64, AllocError> {
        let mut f = self
            .files
            .get_mut(file.0 as usize)
            .and_then(|slot| slot.take())
            .ok_or(AllocError::DeadFile(file))?;
        let extents = f.map.take_all();
        let mut total = 0;
        for e in extents {
            total += e.len;
            self.free.release(e);
        }
        self.free_slots.push(file.0);
        Ok(total)
    }

    fn file_map(&self, file: FileId) -> Result<&FileMap, AllocError> {
        Ok(&self.file(file)?.map)
    }

    fn live_files(&self) -> Vec<FileId> {
        self.files
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_some())
            .filter_map(|(i, _)| FileId::from_index(i).ok())
            .collect()
    }

    fn allocation_count(&self, file: FileId) -> Result<usize, AllocError> {
        let f = self.file(file)?;
        Ok(f.map.total_units().div_ceil(f.extent_units) as usize)
    }

    fn checkpoint_state(&self) -> Option<Value> {
        // Only the dynamic state: config fields are reconstructed by the
        // resuming caller. Propagates `None` from backends (the BTree
        // reference map) that opt out of checkpointing.
        let free = self.free.checkpoint_state()?;
        Some(Value::Object(vec![
            ("free".to_string(), free),
            ("rng".to_string(), self.rng.state().to_value()),
            ("files".to_string(), self.files.to_value()),
            ("free_slots".to_string(), self.free_slots.to_value()),
        ]))
    }

    fn restore_state(&mut self, snapshot: &Value) -> Result<(), String> {
        let rng_words: Vec<u64> = de_field(snapshot, "rng").map_err(|e| e.to_string())?;
        let rng_state: [u64; 4] = rng_words
            .try_into()
            .map_err(|_| "rng snapshot must hold exactly 4 words".to_string())?;
        if rng_state == [0u64; 4] {
            return Err("rng snapshot has the unreachable all-zero state".into());
        }
        let files: Vec<Option<EFile>> = de_field(snapshot, "files").map_err(|e| e.to_string())?;
        let free_slots: Vec<u32> = de_field(snapshot, "free_slots").map_err(|e| e.to_string())?;
        let free_snap = snapshot.get("free").ok_or("extent snapshot missing the free map")?;
        let mut free = M::new();
        free.restore_state(free_snap)?;

        // Slot bookkeeping: free_slots must name exactly the dead slots.
        let dead = files.iter().filter(|f| f.is_none()).count();
        if free_slots.len() != dead {
            return Err(format!(
                "free_slots lists {} slots but {dead} file slots are dead",
                free_slots.len()
            ));
        }
        let mut seen = vec![false; files.len()];
        for &s in &free_slots {
            match files.get(s as usize) {
                None => return Err(format!("free slot {s} out of range")),
                Some(Some(_)) => return Err(format!("free slot {s} names a live file")),
                Some(None) => {}
            }
            if std::mem::replace(&mut seen[s as usize], true) {
                return Err(format!("free slot {s} listed twice"));
            }
        }

        // Per-file sanity, then space conservation: the free runs and the
        // data extents together must perfectly tile [0, capacity) — any
        // overlap, gap, or out-of-bounds extent breaks the tiling.
        let mut marks: Vec<(u64, u64)> =
            free.collect_runs().iter().map(|e| (e.start, e.end())).collect();
        for f in files.iter().flatten() {
            if f.extent_units == 0 {
                return Err("file with a zero extent size".into());
            }
            let units: u64 = f.map.extents().iter().map(|e| e.len).sum();
            if units != f.map.total_units() {
                return Err("file map total disagrees with its extents".into());
            }
            for w in f.map.extents().windows(2) {
                if w[0].abuts(&w[1]) {
                    return Err("file map holds unmerged adjacent extents".into());
                }
            }
            marks.extend(f.map.extents().iter().map(|e| (e.start, e.end())));
        }
        marks.sort_unstable();
        let mut cursor = 0u64;
        for &(start, end) in &marks {
            if start != cursor || end <= start {
                return Err(format!("allocation state does not tile the disk at unit {cursor}"));
            }
            cursor = end;
        }
        if cursor != self.capacity {
            return Err(format!("allocation state covers {cursor} of {} units", self.capacity));
        }

        self.free = free;
        self.rng = SmallRng::from_state(rng_state);
        self.files = files;
        self.free_slots = free_slots;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(fit: FitStrategy) -> ExtentPolicy {
        // 64 K-unit space; ranges of 8 and 64 units; 1 KB units.
        ExtentPolicy::new(1 << 16, &[8, 64], fit, 0.1, 1024, 7)
    }

    fn hints(bytes: u64) -> FileHints {
        FileHints { mean_extent_bytes: bytes }
    }

    #[test]
    fn range_assignment_is_log_nearest() {
        let p = policy(FitStrategy::FirstFit);
        assert_eq!(p.nearest_range(8), 8);
        assert_eq!(p.nearest_range(64), 64);
        assert_eq!(p.nearest_range(1), 8);
        assert_eq!(p.nearest_range(10_000), 64);
        // Geometric midpoint of 8 and 64 is ~22.6.
        assert_eq!(p.nearest_range(22), 8);
        assert_eq!(p.nearest_range(23), 64);
    }

    #[test]
    fn extent_sizes_follow_the_range() {
        let mut p = policy(FitStrategy::FirstFit);
        let mut sizes = Vec::new();
        for _ in 0..200 {
            let f = p.create(&hints(64 * 1024)).unwrap();
            sizes.push(p.file_extent_units(f).unwrap());
            p.delete(f).unwrap();
        }
        let mean = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
        assert!((mean - 64.0).abs() < 3.0, "mean {mean}");
        // ~10 % σ ⇒ nearly everything within ±30 %.
        assert!(sizes.iter().all(|&s| (40..=90).contains(&s)), "{sizes:?}");
        assert!(sizes.iter().any(|&s| s != 64), "actually stochastic");
    }

    #[test]
    fn extends_allocate_in_extent_chunks() {
        let mut p = policy(FitStrategy::FirstFit);
        let f = p.create(&hints(8 * 1024)).unwrap();
        let chunk = p.file_extent_units(f).unwrap();
        p.extend(f, 1).unwrap();
        assert_eq!(p.allocated_units(f).unwrap(), chunk, "one whole extent");
        p.extend(f, chunk + 1).unwrap();
        assert_eq!(p.allocated_units(f).unwrap(), 3 * chunk);
        p.check_invariants();
    }

    #[test]
    fn sequential_growth_coalesces_on_fresh_disk() {
        let mut p = policy(FitStrategy::FirstFit);
        let f = p.create(&hints(8 * 1024)).unwrap();
        for _ in 0..5 {
            p.extend(f, 1).unwrap();
        }
        assert_eq!(p.extent_count(f).unwrap(), 1, "first-fit walks forward contiguously");
    }

    #[test]
    fn truncate_returns_exact_units() {
        let mut p = policy(FitStrategy::FirstFit);
        let f = p.create(&hints(8 * 1024)).unwrap();
        p.extend(f, 100).unwrap();
        let alloc = p.allocated_units(f).unwrap();
        let freed = p.truncate(f, 37).unwrap();
        assert_eq!(freed.iter().map(|e| e.len).sum::<u64>(), 37);
        assert_eq!(p.allocated_units(f).unwrap(), alloc - 37);
        p.check_invariants();
    }

    #[test]
    fn delete_coalesces_free_space() {
        let mut p = policy(FitStrategy::FirstFit);
        let a = p.create(&hints(8 * 1024)).unwrap();
        let b = p.create(&hints(8 * 1024)).unwrap();
        p.extend(a, 50).unwrap();
        p.extend(b, 50).unwrap();
        p.delete(a).unwrap();
        p.delete(b).unwrap();
        assert_eq!(p.free.run_count(), 1, "everything coalesced back");
        assert_eq!(p.free_units(), p.capacity_units());
        p.check_invariants();
    }

    #[test]
    fn best_fit_fills_snug_holes() {
        // σ = 0 so every file of the same hint gets identical extents.
        let mut p: ExtentPolicy = ExtentPolicy::new(1 << 16, &[8, 64], FitStrategy::BestFit, 0.0, 1024, 5);
        let filler = p.create(&hints(8 * 1024)).unwrap(); // extents of 8
        let pad = p.create(&hints(8 * 1024)).unwrap();
        p.extend(filler, 8).unwrap(); // sits at the front: [0, 8)
        p.extend(pad, 80).unwrap(); // [8, 88)
        p.delete(filler).unwrap(); // snug 8-unit hole at the front + huge tail run
        let f = p.create(&hints(8 * 1024)).unwrap();
        p.extend(f, 1).unwrap();
        assert_eq!(
            p.file_map(f).unwrap().extents()[0],
            Extent::new(0, 8),
            "best-fit picks the snug hole over the big tail run"
        );
        p.check_invariants();
    }

    #[test]
    fn failure_reports_disk_full_and_is_atomic() {
        let mut p: ExtentPolicy = ExtentPolicy::new(100, &[40], FitStrategy::FirstFit, 0.0, 1024, 1);
        let f = p.create(&hints(40 * 1024)).unwrap();
        assert_eq!(p.file_extent_units(f).unwrap(), 40);
        p.extend(f, 80).unwrap(); // two extents of 40
        let free_before = p.free_units();
        let err = p.extend(f, 40).unwrap_err(); // only 20 left
        assert!(matches!(err, AllocError::DiskFull(40)));
        assert_eq!(p.free_units(), free_before);
        assert_eq!(p.allocated_units(f).unwrap(), 80);
        p.check_invariants();
    }

    #[test]
    fn checkpoint_resumes_identical_decisions() {
        let mut p = policy(FitStrategy::FirstFit);
        let a = p.create(&hints(8 * 1024)).unwrap();
        let b = p.create(&hints(64 * 1024)).unwrap();
        p.extend(a, 40).unwrap();
        p.extend(b, 200).unwrap();
        p.truncate(b, 30).unwrap();
        p.delete(a).unwrap();
        let snapshot = p.checkpoint_state().unwrap();
        let mut q = policy(FitStrategy::FirstFit);
        q.restore_state(&snapshot).unwrap();
        q.check_invariants();
        assert_eq!(q.free_units(), p.free_units());
        assert_eq!(q.live_files(), p.live_files());
        // Every subsequent decision — slot reuse, extent-size draw, and
        // placement — matches the original policy exactly.
        for _ in 0..20 {
            let fp = p.create(&hints(8 * 1024)).unwrap();
            let fq = q.create(&hints(8 * 1024)).unwrap();
            assert_eq!(fp, fq);
            assert_eq!(p.file_extent_units(fp), q.file_extent_units(fq));
            assert_eq!(p.extend(fp, 12), q.extend(fq, 12));
        }
        assert_eq!(p.frag_gauges(), q.frag_gauges());
    }

    #[test]
    fn restore_rejects_corrupt_snapshots() {
        let mut p = policy(FitStrategy::FirstFit);
        let f = p.create(&hints(8 * 1024)).unwrap();
        p.extend(f, 20).unwrap();
        let snapshot = p.checkpoint_state().unwrap();
        let tamper = |key: &str, v: Value| {
            let Value::Object(mut fields) = snapshot.clone() else { unreachable!() };
            fields.iter_mut().find(|(k, _)| k == key).unwrap().1 = v;
            Value::Object(fields)
        };
        let mut q = policy(FitStrategy::FirstFit);
        // A live slot listed as free.
        let err = q.restore_state(&tamper("free_slots", vec![f.0].to_value())).unwrap_err();
        assert!(err.contains("free_slots") || err.contains("live"), "{err}");
        // Dropping the files breaks space conservation (tiling).
        let empty: Vec<Option<super::EFile>> = Vec::new();
        let err = q.restore_state(&tamper("files", empty.to_value())).unwrap_err();
        assert!(err.contains("tile") || err.contains("covers"), "{err}");
        // The unreachable all-zero rng state.
        let err = q.restore_state(&tamper("rng", vec![0u64; 4].to_value())).unwrap_err();
        assert!(err.contains("all-zero"), "{err}");
        // A failed restore leaves the target untouched.
        assert_eq!(q.free_units(), q.capacity_units());
        assert!(q.live_files().is_empty());
        // The BTree reference backend opts out of checkpointing entirely.
        let r: ExtentPolicy<crate::freespace::BTreeFreeSpaceMap> =
            ExtentPolicy::new(100, &[8], FitStrategy::FirstFit, 0.0, 1024, 1);
        assert!(r.checkpoint_state().is_none());
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let mut p: ExtentPolicy = ExtentPolicy::new(1000, &[16], FitStrategy::FirstFit, 0.0, 1024, 3);
        for _ in 0..10 {
            let f = p.create(&hints(16 * 1024)).unwrap();
            assert_eq!(p.file_extent_units(f).unwrap(), 16);
        }
    }
}
