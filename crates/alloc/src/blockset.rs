//! Ordered sets of free block addresses, backed by either a word-level
//! bitmap or a `BTreeSet`.
//!
//! Every allocation policy keeps "free lists" of equally-sized,
//! equally-strided blocks (FFS cylinder-group blocks, restricted-buddy
//! class lists, buddy per-order lists). Historically those were
//! `BTreeSet<u64>`; the paper's own design (§4.2) records free state in bit
//! maps instead. [`FreeBlockSet`] abstracts the container so each policy is
//! written once, generically, and is *provably* decision-identical across
//! backends: both iterate lowest-address-first, so the same queries return
//! the same addresses. [`BitmapBlockSet`] is the production default;
//! [`BTreeBlockSet`] remains as the differential-testing and benchmarking
//! reference.

use crate::bitmap::FreeBitmap;
use serde::{de_field, Deserialize, Error, Serialize, Value};
use std::collections::BTreeSet;
use std::fmt::Debug;

/// An ordered set of free block addresses with a fixed stride.
///
/// Addresses are u64 block-unit offsets. A set is created for a region
/// `[base, end)` whose member addresses are exactly `base + k * stride`
/// with `addr + stride <= end`; implementations may reject (return
/// `false` / `None` for) addresses outside that lattice, which callers
/// rely on for "buddy beyond capacity" style probes.
pub trait FreeBlockSet: Debug + Clone + Send {
    /// Creates an empty set for blocks of `stride` units in `[base, end)`.
    fn new(base: u64, end: u64, stride: u64) -> Self;
    /// Number of addresses in the set.
    fn len(&self) -> usize;
    /// True when the set has no addresses.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Whether `addr` is in the set.
    fn contains(&self, addr: u64) -> bool;
    /// Inserts `addr`; returns `true` when it was not already present.
    fn insert(&mut self, addr: u64) -> bool;
    /// Removes `addr`; returns `true` when it was present.
    fn remove(&mut self, addr: u64) -> bool;
    /// Smallest address in the set, if any.
    fn first(&self) -> Option<u64>;
    /// Smallest address `>= addr` in the set, if any (like
    /// `BTreeSet::range(addr..).next()`).
    fn first_at_or_after(&self, addr: u64) -> Option<u64>;
    /// All addresses in ascending order (diagnostics/invariant checks).
    fn addrs(&self) -> Vec<u64>;
}

/// Bitmap-backed [`FreeBlockSet`]: slot `k` of the bitmap covers address
/// `base + k * stride`. Membership ops are O(1) word ops; ordered scans
/// ride the bitmap's summary index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitmapBlockSet {
    base: u64,
    stride: u64,
    bits: FreeBitmap,
}

impl BitmapBlockSet {
    /// Slot index for `addr`, or `None` when `addr` is below `base`, not
    /// on the stride lattice, or at/past the last whole block before `end`.
    fn slot_of(&self, addr: u64) -> Option<usize> {
        if addr < self.base {
            return None;
        }
        let off = addr - self.base;
        if off % self.stride != 0 {
            return None;
        }
        let slot = (off / self.stride) as usize;
        (slot < self.bits.len()).then_some(slot)
    }

    fn addr_of(&self, slot: usize) -> u64 {
        self.base + slot as u64 * self.stride
    }
}

impl FreeBlockSet for BitmapBlockSet {
    fn new(base: u64, end: u64, stride: u64) -> Self {
        debug_assert!(stride > 0);
        let span = end.saturating_sub(base);
        BitmapBlockSet {
            base,
            stride,
            bits: FreeBitmap::new((span / stride) as usize),
        }
    }

    fn len(&self) -> usize {
        self.bits.free_count()
    }

    fn contains(&self, addr: u64) -> bool {
        self.slot_of(addr).is_some_and(|s| self.bits.is_free(s))
    }

    fn insert(&mut self, addr: u64) -> bool {
        match self.slot_of(addr) {
            Some(s) if !self.bits.is_free(s) => {
                self.bits.set_free(s);
                true
            }
            _ => false,
        }
    }

    fn remove(&mut self, addr: u64) -> bool {
        match self.slot_of(addr) {
            Some(s) if self.bits.is_free(s) => {
                self.bits.set_used(s);
                true
            }
            _ => false,
        }
    }

    fn first(&self) -> Option<u64> {
        self.bits.first_free().map(|s| self.addr_of(s))
    }

    fn first_at_or_after(&self, addr: u64) -> Option<u64> {
        if addr <= self.base {
            return self.first();
        }
        let from = (addr - self.base).div_ceil(self.stride) as usize;
        self.bits.first_free_at_or_after(from).map(|s| self.addr_of(s))
    }

    fn addrs(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.bits.free_count());
        let mut i = self.bits.first_free();
        while let Some(s) = i {
            out.push(self.addr_of(s));
            i = self.bits.first_free_at_or_after(s + 1);
        }
        out
    }
}

impl Serialize for BitmapBlockSet {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("base".to_string(), self.base.to_value()),
            ("stride".to_string(), self.stride.to_value()),
            ("bits".to_string(), self.bits.to_value()),
        ])
    }
}

impl Deserialize for BitmapBlockSet {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let stride: u64 = de_field(v, "stride")?;
        if stride == 0 {
            return Err(Error::msg("corrupt BitmapBlockSet snapshot: zero stride"));
        }
        Ok(BitmapBlockSet {
            base: de_field(v, "base")?,
            stride,
            bits: de_field(v, "bits")?,
        })
    }
}

/// `BTreeSet`-backed reference [`FreeBlockSet`]; `base`/`end`/`stride` are
/// ignored because the tree stores arbitrary addresses. Kept for
/// differential property tests and as the microbenchmark baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BTreeBlockSet(BTreeSet<u64>);

impl FreeBlockSet for BTreeBlockSet {
    fn new(_base: u64, _end: u64, _stride: u64) -> Self {
        BTreeBlockSet(BTreeSet::new())
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn contains(&self, addr: u64) -> bool {
        self.0.contains(&addr)
    }

    fn insert(&mut self, addr: u64) -> bool {
        self.0.insert(addr)
    }

    fn remove(&mut self, addr: u64) -> bool {
        self.0.remove(&addr)
    }

    fn first(&self) -> Option<u64> {
        self.0.iter().next().copied()
    }

    fn first_at_or_after(&self, addr: u64) -> Option<u64> {
        self.0.range(addr..).next().copied()
    }

    fn addrs(&self) -> Vec<u64> {
        self.0.iter().copied().collect()
    }
}

impl Serialize for BTreeBlockSet {
    fn to_value(&self) -> Value {
        Value::Object(vec![(
            "addrs".to_string(),
            self.0.iter().copied().collect::<Vec<u64>>().to_value(),
        )])
    }
}

impl Deserialize for BTreeBlockSet {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let addrs: Vec<u64> = de_field(v, "addrs")?;
        Ok(BTreeBlockSet(addrs.into_iter().collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both(base: u64, end: u64, stride: u64) -> (BitmapBlockSet, BTreeBlockSet) {
        (
            BitmapBlockSet::new(base, end, stride),
            BTreeBlockSet::new(base, end, stride),
        )
    }

    #[test]
    fn insert_remove_first_match_reference() {
        let (mut bm, mut bt) = both(100, 1000, 8);
        for a in [100u64, 108, 900, 492, 988] {
            assert_eq!(bm.insert(a), bt.insert(a), "insert {a}");
        }
        assert_eq!(bm.len(), bt.len());
        assert_eq!(bm.first(), bt.first());
        assert_eq!(bm.addrs(), bt.addrs());
        for probe in [0u64, 99, 100, 101, 108, 400, 492, 900, 988, 989, 2000] {
            assert_eq!(
                bm.first_at_or_after(probe),
                bt.first_at_or_after(probe),
                "first_at_or_after {probe}"
            );
        }
        assert_eq!(bm.remove(492), bt.remove(492));
        assert_eq!(bm.remove(492), bt.remove(492)); // absent now
        assert_eq!(bm.addrs(), bt.addrs());
    }

    #[test]
    fn off_lattice_and_out_of_range_rejected() {
        let mut bm = BitmapBlockSet::new(0, 100, 8);
        assert!(!bm.insert(4)); // off-stride
        assert!(!bm.insert(96)); // 96 + 8 > 100: no whole block fits
        assert!(bm.insert(88)); // 88 + 8 <= 100
        assert!(!bm.remove(104)); // beyond end — buddy-probe style miss
        assert!(!bm.contains(4));
        assert_eq!(bm.len(), 1);
    }

    #[test]
    fn first_at_or_after_unaligned_probe_rounds_up() {
        let mut bm = BitmapBlockSet::new(0, 64, 4);
        bm.insert(8);
        bm.insert(16);
        // An unaligned probe between members must land on the next member,
        // exactly as BTreeSet::range(p..) would.
        assert_eq!(bm.first_at_or_after(9), Some(16));
        assert_eq!(bm.first_at_or_after(8), Some(8));
        assert_eq!(bm.first_at_or_after(17), None);
    }

    #[test]
    fn ragged_tail_capacity() {
        // end - base not a multiple of stride: only whole blocks exist.
        let bm = BitmapBlockSet::new(10, 45, 8);
        // slots cover 10, 18, 26, 34 — 42 would end at 50 > 45.
        let mut bm = bm;
        assert!(bm.insert(34));
        assert!(!bm.insert(42));
        assert_eq!(bm.addrs(), vec![34]);
    }

    #[test]
    fn serde_round_trip() {
        let (mut bm, _) = both(64, 512, 16);
        bm.insert(64);
        bm.insert(240);
        let back = BitmapBlockSet::from_value(&bm.to_value()).expect("round trip");
        assert_eq!(back, bm);
        assert_eq!(back.addrs(), vec![64, 240]);
    }
}
