//! Declarative, serializable policy configurations.
//!
//! Experiment drivers describe policies in **bytes** (the paper's language:
//! "1K, 8K, 64K, 1M, 16M"); [`PolicyConfig::build`] converts to disk units
//! for the concrete policy.

use crate::buddy::BuddyPolicy;
use crate::extent::ExtentPolicy;
use crate::ffs::{FfsConfig, FfsPolicy};
pub use crate::extent::FitStrategy;
use crate::fixed::FixedPolicy;
use crate::policy::Policy;
use crate::restricted::RestrictedPolicy;
use serde::{Deserialize, Serialize};

const KB: u64 = 1024;
const MB: u64 = 1024 * KB;

/// Koch buddy policy parameters (§4.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuddyConfig {
    /// Largest extent the doubling rule may produce (bytes). §5 observes
    /// 64 MB blocks for files over 100 MB.
    pub max_extent_bytes: u64,
}

impl Default for BuddyConfig {
    fn default() -> Self {
        BuddyConfig { max_extent_bytes: 64 * MB }
    }
}

/// Restricted buddy parameters (§4.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RestrictedConfig {
    /// Ascending block-size ladder in bytes; each must divide the next.
    pub block_sizes_bytes: Vec<u64>,
    /// Grow-policy multiplier `g` (1 or 2 in the paper's sweeps).
    pub grow_factor: u64,
    /// Cluster allocations into bookkeeping regions?
    pub clustered: bool,
    /// Bookkeeping region size in bytes (32 MB in the paper).
    pub region_bytes: u64,
}

impl RestrictedConfig {
    /// The paper's block-size ladder with `n` sizes (2–5):
    /// 1K/8K, +64K, +1M, +16M.
    pub fn ladder(n: usize) -> Vec<u64> {
        let all = [KB, 8 * KB, 64 * KB, MB, 16 * MB];
        assert!((2..=all.len()).contains(&n), "paper sweeps 2–5 block sizes");
        all[..n].to_vec()
    }

    /// One point of the paper's Figure 1/2 sweep.
    pub fn sweep_point(nsizes: usize, grow_factor: u64, clustered: bool) -> Self {
        RestrictedConfig {
            block_sizes_bytes: Self::ladder(nsizes),
            grow_factor,
            clustered,
            region_bytes: 32 * MB,
        }
    }
}

impl Default for RestrictedConfig {
    /// The configuration §4.2 selects for the final comparison: five block
    /// sizes, grow factor 1, clustered.
    fn default() -> Self {
        RestrictedConfig::sweep_point(5, 1, true)
    }
}

/// Extent-based policy parameters (§4.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtentBasedConfig {
    /// Extent-range means in bytes.
    pub range_means_bytes: Vec<u64>,
    /// First-fit or best-fit free-space search.
    pub fit: FitStrategy,
    /// σ/µ of each range (0.1 in the paper).
    pub sigma_frac: f64,
}

impl ExtentBasedConfig {
    /// The timesharing extent-range table from §4.3, `n` ∈ 1..=5.
    pub fn ts_ranges(n: usize) -> Vec<u64> {
        assert!((1..=5).contains(&n), "paper sweeps 1–5 extent ranges");
        match n {
            1 => vec![4 * KB],
            2 => vec![KB, 8 * KB],
            3 => vec![KB, 8 * KB, MB],
            4 => vec![KB, 4 * KB, 8 * KB, MB],
            _ => vec![KB, 4 * KB, 8 * KB, 16 * KB, MB],
        }
    }

    /// The TP/SC extent-range table from §4.3, `n` ∈ 1..=5.
    pub fn tpsc_ranges(n: usize) -> Vec<u64> {
        assert!((1..=5).contains(&n), "paper sweeps 1–5 extent ranges");
        match n {
            1 => vec![512 * KB],
            2 => vec![512 * KB, 16 * MB],
            3 => vec![512 * KB, MB, 16 * MB],
            4 => vec![512 * KB, MB, 10 * MB, 16 * MB],
            _ => vec![10 * KB, 512 * KB, MB, 10 * MB, 16 * MB],
        }
    }
}

impl Default for ExtentBasedConfig {
    /// The configuration §4.3 selects for the final comparison: first-fit
    /// with three ranges (the TP/SC table; the experiment drivers swap in
    /// the TS ranges for the timesharing workload).
    fn default() -> Self {
        ExtentBasedConfig {
            range_means_bytes: Self::tpsc_ranges(3),
            fit: FitStrategy::FirstFit,
            sigma_frac: 0.1,
        }
    }
}

/// Fixed-block baseline parameters (§5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixedConfig {
    /// Block size in bytes (4 KB or 16 KB in the paper).
    pub block_bytes: u64,
    /// Start from a shuffled (aged) free list instead of a fresh one.
    pub pre_age: bool,
}

impl Default for FixedConfig {
    fn default() -> Self {
        FixedConfig { block_bytes: 4 * KB, pre_age: false }
    }
}

/// Any of the four policy families.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicyConfig {
    /// Koch buddy allocation.
    Buddy(BuddyConfig),
    /// Restricted buddy system.
    Restricted(RestrictedConfig),
    /// Extent-based system.
    Extent(ExtentBasedConfig),
    /// Fixed-block baseline.
    Fixed(FixedConfig),
    /// BSD-FFS-style block+fragment baseline (extension; §1's [MCKU84]).
    Ffs(FfsConfig),
}

/// Alias matching the paper's terminology.
pub type ExtentConfig = ExtentBasedConfig;

impl PolicyConfig {
    /// Koch buddy with the 64 MB extent cap.
    pub fn paper_buddy() -> Self {
        PolicyConfig::Buddy(BuddyConfig::default())
    }

    /// The restricted buddy configuration chosen in §4.2 for the final
    /// comparison (5 sizes, g = 1, clustered).
    pub fn paper_restricted() -> Self {
        PolicyConfig::Restricted(RestrictedConfig::default())
    }

    /// The extent-based configuration chosen in §4.3 for the final
    /// comparison (first-fit, 3 ranges).
    pub fn paper_extent_based() -> Self {
        PolicyConfig::Extent(ExtentBasedConfig::default())
    }

    /// The 4 KB fixed-block baseline §5 compares the timesharing workload
    /// against.
    pub fn fixed_4k() -> Self {
        PolicyConfig::Fixed(FixedConfig { block_bytes: 4 * KB, pre_age: false })
    }

    /// The 16 KB fixed-block baseline §5 compares TP/SC against.
    pub fn fixed_16k() -> Self {
        PolicyConfig::Fixed(FixedConfig { block_bytes: 16 * KB, pre_age: false })
    }

    /// The classic 8 KB-block / 1 KB-fragment FFS configuration (extension).
    pub fn ffs_classic() -> Self {
        PolicyConfig::Ffs(FfsConfig::default())
    }

    /// Short policy-family name for reports.
    pub fn family(&self) -> &'static str {
        match self {
            PolicyConfig::Buddy(_) => "buddy",
            PolicyConfig::Restricted(_) => "restricted-buddy",
            PolicyConfig::Extent(_) => "extent",
            PolicyConfig::Fixed(_) => "fixed",
            PolicyConfig::Ffs(_) => "ffs",
        }
    }

    /// Builds the concrete policy over `capacity_units` disk units of
    /// `unit_bytes` each. `seed` drives any stochastic choices the policy
    /// makes (extent-size draws, pre-aging shuffles).
    pub fn build(&self, capacity_units: u64, unit_bytes: u64, seed: u64) -> Box<dyn Policy> {
        assert!(unit_bytes > 0);
        let to_units = |bytes: u64| -> u64 { (bytes / unit_bytes).max(1) };
        match self {
            PolicyConfig::Buddy(c) => {
                let p: BuddyPolicy = BuddyPolicy::new(capacity_units, to_units(c.max_extent_bytes));
                Box::new(p)
            }
            PolicyConfig::Restricted(c) => {
                let sizes: Vec<u64> = c.block_sizes_bytes.iter().map(|&b| to_units(b)).collect();
                // On heavily scaled (test-size) arrays the upper ladder may
                // not fit; drop classes larger than the capacity.
                let sizes: Vec<u64> = sizes.into_iter().filter(|&s| s <= capacity_units).collect();
                assert!(!sizes.is_empty(), "no block class fits the capacity");
                let top =
                    // simlint::allow(r3, "non-emptiness asserted two lines up")
                    *sizes.last().unwrap_or_else(|| unreachable!("asserted non-empty above"));
                let region = if c.clustered {
                    Some(to_units(c.region_bytes).min(capacity_units.max(top)))
                } else {
                    None
                };
                // Keep the region a multiple of the top class even after
                // the min() clamp above.
                let region = region.map(|r| (r / top * top).max(top));
                let p: RestrictedPolicy =
                    RestrictedPolicy::new(capacity_units, &sizes, c.grow_factor, region);
                Box::new(p)
            }
            PolicyConfig::Extent(c) => {
                let means: Vec<u64> = c.range_means_bytes.iter().map(|&b| to_units(b)).collect();
                let p: ExtentPolicy =
                    ExtentPolicy::new(capacity_units, &means, c.fit, c.sigma_frac, unit_bytes, seed);
                Box::new(p)
            }
            PolicyConfig::Fixed(c) => {
                Box::new(FixedPolicy::new(capacity_units, to_units(c.block_bytes), c.pre_age, seed))
            }
            PolicyConfig::Ffs(c) => {
                let mut c = c.clone();
                // The disk unit *is* the fragment in this model.
                c.fragment_bytes = unit_bytes;
                let p: FfsPolicy = FfsPolicy::from_config(capacity_units, unit_bytes, &c);
                Box::new(p)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FileHints;

    #[test]
    fn ladders_match_the_paper() {
        assert_eq!(RestrictedConfig::ladder(2), vec![KB, 8 * KB]);
        assert_eq!(
            RestrictedConfig::ladder(5),
            vec![KB, 8 * KB, 64 * KB, MB, 16 * MB]
        );
        assert_eq!(ExtentBasedConfig::ts_ranges(3), vec![KB, 8 * KB, MB]);
        assert_eq!(
            ExtentBasedConfig::tpsc_ranges(5),
            vec![10 * KB, 512 * KB, MB, 10 * MB, 16 * MB]
        );
    }

    #[test]
    fn build_produces_working_policies() {
        let cap = 64 * MB / KB; // 64 K units of 1 KB
        for config in [
            PolicyConfig::paper_buddy(),
            PolicyConfig::paper_restricted(),
            PolicyConfig::paper_extent_based(),
            PolicyConfig::fixed_4k(),
            PolicyConfig::fixed_16k(),
        ] {
            let mut p = config.build(cap, KB, 11);
            assert_eq!(p.capacity_units(), if config.family() == "fixed" { p.capacity_units() } else { cap });
            let f = p.create(&FileHints::default()).unwrap();
            p.extend(f, 100).unwrap();
            assert!(p.allocated_units(f).unwrap() >= 100, "{}", config.family());
            p.check_invariants();
            p.delete(f).unwrap();
            p.check_invariants();
        }
    }

    #[test]
    fn restricted_build_drops_oversized_classes() {
        // A 1024-unit capacity (1 KB units) cannot hold 64 KB+ classes;
        // the build must still produce a working ladder.
        let config = PolicyConfig::paper_restricted();
        let mut p = config.build(1024, KB, 0);
        let f = p.create(&FileHints::default()).unwrap();
        p.extend(f, 512).unwrap();
        p.check_invariants();
    }

    #[test]
    fn config_serde_round_trip() {
        let configs = [
            PolicyConfig::paper_buddy(),
            PolicyConfig::paper_restricted(),
            PolicyConfig::paper_extent_based(),
            PolicyConfig::fixed_16k(),
        ];
        for c in configs {
            let json = serde_json::to_string(&c).unwrap();
            let back: PolicyConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(c, back);
        }
    }
}
