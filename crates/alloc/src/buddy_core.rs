//! The classic binary-buddy free-space manager \[KNOW65, KNUT69\].
//!
//! Blocks are powers of two in size and aligned to their size. A block of
//! order `k` (`2^k` units) splits into two order `k-1` *buddies*; a freed
//! block whose buddy is also free coalesces back into its parent,
//! recursively. Used by the Koch policy (§4.1).

use crate::blockset::{BitmapBlockSet, FreeBlockSet};

/// Binary-buddy manager over the unit range `[0, capacity)`.
///
/// The capacity need not be a power of two: the space is seeded with the
/// greedy decomposition of `[0, capacity)` into maximal aligned blocks, and
/// coalescing never produces a block extending past `capacity`.
///
/// Generic over the per-order free-block container (bitmap by default; the
/// `BTreeBlockSet` reference backend makes identical decisions and exists
/// for differential tests and benchmark baselines).
#[derive(Debug, Clone)]
pub struct BuddyCore<S: FreeBlockSet = BitmapBlockSet> {
    capacity: u64,
    max_order: u32,
    /// `free[k]` holds the start addresses of free order-`k` blocks.
    free: Vec<S>,
    free_units: u64,
}

/// Smallest order whose block size is ≥ `units`.
pub fn order_for_units(units: u64) -> u32 {
    debug_assert!(units > 0);
    units.next_power_of_two().trailing_zeros()
}

impl<S: FreeBlockSet> BuddyCore<S> {
    /// Creates a manager with `[0, capacity)` entirely free.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "empty buddy space");
        let max_order = 63 - capacity.leading_zeros();
        let mut free: Vec<S> =
            (0..=max_order).map(|k| S::new(0, capacity, 1 << k)).collect();
        // Greedy decomposition: at each address, take the largest aligned
        // block that still fits.
        let mut addr = 0u64;
        while addr < capacity {
            let align_order = if addr == 0 { max_order } else { addr.trailing_zeros().min(max_order) };
            let remain = capacity - addr;
            let fit_order = 63 - remain.leading_zeros();
            let order = align_order.min(fit_order);
            free[order as usize].insert(addr);
            addr += 1 << order;
        }
        BuddyCore { capacity, max_order, free, free_units: capacity }
    }

    /// Unit capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Currently free units.
    pub fn free_units(&self) -> u64 {
        self.free_units
    }

    /// Largest order (inclusive) this manager tracks.
    pub fn max_order(&self) -> u32 {
        self.max_order
    }

    /// Size in units of the largest free block.
    pub fn largest_free_block(&self) -> u64 {
        for k in (0..=self.max_order).rev() {
            if !self.free[k as usize].is_empty() {
                return 1 << k;
            }
        }
        0
    }

    /// Allocates one aligned block of order `order`, splitting larger
    /// blocks as needed (always from the lowest available address).
    pub fn allocate(&mut self, order: u32) -> Option<u64> {
        if order > self.max_order {
            return None;
        }
        let mut have = order;
        while have <= self.max_order && self.free[have as usize].is_empty() {
            have += 1;
        }
        if have > self.max_order {
            return None;
        }
        // The loop above stopped on a non-empty set, so `first()` is `Some`;
        // treating `None` as exhaustion keeps this branch panic-free.
        let Some(addr) = self.free[have as usize].first() else {
            return None;
        };
        self.free[have as usize].remove(addr);
        // Split down, keeping the lower half each time.
        while have > order {
            have -= 1;
            self.free[have as usize].insert(addr + (1 << have));
        }
        self.free_units -= 1 << order;
        Some(addr)
    }

    /// Frees the order-`order` block at `addr`, coalescing with free
    /// buddies as far as possible.
    pub fn free(&mut self, addr: u64, order: u32) {
        debug_assert_eq!(addr % (1 << order), 0, "misaligned free");
        debug_assert!(addr + (1 << order) <= self.capacity, "free past end");
        // Coalescing moves units between orders without changing the free
        // total, so only the originally freed size is added at the end.
        let freed_units = 1u64 << order;
        let mut addr = addr;
        let mut order = order;
        while order < self.max_order {
            let buddy = addr ^ (1u64 << order);
            // The buddy may lie (partly) beyond capacity, in which case it
            // can never be in the free set.
            if !self.free[order as usize].remove(buddy) {
                break;
            }
            addr = addr.min(buddy);
            order += 1;
        }
        let inserted = self.free[order as usize].insert(addr);
        debug_assert!(inserted, "double free of block at {addr}");
        self.free_units += freed_units;
    }

    /// Number of free blocks of each order, for diagnostics.
    pub fn free_histogram(&self) -> Vec<(u32, usize)> {
        // Iterate orders (at most `max_order` ≤ 63) rather than casting the
        // enumerate index down from usize.
        (0..=self.max_order)
            .filter(|&k| !self.free[k as usize].is_empty())
            .map(|k| (k, self.free[k as usize].len()))
            .collect()
    }

    /// Debug invariant: blocks aligned, in bounds, disjoint, counts
    /// consistent, and maximally coalesced.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut blocks: Vec<(u64, u64)> = Vec::new();
        let mut total = 0u64;
        for (k, set) in self.free.iter().enumerate() {
            for a in set.addrs() {
                let size = 1u64 << k;
                assert_eq!(a % size, 0, "misaligned block {a} of order {k}");
                assert!(a + size <= self.capacity, "block {a} of order {k} out of bounds");
                blocks.push((a, size));
                total += size;
                // Maximal coalescing: the buddy must not also be free.
                if k < self.max_order as usize {
                    let buddy = a ^ size;
                    assert!(
                        !set.contains(buddy) || buddy + size > self.capacity,
                        "uncoalesced buddies at {a}/{buddy} order {k}"
                    );
                }
            }
        }
        assert_eq!(total, self.free_units, "free unit count out of sync");
        blocks.sort_unstable();
        for w in blocks.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlapping free blocks");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_for_units_rounds_up() {
        assert_eq!(order_for_units(1), 0);
        assert_eq!(order_for_units(2), 1);
        assert_eq!(order_for_units(3), 2);
        assert_eq!(order_for_units(8), 3);
        assert_eq!(order_for_units(9), 4);
    }

    #[test]
    fn power_of_two_capacity_seeds_one_block() {
        let b: BuddyCore = BuddyCore::new(1024);
        assert_eq!(b.free_units(), 1024);
        assert_eq!(b.largest_free_block(), 1024);
        b.check_invariants();
    }

    #[test]
    fn odd_capacity_decomposes_greedily() {
        // 1000 = 512 + 256 + 128 + 64 + 32 + 8
        let b: BuddyCore = BuddyCore::new(1000);
        assert_eq!(b.free_units(), 1000);
        let hist = b.free_histogram();
        let orders: Vec<u32> = hist.iter().map(|&(k, _)| k).collect();
        assert_eq!(orders, vec![3, 5, 6, 7, 8, 9]);
        b.check_invariants();
    }

    #[test]
    fn allocate_splits_from_lowest_address() {
        let mut b: BuddyCore = BuddyCore::new(1024);
        let a = b.allocate(3).unwrap(); // 8 units
        assert_eq!(a, 0);
        let c = b.allocate(3).unwrap();
        assert_eq!(c, 8, "next split block");
        assert_eq!(b.free_units(), 1024 - 16);
        b.check_invariants();
    }

    #[test]
    fn free_coalesces_back_to_root() {
        let mut b: BuddyCore = BuddyCore::new(1024);
        let a = b.allocate(3).unwrap();
        let c = b.allocate(3).unwrap();
        b.free(a, 3);
        b.check_invariants();
        b.free(c, 3);
        b.check_invariants();
        assert_eq!(b.largest_free_block(), 1024, "fully re-coalesced");
    }

    #[test]
    fn allocation_failure_when_no_large_block() {
        let mut b: BuddyCore = BuddyCore::new(1024);
        // Fragment: allocate all 512-blocks' worth in 1-unit pieces... use a
        // cheaper scheme: take both 512 halves, free one, ask for 1024.
        let lo = b.allocate(9).unwrap();
        let _hi = b.allocate(9).unwrap();
        b.free(lo, 9);
        assert!(b.allocate(10).is_none(), "only 512 free");
        assert_eq!(b.free_units(), 512);
    }

    #[test]
    fn cannot_allocate_beyond_max_order() {
        let mut b: BuddyCore = BuddyCore::new(100);
        assert!(b.allocate(12).is_none());
    }

    #[test]
    fn coalescing_respects_capacity_edge() {
        // Capacity 96 = 64 + 32. Free 32-block at 64 has buddy 96..128 which
        // does not exist; freeing everything must restore exactly 64 + 32.
        let mut b: BuddyCore = BuddyCore::new(96);
        // First order-5 request takes the seeded 32-block at 64; the next
        // two split the 64-block at 0.
        let a = b.allocate(5).unwrap();
        let c = b.allocate(5).unwrap();
        let d = b.allocate(5).unwrap();
        assert_eq!((a, c, d), (64, 0, 32));
        b.free(d, 5);
        b.free(c, 5);
        b.free(a, 5);
        b.check_invariants();
        assert_eq!(b.free_units(), 96);
        let hist = b.free_histogram();
        assert_eq!(hist, vec![(5, 1), (6, 1)]);
    }

    #[test]
    fn interleaved_stress_keeps_invariants() {
        let mut b: BuddyCore = BuddyCore::new(4096 + 512);
        let mut held: Vec<(u64, u32)> = Vec::new();
        for i in 0..200u32 {
            let order = i % 5;
            if i % 3 == 0 && !held.is_empty() {
                let (a, k) = held.remove((i as usize * 7) % held.len());
                b.free(a, k);
            } else if let Some(a) = b.allocate(order) {
                held.push((a, order));
            }
            b.check_invariants();
        }
        for (a, k) in held {
            b.free(a, k);
        }
        b.check_invariants();
        assert_eq!(b.free_units(), 4096 + 512);
    }
}
