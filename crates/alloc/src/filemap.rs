//! Per-file extent maps: the logical-to-physical translation layer.

use crate::types::Extent;
use serde::{Deserialize, Serialize};

/// The ordered list of extents backing one file.
///
/// Extent `i` holds the file's logical units starting at the sum of the
/// lengths of extents `0..i`. Appends that are physically adjacent to the
/// tail extent are merged, so a perfectly sequential allocation shows up as
/// a single extent regardless of how many allocation calls produced it.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FileMap {
    extents: Vec<Extent>,
    total: u64,
}

impl FileMap {
    /// An empty map.
    pub fn new() -> Self {
        FileMap::default()
    }

    /// Total allocated units.
    pub fn total_units(&self) -> u64 {
        self.total
    }

    /// Number of (merged) extents.
    pub fn extent_count(&self) -> usize {
        self.extents.len()
    }

    /// The extents in logical order.
    pub fn extents(&self) -> &[Extent] {
        &self.extents
    }

    /// Physical address of the unit immediately after the file's last
    /// allocated unit — where a contiguity-seeking allocator would like the
    /// next block to land. `None` for an empty file.
    pub fn next_sequential_unit(&self) -> Option<u64> {
        self.extents.last().map(Extent::end)
    }

    /// Appends an extent, merging with the tail when physically adjacent.
    pub fn push(&mut self, e: Extent) {
        debug_assert!(e.len > 0);
        self.total += e.len;
        if let Some(last) = self.extents.last_mut() {
            if last.abuts(&e) {
                last.len += e.len;
                return;
            }
        }
        self.extents.push(e);
    }

    /// Removes `units` from the end of the file, returning the freed
    /// physical runs (tail first). Removes at most the whole file.
    pub fn pop_back(&mut self, units: u64) -> Vec<Extent> {
        let mut remaining = units.min(self.total);
        let mut freed = Vec::new();
        while remaining > 0 {
            // `total > 0` implies extents exist; if the two ever disagreed,
            // stopping early loses nothing (the freed list is still exact).
            let Some(last) = self.extents.last_mut() else {
                debug_assert!(false, "total > 0 with no extents");
                break;
            };
            if last.len <= remaining {
                remaining -= last.len;
                self.total -= last.len;
                freed.push(*last);
                self.extents.pop();
            } else {
                last.len -= remaining;
                self.total -= remaining;
                freed.push(Extent::new(last.end(), remaining));
                remaining = 0;
            }
        }
        freed
    }

    /// Removes and returns every extent, emptying the map.
    pub fn take_all(&mut self) -> Vec<Extent> {
        self.total = 0;
        std::mem::take(&mut self.extents)
    }

    /// Maps the logical range `[offset, offset + len)` (in units) to
    /// physical runs, in logical order. The range is clamped to the
    /// allocated size.
    pub fn map_range(&self, offset: u64, len: u64) -> Vec<Extent> {
        let mut out = Vec::new();
        self.map_range_into(offset, len, &mut out);
        out
    }

    /// As [`map_range`], writing the runs into `out` (cleared first). Lets
    /// the simulator's per-operation hot path reuse one scratch buffer
    /// instead of allocating a fresh `Vec` for every transfer.
    pub fn map_range_into(&self, offset: u64, len: u64, out: &mut Vec<Extent>) {
        out.clear();
        let end = (offset + len).min(self.total);
        if offset >= end {
            return;
        }
        let mut logical = 0u64;
        for e in &self.extents {
            let e_end = logical + e.len;
            if e_end > offset && logical < end {
                let lo = offset.max(logical);
                let hi = end.min(e_end);
                out.push(Extent::new(e.start + (lo - logical), hi - lo));
            }
            logical = e_end;
            if logical >= end {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_merges_adjacent() {
        let mut m = FileMap::new();
        m.push(Extent::new(0, 4));
        m.push(Extent::new(4, 4));
        m.push(Extent::new(100, 8));
        assert_eq!(m.extent_count(), 2);
        assert_eq!(m.total_units(), 16);
        assert_eq!(m.extents()[0], Extent::new(0, 8));
    }

    #[test]
    fn next_sequential_tracks_tail() {
        let mut m = FileMap::new();
        assert_eq!(m.next_sequential_unit(), None);
        m.push(Extent::new(10, 6));
        assert_eq!(m.next_sequential_unit(), Some(16));
    }

    #[test]
    fn pop_back_splits_extents() {
        let mut m = FileMap::new();
        m.push(Extent::new(0, 8));
        m.push(Extent::new(100, 8));
        let freed = m.pop_back(10);
        assert_eq!(freed, vec![Extent::new(100, 8), Extent::new(6, 2)]);
        assert_eq!(m.total_units(), 6);
        assert_eq!(m.extents(), &[Extent::new(0, 6)]);
    }

    #[test]
    fn pop_back_clamps_to_size() {
        let mut m = FileMap::new();
        m.push(Extent::new(5, 3));
        let freed = m.pop_back(100);
        assert_eq!(freed, vec![Extent::new(5, 3)]);
        assert_eq!(m.total_units(), 0);
        assert_eq!(m.extent_count(), 0);
    }

    #[test]
    fn take_all_empties() {
        let mut m = FileMap::new();
        m.push(Extent::new(0, 2));
        m.push(Extent::new(9, 2));
        let all = m.take_all();
        assert_eq!(all.len(), 2);
        assert_eq!(m.total_units(), 0);
    }

    #[test]
    fn map_range_spans_extents() {
        let mut m = FileMap::new();
        m.push(Extent::new(0, 4)); // logical 0..4
        m.push(Extent::new(10, 4)); // logical 4..8
        m.push(Extent::new(20, 4)); // logical 8..12
        assert_eq!(m.map_range(2, 8), vec![
            Extent::new(2, 2),
            Extent::new(10, 4),
            Extent::new(20, 2),
        ]);
    }

    #[test]
    fn map_range_clamps_and_handles_empty() {
        let mut m = FileMap::new();
        m.push(Extent::new(0, 4));
        assert_eq!(m.map_range(3, 100), vec![Extent::new(3, 1)]);
        assert!(m.map_range(4, 1).is_empty());
        assert!(m.map_range(0, 0).is_empty());
    }

    #[test]
    fn map_range_whole_file() {
        let mut m = FileMap::new();
        m.push(Extent::new(7, 5));
        m.push(Extent::new(50, 5));
        let runs = m.map_range(0, m.total_units());
        assert_eq!(runs.iter().map(|e| e.len).sum::<u64>(), 10);
    }
}
