//! Process-level tests of the coordinator/worker service: real forked
//! workers (the `dist_smoke_worker` bin), real pipes, real kills.

use readopt_dist::{run_sweep, CoordinatorConfig, DistError, WorkerSpec};
use std::path::PathBuf;
use std::time::Duration;

fn smoke_worker() -> WorkerSpec {
    WorkerSpec {
        program: PathBuf::from(env!("CARGO_BIN_EXE_dist_smoke_worker")),
        args: Vec::new(),
        env: Vec::new(),
    }
}

fn quick_config(workers: usize) -> CoordinatorConfig {
    CoordinatorConfig {
        heartbeat_timeout: Duration::from_secs(10),
        ..CoordinatorConfig::new(workers)
    }
}

#[test]
fn reassembles_in_submission_order() {
    let out = run_sweep(&smoke_worker(), &quick_config(3), "{}", "square", 17).expect("sweep");
    let want: Vec<String> = (0..17u64).map(|i| (i * i).to_string()).collect();
    assert_eq!(out.payloads, want);
    assert_eq!(out.wall_ms.len(), 17);
    assert_eq!(out.retries, 0);
    assert!((1..=3).contains(&out.workers_spawned), "spawned {}", out.workers_spawned);
}

#[test]
fn context_reaches_every_worker() {
    let ctx = "{\"seed\":1234}";
    let out = run_sweep(&smoke_worker(), &quick_config(2), ctx, "ctx-echo", 5).expect("sweep");
    for (i, payload) in out.payloads.iter().enumerate() {
        assert_eq!(payload, &format!("{ctx}#{i}"));
    }
}

#[test]
fn empty_sweep_spawns_nothing() {
    let out = run_sweep(&smoke_worker(), &quick_config(4), "{}", "square", 0).expect("sweep");
    assert!(out.payloads.is_empty());
    assert_eq!(out.workers_spawned, 0);
}

#[test]
fn slow_points_survive_on_heartbeats() {
    // Points take ~600 ms; the deadline is 1 s but heartbeats arrive every
    // 250 ms, so nothing times out even across several sequential points.
    let cfg = CoordinatorConfig {
        heartbeat_timeout: Duration::from_secs(1),
        ..CoordinatorConfig::new(2)
    };
    let out = run_sweep(&smoke_worker(), &cfg, "{}", "slow", 4).expect("sweep");
    assert_eq!(out.payloads, vec!["0", "1", "2", "3"]);
    assert_eq!(out.retries, 0);
}

#[test]
fn killed_worker_point_is_reassigned() {
    // Worker 0 aborts right after its first result frame; the coordinator
    // must respawn and every point must still come back, in order.
    let mut spec = smoke_worker();
    spec.env.push((String::from("READOPT_DIST_KILL"), String::from("0:1")));
    let out = run_sweep(&spec, &quick_config(2), "{}", "square", 10).expect("sweep");
    let want: Vec<String> = (0..10u64).map(|i| (i * i).to_string()).collect();
    assert_eq!(out.payloads, want, "retried points must reproduce identical bytes");
    assert!(out.workers_spawned > 2, "a replacement worker must have spawned");
}

#[test]
fn hung_worker_times_out_and_point_is_reassigned() {
    // Worker 0 never heartbeats and stalls on its first assignment; a
    // short deadline declares it dead and the point lands elsewhere.
    let mut spec = smoke_worker();
    spec.env.push((String::from("READOPT_DIST_MUTE"), String::from("0")));
    let cfg = CoordinatorConfig {
        heartbeat_timeout: Duration::from_millis(500),
        ..CoordinatorConfig::new(2)
    };
    let out = run_sweep(&spec, &cfg, "{}", "square", 6).expect("sweep");
    let want: Vec<String> = (0..6u64).map(|i| (i * i).to_string()).collect();
    assert_eq!(out.payloads, want);
    assert!(out.retries >= 1, "the hung worker's point must have been retried");
}

#[test]
fn deterministic_point_failure_aborts_without_retry_storm() {
    let err = run_sweep(&smoke_worker(), &quick_config(2), "{}", "always-fails", 4)
        .expect_err("runner errors are fatal");
    match err {
        DistError::PointFailed { error, .. } => {
            assert!(error.contains("cannot be computed"), "got: {error}")
        }
        other => panic!("expected PointFailed, got {other:?}"),
    }
}

/// A "worker" that emits raw bytes and exits — for malformed-frame cases.
fn byte_emitter(printf_escape: &str) -> WorkerSpec {
    WorkerSpec {
        program: PathBuf::from("/bin/sh"),
        args: vec![
            String::from("-c"),
            // Linger briefly so the malformed bytes (not a racing broken
            // pipe on the coordinator's Hello) are what gets diagnosed.
            format!("printf '{printf_escape}'; sleep 1"),
        ],
        env: Vec::new(),
    }
}

fn reject_config() -> CoordinatorConfig {
    CoordinatorConfig {
        heartbeat_timeout: Duration::from_secs(2),
        max_respawns: 0,
        ..CoordinatorConfig::new(1)
    }
}

#[test]
fn truncated_length_prefix_rejects_worker_without_panicking() {
    let err = run_sweep(&byte_emitter(r"\005\000"), &reject_config(), "{}", "square", 2)
        .expect_err("truncated prefix");
    let msg = err.to_string();
    assert!(
        msg.contains("truncated") || msg.contains("exited") || msg.contains("retired"),
        "got: {msg}"
    );
}

#[test]
fn bad_tag_rejects_worker_without_panicking() {
    // length 3, tag 0xEE, payload "{}"
    let err = run_sweep(&byte_emitter(r"\003\000\000\000\356{}"), &reject_config(), "{}", "square", 2)
        .expect_err("bad tag");
    assert!(err.to_string().contains("unknown frame tag"), "got: {err}");
}

#[test]
fn oversized_length_rejects_worker_without_panicking() {
    let err = run_sweep(&byte_emitter(r"\377\377\377\377"), &reject_config(), "{}", "square", 2)
        .expect_err("oversized frame");
    assert!(err.to_string().contains("oversized frame"), "got: {err}");
}

#[test]
fn version_mismatch_is_rejected_at_handshake() {
    // A well-formed Ready frame announcing protocol version 99.
    // payload: {"version":99,"worker":0} (25 bytes) + tag → length 26.
    let err = run_sweep(
        &byte_emitter(r#"\032\000\000\000\002{"version":99,"worker":0}"#),
        &reject_config(),
        "{}",
        "square",
        2,
    )
    .expect_err("version mismatch");
    match err {
        DistError::Version { ours, theirs } => {
            assert_eq!(ours, readopt_dist::PROTOCOL_VERSION);
            assert_eq!(theirs, 99);
        }
        other => panic!("expected Version, got {other:?}"),
    }
}
