//! The coordinator: spawns workers, hands out points, reassembles results.
//!
//! One supervisor thread per worker slot owns the child process end to
//! end: spawn, handshake, assign/await loop, graceful shutdown. A
//! dedicated reader thread per child pumps frames off the child's stdout
//! into an mpsc channel so the supervisor can wait with a timeout
//! (`recv_timeout`) — that timeout *is* the heartbeat deadline, so no
//! wall-clock reads are needed here (r2 stays token-clean; liveness is
//! delegated to the channel primitive).
//!
//! Shared state is a single mutex (pending queue, result slots, retry
//! bookkeeping) plus a condvar for "new work or sweep over". Results are
//! parked in per-index slots, so reassembly is in submission order no
//! matter which worker finished which point when — the property the
//! byte-identity tests pin.
//!
//! Failure model:
//!
//! * **Worker death** (EOF, read error, write error, heartbeat silence,
//!   unexpected frame): the supervisor kills/reaps the child, requeues the
//!   in-flight point (charging one attempt), and respawns a replacement if
//!   the shared respawn budget allows; otherwise the slot retires and the
//!   surviving workers drain the queue.
//! * **Deterministic point failure** (worker sends `Failed`): fatal for
//!   the whole sweep — a deterministic computation will fail identically
//!   on every retry.
//! * **Budget exhaustion** (a point out of attempts, or every slot
//!   retired with work remaining): the sweep aborts with
//!   [`DistError::Exhausted`].

use crate::proto::{self, Assign, Hello, Msg, PROTOCOL_VERSION};
use crate::DistError;
use std::collections::VecDeque;
use std::io::Write;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// How to launch one worker process.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// Worker executable (typically `std::env::current_exe()`).
    pub program: PathBuf,
    /// Arguments selecting agent mode (e.g. `["--worker-agent"]`).
    pub args: Vec<String>,
    /// Extra environment variables (the child also inherits the
    /// coordinator's environment). Used by fault-injection tests.
    pub env: Vec<(String, String)>,
}

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Worker process count (clamped to at least 1, at most the point count).
    pub workers: usize,
    /// A worker that produces no frame (result *or* heartbeat) for this
    /// long is declared hung and killed; its point is reassigned.
    pub heartbeat_timeout: Duration,
    /// Times a single point may be attempted before the sweep aborts.
    pub max_point_attempts: u32,
    /// Replacement workers the whole sweep may spawn beyond the initial
    /// fleet (a crashing *point* would otherwise respawn forever).
    pub max_respawns: u32,
}

impl CoordinatorConfig {
    /// Defaults: 30 s heartbeat deadline, 3 attempts per point, 4 respawns.
    pub fn new(workers: usize) -> Self {
        CoordinatorConfig {
            workers: workers.max(1),
            heartbeat_timeout: Duration::from_secs(30),
            max_point_attempts: 3,
            max_respawns: 4,
        }
    }
}

/// A completed sweep, in submission order.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Per-point serialized result payloads, index-aligned with the
    /// submitted job list.
    pub payloads: Vec<String>,
    /// Per-point worker-side wall-clock milliseconds (profiling only).
    pub wall_ms: Vec<f64>,
    /// Points that were reassigned after a worker died or hung.
    pub retries: u64,
    /// Total worker processes spawned, including replacements.
    pub workers_spawned: u32,
}

struct Shared {
    pending: VecDeque<usize>,
    slots: Vec<Option<(String, f64)>>,
    attempts: Vec<u32>,
    done: usize,
    /// Length of the contiguous done-prefix already handed to the
    /// streaming observer — results stream strictly in submission order,
    /// each exactly once, no matter which worker finished when.
    streamed: usize,
    retries: u64,
    respawns_left: u32,
    live_slots: usize,
    fatal: Option<DistError>,
}

struct Coord {
    state: Mutex<Shared>,
    wake: Condvar,
}

fn lock(coord: &Coord) -> MutexGuard<'_, Shared> {
    coord.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Frames (or the lack of them) surfaced by a child's reader thread.
enum Event {
    Frame(Msg),
    Eof,
    ReadError(DistError),
}

struct Conn {
    child: Child,
    stdin: ChildStdin,
    rx: Receiver<Event>,
}

/// Runs `points` sweep points across `cfg.workers` processes launched
/// from `spec`, reassembling payloads in submission order.
pub fn run_sweep(
    spec: &WorkerSpec,
    cfg: &CoordinatorConfig,
    ctx_json: &str,
    experiment: &str,
    points: usize,
) -> Result<SweepOutcome, DistError> {
    run_sweep_with(spec, cfg, ctx_json, experiment, points, &|_, _| {})
}

/// As [`run_sweep`], additionally streaming each completed payload to
/// `on_point(index, payload)` **in submission order** as soon as the
/// contiguous prefix of the sweep is done. A crashed-and-retried point
/// streams exactly once (the committed attempt); a sweep that later
/// aborts has streamed only a clean prefix — which is exactly what an
/// append-only results store can resume from.
pub fn run_sweep_with(
    spec: &WorkerSpec,
    cfg: &CoordinatorConfig,
    ctx_json: &str,
    experiment: &str,
    points: usize,
    on_point: &(dyn Fn(usize, &str) + Sync),
) -> Result<SweepOutcome, DistError> {
    if points == 0 {
        return Ok(SweepOutcome {
            payloads: Vec::new(),
            wall_ms: Vec::new(),
            retries: 0,
            workers_spawned: 0,
        });
    }
    let fleet = cfg.workers.max(1).min(points);
    let coord = Coord {
        state: Mutex::new(Shared {
            pending: (0..points).collect(),
            slots: (0..points).map(|_| None).collect(),
            attempts: vec![0; points],
            done: 0,
            streamed: 0,
            retries: 0,
            respawns_left: cfg.max_respawns,
            live_slots: fleet,
            fatal: None,
        }),
        wake: Condvar::new(),
    };
    let next_worker_id = AtomicU32::new(0);
    let spawned = AtomicU32::new(0);
    let next_task = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..fleet {
            scope.spawn(|| {
                supervise(
                    &coord,
                    spec,
                    cfg,
                    ctx_json,
                    experiment,
                    &next_worker_id,
                    &spawned,
                    &next_task,
                    on_point,
                );
            });
        }
    });

    let st = coord.state.into_inner().unwrap_or_else(PoisonError::into_inner);
    if let Some(fatal) = st.fatal {
        return Err(fatal);
    }
    if st.done != points {
        return Err(DistError::Exhausted(format!(
            "sweep ended with {} of {points} points done",
            st.done
        )));
    }
    let mut payloads = Vec::with_capacity(points);
    let mut wall_ms = Vec::with_capacity(points);
    for slot in st.slots {
        match slot {
            Some((payload, ms)) => {
                payloads.push(payload);
                wall_ms.push(ms);
            }
            None => {
                return Err(DistError::Exhausted(String::from(
                    "internal: done count full but a result slot is empty",
                )))
            }
        }
    }
    Ok(SweepOutcome { payloads, wall_ms, retries: st.retries, workers_spawned: spawned.load(Ordering::Relaxed) })
}

/// One worker slot's lifecycle: claim points, keep a child alive to run
/// them, retire when the sweep completes/aborts or budgets run out.
#[allow(clippy::too_many_arguments)]
fn supervise(
    coord: &Coord,
    spec: &WorkerSpec,
    cfg: &CoordinatorConfig,
    ctx_json: &str,
    experiment: &str,
    next_worker_id: &AtomicU32,
    spawned: &AtomicU32,
    next_task: &AtomicU64,
    on_point: &(dyn Fn(usize, &str) + Sync),
) {
    let mut conn: Option<Conn> = None;
    let mut first_spawn_free = true;

    loop {
        // Claim the next pending point, or learn the sweep is over.
        let index = {
            let mut st = lock(coord);
            loop {
                if st.fatal.is_some() || st.done == st.slots.len() {
                    break None;
                }
                if let Some(i) = st.pending.pop_front() {
                    break Some(i);
                }
                st = coord.wake.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(index) = index else { break };

        // Make sure a handshaken child exists (spawning draws on the
        // shared respawn budget after this slot's first child).
        if conn.is_none() {
            if !first_spawn_free {
                let mut st = lock(coord);
                if st.respawns_left == 0 {
                    st.pending.push_front(index);
                    coord.wake.notify_all();
                    drop(st);
                    retire(coord);
                    return;
                }
                st.respawns_left -= 1;
            }
            first_spawn_free = false;
            match connect(spec, cfg, ctx_json, next_worker_id, spawned) {
                Ok(c) => conn = Some(c),
                Err(e) => {
                    // The point never ran; requeue without charging an
                    // attempt and retire this slot — a spawn failure is
                    // environmental and will repeat.
                    let mut st = lock(coord);
                    st.pending.push_front(index);
                    if st.fatal.is_none() {
                        st.fatal = Some(e);
                    }
                    coord.wake.notify_all();
                    drop(st);
                    retire(coord);
                    return;
                }
            }
        }
        let Some(ref mut c) = conn else { break };

        let task = next_task.fetch_add(1, Ordering::Relaxed);
        match run_point(c, cfg, experiment, task, index) {
            Ok((payload, wall_ms)) => {
                let mut st = lock(coord);
                if st.slots[index].is_none() {
                    st.slots[index] = Some((payload, wall_ms));
                    st.done += 1;
                }
                // Stream the newly contiguous done-prefix, in order, under
                // the lock (appends are cheap; holding it keeps the order
                // and exactly-once guarantees trivially true).
                loop {
                    let i = st.streamed;
                    let Some(Some((payload, _))) = st.slots.get(i) else { break };
                    on_point(i, payload);
                    st.streamed = i + 1;
                }
                coord.wake.notify_all();
            }
            Err(PointError::Fatal(e)) => {
                let mut st = lock(coord);
                if st.fatal.is_none() {
                    st.fatal = Some(e);
                }
                coord.wake.notify_all();
                break;
            }
            Err(PointError::WorkerDead(cause)) => {
                if let Some(dead) = conn.take() {
                    dispose(dead);
                }
                let mut st = lock(coord);
                st.attempts[index] += 1;
                if st.attempts[index] >= cfg.max_point_attempts {
                    if st.fatal.is_none() {
                        st.fatal = Some(DistError::Exhausted(format!(
                            "point {index} failed {} attempts (last worker loss: {cause})",
                            st.attempts[index]
                        )));
                    }
                    coord.wake.notify_all();
                    break;
                }
                st.retries += 1;
                st.pending.push_front(index);
                coord.wake.notify_all();
            }
        }
    }

    if let Some(c) = conn.take() {
        shutdown(c);
    }
    retire(coord);
}

/// Marks a supervisor slot gone; if it was the last one and work remains,
/// the sweep can never finish — record that as the fatal error.
fn retire(coord: &Coord) {
    let mut st = lock(coord);
    st.live_slots -= 1;
    if st.live_slots == 0 && st.done != st.slots.len() && st.fatal.is_none() {
        st.fatal = Some(DistError::Exhausted(String::from(
            "all workers retired (respawn budget spent) with points unfinished",
        )));
    }
    coord.wake.notify_all();
}

/// Spawns a child, starts its reader thread, and completes the handshake.
fn connect(
    spec: &WorkerSpec,
    cfg: &CoordinatorConfig,
    ctx_json: &str,
    next_worker_id: &AtomicU32,
    spawned: &AtomicU32,
) -> Result<Conn, DistError> {
    let worker_id = next_worker_id.fetch_add(1, Ordering::Relaxed);
    let mut command = Command::new(&spec.program);
    command.args(&spec.args).stdin(Stdio::piped()).stdout(Stdio::piped()).stderr(Stdio::inherit());
    for (k, v) in &spec.env {
        command.env(k, v);
    }
    let mut child = command
        .spawn()
        .map_err(|e| DistError::Io(format!("spawn worker {}: {e}", spec.program.display())))?;
    spawned.fetch_add(1, Ordering::Relaxed);
    let stdin = match child.stdin.take() {
        Some(s) => s,
        None => {
            dispose_child(child);
            return Err(DistError::Io(String::from("worker stdin not piped")));
        }
    };
    let stdout = match child.stdout.take() {
        Some(s) => s,
        None => {
            dispose_child(child);
            return Err(DistError::Io(String::from("worker stdout not piped")));
        }
    };
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut stdout = stdout;
        loop {
            match proto::read_msg(&mut stdout) {
                Ok(Some(msg)) => {
                    if tx.send(Event::Frame(msg)).is_err() {
                        return; // supervisor gone; stop pumping
                    }
                }
                Ok(None) => {
                    let _ = tx.send(Event::Eof);
                    return;
                }
                Err(e) => {
                    let _ = tx.send(Event::ReadError(e));
                    return;
                }
            }
        }
    });
    let mut conn = Conn { child, stdin, rx };

    let hello = Msg::Hello(Hello {
        version: PROTOCOL_VERSION,
        worker: worker_id,
        ctx_json: ctx_json.to_string(),
    });
    if let Err(e) = send(&mut conn.stdin, &hello) {
        dispose(conn);
        return Err(e);
    }
    match conn.rx.recv_timeout(cfg.heartbeat_timeout) {
        Ok(Event::Frame(Msg::Ready(ready))) if ready.version == PROTOCOL_VERSION => Ok(conn),
        Ok(Event::Frame(Msg::Ready(ready))) => {
            let theirs = ready.version;
            dispose(conn);
            Err(DistError::Version { ours: PROTOCOL_VERSION, theirs })
        }
        Ok(Event::Frame(other)) => {
            dispose(conn);
            Err(DistError::Protocol(format!("expected Ready, got {other:?}")))
        }
        Ok(Event::ReadError(e)) => {
            dispose(conn);
            Err(e)
        }
        Ok(Event::Eof) => {
            dispose(conn);
            Err(DistError::Io(String::from("worker exited during handshake")))
        }
        Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
            dispose(conn);
            Err(DistError::Io(String::from("worker unresponsive during handshake")))
        }
    }
}

/// Why one point assignment did not produce a result.
enum PointError {
    /// The sweep must abort (deterministic point failure, …).
    Fatal(DistError),
    /// The worker died or hung; the point is retryable elsewhere.
    WorkerDead(String),
}

/// Assigns one point and waits for its result, treating heartbeat silence
/// longer than the configured deadline as worker death.
fn run_point(
    conn: &mut Conn,
    cfg: &CoordinatorConfig,
    experiment: &str,
    task: u64,
    index: usize,
) -> Result<(String, f64), PointError> {
    let assign =
        Msg::Assign(Assign { task, experiment: experiment.to_string(), index: index as u64 });
    send(&mut conn.stdin, &assign).map_err(|e| PointError::WorkerDead(e.to_string()))?;
    loop {
        match conn.rx.recv_timeout(cfg.heartbeat_timeout) {
            // Any heartbeat proves liveness — a stale task id only means
            // the beat raced the previous result onto the pipe.
            Ok(Event::Frame(Msg::Heartbeat(_))) => continue,
            Ok(Event::Frame(Msg::Result(res))) if res.task == task && res.index == index as u64 => {
                return Ok((res.payload, res.wall_ms));
            }
            Ok(Event::Frame(Msg::Failed(failed))) if failed.task == task => {
                return Err(PointError::Fatal(DistError::PointFailed {
                    index: failed.index,
                    error: failed.error,
                }));
            }
            Ok(Event::Frame(other)) => {
                return Err(PointError::WorkerDead(format!("unexpected frame {other:?}")));
            }
            Ok(Event::ReadError(e)) => return Err(PointError::WorkerDead(e.to_string())),
            Ok(Event::Eof) => {
                return Err(PointError::WorkerDead(String::from("pipe closed mid-point")))
            }
            Err(RecvTimeoutError::Timeout) => {
                return Err(PointError::WorkerDead(format!(
                    "no frame for {:?} (heartbeat deadline)",
                    cfg.heartbeat_timeout
                )));
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err(PointError::WorkerDead(String::from("reader thread gone")));
            }
        }
    }
}

fn send(stdin: &mut ChildStdin, msg: &Msg) -> Result<(), DistError> {
    proto::write_msg(stdin, msg)?;
    stdin.flush().map_err(|e| DistError::Io(format!("flush to worker: {e}")))
}

/// Graceful stop: ask, close stdin, give the child ~2 s, then kill.
fn shutdown(mut conn: Conn) {
    let _ = send(&mut conn.stdin, &Msg::Shutdown);
    drop(conn.stdin);
    for _ in 0..200 {
        match conn.child.try_wait() {
            Ok(Some(_)) => return,
            Ok(None) => std::thread::sleep(Duration::from_millis(10)),
            Err(_) => break,
        }
    }
    dispose_child(conn.child);
}

/// Hard stop for a worker we no longer trust.
fn dispose(conn: Conn) {
    dispose_child(conn.child);
}

fn dispose_child(mut child: Child) {
    let _ = child.kill();
    let _ = child.wait(); // reap; never leave zombies behind
}
