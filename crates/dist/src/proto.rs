//! The length-prefixed frame protocol between coordinator and worker.
//!
//! Wire format of one frame:
//!
//! ```text
//! +----------------+-----+------------------------+
//! | u32 LE length  | tag | serde_json payload     |
//! +----------------+-----+------------------------+
//!      4 bytes      1 byte     length - 1 bytes
//! ```
//!
//! The length covers the tag byte plus the payload. Payloads are UTF-8
//! JSON objects (one per message type), so the protocol stays debuggable
//! with `xxd` and versionable without a schema compiler. A frame longer
//! than [`MAX_FRAME_LEN`] is rejected before any allocation — a corrupt
//! or hostile length prefix must not OOM the coordinator.
//!
//! Message flow:
//!
//! ```text
//! coordinator                worker
//!     | -- Hello{version,ctx} -> |       (handshake; worker inits runner)
//!     | <- Ready{version} ------ |
//!     | -- Assign{task,exp,i} -> |
//!     | <- Heartbeat{task} ----- |  (every ~250 ms while computing)
//!     | <- Result{task,i,json} - |  (or Failed{task,i,error})
//!     |        ... more assigns ...
//!     | -- Shutdown -----------> |       (worker exits 0)
//! ```
//!
//! [`read_msg`] distinguishes a *clean* EOF (pipe closed exactly between
//! frames → `Ok(None)`) from a truncated frame (mid-prefix or mid-body →
//! [`DistError::Protocol`]): the first is how shutdown looks, the second
//! is always a worker/coordinator dying mid-write.

use crate::DistError;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Protocol revision; bumped on any wire-format change. A worker whose
/// `Hello.version` differs is rejected at handshake.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on one frame's (tag + payload) size: 64 MiB. Generous for
/// a sweep point's JSON (typically a few KiB) while keeping a corrupt
/// length prefix from allocating unbounded memory.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

const TAG_HELLO: u8 = 1;
const TAG_READY: u8 = 2;
const TAG_ASSIGN: u8 = 3;
const TAG_RESULT: u8 = 4;
const TAG_FAILED: u8 = 5;
const TAG_HEARTBEAT: u8 = 6;
const TAG_SHUTDOWN: u8 = 7;

/// Coordinator → worker: handshake. Carries the serialized experiment
/// context the worker must init its runner with, and the worker's id
/// (used only for diagnostics and fault-injection targeting).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hello {
    /// Coordinator's [`PROTOCOL_VERSION`].
    pub version: u32,
    /// Coordinator-assigned worker id (unique per spawn, including respawns).
    pub worker: u32,
    /// Serialized `ExperimentContext` (opaque to this crate).
    pub ctx_json: String,
}

/// Worker → coordinator: handshake acknowledgement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ready {
    /// Worker's [`PROTOCOL_VERSION`].
    pub version: u32,
    /// Echo of the id the coordinator assigned in [`Hello`].
    pub worker: u32,
}

/// Coordinator → worker: compute one sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assign {
    /// Unique assignment id (fresh per attempt, so a late frame from a
    /// superseded attempt can never be mistaken for the live one).
    pub task: u64,
    /// Experiment name in the worker's registry (e.g. `"fig1"`).
    pub experiment: String,
    /// Submission index of the point within the experiment's job list.
    pub index: u64,
}

/// Worker → coordinator: one point's serialized result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskResult {
    /// The [`Assign::task`] this answers.
    pub task: u64,
    /// Echo of [`Assign::index`].
    pub index: u64,
    /// The point's result tuple, serialized with `serde_json` (exact f64
    /// round-trip, so reassembly is bit-identical).
    pub payload: String,
    /// Wall-clock milliseconds the point took on the worker (profiling
    /// only; never byte-compared).
    pub wall_ms: f64,
}

/// Worker → coordinator: the point's runner returned an error. This is a
/// *deterministic* failure (the worker is healthy) — the coordinator
/// aborts the sweep rather than retrying a computation that cannot
/// succeed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskFailed {
    /// The [`Assign::task`] this answers.
    pub task: u64,
    /// Echo of [`Assign::index`].
    pub index: u64,
    /// The runner's error message.
    pub error: String,
}

/// Worker → coordinator: liveness while a point computes. Carries the
/// task id being worked on (diagnostic only — any heartbeat refreshes the
/// coordinator's timeout).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heartbeat {
    /// The task the worker believes it is computing.
    pub task: u64,
}

/// One protocol message (externally: tag byte + JSON payload).
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Handshake request (coordinator → worker).
    Hello(Hello),
    /// Handshake acknowledgement (worker → coordinator).
    Ready(Ready),
    /// Point assignment (coordinator → worker).
    Assign(Assign),
    /// Point result (worker → coordinator).
    Result(TaskResult),
    /// Deterministic point failure (worker → coordinator).
    Failed(TaskFailed),
    /// Liveness signal (worker → coordinator).
    Heartbeat(Heartbeat),
    /// Graceful stop (coordinator → worker).
    Shutdown,
}

impl Msg {
    fn tag(&self) -> u8 {
        match self {
            Msg::Hello(_) => TAG_HELLO,
            Msg::Ready(_) => TAG_READY,
            Msg::Assign(_) => TAG_ASSIGN,
            Msg::Result(_) => TAG_RESULT,
            Msg::Failed(_) => TAG_FAILED,
            Msg::Heartbeat(_) => TAG_HEARTBEAT,
            Msg::Shutdown => TAG_SHUTDOWN,
        }
    }

    fn encode_payload(&self) -> Result<String, DistError> {
        let encoded = match self {
            Msg::Hello(m) => serde_json::to_string(m),
            Msg::Ready(m) => serde_json::to_string(m),
            Msg::Assign(m) => serde_json::to_string(m),
            Msg::Result(m) => serde_json::to_string(m),
            Msg::Failed(m) => serde_json::to_string(m),
            Msg::Heartbeat(m) => serde_json::to_string(m),
            Msg::Shutdown => Ok(String::from("{}")),
        };
        encoded.map_err(|e| DistError::Protocol(format!("encode frame payload: {e}")))
    }
}

/// Writes one frame. The caller flushes (workers flush after every frame
/// so the coordinator never waits on a buffered result).
pub fn write_msg<W: Write + ?Sized>(w: &mut W, msg: &Msg) -> Result<(), DistError> {
    let payload = msg.encode_payload()?;
    let frame_len = u32::try_from(1 + payload.len())
        .map_err(|_| DistError::Protocol(format!("frame too large: {} bytes", payload.len())))?;
    if frame_len > MAX_FRAME_LEN {
        return Err(DistError::Protocol(format!(
            "frame too large: {frame_len} bytes (max {MAX_FRAME_LEN})"
        )));
    }
    let io = |e: std::io::Error| DistError::Io(format!("write frame: {e}"));
    w.write_all(&frame_len.to_le_bytes()).map_err(io)?;
    w.write_all(&[msg.tag()]).map_err(io)?;
    w.write_all(payload.as_bytes()).map_err(io)
}

/// Reads one frame. `Ok(None)` means the peer closed the pipe cleanly at
/// a frame boundary; every malformed encoding (truncated prefix or body,
/// zero or oversized length, unknown tag, bad UTF-8/JSON) is a
/// [`DistError::Protocol`].
pub fn read_msg<R: Read + ?Sized>(r: &mut R) -> Result<Option<Msg>, DistError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(DistError::Protocol(format!(
                    "truncated length prefix: {filled} of 4 bytes"
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(DistError::Io(format!("read length prefix: {e}"))),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len == 0 {
        return Err(DistError::Protocol(String::from("zero-length frame")));
    }
    if len > MAX_FRAME_LEN {
        return Err(DistError::Protocol(format!(
            "oversized frame: {len} bytes (max {MAX_FRAME_LEN})"
        )));
    }
    let mut frame = vec![0u8; len as usize];
    r.read_exact(&mut frame).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => {
            DistError::Protocol(format!("truncated frame body: expected {len} bytes"))
        }
        _ => DistError::Io(format!("read frame body: {e}")),
    })?;
    let payload = std::str::from_utf8(&frame[1..])
        .map_err(|e| DistError::Protocol(format!("frame payload is not UTF-8: {e}")))?;
    let msg = match frame[0] {
        TAG_HELLO => Msg::Hello(decode(payload)?),
        TAG_READY => Msg::Ready(decode(payload)?),
        TAG_ASSIGN => Msg::Assign(decode(payload)?),
        TAG_RESULT => Msg::Result(decode(payload)?),
        TAG_FAILED => Msg::Failed(decode(payload)?),
        TAG_HEARTBEAT => Msg::Heartbeat(decode(payload)?),
        TAG_SHUTDOWN => Msg::Shutdown,
        other => return Err(DistError::Protocol(format!("unknown frame tag {other}"))),
    };
    Ok(Some(msg))
}

fn decode<T: Deserialize>(payload: &str) -> Result<T, DistError> {
    serde_json::from_str(payload)
        .map_err(|e| DistError::Protocol(format!("bad frame payload: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(msg: Msg) {
        let mut buf = Vec::new();
        write_msg(&mut buf, &msg).expect("encode");
        let back = read_msg(&mut Cursor::new(&buf)).expect("decode");
        assert_eq!(back, Some(msg));
    }

    #[test]
    fn every_message_roundtrips() {
        roundtrip(Msg::Hello(Hello {
            version: PROTOCOL_VERSION,
            worker: 3,
            ctx_json: String::from("{\"seed\":42}"),
        }));
        roundtrip(Msg::Ready(Ready { version: PROTOCOL_VERSION, worker: 3 }));
        roundtrip(Msg::Assign(Assign { task: 9, experiment: String::from("fig1"), index: 17 }));
        roundtrip(Msg::Result(TaskResult {
            task: 9,
            index: 17,
            payload: String::from("[1.5,{\"x\":2}]"),
            wall_ms: 12.25,
        }));
        roundtrip(Msg::Failed(TaskFailed {
            task: 9,
            index: 17,
            error: String::from("unknown experiment"),
        }));
        roundtrip(Msg::Heartbeat(Heartbeat { task: 9 }));
        roundtrip(Msg::Shutdown);
    }

    #[test]
    fn consecutive_frames_and_clean_eof() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &Msg::Heartbeat(Heartbeat { task: 1 })).expect("encode");
        write_msg(&mut buf, &Msg::Shutdown).expect("encode");
        let mut cur = Cursor::new(&buf);
        assert_eq!(read_msg(&mut cur).expect("first"), Some(Msg::Heartbeat(Heartbeat { task: 1 })));
        assert_eq!(read_msg(&mut cur).expect("second"), Some(Msg::Shutdown));
        assert_eq!(read_msg(&mut cur).expect("eof"), None, "clean EOF at frame boundary");
    }

    #[test]
    fn truncated_length_prefix_is_rejected() {
        let mut cur = Cursor::new(&[0x05u8, 0x00][..]);
        let err = read_msg(&mut cur).expect_err("2 of 4 prefix bytes");
        assert!(matches!(err, DistError::Protocol(ref m) if m.contains("truncated length prefix")));
    }

    #[test]
    fn truncated_body_is_rejected() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &Msg::Heartbeat(Heartbeat { task: 1 })).expect("encode");
        buf.truncate(buf.len() - 3);
        let err = read_msg(&mut Cursor::new(&buf)).expect_err("short body");
        assert!(matches!(err, DistError::Protocol(ref m) if m.contains("truncated frame body")));
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut cur = Cursor::new(&[0xFFu8, 0xFF, 0xFF, 0xFF][..]);
        let err = read_msg(&mut cur).expect_err("4 GiB frame");
        assert!(matches!(err, DistError::Protocol(ref m) if m.contains("oversized frame")));
    }

    #[test]
    fn zero_length_and_unknown_tag_are_rejected() {
        let mut cur = Cursor::new(&[0x00u8, 0x00, 0x00, 0x00][..]);
        assert!(matches!(
            read_msg(&mut cur).expect_err("zero length"),
            DistError::Protocol(ref m) if m.contains("zero-length")
        ));
        // length 3, tag 0xEE, payload "{}"
        let mut cur = Cursor::new(&[0x03u8, 0x00, 0x00, 0x00, 0xEE, b'{', b'}'][..]);
        assert!(matches!(
            read_msg(&mut cur).expect_err("bad tag"),
            DistError::Protocol(ref m) if m.contains("unknown frame tag 238")
        ));
    }

    #[test]
    fn garbage_payload_is_rejected() {
        // length 4, tag RESULT, payload "nope" (not JSON for TaskResult)
        let mut bytes = vec![0x05u8, 0x00, 0x00, 0x00, TAG_RESULT];
        bytes.extend_from_slice(b"nope");
        let err = read_msg(&mut Cursor::new(&bytes)).expect_err("bad json");
        assert!(matches!(err, DistError::Protocol(ref m) if m.contains("bad frame payload")));
    }
}
