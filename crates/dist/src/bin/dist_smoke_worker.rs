//! A tiny worker binary for the dist crate's own process-level tests.
//!
//! Speaks the full protocol (handshake, heartbeats, fault-injection env
//! hooks) but computes trivial points, so the tests exercise process
//! supervision — spawn, retry, kill, hang — without dragging the
//! simulator in. The real worker lives in `repro --worker-agent`.

#![forbid(unsafe_code)]

use readopt_dist::{serve_stdio, PointRunner, WorkerOptions};
use std::time::Duration;

struct SmokeRunner {
    ctx: String,
}

impl PointRunner for SmokeRunner {
    fn init(&mut self, ctx_json: &str) -> Result<(), String> {
        if ctx_json.is_empty() {
            return Err(String::from("empty context"));
        }
        self.ctx = ctx_json.to_string();
        Ok(())
    }

    fn run(&mut self, experiment: &str, index: u64) -> Result<String, String> {
        match experiment {
            "square" => Ok((index * index).to_string()),
            "ctx-echo" => Ok(format!("{}#{index}", self.ctx)),
            "slow" => {
                // Longer than a heartbeat interval, so liveness matters.
                std::thread::sleep(Duration::from_millis(600));
                Ok(index.to_string())
            }
            "always-fails" => Err(format!("point {index} cannot be computed")),
            other => Err(format!("unknown experiment {other:?}")),
        }
    }
}

fn main() {
    let mut runner = SmokeRunner { ctx: String::new() };
    if let Err(e) = serve_stdio(&mut runner, &WorkerOptions::default()) {
        eprintln!("dist_smoke_worker: {e}");
        std::process::exit(1);
    }
}
