//! The worker agent: a serve loop that computes assigned points.
//!
//! A worker reads frames off stdin, computes each assigned point through
//! the caller-supplied [`PointRunner`], and writes `Result`/`Failed`
//! frames back on stdout — flushing after every frame so the coordinator
//! never waits on a buffered result. While a point computes, a scoped
//! heartbeat thread emits `Heartbeat` frames at a fixed interval; the
//! output writer sits behind a mutex so heartbeat and result frames can
//! never interleave bytes on the pipe.
//!
//! The worker is intentionally dumb about failure: any protocol breach
//! from the coordinator, or a runner init failure, makes `serve` return
//! an error (→ nonzero exit, which the coordinator observes as EOF).
//! Deterministic *point* errors are reported in-band as `Failed` frames
//! and leave the worker alive.
//!
//! Fault injection (tests only), keyed on the coordinator-assigned worker
//! id from `Hello`:
//!
//! * `READOPT_DIST_KILL="<id>:<n>"` — worker `<id>` calls
//!   `std::process::abort()` immediately after sending its `<n>`-th
//!   result frame (a SIGKILL-equivalent mid-sweep death).
//! * `READOPT_DIST_MUTE="<id>"` — worker `<id>` sends no heartbeats and
//!   stalls on its first assignment (a hung process: alive, silent).

use crate::proto::{self, Heartbeat, Msg, Ready, TaskFailed, TaskResult, PROTOCOL_VERSION};
use crate::DistError;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// What a worker process knows how to do: bind to a serialized experiment
/// context once, then compute points by (experiment, index).
pub trait PointRunner {
    /// Binds the runner to the coordinator's serialized context. Called
    /// exactly once, from the `Hello` frame, before any point runs.
    fn init(&mut self, ctx_json: &str) -> Result<(), String>;

    /// Computes one sweep point and returns its serialized result tuple.
    /// `Err` means the point *deterministically* cannot be computed
    /// (unknown experiment, index out of range, …) — reported in-band as
    /// a `Failed` frame, which aborts the whole sweep coordinator-side.
    fn run(&mut self, experiment: &str, index: u64) -> Result<String, String>;
}

/// Worker tuning knobs.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Gap between heartbeat frames while a point computes. Must be well
    /// under the coordinator's `heartbeat_timeout`.
    pub heartbeat_interval: Duration,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions { heartbeat_interval: Duration::from_millis(250) }
    }
}

/// Sentinel for "no point in flight" in the busy-task atomic.
const IDLE: u64 = u64::MAX;

/// Serves the coordinator over stdin/stdout until `Shutdown` or EOF.
/// This is the whole body of a `--worker-agent` process.
pub fn serve_stdio(runner: &mut dyn PointRunner, opts: &WorkerOptions) -> Result<(), DistError> {
    serve(std::io::stdin().lock(), std::io::stdout(), runner, opts)
}

/// Serves one coordinator connection over arbitrary byte streams
/// (separated from [`serve_stdio`] so tests can drive a worker in-memory).
pub fn serve<R, W>(
    mut input: R,
    output: W,
    runner: &mut dyn PointRunner,
    opts: &WorkerOptions,
) -> Result<(), DistError>
where
    R: Read,
    W: Write + Send,
{
    let writer = Mutex::new(output);
    let busy = AtomicU64::new(IDLE);
    let stop = AtomicBool::new(false);
    let mute = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| heartbeat_loop(&writer, &busy, &stop, &mute, opts.heartbeat_interval));
        let outcome = serve_loop(&mut input, &writer, &busy, &mute, runner);
        stop.store(true, Ordering::Relaxed);
        outcome
    })
}

fn send<W: Write>(writer: &Mutex<W>, msg: &Msg) -> Result<(), DistError> {
    let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
    proto::write_msg(&mut *w, msg)?;
    w.flush().map_err(|e| DistError::Io(format!("flush frame: {e}")))
}

fn heartbeat_loop<W: Write>(
    writer: &Mutex<W>,
    busy: &AtomicU64,
    stop: &AtomicBool,
    mute: &AtomicBool,
    interval: Duration,
) {
    loop {
        std::thread::sleep(interval);
        if stop.load(Ordering::Relaxed) {
            return;
        }
        if mute.load(Ordering::Relaxed) {
            continue;
        }
        let task = busy.load(Ordering::Relaxed);
        if task == IDLE {
            continue;
        }
        if send(writer, &Msg::Heartbeat(Heartbeat { task })).is_err() {
            return; // pipe gone; the main loop will notice on its next write
        }
    }
}

fn serve_loop<R: Read, W: Write>(
    input: &mut R,
    writer: &Mutex<W>,
    busy: &AtomicU64,
    mute: &AtomicBool,
    runner: &mut dyn PointRunner,
) -> Result<(), DistError> {
    let mut inited = false;
    let mut results_sent = 0u64;
    let mut kill_after: Option<u64> = None;
    loop {
        let Some(msg) = proto::read_msg(input)? else {
            return Ok(()); // coordinator closed the pipe; treat as shutdown
        };
        match msg {
            Msg::Hello(hello) => {
                if inited {
                    return Err(DistError::Protocol(String::from("second Hello")));
                }
                if hello.version != PROTOCOL_VERSION {
                    return Err(DistError::Version {
                        ours: PROTOCOL_VERSION,
                        theirs: hello.version,
                    });
                }
                runner
                    .init(&hello.ctx_json)
                    .map_err(|e| DistError::Protocol(format!("runner init: {e}")))?;
                let sabotage = Sabotage::from_env(hello.worker);
                kill_after = sabotage.kill_after;
                if sabotage.mute {
                    mute.store(true, Ordering::Relaxed);
                }
                send(writer, &Msg::Ready(Ready { version: PROTOCOL_VERSION, worker: hello.worker }))?;
                inited = true;
            }
            Msg::Assign(assign) => {
                if !inited {
                    return Err(DistError::Protocol(String::from("Assign before Hello")));
                }
                if mute.load(Ordering::Relaxed) {
                    // Fault injection: a hung worker — alive but silent.
                    // The coordinator's heartbeat deadline kills us.
                    std::thread::sleep(Duration::from_secs(3600));
                }
                busy.store(assign.task, Ordering::Relaxed);
                // Process supervision, not simulation logic: the per-point
                // wall time feeds the coordinator's profiling sidecar.
                // simlint::allow(r2, "worker-side wall-clock timing of a point for profile.json; simulated time is untouched")
                let start = std::time::Instant::now();
                let outcome = runner.run(&assign.experiment, assign.index);
                let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                busy.store(IDLE, Ordering::Relaxed);
                match outcome {
                    Ok(payload) => {
                        send(
                            writer,
                            &Msg::Result(TaskResult {
                                task: assign.task,
                                index: assign.index,
                                payload,
                                wall_ms,
                            }),
                        )?;
                        results_sent += 1;
                        if kill_after.is_some_and(|n| results_sent >= n) {
                            // Fault injection: die without unwinding, like
                            // a SIGKILL'd process.
                            std::process::abort();
                        }
                    }
                    Err(error) => {
                        send(
                            writer,
                            &Msg::Failed(TaskFailed {
                                task: assign.task,
                                index: assign.index,
                                error,
                            }),
                        )?;
                    }
                }
            }
            Msg::Shutdown => return Ok(()),
            other => {
                return Err(DistError::Protocol(format!(
                    "unexpected frame from coordinator: {other:?}"
                )))
            }
        }
    }
}

struct Sabotage {
    kill_after: Option<u64>,
    mute: bool,
}

impl Sabotage {
    fn from_env(worker: u32) -> Self {
        let kill_after = std::env::var("READOPT_DIST_KILL").ok().and_then(|v| {
            let (id, n) = v.split_once(':')?;
            if id.parse::<u32>().ok()? != worker {
                return None;
            }
            n.parse::<u64>().ok()
        });
        let mute = std::env::var("READOPT_DIST_MUTE")
            .ok()
            .is_some_and(|v| v.parse::<u32>().ok() == Some(worker));
        Sabotage { kill_after, mute }
    }
}
