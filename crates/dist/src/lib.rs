//! Distributed sweep service: a coordinator process farming sweep points
//! out to worker processes over pipes.
//!
//! The paper's figures are sweeps over dozens of independent configuration
//! points; `crates/core`'s thread runner already exploits that inside one
//! process. This crate adds the *process* axis: a [`coordinator`] forks
//! worker processes (the `repro` binary re-exec'd with `--worker-agent`),
//! hands points out over a hand-rolled length-prefixed frame [`proto`]col
//! on stdin/stdout pipes, and reassembles the streamed results **in
//! submission order** — so a distributed sweep byte-matches the in-process
//! `--jobs` runner.
//!
//! Design constraints, in order:
//!
//! 1. **Bit-identical reassembly.** Workers serialize each point's result
//!    tuple with the same vendored `serde_json` the in-process runner
//!    would use to write artifacts; f64 values round-trip exactly
//!    (shortest-representation printing + correctly rounded parsing), so
//!    the coordinator's reassembled vector is indistinguishable from a
//!    `--jobs 1` run.
//! 2. **Preemptible workers, retryable points.** A dead or hung worker
//!    (pipe EOF, heartbeat timeout, nonzero exit) gets its in-flight
//!    point reassigned; points are deterministic functions of
//!    (context, experiment, index), so the retry reproduces the identical
//!    bytes. Retry and respawn budgets bound the damage of a
//!    deterministically crashing point.
//! 3. **No network, no new dependencies.** Frames ride ordinary pipes;
//!    the protocol is versioned so a stale worker binary is rejected at
//!    handshake instead of mis-parsing frames.
//!
//! The crate is deliberately ignorant of what a "point" computes: workers
//! implement [`worker::PointRunner`] (in `crates/core`, backed by the
//! experiment registry) and results travel as opaque JSON payload strings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod coordinator;
pub mod proto;
pub mod worker;

pub use coordinator::{run_sweep, run_sweep_with, CoordinatorConfig, SweepOutcome, WorkerSpec};
pub use proto::{Msg, PROTOCOL_VERSION};
pub use worker::{serve, serve_stdio, PointRunner, WorkerOptions};

/// Everything that can go wrong between coordinator and worker.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// An OS-level pipe/process error (spawn failure, broken pipe, …).
    Io(String),
    /// A malformed or unexpected frame: truncated length prefix, oversized
    /// length, unknown tag, undecodable payload, or a message that is
    /// illegal in the current protocol state.
    Protocol(String),
    /// Handshake version mismatch — the worker binary speaks a different
    /// protocol revision than the coordinator.
    Version {
        /// The version this side speaks ([`PROTOCOL_VERSION`]).
        ours: u32,
        /// The version the peer announced.
        theirs: u32,
    },
    /// A point failed *deterministically* (the runner returned an error,
    /// not the worker dying) — retrying cannot help, so the sweep aborts.
    PointFailed {
        /// Submission index of the failing point.
        index: u64,
        /// The runner's error message.
        error: String,
    },
    /// The sweep could not complete: a point exceeded its retry budget or
    /// every worker (including respawns) died.
    Exhausted(String),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Io(m) => write!(f, "i/o error: {m}"),
            DistError::Protocol(m) => write!(f, "protocol error: {m}"),
            DistError::Version { ours, theirs } => {
                write!(f, "protocol version mismatch: coordinator v{ours}, worker v{theirs}")
            }
            DistError::PointFailed { index, error } => {
                write!(f, "point {index} failed deterministically: {error}")
            }
            DistError::Exhausted(m) => write!(f, "sweep exhausted: {m}"),
        }
    }
}

impl std::error::Error for DistError {}
