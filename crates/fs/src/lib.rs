//! A POSIX-style *simulated* file system assembled from the `readopt`
//! building blocks: any allocation policy over any disk-array layout,
//! behind `create/open/read/write/seek/truncate/unlink/mkdir/readdir/stat`.
//!
//! This is the "downstream user" face of the reproduction: where the paper
//! (and `readopt-sim`) drive the allocator with a stochastic workload, this
//! crate lets you script a file system directly and observe the simulated
//! clock, per-operation latencies, and allocation behaviour:
//!
//! ```
//! use readopt_fs::{FileSystem, FsConfig};
//! use readopt_disk::ArrayConfig;
//! use readopt_alloc::PolicyConfig;
//!
//! let mut fs = FileSystem::format(FsConfig {
//!     array: ArrayConfig::scaled(64),
//!     policy: PolicyConfig::paper_restricted(),
//!     cache: None,
//!     seed: 7,
//! });
//! fs.mkdir("/data").unwrap();
//! let fd = fs.create("/data/table.db").unwrap();
//! let report = fs.write(fd, 256 * 1024).unwrap(); // append 256 KB
//! assert_eq!(fs.stat("/data/table.db").unwrap().size_bytes, 256 * 1024);
//! assert!(report.latency_ms() > 0.0, "the write took simulated disk time");
//! fs.close(fd).unwrap();
//! fs.unlink("/data/table.db").unwrap();
//! ```
//!
//! No user data is stored — transfers move *simulated* bytes — but every
//! operation charges faithful disk time through the same mechanics the
//! paper's experiments use, and the allocation state is fully real.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod directory;
pub mod error;
pub mod filesystem;
pub mod handle;
pub mod trace;

pub use cache::CacheConfig;
pub use error::FsError;
pub use filesystem::{FileSystem, FsConfig, FsStats, IoReport, Metadata};
pub use handle::Fd;
pub use trace::{Trace, TraceOp, TraceReport};
