//! The file system proper: directory tree + allocation policy + disk array
//! + optional buffer cache, behind a POSIX-style API.

use crate::cache::{CacheConfig, CacheStats, PageCache};
use crate::directory::{self, Node};
use crate::error::FsError;
use crate::handle::{Fd, HandleTable};
use readopt_alloc::{FileHints, FileId, FragGauges, Policy, PolicyConfig};
use readopt_disk::{ArrayConfig, IoKind, IoRequest, SimTime, Storage};
use serde::{Deserialize, Serialize};

/// File-system construction parameters.
#[derive(Debug, Clone)]
pub struct FsConfig {
    /// Disk system to format.
    pub array: ArrayConfig,
    /// Allocation policy to format it with.
    pub policy: PolicyConfig,
    /// Optional buffer cache.
    pub cache: Option<CacheConfig>,
    /// Seed for the policy's stochastic choices.
    pub seed: u64,
}

/// `stat` output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metadata {
    /// Logical size in bytes (0 for directories).
    pub size_bytes: u64,
    /// Bytes of disk space allocated to the file.
    pub allocated_bytes: u64,
    /// Number of physically disjoint extents.
    pub extents: usize,
    /// True for directories.
    pub is_dir: bool,
}

/// What one data operation did and cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoReport {
    /// Logical bytes moved.
    pub bytes: u64,
    /// When the operation was issued (simulated clock).
    pub issued: SimTime,
    /// When the last disk finished (equals `issued` for pure cache hits).
    pub completed: SimTime,
    /// Bytes served from the buffer cache.
    pub cache_hit_bytes: u64,
}

impl IoReport {
    /// End-to-end simulated latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.completed.since(self.issued).as_ms()
    }
}

/// `statfs` output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FsStats {
    /// Usable capacity in bytes.
    pub capacity_bytes: u64,
    /// Free bytes.
    pub free_bytes: u64,
    /// Fraction of capacity in use.
    pub utilization: f64,
    /// Live files.
    pub files: u64,
    /// Current simulated time, ms.
    pub clock_ms: f64,
    /// Buffer-cache counters (zeros when no cache is configured).
    pub cache: CacheStats,
    /// Pages currently resident in the buffer cache (0 when uncached).
    pub cache_resident_pages: u64,
    /// Allocator free-space fragmentation gauges.
    pub frag: FragGauges,
}

/// A simulated file system (see the crate docs for an example).
pub struct FileSystem {
    storage: Box<dyn Storage>,
    policy: Box<dyn Policy>,
    root: Node,
    handles: HandleTable,
    cache: Option<PageCache>,
    clock: SimTime,
    unit_bytes: u64,
    files: u64,
}

impl FileSystem {
    /// "Formats" a fresh file system.
    pub fn format(cfg: FsConfig) -> Self {
        let storage = cfg.array.build();
        let unit_bytes = storage.disk_unit_bytes();
        let policy = cfg.policy.build(storage.capacity_units(), unit_bytes, cfg.seed);
        let cache = cfg.cache.map(|c| PageCache::new(&c, unit_bytes));
        FileSystem {
            storage,
            policy,
            root: Node::empty_dir(),
            handles: HandleTable::new(),
            cache,
            clock: SimTime::ZERO,
            unit_bytes,
            files: 0,
        }
    }

    /// The simulated clock.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Advances the simulated clock (think time between operations).
    pub fn advance_ms(&mut self, ms: f64) {
        self.clock = self.clock + readopt_disk::SimDuration::from_ms(ms);
    }

    /// Creates a regular file; fails if the path exists.
    pub fn create(&mut self, path: &str) -> Result<Fd, FsError> {
        let (children, name) = directory::lookup_parent_mut(&mut self.root, path)?;
        if name.is_empty() {
            return Err(FsError::InvalidPath(path.to_string()));
        }
        if children.contains_key(&name) {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        let id = self
            .policy
            .create(&FileHints::default())
            .map_err(|_| FsError::NoSpace)?;
        let (children, name) = directory::lookup_parent_mut(&mut self.root, path)?;
        children.insert(name, Node::File { id, size_bytes: 0 });
        self.files += 1;
        Ok(self.handles.insert(path.to_string()))
    }

    /// Opens an existing regular file.
    pub fn open(&mut self, path: &str) -> Result<Fd, FsError> {
        match directory::lookup(&self.root, path)? {
            Node::File { .. } => Ok(self.handles.insert(path.to_string())),
            Node::Dir(_) => Err(FsError::IsADirectory(path.to_string())),
        }
    }

    /// Closes a descriptor.
    pub fn close(&mut self, fd: Fd) -> Result<(), FsError> {
        self.handles.remove(fd).map(|_| ())
    }

    /// Repositions a descriptor's cursor.
    pub fn seek(&mut self, fd: Fd, pos_bytes: u64) -> Result<(), FsError> {
        self.handles.get_mut(fd)?.cursor = pos_bytes;
        Ok(())
    }

    /// Writes `len_bytes` at the descriptor's cursor, extending the file as
    /// needed, and advances the cursor.
    pub fn write(&mut self, fd: Fd, len_bytes: u64) -> Result<IoReport, FsError> {
        let (path, cursor) = {
            let h = self.handles.get(fd)?;
            (h.path.clone(), h.cursor)
        };
        let report = self.pwrite_path(&path, cursor, len_bytes)?;
        self.handles.get_mut(fd)?.cursor = cursor + len_bytes;
        Ok(report)
    }

    /// Positional write (cursor untouched).
    pub fn pwrite(&mut self, fd: Fd, offset_bytes: u64, len_bytes: u64) -> Result<IoReport, FsError> {
        let path = self.handles.get(fd)?.path.clone();
        self.pwrite_path(&path, offset_bytes, len_bytes)
    }

    /// Reads up to `len_bytes` at the cursor (clamped at EOF), advancing it.
    pub fn read(&mut self, fd: Fd, len_bytes: u64) -> Result<IoReport, FsError> {
        let (path, cursor) = {
            let h = self.handles.get(fd)?;
            (h.path.clone(), h.cursor)
        };
        let report = self.pread_path(&path, cursor, len_bytes)?;
        self.handles.get_mut(fd)?.cursor = cursor + report.bytes;
        Ok(report)
    }

    /// Positional read (cursor untouched).
    pub fn pread(&mut self, fd: Fd, offset_bytes: u64, len_bytes: u64) -> Result<IoReport, FsError> {
        let path = self.handles.get(fd)?.path.clone();
        self.pread_path(&path, offset_bytes, len_bytes)
    }

    fn file_node(&self, path: &str) -> Result<(FileId, u64), FsError> {
        match directory::lookup(&self.root, path)? {
            Node::File { id, size_bytes } => Ok((*id, *size_bytes)),
            Node::Dir(_) => Err(FsError::IsADirectory(path.to_string())),
        }
    }

    fn set_size(&mut self, path: &str, size: u64) -> Result<(), FsError> {
        match directory::lookup_mut(&mut self.root, path)? {
            Node::File { size_bytes, .. } => {
                *size_bytes = size;
                Ok(())
            }
            Node::Dir(_) => Err(FsError::IsADirectory(path.to_string())),
        }
    }

    fn pwrite_path(&mut self, path: &str, offset: u64, len: u64) -> Result<IoReport, FsError> {
        let (id, size) = self.file_node(path)?;
        if len == 0 {
            return Ok(IoReport { bytes: 0, issued: self.clock, completed: self.clock, cache_hit_bytes: 0 });
        }
        let end = offset + len;
        // Grow the allocation if the write extends past it.
        let needed_units = end.div_ceil(self.unit_bytes);
        let allocated = self.policy.allocated_units(id)?;
        if needed_units > allocated {
            self.policy.extend(id, needed_units - allocated)?;
        }
        if end > size {
            self.set_size(path, end)?;
        }
        let start_unit = offset / self.unit_bytes;
        let len_units = end.div_ceil(self.unit_bytes) - start_unit;
        if let Some(cache) = &mut self.cache {
            cache.write_range(id, start_unit, len_units);
        }
        let completed = self.transfer(id, start_unit, len_units, IoKind::Write);
        let issued = self.clock;
        self.clock = completed;
        Ok(IoReport { bytes: len, issued, completed, cache_hit_bytes: 0 })
    }

    fn pread_path(&mut self, path: &str, offset: u64, len: u64) -> Result<IoReport, FsError> {
        let (id, size) = self.file_node(path)?;
        let issued = self.clock;
        let len = len.min(size.saturating_sub(offset));
        if len == 0 {
            return Ok(IoReport { bytes: 0, issued, completed: issued, cache_hit_bytes: 0 });
        }
        let start_unit = offset / self.unit_bytes;
        let end_unit = (offset + len).div_ceil(self.unit_bytes);
        let len_units = end_unit - start_unit;
        let mut completed = issued;
        let mut miss_units = 0;
        match &mut self.cache {
            Some(cache) => {
                for (run_start, run_len) in cache.read_range(id, start_unit, len_units) {
                    miss_units += run_len;
                    completed = completed.max(self.transfer(id, run_start, run_len, IoKind::Read));
                }
            }
            None => {
                miss_units = len_units;
                completed = self.transfer(id, start_unit, len_units, IoKind::Read);
            }
        }
        self.clock = completed;
        let hit_bytes = (len_units - miss_units) * self.unit_bytes;
        Ok(IoReport { bytes: len, issued, completed, cache_hit_bytes: hit_bytes.min(len) })
    }

    /// Maps a logical unit range through the file's extents and submits the
    /// physical runs; returns the completion time.
    fn transfer(&mut self, id: FileId, start_unit: u64, len_units: u64, kind: IoKind) -> SimTime {
        let runs = self
            .policy
            .file_map(id)
            // simlint::allow(r3, "callers resolve the id through file_node, which only yields live files")
            .unwrap_or_else(|_| unreachable!("transfer targets a live file"))
            .map_range(start_unit, len_units);
        let mut completed = self.clock;
        for r in runs {
            let span = self.storage.submit(self.clock, &IoRequest { unit: r.start, units: r.len, kind });
            completed = completed.max(span.end);
        }
        completed
    }

    /// Shrinks (only) a file to `new_size_bytes`.
    pub fn truncate(&mut self, path: &str, new_size_bytes: u64) -> Result<(), FsError> {
        let (id, size) = self.file_node(path)?;
        if new_size_bytes >= size {
            return Ok(());
        }
        let allocated = self.policy.allocated_units(id)?;
        let keep_units = new_size_bytes.div_ceil(self.unit_bytes);
        if allocated > keep_units {
            self.policy.truncate(id, allocated - keep_units)?;
        }
        if let Some(cache) = &mut self.cache {
            cache.invalidate_file(id);
        }
        self.set_size(path, new_size_bytes)
    }

    /// Removes a regular file, freeing its space.
    pub fn unlink(&mut self, path: &str) -> Result<(), FsError> {
        let (id, _) = self.file_node(path)?;
        let (children, name) = directory::lookup_parent_mut(&mut self.root, path)?;
        // simlint::allow(r3, "lookup_parent_mut succeeded for the same path on the previous line")
        children.remove(&name).unwrap_or_else(|| unreachable!("looked up above"));
        self.policy
            .delete(id)
            // simlint::allow(r3, "file_node only returns ids of live files")
            .unwrap_or_else(|_| unreachable!("unlink resolved a live file"));
        self.files -= 1;
        if let Some(cache) = &mut self.cache {
            cache.invalidate_file(id);
        }
        self.handles.invalidate_path(path);
        Ok(())
    }

    /// Renames a file or directory (within the same tree; POSIX `rename`
    /// without overwrite).
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), FsError> {
        // Destination must not exist; its parent must.
        {
            let (children, name) = directory::lookup_parent_mut(&mut self.root, to)?;
            if name.is_empty() {
                return Err(FsError::InvalidPath(to.to_string()));
            }
            if children.contains_key(&name) {
                return Err(FsError::AlreadyExists(to.to_string()));
            }
        }
        // Reject moving a directory into itself.
        if to.starts_with(&format!("{from}/")) || from == to {
            return Err(FsError::InvalidPath(to.to_string()));
        }
        let node = {
            let (children, name) = directory::lookup_parent_mut(&mut self.root, from)?;
            children.remove(&name).ok_or_else(|| FsError::NotFound(from.to_string()))?
        };
        let (children, name) = directory::lookup_parent_mut(&mut self.root, to)
            // simlint::allow(r3, "the same destination parent was looked up successfully above")
            .unwrap_or_else(|_| unreachable!("destination parent verified above"));
        children.insert(name, node);
        // Open descriptors follow the rename.
        self.handles.rename_path(from, to);
        Ok(())
    }

    /// Recursively lists every file under `path` as `(path, size_bytes)`.
    pub fn list_recursive(&self, path: &str) -> Result<Vec<(String, u64)>, FsError> {
        let node = directory::lookup(&self.root, path)?;
        let mut files = Vec::new();
        directory::walk_files(node, path, &mut files);
        Ok(files.into_iter().map(|(p, _, size)| (p, size)).collect())
    }

    /// Creates a directory.
    pub fn mkdir(&mut self, path: &str) -> Result<(), FsError> {
        let (children, name) = directory::lookup_parent_mut(&mut self.root, path)?;
        if name.is_empty() {
            return Err(FsError::InvalidPath(path.to_string()));
        }
        if children.contains_key(&name) {
            return Err(FsError::AlreadyExists(path.to_string()));
        }
        children.insert(name, Node::empty_dir());
        Ok(())
    }

    /// Removes an empty directory.
    pub fn rmdir(&mut self, path: &str) -> Result<(), FsError> {
        match directory::lookup(&self.root, path)? {
            Node::Dir(children) if children.is_empty() => {}
            Node::Dir(_) => return Err(FsError::NotEmpty(path.to_string())),
            Node::File { .. } => return Err(FsError::NotADirectory(path.to_string())),
        }
        let (children, name) = directory::lookup_parent_mut(&mut self.root, path)?;
        children.remove(&name);
        Ok(())
    }

    /// Lists a directory's entries.
    pub fn readdir(&self, path: &str) -> Result<Vec<String>, FsError> {
        match directory::lookup(&self.root, path)? {
            Node::Dir(children) => Ok(children.keys().cloned().collect()),
            Node::File { .. } => Err(FsError::NotADirectory(path.to_string())),
        }
    }

    /// Stats a path.
    pub fn stat(&self, path: &str) -> Result<Metadata, FsError> {
        match directory::lookup(&self.root, path)? {
            Node::Dir(_) => Ok(Metadata { size_bytes: 0, allocated_bytes: 0, extents: 0, is_dir: true }),
            Node::File { id, size_bytes } => Ok(Metadata {
                size_bytes: *size_bytes,
                allocated_bytes: self.policy.allocated_units(*id)? * self.unit_bytes,
                extents: self.policy.extent_count(*id)?,
                is_dir: false,
            }),
        }
    }

    /// File-system-wide statistics.
    pub fn statfs(&self) -> FsStats {
        FsStats {
            capacity_bytes: self.policy.capacity_units() * self.unit_bytes,
            free_bytes: self.policy.free_units() * self.unit_bytes,
            utilization: 1.0
                - self.policy.free_units() as f64 / self.policy.capacity_units() as f64,
            files: self.files,
            clock_ms: self.clock.as_ms(),
            cache: self.cache.as_ref().map(|c| c.stats()).unwrap_or_default(),
            cache_resident_pages: self
                .cache
                .as_ref()
                .map(|c| c.resident_pages() as u64)
                .unwrap_or_default(),
            frag: self.policy.frag_gauges(),
        }
    }

    /// Runs the allocation policy's offline reallocator (Koch's nightly
    /// pass) over every file; returns rewritten units if supported.
    pub fn defragment(&mut self) -> Option<u64> {
        let mut files = Vec::new();
        directory::walk_files(&self.root, "/", &mut files);
        let logical: Vec<(FileId, u64)> = files
            .iter()
            .map(|(_, id, size)| (*id, size.div_ceil(self.unit_bytes)))
            .collect();
        let moved = self
            .policy
            .reallocate(&logical)
            // simlint::allow(r3, "ids come from the directory tree, which only holds live files")
            .unwrap_or_else(|_| unreachable!("directory walk yields live files only"))?;
        if let Some(cache) = &mut self.cache {
            for (_, id, _) in files {
                cache.invalidate_file(id);
            }
        }
        Some(moved)
    }

    /// The underlying allocation policy (for inspection and invariants).
    pub fn policy(&self) -> &dyn Policy {
        self.policy.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> FileSystem {
        FileSystem::format(FsConfig {
            array: ArrayConfig::scaled(64),
            policy: PolicyConfig::paper_restricted(),
            cache: None,
            seed: 3,
        })
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut f = fs();
        let fd = f.create("/a.txt").unwrap();
        let w = f.write(fd, 10_000).unwrap();
        assert_eq!(w.bytes, 10_000);
        assert!(w.latency_ms() > 0.0);
        f.seek(fd, 0).unwrap();
        let r = f.read(fd, 10_000).unwrap();
        assert_eq!(r.bytes, 10_000);
        let meta = f.stat("/a.txt").unwrap();
        assert_eq!(meta.size_bytes, 10_000);
        assert!(meta.allocated_bytes >= 10_000);
        f.policy().check_invariants();
    }

    #[test]
    fn reads_clamp_at_eof() {
        let mut f = fs();
        let fd = f.create("/x").unwrap();
        f.write(fd, 1000).unwrap();
        f.seek(fd, 600).unwrap();
        let r = f.read(fd, 1000).unwrap();
        assert_eq!(r.bytes, 400);
        let r = f.read(fd, 1000).unwrap();
        assert_eq!(r.bytes, 0, "at EOF");
    }

    #[test]
    fn directories_nest_and_list() {
        let mut f = fs();
        f.mkdir("/usr").unwrap();
        f.mkdir("/usr/bin").unwrap();
        let fd = f.create("/usr/bin/cc").unwrap();
        f.close(fd).unwrap();
        assert_eq!(f.readdir("/usr").unwrap(), vec!["bin"]);
        assert_eq!(f.readdir("/usr/bin").unwrap(), vec!["cc"]);
        assert!(f.stat("/usr").unwrap().is_dir);
        assert!(matches!(f.mkdir("/usr"), Err(FsError::AlreadyExists(_))));
        assert!(matches!(f.rmdir("/usr"), Err(FsError::NotEmpty(_))));
        f.unlink("/usr/bin/cc").unwrap();
        f.rmdir("/usr/bin").unwrap();
        f.rmdir("/usr").unwrap();
        assert!(f.readdir("/usr").is_err());
    }

    #[test]
    fn unlink_frees_space_and_invalidates_descriptors() {
        let mut f = fs();
        let before = f.statfs().free_bytes;
        let fd = f.create("/big").unwrap();
        f.write(fd, 500_000).unwrap();
        assert!(f.statfs().free_bytes < before);
        f.unlink("/big").unwrap();
        assert_eq!(f.statfs().free_bytes, before);
        assert!(matches!(f.read(fd, 1), Err(FsError::BadDescriptor)));
        assert!(matches!(f.open("/big"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn truncate_shrinks() {
        let mut f = fs();
        let fd = f.create("/t").unwrap();
        f.write(fd, 100_000).unwrap();
        let alloc_before = f.stat("/t").unwrap().allocated_bytes;
        f.truncate("/t", 10_000).unwrap();
        let m = f.stat("/t").unwrap();
        assert_eq!(m.size_bytes, 10_000);
        assert!(m.allocated_bytes < alloc_before);
        f.policy().check_invariants();
    }

    #[test]
    fn sequential_writes_are_contiguous_under_restricted_buddy() {
        let mut f = fs();
        let fd = f.create("/seq").unwrap();
        for _ in 0..32 {
            f.write(fd, 8 * 1024).unwrap();
        }
        let m = f.stat("/seq").unwrap();
        // A 256 KB file crosses the 1K→8K and 8K→64K ladder boundaries,
        // each of which may force one discontiguity (the Figure 3 effect) —
        // but growth never scatters beyond that.
        assert!(m.extents <= 5, "{} extents for sequential growth", m.extents);
    }

    #[test]
    fn cache_absorbs_repeated_reads() {
        let mut f = FileSystem::format(FsConfig {
            array: ArrayConfig::scaled(64),
            policy: PolicyConfig::paper_restricted(),
            cache: Some(CacheConfig::default()),
            seed: 3,
        });
        let fd = f.create("/hot").unwrap();
        f.write(fd, 64 * 1024).unwrap();
        f.seek(fd, 0).unwrap();
        let cold = f.read(fd, 64 * 1024).unwrap();
        f.seek(fd, 0).unwrap();
        let warm = f.read(fd, 64 * 1024).unwrap();
        // The write warmed the cache, so even the first read hits; the
        // second certainly does.
        assert_eq!(warm.cache_hit_bytes, 64 * 1024);
        assert_eq!(warm.latency_ms(), 0.0, "pure cache hit costs no disk time");
        assert!(cold.latency_ms() <= warm.latency_ms() + 1e9, "sanity");
        assert!(f.statfs().cache.hit_ratio() > 0.9);
    }

    #[test]
    fn cache_misses_after_eviction_pressure() {
        let mut f = FileSystem::format(FsConfig {
            array: ArrayConfig::scaled(64),
            policy: PolicyConfig::paper_restricted(),
            cache: Some(CacheConfig { capacity_bytes: 64 * 1024, page_bytes: 8 * 1024 }),
            seed: 3,
        });
        let fd = f.create("/big").unwrap();
        f.write(fd, 1024 * 1024).unwrap(); // 16× the cache
        f.seek(fd, 0).unwrap();
        let r = f.read(fd, 1024 * 1024).unwrap();
        assert!(r.cache_hit_bytes < 128 * 1024, "most of the file fell out");
        assert!(f.statfs().cache.evictions > 0);
    }

    #[test]
    fn defragment_compacts_buddy_files() {
        let mut f = FileSystem::format(FsConfig {
            array: ArrayConfig::scaled(64),
            policy: PolicyConfig::paper_buddy(),
            cache: None,
            seed: 3,
        });
        // Interleave two growing files so their blocks alternate.
        let a = f.create("/a").unwrap();
        let b = f.create("/b").unwrap();
        for _ in 0..10 {
            f.write(a, 30_000).unwrap();
            f.write(b, 30_000).unwrap();
        }
        let before = f.stat("/a").unwrap();
        let moved = f.defragment().expect("buddy supports defrag");
        assert!(moved > 0);
        let after = f.stat("/a").unwrap();
        assert!(after.extents <= 3, "Koch pass leaves ≤ 3 extents, got {}", after.extents);
        assert!(after.allocated_bytes <= before.allocated_bytes);
        f.policy().check_invariants();
    }

    #[test]
    fn no_space_is_reported_cleanly() {
        let mut f = FileSystem::format(FsConfig {
            array: ArrayConfig::scaled(512),
            policy: PolicyConfig::paper_restricted(),
            cache: None,
            seed: 3,
        });
        let fd = f.create("/fill").unwrap();
        let cap = f.statfs().capacity_bytes;
        let mut written = 0;
        let err = loop {
            match f.write(fd, 64 * 1024) {
                Ok(r) => written += r.bytes,
                Err(e) => break e,
            }
        };
        assert_eq!(err, FsError::NoSpace);
        assert!(written > cap / 2, "most of the disk was usable");
        f.policy().check_invariants();
    }

    #[test]
    fn rename_moves_files_and_follows_descriptors() {
        let mut f = fs();
        f.mkdir("/old").unwrap();
        f.mkdir("/new").unwrap();
        let fd = f.create("/old/x").unwrap();
        f.write(fd, 4096).unwrap();
        f.rename("/old/x", "/new/y").unwrap();
        assert!(matches!(f.stat("/old/x"), Err(FsError::NotFound(_))));
        assert_eq!(f.stat("/new/y").unwrap().size_bytes, 4096);
        // The open descriptor followed the rename.
        f.write(fd, 1000).unwrap();
        assert_eq!(f.stat("/new/y").unwrap().size_bytes, 5096);
        // Whole directories move too.
        f.rename("/new", "/renamed").unwrap();
        assert_eq!(f.stat("/renamed/y").unwrap().size_bytes, 5096);
        // Guards.
        assert!(matches!(f.rename("/renamed", "/renamed/sub"), Err(FsError::InvalidPath(_))));
        f.mkdir("/other").unwrap();
        assert!(matches!(f.rename("/other", "/renamed"), Err(FsError::AlreadyExists(_))));
    }

    #[test]
    fn list_recursive_walks_the_tree() {
        let mut f = fs();
        f.mkdir("/d").unwrap();
        f.mkdir("/d/e").unwrap();
        let a = f.create("/top").unwrap();
        f.write(a, 100).unwrap();
        let b = f.create("/d/e/deep").unwrap();
        f.write(b, 200).unwrap();
        let mut all = f.list_recursive("/").unwrap();
        all.sort();
        assert_eq!(all, vec![("/d/e/deep".to_string(), 200), ("/top".to_string(), 100)]);
        let sub = f.list_recursive("/d").unwrap();
        assert_eq!(sub, vec![("/d/e/deep".to_string(), 200)]);
    }

    #[test]
    fn clock_only_moves_forward() {
        let mut f = fs();
        let fd = f.create("/c").unwrap();
        let t0 = f.now();
        f.write(fd, 4096).unwrap();
        let t1 = f.now();
        assert!(t1 > t0);
        f.advance_ms(50.0);
        assert!(f.now() > t1);
    }
}
