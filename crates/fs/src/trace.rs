//! Trace-driven execution: replay a recorded stream of file-system
//! operations against any (policy, array, cache) configuration.
//!
//! §6 of the paper closes with "applying the allocation policies to genuine
//! workloads will yield a much more convincing argument". This module is
//! that hook: traces are plain serde values (JSON on disk), so a genuine
//! workload — an strace of a build, a database's I/O log — can be
//! transcribed into [`TraceOp`]s once and replayed against every policy.
//!
//! Descriptors in a trace are *slots*: `open`/`create` bind slot `n`, later
//! operations reference it, `close` releases it. Slots make traces
//! relocatable (no dependence on the kernel's fd numbering).
//!
//! The JSON encoding is the obvious serde form — a trace is a list of
//! single-key operation objects:
//!
//! ```
//! use readopt_fs::Trace;
//!
//! let trace = Trace::from_json(r#"{ "ops": [
//!     { "Mkdir":  { "path": "/data" } },
//!     { "Create": { "path": "/data/log", "slot": 0 } },
//!     { "Write":  { "slot": 0, "bytes": 8192 } },
//!     { "ThinkMs": { "ms": 12.5 } },
//!     { "Seek":   { "slot": 0, "pos": 0 } },
//!     { "Read":   { "slot": 0, "bytes": 8192 } },
//!     { "Close":  { "slot": 0 } },
//!     { "Unlink": { "path": "/data/log" } }
//! ]}"#).expect("valid trace");
//! assert_eq!(trace.ops.len(), 8);
//! ```

use crate::error::FsError;
use crate::filesystem::FileSystem;
use crate::handle::Fd;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One recorded operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceOp {
    /// Create a directory.
    Mkdir {
        /// Absolute path.
        path: String,
    },
    /// Create a file and bind it to a descriptor slot.
    Create {
        /// Absolute path.
        path: String,
        /// Descriptor slot to bind.
        slot: u32,
    },
    /// Open an existing file into a slot.
    Open {
        /// Absolute path.
        path: String,
        /// Descriptor slot to bind.
        slot: u32,
    },
    /// Sequential read at the slot's cursor.
    Read {
        /// Descriptor slot.
        slot: u32,
        /// Bytes to read.
        bytes: u64,
    },
    /// Sequential write at the slot's cursor.
    Write {
        /// Descriptor slot.
        slot: u32,
        /// Bytes to write.
        bytes: u64,
    },
    /// Reposition a slot's cursor.
    Seek {
        /// Descriptor slot.
        slot: u32,
        /// New cursor position in bytes.
        pos: u64,
    },
    /// Close a slot.
    Close {
        /// Descriptor slot.
        slot: u32,
    },
    /// Remove a file.
    Unlink {
        /// Absolute path.
        path: String,
    },
    /// Shrink a file.
    Truncate {
        /// Absolute path.
        path: String,
        /// New size in bytes.
        size: u64,
    },
    /// Let simulated time pass (compute/think phases).
    ThinkMs {
        /// Milliseconds of idle time.
        ms: f64,
    },
}

/// A replayable operation stream.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// The operations, in order.
    pub ops: Vec<TraceOp>,
}

/// What a replay did.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    /// Operations executed.
    pub operations: u64,
    /// Operations that failed (`NoSpace`, `NotFound`, …); the replay
    /// continues past failures, as a real workload would see `EIO` and move
    /// on.
    pub failures: u64,
    /// Logical bytes read.
    pub bytes_read: u64,
    /// Logical bytes written.
    pub bytes_written: u64,
    /// Simulated milliseconds consumed.
    pub elapsed_ms: f64,
}

impl Trace {
    /// Parses a trace from JSON.
    pub fn from_json(json: &str) -> Result<Trace, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Serializes the trace to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self)
            // simlint::allow(r3, "Trace is a plain data tree; serialization cannot fail")
            .unwrap_or_else(|e| unreachable!("traces are always serializable: {e}"))
    }

    /// Replays the trace against a file system.
    pub fn replay(&self, fs: &mut FileSystem) -> TraceReport {
        let mut slots: BTreeMap<u32, Fd> = BTreeMap::new();
        let mut report = TraceReport::default();
        let t0 = fs.now();
        for op in &self.ops {
            report.operations += 1;
            let outcome: Result<(), FsError> = match op {
                TraceOp::Mkdir { path } => fs.mkdir(path),
                TraceOp::Create { path, slot } => fs.create(path).map(|fd| {
                    slots.insert(*slot, fd);
                }),
                TraceOp::Open { path, slot } => fs.open(path).map(|fd| {
                    slots.insert(*slot, fd);
                }),
                TraceOp::Read { slot, bytes } => match slots.get(slot) {
                    Some(&fd) => fs.read(fd, *bytes).map(|r| {
                        report.bytes_read += r.bytes;
                    }),
                    None => Err(FsError::BadDescriptor),
                },
                TraceOp::Write { slot, bytes } => match slots.get(slot) {
                    Some(&fd) => fs.write(fd, *bytes).map(|r| {
                        report.bytes_written += r.bytes;
                    }),
                    None => Err(FsError::BadDescriptor),
                },
                TraceOp::Seek { slot, pos } => match slots.get(slot) {
                    Some(&fd) => fs.seek(fd, *pos),
                    None => Err(FsError::BadDescriptor),
                },
                TraceOp::Close { slot } => match slots.remove(slot) {
                    Some(fd) => fs.close(fd),
                    None => Err(FsError::BadDescriptor),
                },
                TraceOp::Unlink { path } => fs.unlink(path),
                TraceOp::Truncate { path, size } => fs.truncate(path, *size),
                TraceOp::ThinkMs { ms } => {
                    fs.advance_ms(*ms);
                    Ok(())
                }
            };
            if outcome.is_err() {
                report.failures += 1;
            }
        }
        report.elapsed_ms = fs.now().since(t0).as_ms();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filesystem::FsConfig;
    use readopt_alloc::PolicyConfig;
    use readopt_disk::ArrayConfig;

    fn fs() -> FileSystem {
        FileSystem::format(FsConfig {
            array: ArrayConfig::scaled(64),
            policy: PolicyConfig::paper_restricted(),
            cache: None,
            seed: 1,
        })
    }

    fn sample_trace() -> Trace {
        Trace {
            ops: vec![
                TraceOp::Mkdir { path: "/tmp".into() },
                TraceOp::Create { path: "/tmp/log".into(), slot: 0 },
                TraceOp::Write { slot: 0, bytes: 8192 },
                TraceOp::Write { slot: 0, bytes: 8192 },
                TraceOp::ThinkMs { ms: 25.0 },
                TraceOp::Seek { slot: 0, pos: 0 },
                TraceOp::Read { slot: 0, bytes: 16384 },
                TraceOp::Close { slot: 0 },
                TraceOp::Truncate { path: "/tmp/log".into(), size: 4096 },
                TraceOp::Unlink { path: "/tmp/log".into() },
            ],
        }
    }

    #[test]
    fn replay_executes_every_op() {
        let mut f = fs();
        let report = sample_trace().replay(&mut f);
        assert_eq!(report.operations, 10);
        assert_eq!(report.failures, 0);
        assert_eq!(report.bytes_written, 16384);
        assert_eq!(report.bytes_read, 16384);
        assert!(report.elapsed_ms > 25.0, "I/O time plus think time");
        f.policy().check_invariants();
    }

    #[test]
    fn json_round_trip() {
        let t = sample_trace();
        let json = t.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(t, back);
        assert!(Trace::from_json("not json").is_err());
    }

    #[test]
    fn failures_are_counted_not_fatal() {
        let t = Trace {
            ops: vec![
                TraceOp::Open { path: "/missing".into(), slot: 0 },
                TraceOp::Read { slot: 0, bytes: 10 },
                TraceOp::Create { path: "/ok".into(), slot: 1 },
                TraceOp::Write { slot: 1, bytes: 1024 },
            ],
        };
        let mut f = fs();
        let report = t.replay(&mut f);
        assert_eq!(report.failures, 2, "open + dangling read");
        assert_eq!(report.bytes_written, 1024, "replay continued");
    }

    #[test]
    fn same_trace_compares_policies_fairly() {
        // The module's purpose: one trace, many policies, comparable costs.
        let t = {
            let mut ops = vec![TraceOp::Create { path: "/data".into(), slot: 0 }];
            for _ in 0..50 {
                ops.push(TraceOp::Write { slot: 0, bytes: 32 * 1024 });
            }
            ops.push(TraceOp::Seek { slot: 0, pos: 0 });
            for _ in 0..50 {
                ops.push(TraceOp::Read { slot: 0, bytes: 32 * 1024 });
            }
            Trace { ops }
        };
        let mut elapsed = Vec::new();
        for policy in [PolicyConfig::paper_restricted(), ExperimentFixed::aged_4k()] {
            let mut f = FileSystem::format(FsConfig {
                array: ArrayConfig::scaled(64),
                policy,
                cache: None,
                seed: 1,
            });
            let r = t.replay(&mut f);
            assert_eq!(r.failures, 0);
            elapsed.push(r.elapsed_ms);
        }
        assert!(
            elapsed[0] < elapsed[1],
            "contiguous layout replays the trace faster: {elapsed:?}"
        );
    }

    /// Local helper mirroring the experiment crate's aged fixed-block
    /// baseline without a dependency cycle.
    struct ExperimentFixed;
    impl ExperimentFixed {
        fn aged_4k() -> PolicyConfig {
            PolicyConfig::Fixed(readopt_alloc::FixedConfig { block_bytes: 4096, pre_age: true })
        }
    }
}
