//! A buffer cache (page-granular LRU) between the file API and the disks.
//!
//! §1 frames the whole design space as "provid[ing] high bandwidth between
//! disks and main memory"; a buffer cache is the main-memory half. The
//! cache indexes *logical* file pages (`(file, page#)`, like a real buffer
//! cache keyed by inode and offset), so allocation policy changes never
//! invalidate it. Writes are write-through: every written unit reaches the
//! disk (and warms the cache); reads touch the disk only for missing pages.

use readopt_alloc::FileId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Buffer-cache parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total cache capacity in bytes.
    pub capacity_bytes: u64,
    /// Page size in bytes (must be a multiple of the disk unit).
    pub page_bytes: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { capacity_bytes: 8 * 1024 * 1024, page_bytes: 8 * 1024 }
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Units served from the cache.
    pub hit_units: u64,
    /// Units that had to come from disk.
    pub miss_units: u64,
    /// Pages evicted.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hit_units + self.miss_units;
        if total == 0 {
            0.0
        } else {
            self.hit_units as f64 / total as f64
        }
    }
}

type Key = (u32, u64); // (file id, page index)

/// LRU page cache over logical file pages.
#[derive(Debug)]
pub struct PageCache {
    page_units: u64,
    capacity_pages: usize,
    /// page → LRU stamp. A `BTreeMap` (not `HashMap`): iteration order
    /// feeds `invalidate_file`, and the workspace determinism invariant
    /// (simlint r1) bans order-nondeterministic containers here.
    pages: BTreeMap<Key, u64>,
    /// LRU stamp → page (oldest first).
    lru: BTreeMap<u64, Key>,
    next_stamp: u64,
    stats: CacheStats,
}

impl PageCache {
    /// Builds a cache from the config and the disk-unit size.
    pub fn new(cfg: &CacheConfig, unit_bytes: u64) -> Self {
        assert!(cfg.page_bytes >= unit_bytes && cfg.page_bytes % unit_bytes == 0,
            "page must be a positive multiple of the disk unit");
        let page_units = cfg.page_bytes / unit_bytes;
        let capacity_pages = (cfg.capacity_bytes / cfg.page_bytes).max(1) as usize;
        PageCache {
            page_units,
            capacity_pages,
            pages: BTreeMap::new(),
            lru: BTreeMap::new(),
            next_stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// Page size in units.
    pub fn page_units(&self) -> u64 {
        self.page_units
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn touch(&mut self, key: Key) {
        if let Some(old) = self.pages.insert(key, self.next_stamp) {
            self.lru.remove(&old);
        }
        self.lru.insert(self.next_stamp, key);
        self.next_stamp += 1;
        while self.pages.len() > self.capacity_pages {
            // The LRU index mirrors `pages`, so it cannot be empty here;
            // breaking (rather than panicking) keeps the cache sane even if
            // that invariant were ever violated.
            let Some((&stamp, &victim)) = self.lru.iter().next() else { break };
            self.lru.remove(&stamp);
            self.pages.remove(&victim);
            self.stats.evictions += 1;
        }
    }

    fn contains(&self, key: &Key) -> bool {
        self.pages.contains_key(key)
    }

    /// Accesses the logical unit range `[start, start + len)` of `file` for
    /// reading: returns the sub-ranges that missed (must be read from
    /// disk), merging adjacent missing pages. All touched pages become
    /// resident and most-recently-used.
    pub fn read_range(&mut self, file: FileId, start_unit: u64, len_units: u64) -> Vec<(u64, u64)> {
        let mut missing: Vec<(u64, u64)> = Vec::new();
        if len_units == 0 {
            return missing;
        }
        let first = start_unit / self.page_units;
        let last = (start_unit + len_units - 1) / self.page_units;
        for page in first..=last {
            let key = (file.0, page);
            let page_start = page * self.page_units;
            let lo = page_start.max(start_unit);
            let hi = ((page + 1) * self.page_units).min(start_unit + len_units);
            if self.contains(&key) {
                self.stats.hit_units += hi - lo;
                self.touch(key);
            } else {
                self.stats.miss_units += hi - lo;
                self.touch(key);
                match missing.last_mut() {
                    Some((ms, ml)) if *ms + *ml == lo => *ml += hi - lo,
                    _ => missing.push((lo, hi - lo)),
                }
            }
        }
        missing
    }

    /// Records a write of the range (write-through: the caller still sends
    /// everything to disk; written pages become resident).
    pub fn write_range(&mut self, file: FileId, start_unit: u64, len_units: u64) {
        if len_units == 0 {
            return;
        }
        let first = start_unit / self.page_units;
        let last = (start_unit + len_units - 1) / self.page_units;
        for page in first..=last {
            self.touch((file.0, page));
        }
    }

    /// Drops every page of `file` (unlink / truncate).
    pub fn invalidate_file(&mut self, file: FileId) {
        let stale: Vec<Key> = self.pages.keys().filter(|(f, _)| *f == file.0).copied().collect();
        for key in stale {
            if let Some(stamp) = self.pages.remove(&key) {
                self.lru.remove(&stamp);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(pages: u64) -> PageCache {
        PageCache::new(
            &CacheConfig { capacity_bytes: pages * 8 * 1024, page_bytes: 8 * 1024 },
            1024,
        )
    }

    #[test]
    fn first_read_misses_second_hits() {
        let mut c = cache(16);
        let f = FileId(1);
        let missing = c.read_range(f, 0, 16); // two 8-unit pages
        assert_eq!(missing, vec![(0, 16)]);
        let missing = c.read_range(f, 0, 16);
        assert!(missing.is_empty());
        assert_eq!(c.stats().hit_units, 16);
        assert_eq!(c.stats().miss_units, 16);
        assert!((c.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_page_accounting() {
        let mut c = cache(16);
        let f = FileId(1);
        // 4 units in the middle of page 0.
        let missing = c.read_range(f, 2, 4);
        assert_eq!(missing, vec![(2, 4)]);
        // Whole page now resident: reading unit 0 hits.
        assert!(c.read_range(f, 0, 1).is_empty());
    }

    #[test]
    fn missing_runs_merge_across_pages() {
        let mut c = cache(16);
        let f = FileId(2);
        c.read_range(f, 8, 8); // page 1 resident
        let missing = c.read_range(f, 0, 32); // pages 0..4: 0 miss, 1 hit, 2,3 miss
        assert_eq!(missing, vec![(0, 8), (16, 16)]);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = cache(2);
        let f = FileId(1);
        c.read_range(f, 0, 8); // page 0
        c.read_range(f, 8, 8); // page 1
        c.read_range(f, 0, 8); // touch page 0
        c.read_range(f, 16, 8); // page 2 evicts page 1
        assert_eq!(c.stats().evictions, 1);
        assert!(c.read_range(f, 0, 8).is_empty(), "page 0 survived");
        assert!(!c.read_range(f, 8, 8).is_empty(), "page 1 was evicted");
    }

    #[test]
    fn writes_warm_the_cache() {
        let mut c = cache(8);
        let f = FileId(3);
        c.write_range(f, 0, 24);
        assert!(c.read_range(f, 0, 24).is_empty());
    }

    #[test]
    fn files_are_isolated_and_invalidable() {
        let mut c = cache(8);
        c.read_range(FileId(1), 0, 8);
        c.read_range(FileId(2), 0, 8);
        assert!(c.read_range(FileId(1), 0, 8).is_empty());
        c.invalidate_file(FileId(1));
        assert!(!c.read_range(FileId(1), 0, 8).is_empty(), "invalidated");
        assert!(c.read_range(FileId(2), 0, 8).is_empty(), "other file untouched");
    }

    #[test]
    fn zero_length_access_is_free() {
        let mut c = cache(2);
        assert!(c.read_range(FileId(1), 5, 0).is_empty());
        assert_eq!(c.stats(), CacheStats::default());
    }
}
