//! The in-memory directory tree.
//!
//! Directory *contents* are metadata and live in memory (the paper's
//! simulator likewise charges no I/O for directory lookups; its concern is
//! data-block allocation). Files are leaves holding the allocator's
//! [`FileId`] and the logical size.

use crate::error::FsError;
use readopt_alloc::FileId;
use std::collections::BTreeMap;

/// One node of the tree.
#[derive(Debug, Clone)]
pub enum Node {
    /// A regular file: the policy's handle plus its logical size in bytes.
    File {
        /// Allocator handle.
        id: FileId,
        /// Logical (written) size in bytes.
        size_bytes: u64,
    },
    /// A directory with named children.
    Dir(BTreeMap<String, Node>),
}

impl Node {
    /// An empty directory.
    pub fn empty_dir() -> Node {
        Node::Dir(BTreeMap::new())
    }

    /// True for directory nodes.
    pub fn is_dir(&self) -> bool {
        matches!(self, Node::Dir(_))
    }
}

/// Splits and validates an absolute path into components.
pub fn components(path: &str) -> Result<Vec<&str>, FsError> {
    if !path.starts_with('/') {
        return Err(FsError::InvalidPath(path.to_string()));
    }
    let mut out = Vec::new();
    for part in path.split('/').skip(1) {
        match part {
            "" => {
                // Allow a single trailing slash ("/a/b/"), reject "//".
                continue;
            }
            "." | ".." => return Err(FsError::InvalidPath(path.to_string())),
            p => out.push(p),
        }
    }
    Ok(out)
}

/// Walks to the node at `path`.
pub fn lookup<'a>(root: &'a Node, path: &str) -> Result<&'a Node, FsError> {
    let mut node = root;
    for part in components(path)? {
        match node {
            Node::Dir(children) => {
                node = children.get(part).ok_or_else(|| FsError::NotFound(path.to_string()))?;
            }
            Node::File { .. } => return Err(FsError::NotADirectory(path.to_string())),
        }
    }
    Ok(node)
}

/// Walks to the *parent directory* of `path`, returning it and the final
/// component.
pub fn lookup_parent_mut<'a>(
    root: &'a mut Node,
    path: &str,
) -> Result<(&'a mut BTreeMap<String, Node>, String), FsError> {
    let parts = components(path)?;
    let Some((last, dirs)) = parts.split_last() else {
        return Err(FsError::InvalidPath(path.to_string()));
    };
    let mut node = root;
    for part in dirs {
        match node {
            Node::Dir(children) => {
                node = children
                    .get_mut(*part)
                    .ok_or_else(|| FsError::NotFound(path.to_string()))?;
            }
            Node::File { .. } => return Err(FsError::NotADirectory(path.to_string())),
        }
    }
    match node {
        Node::Dir(children) => Ok((children, (*last).to_string())),
        Node::File { .. } => Err(FsError::NotADirectory(path.to_string())),
    }
}

/// Mutable lookup of an existing node.
pub fn lookup_mut<'a>(root: &'a mut Node, path: &str) -> Result<&'a mut Node, FsError> {
    let mut node = root;
    for part in components(path)? {
        match node {
            Node::Dir(children) => {
                node = children
                    .get_mut(part)
                    .ok_or_else(|| FsError::NotFound(path.to_string()))?;
            }
            Node::File { .. } => return Err(FsError::NotADirectory(path.to_string())),
        }
    }
    Ok(node)
}

/// Collects every file under `node` (depth-first), as `(path, id, size)`.
pub fn walk_files(node: &Node, prefix: &str, out: &mut Vec<(String, FileId, u64)>) {
    match node {
        Node::File { id, size_bytes } => out.push((prefix.to_string(), *id, *size_bytes)),
        Node::Dir(children) => {
            for (name, child) in children {
                let path = if prefix == "/" { format!("/{name}") } else { format!("{prefix}/{name}") };
                walk_files(child, &path, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_validate_shape() {
        assert_eq!(components("/a/b/c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(components("/").unwrap(), Vec::<&str>::new());
        assert_eq!(components("/a/").unwrap(), vec!["a"]);
        assert!(components("relative").is_err());
        assert!(components("/a/../b").is_err());
        assert!(components("/a/./b").is_err());
    }

    #[test]
    fn lookup_walks_the_tree() {
        let mut root = Node::empty_dir();
        let (children, name) = lookup_parent_mut(&mut root, "/etc").unwrap();
        children.insert(name, Node::empty_dir());
        let (children, name) = lookup_parent_mut(&mut root, "/etc/passwd").unwrap();
        children.insert(name, Node::File { id: FileId(1), size_bytes: 42 });

        assert!(lookup(&root, "/etc").unwrap().is_dir());
        match lookup(&root, "/etc/passwd").unwrap() {
            Node::File { size_bytes, .. } => assert_eq!(*size_bytes, 42),
            _ => panic!("expected file"),
        }
        assert!(matches!(lookup(&root, "/missing"), Err(FsError::NotFound(_))));
        assert!(matches!(
            lookup(&root, "/etc/passwd/inner"),
            Err(FsError::NotADirectory(_))
        ));
    }

    #[test]
    fn walk_collects_files() {
        let mut root = Node::empty_dir();
        let (c, n) = lookup_parent_mut(&mut root, "/x").unwrap();
        c.insert(n, Node::File { id: FileId(0), size_bytes: 1 });
        let (c, n) = lookup_parent_mut(&mut root, "/d").unwrap();
        c.insert(n, Node::empty_dir());
        let (c, n) = lookup_parent_mut(&mut root, "/d/y").unwrap();
        c.insert(n, Node::File { id: FileId(1), size_bytes: 2 });
        let mut out = Vec::new();
        walk_files(&root, "/", &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|(p, _, _)| p == "/d/y"));
    }
}
