//! File-system error type.

use readopt_alloc::AllocError;
use std::fmt;

/// Errors returned by [`crate::FileSystem`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// The path does not name an existing file or directory.
    NotFound(String),
    /// A file or directory with that name already exists.
    AlreadyExists(String),
    /// A directory was expected but a file was found (or vice versa).
    NotADirectory(String),
    /// The operation targets a directory where a file is required.
    IsADirectory(String),
    /// The directory is not empty (rmdir).
    NotEmpty(String),
    /// The path is syntactically invalid (must be absolute, no empty
    /// components).
    InvalidPath(String),
    /// The file descriptor is not open.
    BadDescriptor,
    /// The disk could not satisfy an allocation ("disk full condition").
    NoSpace,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            FsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            FsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            FsError::NotEmpty(p) => write!(f, "directory not empty: {p}"),
            FsError::InvalidPath(p) => write!(f, "invalid path: {p}"),
            FsError::BadDescriptor => write!(f, "bad file descriptor"),
            FsError::NoSpace => write!(f, "no space left on device"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<AllocError> for FsError {
    /// Maps policy-layer failures onto POSIX-flavoured errors: exhaustion
    /// (`DiskFull`, `TooManyFiles`) is a disk-full condition, while a
    /// `DeadFile` means the caller holds a reference to a deleted file —
    /// the moral equivalent of a stale descriptor. `CorruptState` (the
    /// allocator's bookkeeping disagreeing with itself, always a library
    /// bug) surfaces as a stale-descriptor-class fault too: the file's
    /// allocation can no longer be trusted, and the closest POSIX analogue
    /// to "the kernel's own structures are bad" without inventing an EIO
    /// variant the file-system layer never otherwise produces.
    fn from(e: AllocError) -> Self {
        match e {
            AllocError::DiskFull(_) | AllocError::TooManyFiles => FsError::NoSpace,
            AllocError::DeadFile(_) | AllocError::CorruptState => FsError::BadDescriptor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format_usefully() {
        assert!(FsError::NotFound("/a".into()).to_string().contains("/a"));
        assert!(FsError::NoSpace.to_string().contains("space"));
    }
}
