//! Open-file descriptor table.

use crate::error::FsError;
use std::collections::BTreeMap;

/// An open file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd(pub u32);

/// State kept per open descriptor.
#[derive(Debug, Clone)]
pub struct OpenFile {
    /// Absolute path the descriptor was opened on. Descriptors track paths
    /// (not inodes): unlinking an open path invalidates its descriptors,
    /// which is a deliberate simplification over POSIX orphan semantics.
    pub path: String,
    /// Read/write cursor in bytes.
    pub cursor: u64,
}

/// The descriptor table.
#[derive(Debug, Default)]
pub struct HandleTable {
    open: BTreeMap<u32, OpenFile>,
    next: u32,
}

impl HandleTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        HandleTable::default()
    }

    /// Number of open descriptors.
    pub fn len(&self) -> usize {
        self.open.len()
    }

    /// True when nothing is open.
    pub fn is_empty(&self) -> bool {
        self.open.is_empty()
    }

    /// Opens a descriptor on `path`.
    pub fn insert(&mut self, path: String) -> Fd {
        let fd = self.next;
        self.next += 1;
        self.open.insert(fd, OpenFile { path, cursor: 0 });
        Fd(fd)
    }

    /// Looks up an open descriptor.
    pub fn get(&self, fd: Fd) -> Result<&OpenFile, FsError> {
        self.open.get(&fd.0).ok_or(FsError::BadDescriptor)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, fd: Fd) -> Result<&mut OpenFile, FsError> {
        self.open.get_mut(&fd.0).ok_or(FsError::BadDescriptor)
    }

    /// Closes a descriptor.
    pub fn remove(&mut self, fd: Fd) -> Result<OpenFile, FsError> {
        self.open.remove(&fd.0).ok_or(FsError::BadDescriptor)
    }

    /// Invalidates every descriptor open on `path` (unlink semantics).
    pub fn invalidate_path(&mut self, path: &str) {
        self.open.retain(|_, f| f.path != path);
    }

    /// Repoints descriptors after a rename.
    pub fn rename_path(&mut self, from: &str, to: &str) {
        for f in self.open.values_mut() {
            if f.path == from {
                f.path = to.to_string();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptors_are_unique_and_closable() {
        let mut t = HandleTable::new();
        let a = t.insert("/a".into());
        let b = t.insert("/a".into());
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        t.get_mut(a).unwrap().cursor = 10;
        assert_eq!(t.get(a).unwrap().cursor, 10);
        assert_eq!(t.get(b).unwrap().cursor, 0);
        t.remove(a).unwrap();
        assert!(matches!(t.get(a), Err(FsError::BadDescriptor)));
        assert!(!t.is_empty());
    }

    #[test]
    fn unlink_invalidates_descriptors() {
        let mut t = HandleTable::new();
        let a = t.insert("/x".into());
        let b = t.insert("/y".into());
        t.invalidate_path("/x");
        assert!(t.get(a).is_err());
        assert!(t.get(b).is_ok());
    }
}
